//! Offline stub of the `criterion` crate (see `vendor/README.md`).
//!
//! Keeps the macro/group/bencher API shape so benches compile and run
//! offline, but measures only a coarse mean wall-clock per iteration over a
//! handful of runs — no warm-up, statistics, or reports. Runs are kept short
//! deliberately so `cargo test` (which executes `harness = false` bench
//! targets) stays fast.

use std::time::{Duration, Instant};

/// Re-export for convenience parity with the real crate.
pub use std::hint::black_box;

/// Entry point handed to benchmark functions.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group: {name}");
        BenchmarkGroup { _c: self, name }
    }

    /// Run a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl IntoBenchId, mut f: F) {
        let mut b = Bencher::default();
        f(&mut b);
        b.report("", &id.into_bench_id());
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API parity; the stub always uses a small fixed count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API parity; throughput is not reported.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Benchmark `f` against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: impl IntoBenchId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::default();
        f(&mut b, input);
        b.report(&self.name, &id.into_bench_id());
    }

    /// Benchmark a closure with no external input.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl IntoBenchId, mut f: F) {
        let mut b = Bencher::default();
        f(&mut b);
        b.report(&self.name, &id.into_bench_id());
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Times the measured routine.
#[derive(Default)]
pub struct Bencher {
    total: Duration,
    iters: u32,
}

impl Bencher {
    /// Run `f` with a small iteration count and accumulate the duration it
    /// reports (real criterion hands out calibrated counts; the stub uses a
    /// fixed few so `cargo test` stays fast).
    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut f: F) {
        const RUNS: u64 = 5;
        self.total += f(RUNS);
        self.iters += RUNS as u32;
    }

    /// Run `f` a few times and accumulate its mean wall-clock time.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        const RUNS: u32 = 5;
        let t0 = Instant::now();
        for _ in 0..RUNS {
            black_box(f());
        }
        self.total += t0.elapsed();
        self.iters += RUNS;
    }

    fn report(&self, group: &str, id: &str) {
        let sep = if group.is_empty() { "" } else { "/" };
        if self.iters == 0 {
            println!("  {group}{sep}{id}: no iterations");
        } else {
            let mean = self.total / self.iters;
            println!("  {group}{sep}{id}: {mean:?}/iter ({} iters)", self.iters);
        }
    }
}

/// Benchmark identifier (name, optional parameter).
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl Into<String>, param: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{}/{}", name.into(), param))
    }

    /// Identifier carrying only a parameter value.
    pub fn from_parameter(param: impl std::fmt::Display) -> Self {
        BenchmarkId(param.to_string())
    }
}

/// Anything accepted as a benchmark identifier.
pub trait IntoBenchId {
    /// Render to the printed identifier.
    fn into_bench_id(self) -> String;
}

impl IntoBenchId for BenchmarkId {
    fn into_bench_id(self) -> String {
        self.0
    }
}

impl IntoBenchId for &str {
    fn into_bench_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchId for String {
    fn into_bench_id(self) -> String {
        self
    }
}

/// Units for [`BenchmarkGroup::throughput`] (accepted, not reported).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit a `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_bencher_run() {
        let mut c = Criterion::default();
        let mut ran = 0u32;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(10).throughput(Throughput::Elements(4));
            g.bench_with_input(BenchmarkId::from_parameter(4), &4u32, |b, &n| {
                b.iter(|| ran += n)
            });
            g.bench_function(BenchmarkId::new("f", 1), |b| b.iter(|| ran += 1));
            g.finish();
        }
        c.bench_function("solo", |b| b.iter(|| ran += 1));
        assert!(ran >= 4 * 5 + 5 + 5);
    }
}
