//! Offline stub of the `rand` crate (see `vendor/README.md`).
//!
//! Provides `rngs::SmallRng` (xoshiro256++ seeded via SplitMix64) and the
//! `Rng` / `SeedableRng` trait subset this workspace calls: `random`,
//! `random_bool`, `random_range` over integer and float ranges. The stream
//! of a seeded generator differs from the real crate's — callers must not
//! depend on exact draws, only on seeded determinism and rough uniformity.

/// Low-level uniform bit source.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (upper half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of `T` from its standard distribution (uniform over
    /// the type for integers, uniform in `[0, 1)` for floats).
    fn random<T: distr::StandardUniform>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let u: f64 = self.random();
        u < p
    }

    /// Uniform draw from a (half-open or inclusive) range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: distr::SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore> Rng for R {}

pub mod distr {
    //! Minimal distribution plumbing behind [`Rng`](crate::Rng).

    use crate::RngCore;
    use std::ops::{Range, RangeInclusive};

    /// Types samplable by `Rng::random`.
    pub trait StandardUniform: Sized {
        /// Draw one value.
        fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
    }

    macro_rules! impl_standard_int {
        ($($t:ty),*) => {$(
            impl StandardUniform for $t {
                fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl StandardUniform for f64 {
        fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            // 53 uniform mantissa bits -> [0, 1).
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl StandardUniform for f32 {
        fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    impl StandardUniform for bool {
        fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    /// Ranges samplable by `Rng::random_range`.
    pub trait SampleRange<T> {
        /// Draw one value uniformly from the range.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    /// Element types with a uniform-range sampler. A single generic
    /// `SampleRange` impl per range shape keeps integer-literal inference
    /// working exactly as with the real crate.
    pub trait SampleUniform: Sized {
        /// Uniform draw in `[lo, hi)`.
        fn sample_below<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
        /// Uniform draw in `[lo, hi]`.
        fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    }

    impl<T: SampleUniform> SampleRange<T> for Range<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            T::sample_below(rng, self.start, self.end)
        }
    }

    impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            let (lo, hi) = self.into_inner();
            T::sample_inclusive(rng, lo, hi)
        }
    }

    /// Uniform draw in `[0, span)` via 128-bit multiply (Lemire, no modulo
    /// bias worth speaking of at these spans).
    fn below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
        ((rng.next_u64() as u128 * span as u128) >> 64) as u64
    }

    macro_rules! impl_uniform_int {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_below<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                    assert!(lo < hi, "empty range in random_range");
                    let span = hi.wrapping_sub(lo) as u64;
                    lo.wrapping_add(below(rng, span) as $t)
                }
                fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                    assert!(lo <= hi, "empty range in random_range");
                    let span = hi.wrapping_sub(lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(below(rng, span + 1) as $t)
                }
            }
        )*};
    }
    impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl SampleUniform for f64 {
        fn sample_below<R: RngCore + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
            assert!(lo < hi, "empty range in random_range");
            lo + f64::sample(rng) * (hi - lo)
        }
        fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
            Self::sample_below(rng, lo, hi.next_up())
        }
    }
}

pub mod rngs {
    //! Concrete generators.

    use crate::{RngCore, SeedableRng};

    /// A small, fast, decent-quality generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            SmallRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_uniform_ish() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random_range(0..1000i64), b.random_range(0..1000i64));
        }
        let mut c = SmallRng::seed_from_u64(7);
        let mut counts = [0u32; 10];
        for _ in 0..10_000 {
            counts[c.random_range(0..10usize)] += 1;
        }
        for &n in &counts {
            assert!((700..1300).contains(&n), "skewed bucket: {counts:?}");
        }
        let mut heads = 0;
        for _ in 0..10_000 {
            if c.random_bool(0.3) {
                heads += 1;
            }
        }
        assert!((2500..3500).contains(&heads), "p=0.3 gave {heads}/10000");
        for _ in 0..1000 {
            let f: f64 = c.random();
            assert!((0.0..1.0).contains(&f));
            let r = c.random_range(5..=5u32);
            assert_eq!(r, 5);
        }
    }
}
