//! Offline stub of the `proptest` crate (see `vendor/README.md`).
//!
//! Implements the subset this workspace uses: the `proptest!` macro with an
//! optional `#![proptest_config(...)]` header, `Strategy` for ranges, tuples,
//! `prop_map`, `prop_oneof!` and `collection::vec`, plus the `prop_assert*`
//! macros. Cases are generated from a per-test deterministic seed. There is
//! **no shrinking**: a failing case panics with the assertion message, and
//! re-running reproduces it (generation is a pure function of the test name
//! and case index).

pub mod test_runner {
    //! Deterministic case generation.

    /// Per-test configuration; only `cases` is honoured.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases to run.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Run `cases` random cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Why a case failed (stub: an opaque message).
    #[derive(Clone, Debug)]
    pub struct TestCaseError(pub String);

    /// Body result type of a generated property test case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// The generator driving strategies (xoshiro256++, seeded from the test
    /// name so every test has an independent, reproducible stream).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Seed from an arbitrary string (FNV-1a into SplitMix64 expansion).
        pub fn deterministic(name: &str) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            let mut sm = h;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            TestRng {
                s: [next(), next(), next(), next()],
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// Uniform draw in `[0, span)`.
        pub fn below(&mut self, span: u64) -> u64 {
            ((self.next_u64() as u128 * span as u128) >> 64) as u64
        }

        /// Uniform draw in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    //! Value-generation strategies (no shrinking).

    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Generates values of `Self::Value` from a [`TestRng`].
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Type-erase this strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (**self).sample(rng)
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Output of [`prop_oneof!`](crate::prop_oneof): uniform choice between
    /// type-erased alternatives.
    pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            assert!(!self.0.is_empty(), "prop_oneof! of zero strategies");
            let i = rng.below(self.0.len() as u64) as usize;
            self.0[i].sample(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = self.end.wrapping_sub(self.start) as u64;
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = hi.wrapping_sub(lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(rng.below(span + 1) as $t)
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Admissible length ranges for [`vec`].
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// `Vec` of values from `element`, with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Output of [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span + 1) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.

    pub use crate::collection;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Alias so `prop::collection::vec(...)` resolves as in real proptest.
    pub use crate as prop;
}

/// Define property tests. Supports an optional
/// `#![proptest_config(ProptestConfig::with_cases(N))]` header followed by
/// `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng =
                $crate::test_runner::TestRng::deterministic(stringify!($name));
            for __case in 0..__cfg.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                // The body runs in a closure returning `TestCaseResult`, as
                // with real proptest, so `return Ok(())` early-exits a case.
                let __ret: $crate::test_runner::TestCaseResult = (move || {
                    { $body }
                    #[allow(unreachable_code)]
                    Ok(())
                })();
                if let Err(e) = __ret {
                    panic!("property failed on case {__case}: {e:?}");
                }
            }
        }
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
}

/// Assert a condition inside a property test (panics on failure; the stub
/// does not shrink).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniform choice between strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union(vec![
            $($crate::strategy::Strategy::boxed($s)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3i64..10, y in 0u32..=4, f in -2.0f64..2.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y <= 4);
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn vec_and_map_compose(
            v in prop::collection::vec((0i64..5, 1i64..3).prop_map(|(a, b)| a * b), 1..20)
        ) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            for x in v {
                prop_assert!((0..8).contains(&x));
            }
        }

        #[test]
        fn oneof_picks_both(n in prop::collection::vec(
            prop_oneof![(0i64..1).prop_map(|_| 0i64), (0i64..1).prop_map(|_| 1i64)],
            64..65,
        )) {
            let ones: i64 = n.iter().sum();
            prop_assert!(ones > 0 && ones < 64, "both arms must be drawn: {ones}");
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::TestRng::deterministic("x");
        let mut b = crate::test_runner::TestRng::deterministic("x");
        for _ in 0..50 {
            assert_eq!((0i64..100).sample(&mut a), (0i64..100).sample(&mut b));
        }
    }
}
