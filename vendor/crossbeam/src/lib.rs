//! Offline stub of the `crossbeam` crate (see `vendor/README.md`).
//!
//! Implements exactly the `crossbeam::channel` surface this workspace uses —
//! `unbounded`, `Sender`, `Receiver` and the matching error types — on top of
//! `std::sync::mpsc` (whose `Sender` is `Sync` since Rust 1.72, matching
//! crossbeam's sharing semantics for the patterns used here).

pub mod channel {
    //! MPSC channels with the crossbeam `channel` API shape.

    use std::sync::mpsc;
    use std::time::Duration;

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    /// The sending half of an unbounded channel.
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> Sender<T> {
        /// Send a message; errors if all receivers are gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.0.send(msg).map_err(|mpsc::SendError(m)| SendError(m))
        }
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives or all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Block with a deadline.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Blocking iterator over incoming messages.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            self.0.iter()
        }
    }

    /// The channel is disconnected (no receiver).
    #[derive(Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// The channel is disconnected (no sender) and empty.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    /// Outcome of a failed [`Receiver::recv_timeout`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The deadline passed with no message.
        Timeout,
        /// All senders are gone and the buffer is empty.
        Disconnected,
    }

    /// Outcome of a failed [`Receiver::try_recv`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message buffered right now.
        Empty,
        /// All senders are gone and the buffer is empty.
        Disconnected,
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;
    use std::time::Duration;

    #[test]
    fn roundtrip_and_timeout() {
        let (tx, rx) = unbounded();
        tx.send(7i32).unwrap();
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn cross_thread_clone() {
        let (tx, rx) = unbounded();
        let t2 = tx.clone();
        std::thread::spawn(move || t2.send(1u8).unwrap());
        std::thread::spawn(move || tx.send(2u8).unwrap());
        let mut got = vec![rx.recv().unwrap(), rx.recv().unwrap()];
        got.sort_unstable();
        assert_eq!(got, vec![1, 2]);
    }
}
