//! Safety of the cross-site protocol under concurrency and network faults:
//! no double-booking, no capacity leaks, atomicity of every grant.

use coalloc_core::prelude::*;
use coalloc_multisite::*;
use std::collections::BTreeMap;
use std::time::Duration;

fn spawn_sites(n_sites: u32, servers: u32) -> Vec<SiteHandle> {
    let cfg = SchedulerConfig::builder()
        .tau(Dur(60))
        .horizon(Dur(86_400))
        .delta_t(Dur(60))
        .build();
    (0..n_sites)
        .map(|i| SiteHandle::spawn(SiteId(i), servers, cfg))
        .collect()
}

fn coord_cfg() -> CoordinatorConfig {
    CoordinatorConfig {
        delta_t: Dur(300),
        r_max: 60,
        rpc_timeout: Duration::from_secs(5),
        hold_ttl: Duration::from_secs(30),
        ..CoordinatorConfig::default()
    }
}

fn multi_req(sites: &[(u32, u32)], start: i64, dur: i64) -> MultiRequest {
    MultiRequest {
        parts: sites.iter().map(|&(s, n)| (SiteId(s), n)).collect(),
        earliest_start: Time(start),
        duration: Dur(dur),
    }
}

/// Many coordinators fight over the same three sites. Afterwards, the total
/// committed capacity per site per instant must never exceed the site size —
/// which each site's own `check_consistency` (run at shutdown) enforces —
/// and the sum of grants must equal the sum of site-side commits.
#[test]
fn concurrent_coordinators_never_double_book() {
    let sites = spawn_sites(3, 4);
    let mut grants: Vec<MultiGrant> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for c in 0..6 {
            let sites = &sites;
            handles.push(scope.spawn(move || {
                let mut coord = Coordinator::new(sites, coord_cfg());
                let mut local = Vec::new();
                for k in 0..5 {
                    // Overlapping windows from every coordinator.
                    let start = (k * 600) as i64;
                    let req = multi_req(&[(0, 2), (1, 1), (2, 2)], start, 900);
                    if let Ok(g) = coord.co_allocate(&req) {
                        local.push(g);
                    }
                    let _ = c; // coordinator index only for thread identity
                }
                local
            }));
        }
        for h in handles {
            grants.extend(h.join().expect("coordinator thread"));
        }
    });
    assert!(!grants.is_empty(), "some co-allocations must succeed");
    // Atomicity: every grant covers all three sites with the same window.
    for g in &grants {
        assert_eq!(g.parts.len(), 3);
        assert_eq!(g.end - g.start, Dur(900));
    }
    // Per-site per-window accounting: reconstruct usage from the grants and
    // verify it never exceeds each site's capacity.
    let mut events: BTreeMap<u32, Vec<(Time, i64)>> = BTreeMap::new();
    for g in &grants {
        for (site, _, servers) in &g.parts {
            let e = events.entry(site.0).or_default();
            e.push((g.start, servers.len() as i64));
            e.push((g.end, -(servers.len() as i64)));
        }
    }
    for (site, mut evs) in events {
        evs.sort_by_key(|&(t, d)| (t, d));
        let mut used = 0i64;
        for (t, d) in evs {
            used += d;
            assert!(used <= 4, "site {site} overcommitted at {t}: {used}");
        }
    }
    // Site-side commit counters must match the grants exactly.
    let total_parts: u64 = grants.len() as u64 * 3;
    let mut commits = 0;
    for s in sites {
        let st = s.shutdown(); // also runs the scheduler consistency check
        commits += st.commits;
        assert!(st.holds_granted as i64 - st.commits as i64 - st.expired as i64 >= 0);
    }
    assert_eq!(commits, total_parts);
}

/// With a lossy, laggy link in front of one site, co-allocations either
/// succeed atomically or fail without leaking capacity: after the dust
/// settles (TTL expiry), every window not covered by a reported grant is
/// fully available again.
#[test]
fn flaky_network_leaks_nothing() {
    let sites = spawn_sites(2, 2);
    // Interpose a 30%-loss link in front of site 1.
    let link = FlakyLink::new(
        sites[1].sender(),
        LinkConfig {
            drop_prob: 0.3,
            base_delay: Duration::from_millis(1),
            jitter: Duration::from_millis(3),
            seed: 99,
            ..LinkConfig::default()
        },
    );
    // Drive the protocol manually through the flaky link: hold on site 0
    // (reliable), then site 1 (flaky); abort on timeout.
    let rpc = Duration::from_millis(120);
    let mut granted = 0u32;
    let mut failed = 0u32;
    let mut granted_windows = Vec::new();
    for k in 0..20i64 {
        let txn = TxnId(1000 + k as u64);
        let (start, dur) = (Time(k * 600), Dur(300));
        let r0 = sites[0].call_timeout(
            SiteRequest::Hold {
                txn,
                seq: 0,
                start,
                duration: dur,
                servers: 1,
                ttl: Duration::from_millis(400),
            },
            rpc,
        );
        assert!(matches!(r0, Some(SiteReply::HoldGranted { .. })));
        // Via the flaky link.
        let (reply_tx, reply_rx) = crossbeam::channel::unbounded();
        link.sender()
            .send(Envelope {
                request: SiteRequest::Hold {
                    txn,
                    seq: 0,
                    start,
                    duration: dur,
                    servers: 1,
                    ttl: Duration::from_millis(400),
                },
                reply_to: reply_tx,
            })
            .unwrap();
        match reply_rx.recv_timeout(rpc) {
            Ok(SiteReply::HoldGranted { .. }) => {
                // Commit both (direct path, as a coordinator would after
                // the hold phase).
                let c0 = sites[0].call_timeout(SiteRequest::Commit { txn, seq: 0 }, rpc);
                let c1 = sites[1].call_timeout(SiteRequest::Commit { txn, seq: 0 }, rpc);
                let committed = |c: &Option<SiteReply>| {
                    matches!(
                        c,
                        Some(SiteReply::CommitResult { outcome, .. }) if outcome.is_success()
                    )
                };
                assert!(committed(&c0));
                assert!(committed(&c1));
                granted += 1;
                granted_windows.push((start, start + dur));
            }
            _ => {
                // Timeout or loss: abort site 0; site 1's hold (if the
                // message got through but the reply was slow) expires.
                let _ = sites[0].call_timeout(SiteRequest::Abort { txn, seq: 0 }, rpc);
                failed += 1;
            }
        }
    }
    assert!(granted > 0, "some transactions should survive 30% loss");
    assert!(failed > 0, "some transactions should fail under loss");
    // Let orphaned holds expire.
    std::thread::sleep(Duration::from_millis(600));
    // Every non-granted window is fully free on both sites.
    for k in 0..20i64 {
        let start = Time(k * 600);
        if granted_windows.contains(&(start, start + Dur(300))) {
            continue;
        }
        for s in &sites {
            let r = s.call_timeout(
                SiteRequest::Query {
                    start,
                    duration: Dur(300),
                },
                Duration::from_secs(5),
            );
            assert_eq!(
                r,
                Some(SiteReply::QueryResult {
                    site: s.id,
                    available: 2
                }),
                "window at {start} leaked capacity"
            );
        }
    }
    drop(link);
}

/// The global site-order acquisition means two coordinators requesting the
/// same pair of sites in *opposite* declaration order still terminate
/// (no deadlock/livelock): declaration order is irrelevant because parts is
/// an ordered map.
#[test]
fn opposite_order_requests_terminate() {
    let sites = spawn_sites(2, 1);
    let barrier = std::sync::Barrier::new(2);
    std::thread::scope(|scope| {
        let h1 = scope.spawn(|| {
            barrier.wait();
            let mut c = Coordinator::new(&sites, coord_cfg());
            (0..10)
                .filter(|k| {
                    c.co_allocate(&multi_req(&[(0, 1), (1, 1)], k * 600, 600))
                        .is_ok()
                })
                .count()
        });
        let h2 = scope.spawn(|| {
            barrier.wait();
            let mut c = Coordinator::new(&sites, coord_cfg());
            (0..10)
                .filter(|k| {
                    c.co_allocate(&multi_req(&[(1, 1), (0, 1)], k * 600, 600))
                        .is_ok()
                })
                .count()
        });
        let (a, b) = (h1.join().unwrap(), h2.join().unwrap());
        // Each window fits exactly one transaction; both coordinators ask
        // for the same 10 windows, so between them at most 10 succeed —
        // and with retries shifting by Delta_t inside the window gaps,
        // progress is guaranteed for at least one of them.
        assert!(a + b >= 10, "at least the 10 windows fit: got {a}+{b}");
    });
}
