//! Fixed-seed chaos smoke tests: the full protocol under message loss,
//! duplication, reordering and (separately) site crashes, with conservation
//! verified across every statistics surface. The ISSUE-level acceptance
//! numbers — 5% drops and 5% duplicates on both paths, ≥99% of feasible
//! co-allocations committing, zero leaked holds after drain — are asserted
//! here with deterministic seeds.

use coalloc_multisite::chaos::{run_chaos, ChaosConfig};
use coalloc_multisite::{CoordinatorConfig, LinkConfig};
use std::time::Duration;

fn faulty_link() -> LinkConfig {
    LinkConfig {
        drop_prob: 0.05,
        duplicate_prob: 0.05,
        drop_reply_prob: 0.05,
        duplicate_reply_prob: 0.05,
        reorder_prob: 0.02,
        ..LinkConfig::default()
    }
}

fn fast_protocol() -> CoordinatorConfig {
    CoordinatorConfig {
        rpc_timeout: Duration::from_millis(120),
        rpc_retries: 8,
        retry_base: Duration::from_millis(2),
        ..ChaosConfig::default().coordinator
    }
}

/// Lossy + duplicating + reordering links, no crashes: every invariant
/// (hold conservation, commit conservation, ≥99% liveness) must hold.
#[test]
fn soak_under_message_faults() {
    let report = run_chaos(ChaosConfig {
        sites: 3,
        coordinators: 4,
        requests_per_coordinator: 20,
        link: faulty_link(),
        coordinator: fast_protocol(),
        crash_interval: None,
        seed: 0xD1CE,
        ..ChaosConfig::default()
    });
    report
        .verify()
        .unwrap_or_else(|e| panic!("invariants violated: {e:#?}\nreport: {}", report.summary()));
    // The faults must actually have bitten for the run to mean anything.
    let dropped: u64 = report
        .links
        .iter()
        .map(|l| l.dropped + l.replies_dropped)
        .sum();
    let duplicated: u64 = report
        .links
        .iter()
        .map(|l| l.duplicated + l.replies_duplicated)
        .sum();
    assert!(dropped > 0, "no drops injected — link config inert?");
    assert!(
        duplicated > 0,
        "no duplicates injected — link config inert?"
    );
    assert!(
        report.coordinators.rpc_retries > 0,
        "drops must have caused retries"
    );
}

/// Crash/restart injection on top of message faults: liveness is waived
/// (crashes legitimately kill in-flight transactions), but conservation
/// must still be exact — crashed holds are accounted as lost, commits
/// survive, and nothing leaks.
#[test]
fn soak_under_crashes() {
    let report = run_chaos(ChaosConfig {
        sites: 3,
        coordinators: 4,
        requests_per_coordinator: 25,
        link: faulty_link(),
        coordinator: fast_protocol(),
        crash_interval: Some(Duration::from_millis(25)),
        seed: 0x5EED,
        ..ChaosConfig::default()
    });
    assert!(
        report.crashes_injected > 0,
        "the injector must have fired at least once"
    );
    report
        .verify()
        .unwrap_or_else(|e| panic!("invariants violated: {e:#?}\nreport: {}", report.summary()));
    let crashes: u64 = report.sites.iter().map(|s| s.crashes).sum();
    assert_eq!(crashes, report.crashes_injected);
}
