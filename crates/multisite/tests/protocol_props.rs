//! Model-based property test of site-level idempotency: an *arbitrary*
//! interleaving of duplicated, reordered `Hold`/`Commit`/`Abort` messages
//! (plus crash/restart cycles) over a small transaction set must keep the
//! site's available capacity exactly equal to a trivial reference model's,
//! conserve every granted hold, and leave the scheduler self-consistent.
//!
//! The generated sequences contain duplicates by construction (several ops
//! can name the same transaction) and cover reorderings such as
//! commit-before-hold and hold-after-abort that the relay-based chaos tests
//! only reach probabilistically.

use coalloc_core::prelude::{Dur, SchedulerConfig, Time};
use coalloc_multisite::{CommitOutcome, SiteHandle, SiteId, SiteReply, SiteRequest, TxnId};
use proptest::prelude::*;
use std::time::Duration;

const SERVERS: u32 = 4;
const TXNS: u64 = 6;
/// One shared window: every transaction asks for 1 server in it, so model
/// availability is simply `SERVERS - live transactions`.
const START: Time = Time(0);
const DURATION: Dur = Dur(600);
/// Far beyond the test's runtime — no hold may expire mid-sequence.
const TTL: Duration = Duration::from_secs(120);

/// Reference model of one transaction at the site.
#[derive(Clone, Copy, PartialEq, Debug)]
enum Model {
    /// Never seen (or forgotten after a crash).
    Unknown,
    /// Holding one server.
    Held,
    /// Committed one server.
    Committed,
    /// Terminal (aborted, or a commit that found no hold): holds no
    /// capacity and may not be resurrected.
    Finished,
}

fn spawn_site() -> SiteHandle {
    SiteHandle::spawn(
        SiteId(0),
        SERVERS,
        SchedulerConfig::builder()
            .tau(Dur(60))
            .horizon(Dur(3600))
            .delta_t(Dur(60))
            .build(),
    )
}

fn available(site: &SiteHandle) -> u32 {
    match site.call(SiteRequest::Query {
        start: START,
        duration: DURATION,
    }) {
        SiteReply::QueryResult { available, .. } => available,
        other => panic!("unexpected query reply {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Site replies and capacity match the model after every single op.
    #[test]
    fn any_interleaving_conserves_capacity(
        ops in proptest::collection::vec((0u8..4, 0u64..TXNS), 1..40)
    ) {
        let site = spawn_site();
        let mut model = [Model::Unknown; TXNS as usize];
        let live = |model: &[Model]| {
            model
                .iter()
                .filter(|m| matches!(m, Model::Held | Model::Committed))
                .count() as u32
        };
        for (seq, &(kind, t)) in ops.iter().enumerate() {
            let txn = TxnId(t);
            let m = model[t as usize];
            let seq = seq as u64;
            match kind {
                // Hold: fresh grant, cached re-grant, or denial.
                0 => {
                    let reply = site.call(SiteRequest::Hold {
                        txn,
                        seq,
                        start: START,
                        duration: DURATION,
                        servers: 1,
                        ttl: TTL,
                    });
                    match m {
                        Model::Unknown if live(&model) < SERVERS => {
                            prop_assert!(
                                matches!(reply, SiteReply::HoldGranted { .. }),
                                "fresh hold of {txn:?} denied with capacity free: {reply:?}"
                            );
                            model[t as usize] = Model::Held;
                        }
                        Model::Unknown => prop_assert!(
                            matches!(reply, SiteReply::HoldDenied { .. }),
                            "hold of {txn:?} granted beyond capacity: {reply:?}"
                        ),
                        Model::Held | Model::Committed => prop_assert!(
                            matches!(reply, SiteReply::HoldGranted { .. }),
                            "duplicate hold of {txn:?} not answered from cache: {reply:?}"
                        ),
                        Model::Finished => prop_assert!(
                            matches!(reply, SiteReply::HoldDenied { .. }),
                            "hold resurrected finished {txn:?}: {reply:?}"
                        ),
                    }
                }
                // Commit: three-valued outcome.
                1 => {
                    let reply = site.call(SiteRequest::Commit { txn, seq });
                    let expect = match m {
                        Model::Held => {
                            model[t as usize] = Model::Committed;
                            CommitOutcome::Committed
                        }
                        Model::Committed => CommitOutcome::AlreadyCommitted,
                        Model::Unknown | Model::Finished => {
                            // The site records the failed commit as terminal.
                            model[t as usize] = Model::Finished;
                            CommitOutcome::Expired
                        }
                    };
                    prop_assert_eq!(
                        reply,
                        SiteReply::CommitResult {
                            txn,
                            site: SiteId(0),
                            outcome: expect
                        }
                    );
                }
                // Abort: always acknowledged, releases hold or commit.
                2 => {
                    let reply = site.call(SiteRequest::Abort { txn, seq });
                    prop_assert_eq!(reply, SiteReply::Aborted { txn, site: SiteId(0) });
                    model[t as usize] = Model::Finished;
                }
                // Crash: volatile state (holds, terminal cache) vanishes,
                // commits survive.
                _ => {
                    let reply = site.call(SiteRequest::Crash);
                    prop_assert_eq!(reply, SiteReply::Crashed { site: SiteId(0) });
                    for m in model.iter_mut() {
                        if !matches!(m, Model::Committed) {
                            *m = Model::Unknown;
                        }
                    }
                }
            }
            prop_assert_eq!(
                available(&site),
                SERVERS - live(&model),
                "capacity diverged from model after op {} {:?}",
                seq,
                (kind, t)
            );
        }
        // Drain: abort everything; all capacity must return.
        for t in 0..TXNS {
            site.call(SiteRequest::Abort {
                txn: TxnId(t),
                seq: 1_000 + t,
            });
        }
        prop_assert_eq!(available(&site), SERVERS, "leaked capacity after drain");
        // Shutdown runs the scheduler's own consistency check; the stats
        // must satisfy hold conservation with nothing left unaccounted.
        let stats = site.shutdown();
        prop_assert_eq!(
            stats.holds_granted,
            stats.commits + stats.holds_aborted + stats.expired + stats.holds_lost,
            "hold conservation violated: {:?}",
            stats
        );
        prop_assert_eq!(stats.expired, 0, "nothing may expire under a 120s TTL");
    }
}
