//! A site: one scheduler domain running in its own thread.
//!
//! Each site owns a [`CoAllocScheduler`] over its local servers and serves
//! the hold/commit protocol. Holds are tentative reservations backed by a
//! real committed job in the local scheduler, tracked with a wall-clock
//! deadline; expired holds are swept (released) lazily before every request,
//! so an orphaned hold (crashed or partitioned coordinator) can block
//! capacity only for its TTL.

use crate::messages::{Envelope, SiteId, SiteReply, SiteRequest, TxnId};
use coalloc_core::prelude::*;
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::collections::HashMap;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Handle to a running site thread.
#[derive(Debug)]
pub struct SiteHandle {
    /// The site's identity.
    pub id: SiteId,
    /// Number of servers at this site.
    pub servers: u32,
    tx: Sender<Envelope>,
    join: Option<JoinHandle<SiteStats>>,
}

/// Counters a site reports on shutdown.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SiteStats {
    /// Holds granted.
    pub holds_granted: u64,
    /// Holds denied for lack of capacity.
    pub holds_denied: u64,
    /// Transactions committed.
    pub commits: u64,
    /// Aborts processed (including no-ops).
    pub aborts: u64,
    /// Holds released by TTL expiry.
    pub expired: u64,
}

struct HoldState {
    job: JobId,
    deadline: Instant,
}

struct Site {
    id: SiteId,
    sched: CoAllocScheduler,
    holds: HashMap<TxnId, HoldState>,
    /// Committed transactions (kept so a compensating Abort can undo them).
    committed: HashMap<TxnId, JobId>,
    stats: SiteStats,
}

impl Site {
    fn sweep_expired(&mut self) {
        let now = Instant::now();
        let dead: Vec<TxnId> = self
            .holds
            .iter()
            .filter(|(_, h)| h.deadline <= now)
            .map(|(&t, _)| t)
            .collect();
        for txn in dead {
            let hold = self.holds.remove(&txn).unwrap();
            // The backing job may be gone only if someone released it; we
            // never do that while the hold lives, so this must succeed.
            self.sched
                .release(hold.job)
                .expect("expired hold backed by live job");
            self.stats.expired += 1;
        }
    }

    fn handle(&mut self, req: SiteRequest) -> Option<SiteReply> {
        self.sweep_expired();
        match req {
            SiteRequest::Hold {
                txn,
                start,
                duration,
                servers,
                ttl,
            } => {
                let end = start + duration;
                let hits = self.sched.range_search(start, end);
                if (hits.len() as u32) < servers {
                    self.stats.holds_denied += 1;
                    return Some(SiteReply::HoldDenied {
                        txn,
                        site: self.id,
                        available: hits.len() as u32,
                    });
                }
                let pick: Vec<PeriodId> = hits
                    .iter()
                    .take(servers as usize)
                    .map(|h| h.period.id)
                    .collect();
                match self.sched.commit_selection(&pick, start, end) {
                    Ok(grant) => {
                        self.holds.insert(
                            txn,
                            HoldState {
                                job: grant.job,
                                deadline: Instant::now() + ttl,
                            },
                        );
                        self.stats.holds_granted += 1;
                        Some(SiteReply::HoldGranted {
                            txn,
                            site: self.id,
                            job: grant.job,
                            servers: grant.servers,
                        })
                    }
                    Err(_) => {
                        self.stats.holds_denied += 1;
                        Some(SiteReply::HoldDenied {
                            txn,
                            site: self.id,
                            available: 0,
                        })
                    }
                }
            }
            SiteRequest::Commit { txn } => {
                let ok = if let Some(hold) = self.holds.remove(&txn) {
                    self.committed.insert(txn, hold.job);
                    self.stats.commits += 1;
                    true
                } else {
                    false
                };
                Some(SiteReply::CommitResult {
                    txn,
                    site: self.id,
                    ok,
                })
            }
            SiteRequest::Abort { txn } => {
                self.stats.aborts += 1;
                if let Some(hold) = self.holds.remove(&txn) {
                    self.sched
                        .release(hold.job)
                        .expect("aborted hold backed by live job");
                } else if let Some(job) = self.committed.remove(&txn) {
                    // Compensation: undo an already committed transaction.
                    let _ = self.sched.release(job);
                }
                Some(SiteReply::Aborted {
                    txn,
                    site: self.id,
                })
            }
            SiteRequest::Query { start, duration } => {
                let available = self.sched.range_count(start, start + duration) as u32;
                Some(SiteReply::QueryResult {
                    site: self.id,
                    available,
                })
            }
            SiteRequest::Tick { now } => {
                self.sched.advance_to(now);
                Some(SiteReply::Ticked { site: self.id })
            }
            SiteRequest::Shutdown => None,
        }
    }
}

impl SiteHandle {
    /// Spawn a site thread with `servers` local servers and the given
    /// scheduler configuration.
    pub fn spawn(id: SiteId, servers: u32, cfg: SchedulerConfig) -> SiteHandle {
        let (tx, rx): (Sender<Envelope>, Receiver<Envelope>) = unbounded();
        let join = std::thread::Builder::new()
            .name(format!("site-{}", id.0))
            .spawn(move || {
                let mut site = Site {
                    id,
                    sched: CoAllocScheduler::new(servers, cfg),
                    holds: HashMap::new(),
                    committed: HashMap::new(),
                    stats: SiteStats::default(),
                };
                // Periodic wake-up so TTL expiry cannot be starved by an
                // idle channel.
                loop {
                    match rx.recv_timeout(Duration::from_millis(50)) {
                        Ok(env) => match site.handle(env.request) {
                            Some(reply) => {
                                let _ = env.reply_to.send(reply);
                            }
                            None => break, // Shutdown
                        },
                        Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                            site.sweep_expired();
                        }
                        Err(crossbeam::channel::RecvTimeoutError::Disconnected) => break,
                    }
                }
                site.sweep_expired();
                site.sched.check_consistency();
                site.stats
            })
            .expect("spawn site thread");
        SiteHandle {
            id,
            servers,
            tx,
            join: Some(join),
        }
    }

    /// The channel to send [`Envelope`]s on (used by networks/relays).
    pub fn sender(&self) -> Sender<Envelope> {
        self.tx.clone()
    }

    /// Send a request and synchronously await the reply (no timeout; prefer
    /// [`Self::call_timeout`] in protocol code).
    pub fn call(&self, request: SiteRequest) -> SiteReply {
        self.call_timeout(request, Duration::from_secs(10))
            .expect("site reply within 10s")
    }

    /// Send a request and await the reply with a timeout.
    pub fn call_timeout(&self, request: SiteRequest, timeout: Duration) -> Option<SiteReply> {
        let (reply_tx, reply_rx) = unbounded();
        self.tx
            .send(Envelope {
                request,
                reply_to: reply_tx,
            })
            .ok()?;
        reply_rx.recv_timeout(timeout).ok()
    }

    /// Stop the site thread and collect its statistics.
    pub fn shutdown(mut self) -> SiteStats {
        let (reply_tx, _keep) = unbounded();
        let _ = self.tx.send(Envelope {
            request: SiteRequest::Shutdown,
            reply_to: reply_tx,
        });
        self.join
            .take()
            .expect("not yet joined")
            .join()
            .expect("site thread panicked")
    }
}

impl Drop for SiteHandle {
    fn drop(&mut self) {
        if let Some(join) = self.join.take() {
            let (reply_tx, _keep) = unbounded();
            let _ = self.tx.send(Envelope {
                request: SiteRequest::Shutdown,
                reply_to: reply_tx,
            });
            let _ = join.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SchedulerConfig {
        SchedulerConfig::builder()
            .tau(Dur(60))
            .horizon(Dur(3600))
            .delta_t(Dur(60))
            .build()
    }

    #[test]
    fn hold_commit_roundtrip() {
        let site = SiteHandle::spawn(SiteId(0), 4, cfg());
        let reply = site.call(SiteRequest::Hold {
            txn: TxnId(1),
            start: Time(0),
            duration: Dur(600),
            servers: 2,
            ttl: Duration::from_secs(5),
        });
        assert!(matches!(reply, SiteReply::HoldGranted { txn: TxnId(1), .. }));
        let reply = site.call(SiteRequest::Commit { txn: TxnId(1) });
        assert_eq!(
            reply,
            SiteReply::CommitResult {
                txn: TxnId(1),
                site: SiteId(0),
                ok: true
            }
        );
        // The window is consumed.
        let reply = site.call(SiteRequest::Query {
            start: Time(0),
            duration: Dur(600),
        });
        assert_eq!(
            reply,
            SiteReply::QueryResult {
                site: SiteId(0),
                available: 2
            }
        );
        let stats = site.shutdown();
        assert_eq!(stats.holds_granted, 1);
        assert_eq!(stats.commits, 1);
    }

    #[test]
    fn hold_abort_releases_capacity() {
        let site = SiteHandle::spawn(SiteId(0), 2, cfg());
        let r = site.call(SiteRequest::Hold {
            txn: TxnId(5),
            start: Time(0),
            duration: Dur(600),
            servers: 2,
            ttl: Duration::from_secs(5),
        });
        assert!(matches!(r, SiteReply::HoldGranted { .. }));
        site.call(SiteRequest::Abort { txn: TxnId(5) });
        let r = site.call(SiteRequest::Query {
            start: Time(0),
            duration: Dur(600),
        });
        assert_eq!(
            r,
            SiteReply::QueryResult {
                site: SiteId(0),
                available: 2
            }
        );
        // Abort is idempotent.
        let r = site.call(SiteRequest::Abort { txn: TxnId(5) });
        assert_eq!(
            r,
            SiteReply::Aborted {
                txn: TxnId(5),
                site: SiteId(0)
            }
        );
    }

    #[test]
    fn insufficient_capacity_denied_with_count() {
        let site = SiteHandle::spawn(SiteId(3), 2, cfg());
        let r = site.call(SiteRequest::Hold {
            txn: TxnId(9),
            start: Time(0),
            duration: Dur(600),
            servers: 3,
            ttl: Duration::from_secs(5),
        });
        assert_eq!(
            r,
            SiteReply::HoldDenied {
                txn: TxnId(9),
                site: SiteId(3),
                available: 2
            }
        );
    }

    #[test]
    fn expired_hold_is_swept_and_commit_fails() {
        let site = SiteHandle::spawn(SiteId(0), 2, cfg());
        site.call(SiteRequest::Hold {
            txn: TxnId(1),
            start: Time(0),
            duration: Dur(600),
            servers: 2,
            ttl: Duration::from_millis(30),
        });
        std::thread::sleep(Duration::from_millis(120));
        // Capacity is back...
        let r = site.call(SiteRequest::Query {
            start: Time(0),
            duration: Dur(600),
        });
        assert_eq!(
            r,
            SiteReply::QueryResult {
                site: SiteId(0),
                available: 2
            }
        );
        // ...and a late commit reports failure.
        let r = site.call(SiteRequest::Commit { txn: TxnId(1) });
        assert_eq!(
            r,
            SiteReply::CommitResult {
                txn: TxnId(1),
                site: SiteId(0),
                ok: false
            }
        );
        let stats = site.shutdown();
        assert_eq!(stats.expired, 1);
    }

    #[test]
    fn compensating_abort_undoes_commit() {
        let site = SiteHandle::spawn(SiteId(0), 2, cfg());
        site.call(SiteRequest::Hold {
            txn: TxnId(2),
            start: Time(60),
            duration: Dur(300),
            servers: 1,
            ttl: Duration::from_secs(5),
        });
        site.call(SiteRequest::Commit { txn: TxnId(2) });
        site.call(SiteRequest::Abort { txn: TxnId(2) });
        let r = site.call(SiteRequest::Query {
            start: Time(60),
            duration: Dur(300),
        });
        assert_eq!(
            r,
            SiteReply::QueryResult {
                site: SiteId(0),
                available: 2
            }
        );
    }

    #[test]
    fn tick_unlocks_far_future_windows() {
        // Horizon 3600s: a window at t=5000 is initially unreachable; after
        // ticking the clock to 2000 the horizon covers it.
        let site = SiteHandle::spawn(SiteId(2), 2, cfg());
        let hold = SiteRequest::Hold {
            txn: TxnId(11),
            start: Time(5000),
            duration: Dur(300),
            servers: 1,
            ttl: Duration::from_secs(5),
        };
        let r = site.call(hold.clone());
        assert!(
            matches!(r, SiteReply::HoldDenied { available: 0, .. }),
            "{r:?}"
        );
        site.call(SiteRequest::Tick { now: Time(2000) });
        let r = site.call(hold);
        assert!(matches!(r, SiteReply::HoldGranted { .. }), "{r:?}");
        let stats = site.shutdown();
        assert_eq!(stats.holds_granted, 1);
        assert_eq!(stats.holds_denied, 1);
    }

    #[test]
    fn query_reflects_live_holds() {
        let site = SiteHandle::spawn(SiteId(0), 3, cfg());
        site.call(SiteRequest::Hold {
            txn: TxnId(21),
            start: Time(0),
            duration: Dur(600),
            servers: 2,
            ttl: Duration::from_secs(5),
        });
        // Uncommitted holds already consume capacity (that is the point of
        // a hold).
        let r = site.call(SiteRequest::Query {
            start: Time(0),
            duration: Dur(600),
        });
        assert_eq!(
            r,
            SiteReply::QueryResult {
                site: SiteId(0),
                available: 1
            }
        );
    }

    #[test]
    fn tick_advances_clock() {
        let site = SiteHandle::spawn(SiteId(1), 1, cfg());
        let r = site.call(SiteRequest::Tick { now: Time(120) });
        assert_eq!(r, SiteReply::Ticked { site: SiteId(1) });
        // Window in the past is no longer available.
        let r = site.call(SiteRequest::Query {
            start: Time(0),
            duration: Dur(60),
        });
        assert_eq!(
            r,
            SiteReply::QueryResult {
                site: SiteId(1),
                available: 0
            }
        );
    }
}
