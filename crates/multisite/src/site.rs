//! A site: one scheduler domain running in its own thread.
//!
//! Each site owns a [`CoAllocScheduler`] over its local servers and serves
//! the hold/commit protocol. Holds are tentative reservations backed by a
//! real committed job in the local scheduler, tracked with a wall-clock
//! deadline; expired holds are swept (released) lazily before every request,
//! so an orphaned hold (crashed or partitioned coordinator) can block
//! capacity only for its TTL.
//!
//! All transaction-bearing requests are **idempotent** under at-least-once
//! delivery: a re-delivered `Hold` returns the existing grant (instead of
//! reserving a second time and leaking the first), a re-delivered `Commit`
//! of a committed transaction reports `AlreadyCommitted` (instead of being
//! mistaken for an expiry), and terminal outcomes (aborted/expired) are
//! remembered in a bounded outcome cache so a late, reordered `Hold` cannot
//! resurrect a transaction the coordinator already gave up on.

use crate::messages::{CommitOutcome, Envelope, SiteId, SiteReply, SiteRequest, TxnId};
use coalloc_core::prelude::*;
use obs::obs_event;
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::collections::HashMap;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long terminal per-txn outcomes (aborted / expired) are remembered so
/// that duplicate or reordered messages for finished transactions are
/// answered consistently. Messages older than this are assumed to have left
/// the network (it exceeds any RPC timeout + retry horizon by a wide
/// margin).
const OUTCOME_RETENTION: Duration = Duration::from_secs(120);

/// Handle to a running site thread.
#[derive(Debug)]
pub struct SiteHandle {
    /// The site's identity.
    pub id: SiteId,
    /// Number of servers at this site.
    pub servers: u32,
    tx: Sender<Envelope>,
    join: Option<JoinHandle<SiteStats>>,
}

/// Counters a site reports on shutdown.
///
/// Conservation invariant (checked by the chaos harness): once every live
/// hold has drained, `holds_granted == commits + holds_aborted + expired +
/// holds_lost` — every fresh grant ends in exactly one of those states.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SiteStats {
    /// Fresh holds granted (duplicate deliveries are *not* re-counted).
    pub holds_granted: u64,
    /// Holds denied for lack of capacity (or because the txn had already
    /// finished).
    pub holds_denied: u64,
    /// Transactions committed (each txn at most once).
    pub commits: u64,
    /// Abort messages processed (including idempotent no-ops).
    pub aborts: u64,
    /// Live holds released by an abort.
    pub holds_aborted: u64,
    /// Committed transactions undone by a compensating abort.
    pub commits_undone: u64,
    /// Holds released by TTL expiry.
    pub expired: u64,
    /// Duplicate `Hold` deliveries answered from the cache (would each have
    /// leaked a hold's worth of capacity before idempotency).
    pub duplicate_holds: u64,
    /// Duplicate `Commit` deliveries answered `AlreadyCommitted`.
    pub duplicate_commits: u64,
    /// Crash/restart cycles injected.
    pub crashes: u64,
    /// Live holds lost to a crash (volatile state).
    pub holds_lost: u64,
}

struct HoldState {
    job: JobId,
    servers: Vec<ServerId>,
    deadline: Instant,
}

struct CommittedState {
    job: JobId,
    servers: Vec<ServerId>,
}

/// Terminal transaction outcomes remembered in the dedup cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Terminal {
    Aborted,
    Expired,
}

struct Site {
    id: SiteId,
    sched: CoAllocScheduler,
    holds: HashMap<TxnId, HoldState>,
    /// Committed transactions (kept so a duplicate Hold/Commit can be
    /// answered from cache and a compensating Abort can undo them).
    committed: HashMap<TxnId, CommittedState>,
    /// Outcome cache for finished transactions, with the instant they
    /// finished (entries older than [`OUTCOME_RETENTION`] are pruned).
    finished: HashMap<TxnId, (Terminal, Instant)>,
    stats: SiteStats,
}

impl Site {
    /// Release TTL-expired holds and prune stale outcome-cache entries.
    fn sweep_expired(&mut self) {
        let now = Instant::now();
        let dead: Vec<TxnId> = self
            .holds
            .iter()
            .filter(|(_, h)| h.deadline <= now)
            .map(|(&t, _)| t)
            .collect();
        for txn in dead {
            if let Some(hold) = self.holds.remove(&txn) {
                // The backing job must be live while the hold lives. If a
                // protocol bug ever violates that, skip the release rather
                // than panicking the site thread out from under every
                // transaction it still serves.
                if let Err(e) = self.sched.release(hold.job) {
                    debug_assert!(false, "expired hold {txn:?} had no backing job: {e}");
                    continue;
                }
                obs_event!("site.expired", "txn" => txn.0, "site" => self.id.0);
                self.finish(txn, Terminal::Expired, now);
                self.stats.expired += 1;
            }
        }
        if !self.finished.is_empty() {
            self.finished
                .retain(|_, (_, at)| now.duration_since(*at) < OUTCOME_RETENTION);
        }
    }

    /// Record a terminal outcome in the dedup cache.
    fn finish(&mut self, txn: TxnId, how: Terminal, at: Instant) {
        self.finished.entry(txn).or_insert((how, at));
    }

    fn handle(&mut self, req: SiteRequest) -> Option<SiteReply> {
        self.sweep_expired();
        match req {
            SiteRequest::Hold {
                txn,
                seq: _,
                start,
                duration,
                servers,
                ttl,
            } => Some(self.handle_hold(txn, start, duration, servers, ttl)),
            SiteRequest::Commit { txn, seq: _ } => {
                let outcome = if let Some(hold) = self.holds.remove(&txn) {
                    self.committed.insert(
                        txn,
                        CommittedState {
                            job: hold.job,
                            servers: hold.servers,
                        },
                    );
                    self.stats.commits += 1;
                    obs_event!("site.commit", "txn" => txn.0, "site" => self.id.0);
                    CommitOutcome::Committed
                } else if self.committed.contains_key(&txn) {
                    self.stats.duplicate_commits += 1;
                    CommitOutcome::AlreadyCommitted
                } else {
                    // Expired, aborted, or never held here. Record the
                    // outcome so a reordered late Hold cannot resurrect the
                    // transaction after the coordinator compensates.
                    obs_event!("site.commit_expired", "txn" => txn.0, "site" => self.id.0);
                    self.finish(txn, Terminal::Expired, Instant::now());
                    CommitOutcome::Expired
                };
                Some(SiteReply::CommitResult {
                    txn,
                    site: self.id,
                    outcome,
                })
            }
            SiteRequest::Abort { txn, seq: _ } => {
                self.stats.aborts += 1;
                if let Some(hold) = self.holds.remove(&txn) {
                    if let Err(e) = self.sched.release(hold.job) {
                        debug_assert!(false, "aborted hold {txn:?} had no backing job: {e}");
                    } else {
                        self.stats.holds_aborted += 1;
                    }
                } else if let Some(c) = self.committed.remove(&txn) {
                    // Compensation: undo an already committed transaction.
                    let _ = self.sched.release(c.job);
                    self.stats.commits_undone += 1;
                }
                obs_event!("site.abort", "txn" => txn.0, "site" => self.id.0);
                self.finish(txn, Terminal::Aborted, Instant::now());
                Some(SiteReply::Aborted { txn, site: self.id })
            }
            SiteRequest::Query { start, duration } => {
                let available = self.sched.range_count(start, start + duration) as u32;
                Some(SiteReply::QueryResult {
                    site: self.id,
                    available,
                })
            }
            SiteRequest::Tick { now } => {
                self.sched.advance_to(now);
                Some(SiteReply::Ticked { site: self.id })
            }
            SiteRequest::Crash => {
                // Volatile state loss: live holds and the outcome cache are
                // gone; committed transactions are durable. Restart recovery
                // releases the scheduler jobs that backed the lost holds
                // (in a real deployment: redo-log replay drops uncommitted
                // reservations).
                let lost: Vec<HoldState> = self.holds.drain().map(|(_, h)| h).collect();
                obs_event!("site.crash", "site" => self.id.0, "holds_lost" => lost.len());
                for hold in lost {
                    let _ = self.sched.release(hold.job);
                    self.stats.holds_lost += 1;
                }
                self.finished.clear();
                self.stats.crashes += 1;
                Some(SiteReply::Crashed { site: self.id })
            }
            SiteRequest::Shutdown => None,
        }
    }

    fn handle_hold(
        &mut self,
        txn: TxnId,
        start: Time,
        duration: Dur,
        servers: u32,
        ttl: Duration,
    ) -> SiteReply {
        // Idempotency: a re-delivered Hold must not reserve a second time —
        // that would orphan the first reservation's capacity forever (the
        // coordinator only knows one job per (txn, site)). Answer from the
        // live-hold table or the committed table instead.
        if let Some(hold) = self.holds.get_mut(&txn) {
            hold.deadline = Instant::now() + ttl;
            self.stats.duplicate_holds += 1;
            return SiteReply::HoldGranted {
                txn,
                site: self.id,
                job: hold.job,
                servers: hold.servers.clone(),
            };
        }
        if let Some(c) = self.committed.get(&txn) {
            self.stats.duplicate_holds += 1;
            return SiteReply::HoldGranted {
                txn,
                site: self.id,
                job: c.job,
                servers: c.servers.clone(),
            };
        }
        if self.finished.contains_key(&txn) {
            // The transaction already ended here (aborted or expired); a
            // late duplicate must not re-acquire capacity the coordinator
            // will never learn about.
            self.stats.holds_denied += 1;
            return SiteReply::HoldDenied {
                txn,
                site: self.id,
                available: 0,
            };
        }
        let end = start + duration;
        let hits = self.sched.range_search(start, end);
        if (hits.len() as u32) < servers {
            self.stats.holds_denied += 1;
            obs_event!(
                "site.hold_denied",
                "txn" => txn.0,
                "site" => self.id.0,
                "available" => hits.len()
            );
            return SiteReply::HoldDenied {
                txn,
                site: self.id,
                available: hits.len() as u32,
            };
        }
        let pick: Vec<PeriodId> = hits
            .iter()
            .take(servers as usize)
            .map(|h| h.period.id)
            .collect();
        match self.sched.commit_selection(&pick, start, end) {
            Ok(grant) => {
                self.holds.insert(
                    txn,
                    HoldState {
                        job: grant.job,
                        servers: grant.servers.clone(),
                        deadline: Instant::now() + ttl,
                    },
                );
                self.stats.holds_granted += 1;
                obs_event!(
                    "site.hold_granted",
                    "txn" => txn.0,
                    "site" => self.id.0,
                    "servers" => grant.servers.len()
                );
                SiteReply::HoldGranted {
                    txn,
                    site: self.id,
                    job: grant.job,
                    servers: grant.servers,
                }
            }
            Err(_) => {
                self.stats.holds_denied += 1;
                SiteReply::HoldDenied {
                    txn,
                    site: self.id,
                    available: 0,
                }
            }
        }
    }
}

impl SiteHandle {
    /// Spawn a site thread with `servers` local servers and the given
    /// scheduler configuration.
    pub fn spawn(id: SiteId, servers: u32, cfg: SchedulerConfig) -> SiteHandle {
        let (tx, rx): (Sender<Envelope>, Receiver<Envelope>) = unbounded();
        let join = std::thread::Builder::new()
            .name(format!("site-{}", id.0))
            .spawn(move || {
                let mut site = Site {
                    id,
                    sched: CoAllocScheduler::new(servers, cfg),
                    holds: HashMap::new(),
                    committed: HashMap::new(),
                    finished: HashMap::new(),
                    stats: SiteStats::default(),
                };
                // Periodic wake-up so TTL expiry cannot be starved by an
                // idle channel.
                loop {
                    match rx.recv_timeout(Duration::from_millis(50)) {
                        Ok(env) => match site.handle(env.request) {
                            Some(reply) => {
                                let _ = env.reply_to.send(reply);
                            }
                            None => break, // Shutdown
                        },
                        Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                            site.sweep_expired();
                        }
                        Err(crossbeam::channel::RecvTimeoutError::Disconnected) => break,
                    }
                }
                site.sweep_expired();
                site.sched.check_consistency();
                site.stats
            })
            .expect("spawn site thread");
        SiteHandle {
            id,
            servers,
            tx,
            join: Some(join),
        }
    }

    /// The channel to send [`Envelope`]s on (used by networks/relays).
    pub fn sender(&self) -> Sender<Envelope> {
        self.tx.clone()
    }

    /// An owned coordinator-side address for this site (direct, reliable
    /// channel — interpose a [`crate::network::FlakyLink`] for faults).
    pub fn endpoint(&self) -> crate::coordinator::SiteEndpoint {
        crate::coordinator::SiteEndpoint::new(self.id, self.tx.clone())
    }

    /// Send a request and synchronously await the reply (no timeout; prefer
    /// [`Self::call_timeout`] in protocol code).
    pub fn call(&self, request: SiteRequest) -> SiteReply {
        self.call_timeout(request, Duration::from_secs(10))
            .expect("site reply within 10s")
    }

    /// Send a request and await the reply with a timeout.
    pub fn call_timeout(&self, request: SiteRequest, timeout: Duration) -> Option<SiteReply> {
        let (reply_tx, reply_rx) = unbounded();
        self.tx
            .send(Envelope {
                request,
                reply_to: reply_tx,
            })
            .ok()?;
        reply_rx.recv_timeout(timeout).ok()
    }

    /// Stop the site thread and collect its statistics.
    pub fn shutdown(mut self) -> SiteStats {
        let (reply_tx, _keep) = unbounded();
        let _ = self.tx.send(Envelope {
            request: SiteRequest::Shutdown,
            reply_to: reply_tx,
        });
        self.join
            .take()
            .expect("not yet joined")
            .join()
            .expect("site thread panicked")
    }
}

impl Drop for SiteHandle {
    fn drop(&mut self) {
        if let Some(join) = self.join.take() {
            let (reply_tx, _keep) = unbounded();
            let _ = self.tx.send(Envelope {
                request: SiteRequest::Shutdown,
                reply_to: reply_tx,
            });
            let _ = join.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SchedulerConfig {
        SchedulerConfig::builder()
            .tau(Dur(60))
            .horizon(Dur(3600))
            .delta_t(Dur(60))
            .build()
    }

    fn hold(txn: u64, start: i64, dur: i64, servers: u32, ttl_ms: u64) -> SiteRequest {
        SiteRequest::Hold {
            txn: TxnId(txn),
            seq: 0,
            start: Time(start),
            duration: Dur(dur),
            servers,
            ttl: Duration::from_millis(ttl_ms),
        }
    }

    #[test]
    fn hold_commit_roundtrip() {
        let site = SiteHandle::spawn(SiteId(0), 4, cfg());
        let reply = site.call(hold(1, 0, 600, 2, 5000));
        assert!(matches!(
            reply,
            SiteReply::HoldGranted { txn: TxnId(1), .. }
        ));
        let reply = site.call(SiteRequest::Commit {
            txn: TxnId(1),
            seq: 0,
        });
        assert_eq!(
            reply,
            SiteReply::CommitResult {
                txn: TxnId(1),
                site: SiteId(0),
                outcome: CommitOutcome::Committed
            }
        );
        // The window is consumed.
        let reply = site.call(SiteRequest::Query {
            start: Time(0),
            duration: Dur(600),
        });
        assert_eq!(
            reply,
            SiteReply::QueryResult {
                site: SiteId(0),
                available: 2
            }
        );
        let stats = site.shutdown();
        assert_eq!(stats.holds_granted, 1);
        assert_eq!(stats.commits, 1);
    }

    #[test]
    fn hold_abort_releases_capacity() {
        let site = SiteHandle::spawn(SiteId(0), 2, cfg());
        let r = site.call(hold(5, 0, 600, 2, 5000));
        assert!(matches!(r, SiteReply::HoldGranted { .. }));
        site.call(SiteRequest::Abort {
            txn: TxnId(5),
            seq: 0,
        });
        let r = site.call(SiteRequest::Query {
            start: Time(0),
            duration: Dur(600),
        });
        assert_eq!(
            r,
            SiteReply::QueryResult {
                site: SiteId(0),
                available: 2
            }
        );
        // Abort is idempotent.
        let r = site.call(SiteRequest::Abort {
            txn: TxnId(5),
            seq: 1,
        });
        assert_eq!(
            r,
            SiteReply::Aborted {
                txn: TxnId(5),
                site: SiteId(0)
            }
        );
    }

    #[test]
    fn insufficient_capacity_denied_with_count() {
        let site = SiteHandle::spawn(SiteId(3), 2, cfg());
        let r = site.call(hold(9, 0, 600, 3, 5000));
        assert_eq!(
            r,
            SiteReply::HoldDenied {
                txn: TxnId(9),
                site: SiteId(3),
                available: 2
            }
        );
    }

    #[test]
    fn expired_hold_is_swept_and_commit_fails() {
        let site = SiteHandle::spawn(SiteId(0), 2, cfg());
        site.call(hold(1, 0, 600, 2, 30));
        std::thread::sleep(Duration::from_millis(120));
        // Capacity is back...
        let r = site.call(SiteRequest::Query {
            start: Time(0),
            duration: Dur(600),
        });
        assert_eq!(
            r,
            SiteReply::QueryResult {
                site: SiteId(0),
                available: 2
            }
        );
        // ...and a late commit reports expiry, not success.
        let r = site.call(SiteRequest::Commit {
            txn: TxnId(1),
            seq: 1,
        });
        assert_eq!(
            r,
            SiteReply::CommitResult {
                txn: TxnId(1),
                site: SiteId(0),
                outcome: CommitOutcome::Expired
            }
        );
        let stats = site.shutdown();
        assert_eq!(stats.expired, 1);
    }

    #[test]
    fn compensating_abort_undoes_commit() {
        let site = SiteHandle::spawn(SiteId(0), 2, cfg());
        site.call(hold(2, 60, 300, 1, 5000));
        site.call(SiteRequest::Commit {
            txn: TxnId(2),
            seq: 0,
        });
        site.call(SiteRequest::Abort {
            txn: TxnId(2),
            seq: 0,
        });
        let r = site.call(SiteRequest::Query {
            start: Time(60),
            duration: Dur(300),
        });
        assert_eq!(
            r,
            SiteReply::QueryResult {
                site: SiteId(0),
                available: 2
            }
        );
    }

    #[test]
    fn tick_unlocks_far_future_windows() {
        // Horizon 3600s: a window at t=5000 is initially unreachable; after
        // ticking the clock to 2000 the horizon covers it.
        let site = SiteHandle::spawn(SiteId(2), 2, cfg());
        let far_hold = hold(11, 5000, 300, 1, 5000);
        let r = site.call(far_hold.clone());
        assert!(
            matches!(r, SiteReply::HoldDenied { available: 0, .. }),
            "{r:?}"
        );
        site.call(SiteRequest::Tick { now: Time(2000) });
        let r = site.call(far_hold);
        assert!(matches!(r, SiteReply::HoldGranted { .. }), "{r:?}");
        let stats = site.shutdown();
        assert_eq!(stats.holds_granted, 1);
        assert_eq!(stats.holds_denied, 1);
    }

    #[test]
    fn query_reflects_live_holds() {
        let site = SiteHandle::spawn(SiteId(0), 3, cfg());
        site.call(hold(21, 0, 600, 2, 5000));
        // Uncommitted holds already consume capacity (that is the point of
        // a hold).
        let r = site.call(SiteRequest::Query {
            start: Time(0),
            duration: Dur(600),
        });
        assert_eq!(
            r,
            SiteReply::QueryResult {
                site: SiteId(0),
                available: 1
            }
        );
    }

    /// Regression (hold-leak bug): a duplicated `Hold` used to call
    /// `holds.insert` again, overwriting the prior `HoldState` and leaking
    /// its backing job's capacity forever. It must return the existing
    /// grant instead.
    #[test]
    fn duplicate_hold_returns_existing_grant_without_leak() {
        let site = SiteHandle::spawn(SiteId(0), 2, cfg());
        let first = site.call(hold(7, 0, 600, 1, 5000));
        let SiteReply::HoldGranted { job, servers, .. } = first.clone() else {
            panic!("expected grant, got {first:?}");
        };
        // Same txn re-delivered (different seq, as a retry would send).
        let second = site.call(SiteRequest::Hold {
            txn: TxnId(7),
            seq: 1,
            start: Time(0),
            duration: Dur(600),
            servers: 1,
            ttl: Duration::from_secs(5),
        });
        assert_eq!(
            second,
            SiteReply::HoldGranted {
                txn: TxnId(7),
                site: SiteId(0),
                job,
                servers: servers.clone()
            },
            "duplicate Hold must return the original grant"
        );
        // Only one server's capacity is consumed...
        let q = site.call(SiteRequest::Query {
            start: Time(0),
            duration: Dur(600),
        });
        assert_eq!(
            q,
            SiteReply::QueryResult {
                site: SiteId(0),
                available: 1
            }
        );
        // ...and one abort frees everything (no second, orphaned hold).
        site.call(SiteRequest::Abort {
            txn: TxnId(7),
            seq: 0,
        });
        let q = site.call(SiteRequest::Query {
            start: Time(0),
            duration: Dur(600),
        });
        assert_eq!(
            q,
            SiteReply::QueryResult {
                site: SiteId(0),
                available: 2
            }
        );
        let stats = site.shutdown();
        assert_eq!(stats.holds_granted, 1, "one fresh grant");
        assert_eq!(stats.duplicate_holds, 1, "one cached re-grant");
    }

    /// Regression (duplicate-commit misclassification): a retried commit of
    /// a committed txn used to report `ok: false`, indistinguishable from
    /// expiry, so coordinators compensated successful transactions.
    #[test]
    fn duplicate_commit_reports_already_committed() {
        let site = SiteHandle::spawn(SiteId(0), 2, cfg());
        site.call(hold(3, 0, 600, 1, 5000));
        let first = site.call(SiteRequest::Commit {
            txn: TxnId(3),
            seq: 0,
        });
        assert_eq!(
            first,
            SiteReply::CommitResult {
                txn: TxnId(3),
                site: SiteId(0),
                outcome: CommitOutcome::Committed
            }
        );
        let dup = site.call(SiteRequest::Commit {
            txn: TxnId(3),
            seq: 1,
        });
        assert_eq!(
            dup,
            SiteReply::CommitResult {
                txn: TxnId(3),
                site: SiteId(0),
                outcome: CommitOutcome::AlreadyCommitted
            },
            "duplicate commit is success, not expiry"
        );
        assert!(CommitOutcome::AlreadyCommitted.is_success());
        let stats = site.shutdown();
        assert_eq!(stats.commits, 1, "the txn committed exactly once");
        assert_eq!(stats.duplicate_commits, 1);
    }

    /// A duplicate `Hold` arriving after the txn committed also answers from
    /// cache instead of double-booking.
    #[test]
    fn hold_after_commit_returns_cached_grant() {
        let site = SiteHandle::spawn(SiteId(0), 2, cfg());
        site.call(hold(4, 0, 600, 1, 5000));
        site.call(SiteRequest::Commit {
            txn: TxnId(4),
            seq: 0,
        });
        let dup = site.call(hold(4, 0, 600, 1, 5000));
        assert!(
            matches!(dup, SiteReply::HoldGranted { txn: TxnId(4), .. }),
            "{dup:?}"
        );
        let q = site.call(SiteRequest::Query {
            start: Time(0),
            duration: Dur(600),
        });
        assert_eq!(
            q,
            SiteReply::QueryResult {
                site: SiteId(0),
                available: 1
            },
            "no double booking"
        );
    }

    /// A reordered `Hold` that arrives after the transaction was aborted is
    /// denied — it must not resurrect capacity the coordinator gave up on.
    #[test]
    fn hold_after_abort_is_denied() {
        let site = SiteHandle::spawn(SiteId(0), 2, cfg());
        site.call(SiteRequest::Abort {
            txn: TxnId(9),
            seq: 0,
        });
        let r = site.call(hold(9, 0, 600, 1, 5000));
        assert_eq!(
            r,
            SiteReply::HoldDenied {
                txn: TxnId(9),
                site: SiteId(0),
                available: 0
            }
        );
        let q = site.call(SiteRequest::Query {
            start: Time(0),
            duration: Dur(600),
        });
        assert_eq!(
            q,
            SiteReply::QueryResult {
                site: SiteId(0),
                available: 2
            },
            "nothing held"
        );
    }

    /// Crash/restart loses volatile state: live holds are released (capacity
    /// returns), committed transactions survive.
    #[test]
    fn crash_loses_holds_keeps_commits() {
        let site = SiteHandle::spawn(SiteId(0), 3, cfg());
        site.call(hold(1, 0, 600, 1, 60_000));
        site.call(SiteRequest::Commit {
            txn: TxnId(1),
            seq: 0,
        });
        site.call(hold(2, 0, 600, 1, 60_000));
        let r = site.call(SiteRequest::Crash);
        assert_eq!(r, SiteReply::Crashed { site: SiteId(0) });
        // The uncommitted hold's capacity is back; the commit stays.
        let q = site.call(SiteRequest::Query {
            start: Time(0),
            duration: Dur(600),
        });
        assert_eq!(
            q,
            SiteReply::QueryResult {
                site: SiteId(0),
                available: 2
            }
        );
        // Committing the lost hold now reports expiry (state loss is an
        // expiry from the coordinator's point of view).
        let c = site.call(SiteRequest::Commit {
            txn: TxnId(2),
            seq: 1,
        });
        assert_eq!(
            c,
            SiteReply::CommitResult {
                txn: TxnId(2),
                site: SiteId(0),
                outcome: CommitOutcome::Expired
            }
        );
        let stats = site.shutdown();
        assert_eq!(stats.crashes, 1);
        assert_eq!(stats.holds_lost, 1);
        assert_eq!(stats.commits, 1);
    }

    #[test]
    fn tick_advances_clock() {
        let site = SiteHandle::spawn(SiteId(1), 1, cfg());
        let r = site.call(SiteRequest::Tick { now: Time(120) });
        assert_eq!(r, SiteReply::Ticked { site: SiteId(1) });
        // Window in the past is no longer available.
        let r = site.call(SiteRequest::Query {
            start: Time(0),
            duration: Dur(60),
        });
        assert_eq!(
            r,
            SiteReply::QueryResult {
                site: SiteId(1),
                available: 0
            }
        );
    }
}
