//! Protocol messages for atomic cross-site co-allocation.
//!
//! The paper notes that multi-site co-allocation work (DUROC et al.) focused
//! on "the administrative aspects resulting from having resources
//! distributed across multiple sites". This crate supplies that missing
//! substrate: a hold/commit (two-phase) protocol in which each site runs its
//! own slotted-tree scheduler and a coordinator acquires *tentative* holds
//! for one fixed time window on every site, then commits them atomically —
//! or aborts and retries the window shifted by `Delta_t`, lifting the
//! paper's retry loop to the multi-site level.

use coalloc_core::prelude::{Dur, JobId, ServerId, Time};
use crossbeam::channel::Sender;
use std::time::Duration;

/// Identifies one site (ordering defines the global lock order that makes
/// concurrent coordinators deadlock-free).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SiteId(pub u32);

/// Identifies one distributed transaction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TxnId(pub u64);

/// A request sent to a site, paired with the channel for its reply.
#[derive(Clone, Debug)]
pub struct Envelope {
    /// The request body.
    pub request: SiteRequest,
    /// Where the site sends the [`SiteReply`].
    pub reply_to: Sender<SiteReply>,
}

/// Requests a site can serve.
///
/// `Hold`, `Commit` and `Abort` are **idempotent**: the site keeps a per-txn
/// outcome cache, so at-least-once delivery (retries, duplicating links) is
/// safe. The `seq` field identifies the individual RPC attempt — sites treat
/// re-deliveries of the same `txn` identically regardless of `seq`; it exists
/// for tracing and lets fault injectors distinguish copies of a call.
#[derive(Clone, Debug)]
pub enum SiteRequest {
    /// Tentatively reserve `servers` servers for exactly `[start, start +
    /// duration)`. The hold auto-expires after `ttl` (wall-clock) unless
    /// committed. Re-delivery for a held or committed `txn` returns the
    /// existing grant instead of reserving again.
    Hold {
        /// Transaction this hold belongs to.
        txn: TxnId,
        /// Per-attempt sequence number (tracing only; no protocol effect).
        seq: u64,
        /// Window start (virtual time).
        start: Time,
        /// Window length.
        duration: Dur,
        /// Servers required at this site.
        servers: u32,
        /// Wall-clock time-to-live of the tentative hold.
        ttl: Duration,
    },
    /// Make the hold of `txn` permanent. Re-delivery for an already
    /// committed `txn` reports [`CommitOutcome::AlreadyCommitted`] (success)
    /// rather than being confused with an expired hold.
    Commit {
        /// Transaction to commit.
        txn: TxnId,
        /// Per-attempt sequence number (tracing only; no protocol effect).
        seq: u64,
    },
    /// Drop the hold of `txn` (idempotent; also undoes an already committed
    /// transaction, which serves as the compensation path).
    Abort {
        /// Transaction to abort.
        txn: TxnId,
        /// Per-attempt sequence number (tracing only; no protocol effect).
        seq: u64,
    },
    /// Simulate a crash/restart of the site with loss of **volatile** state:
    /// live holds are released and the idempotency/outcome cache is cleared,
    /// while committed transactions (durable state) survive. Fault-injection
    /// aid for chaos tests; real deployments would reach the same state by
    /// restarting a site process whose commits are journaled.
    Crash,
    /// How many servers are free for the whole window? (read-only)
    Query {
        /// Window start.
        start: Time,
        /// Window length.
        duration: Dur,
    },
    /// Advance the site's virtual clock.
    Tick {
        /// The new clock value.
        now: Time,
    },
    /// Stop the site thread.
    Shutdown,
}

/// Replies a site produces.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SiteReply {
    /// The hold was granted on these servers.
    HoldGranted {
        /// The transaction.
        txn: TxnId,
        /// The granting site.
        site: SiteId,
        /// Site-local job backing the hold.
        job: JobId,
        /// Servers reserved.
        servers: Vec<ServerId>,
    },
    /// The hold was denied.
    HoldDenied {
        /// The transaction.
        txn: TxnId,
        /// The denying site.
        site: SiteId,
        /// Servers actually available for the window.
        available: u32,
    },
    /// Commit outcome (three-valued — see [`CommitOutcome`]).
    CommitResult {
        /// The transaction.
        txn: TxnId,
        /// The site.
        site: SiteId,
        /// What the commit did.
        outcome: CommitOutcome,
    },
    /// Abort acknowledged (always succeeds; idempotent).
    Aborted {
        /// The transaction.
        txn: TxnId,
        /// The site.
        site: SiteId,
    },
    /// Free-server count for a queried window.
    QueryResult {
        /// The site.
        site: SiteId,
        /// Servers free for the whole window.
        available: u32,
    },
    /// Clock advanced.
    Ticked {
        /// The site.
        site: SiteId,
    },
    /// Crash/restart processed; volatile state is gone.
    Crashed {
        /// The site.
        site: SiteId,
    },
}

/// Result of a `Commit`, distinguishing a duplicate delivery (success) from
/// a hold that expired before the commit arrived (failure). The distinction
/// is what makes commit retries safe: with a boolean, a re-delivered commit
/// of a committed transaction looked like an expiry and triggered a
/// compensation that undid a *successful* transaction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CommitOutcome {
    /// The hold was live and is now permanent.
    Committed,
    /// This transaction was already committed here — a retried or duplicated
    /// commit. The transaction is in force; treat as success.
    AlreadyCommitted,
    /// No live hold and no committed record: the hold expired (or the
    /// transaction is unknown/aborted). Nothing was committed.
    Expired,
}

impl CommitOutcome {
    /// `true` when the transaction is committed at the site (first delivery
    /// or duplicate).
    pub fn is_success(self) -> bool {
        matches!(
            self,
            CommitOutcome::Committed | CommitOutcome::AlreadyCommitted
        )
    }
}

impl SiteRequest {
    /// Stable lowercase name of the request kind (tracing label).
    pub fn kind(&self) -> &'static str {
        match self {
            SiteRequest::Hold { .. } => "hold",
            SiteRequest::Commit { .. } => "commit",
            SiteRequest::Abort { .. } => "abort",
            SiteRequest::Crash => "crash",
            SiteRequest::Query { .. } => "query",
            SiteRequest::Tick { .. } => "tick",
            SiteRequest::Shutdown => "shutdown",
        }
    }

    /// The transaction this request refers to, if any.
    pub fn txn(&self) -> Option<TxnId> {
        match self {
            SiteRequest::Hold { txn, .. }
            | SiteRequest::Commit { txn, .. }
            | SiteRequest::Abort { txn, .. } => Some(*txn),
            _ => None,
        }
    }
}

impl SiteReply {
    /// The transaction this reply refers to, if any.
    pub fn txn(&self) -> Option<TxnId> {
        match self {
            SiteReply::HoldGranted { txn, .. }
            | SiteReply::HoldDenied { txn, .. }
            | SiteReply::CommitResult { txn, .. }
            | SiteReply::Aborted { txn, .. } => Some(*txn),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn txn_extraction() {
        let r = SiteReply::Aborted {
            txn: TxnId(7),
            site: SiteId(1),
        };
        assert_eq!(r.txn(), Some(TxnId(7)));
        let q = SiteReply::QueryResult {
            site: SiteId(1),
            available: 3,
        };
        assert_eq!(q.txn(), None);
    }

    #[test]
    fn site_ids_order() {
        let mut ids = vec![SiteId(3), SiteId(1), SiteId(2)];
        ids.sort();
        assert_eq!(ids, vec![SiteId(1), SiteId(2), SiteId(3)]);
    }
}
