//! The co-allocation coordinator: acquires holds on every involved site in
//! global site order (deadlock freedom across concurrent coordinators),
//! then commits all-or-nothing, retrying the whole window shifted by
//! `Delta_t` when any site denies — the paper's retry loop lifted to the
//! multi-site level.
//!
//! ## Fault tolerance
//!
//! Every RPC is retried up to [`CoordinatorConfig::rpc_retries`] times with
//! exponential backoff plus jitter, which is safe because sites answer
//! `Hold`/`Commit`/`Abort` idempotently (see [`crate::site`]). In the commit
//! phase a lost reply therefore no longer forces an immediate compensation:
//! the coordinator re-sends the commit, and a duplicate that reaches a
//! committed site reports [`CommitOutcome::AlreadyCommitted`] — success.
//! Only when a site reports [`CommitOutcome::Expired`] (the hold's TTL ran
//! out) or stays silent through all retries does the coordinator compensate,
//! aborting the transaction at *every* site (aborts undo commits too, so
//! partially committed transactions are rolled back rather than leaked).

use crate::messages::{CommitOutcome, Envelope, SiteId, SiteReply, SiteRequest, TxnId};
use crate::site::SiteHandle;
use coalloc_core::prelude::{Dur, JobId, ServerId, Time};
use crossbeam::channel::{unbounded, Sender};
use obs::{obs_event, obs_span, LazyCounter, LazyHistogram};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Global transaction-id source (unique across coordinators in-process).
static NEXT_TXN: AtomicU64 = AtomicU64::new(1);

// Protocol metrics, aggregated over every coordinator in the process (each
// coordinator also keeps its own [`CoordinatorStats`]).
static RPC_ATTEMPTS: LazyCounter = LazyCounter::new("rpc_attempts_total");
static RPC_RETRIES: LazyCounter = LazyCounter::new("rpc_retries_total");
static RPC_TIMEOUTS: LazyCounter = LazyCounter::new("rpc_timeouts_total");
static RPC_BACKOFF_NS: LazyHistogram = LazyHistogram::new("rpc_backoff_ns");
static COORD_GRANTS: LazyCounter = LazyCounter::new("coord_grants_total");
static COORD_FAILURES: LazyCounter = LazyCounter::new("coord_failures_total");
static COORD_COMPENSATIONS: LazyCounter = LazyCounter::new("coord_compensations_total");
static COORD_WINDOW_ATTEMPTS: LazyHistogram = LazyHistogram::new("coord_window_attempts");

/// A coordinator's address for one site: the site's id plus a channel the
/// site (or a fault-injecting relay in front of it — see
/// [`crate::network::FlakyLink`]) receives [`Envelope`]s on.
///
/// Owning endpoints instead of borrowing [`SiteHandle`]s lets coordinators
/// live on their own threads and route through per-coordinator links.
#[derive(Clone, Debug)]
pub struct SiteEndpoint {
    /// The site this endpoint reaches.
    pub id: SiteId,
    tx: Sender<Envelope>,
}

impl SiteEndpoint {
    /// Build an endpoint from a site id and the channel leading to it.
    pub fn new(id: SiteId, tx: Sender<Envelope>) -> SiteEndpoint {
        SiteEndpoint { id, tx }
    }

    /// One RPC attempt: send the request with a fresh reply channel and wait
    /// up to `timeout`. A stale reply to an earlier attempt lands on that
    /// attempt's dropped receiver, so it can never be confused with this
    /// one's.
    pub fn call_timeout(&self, request: SiteRequest, timeout: Duration) -> Option<SiteReply> {
        let (reply_tx, reply_rx) = unbounded();
        self.tx
            .send(Envelope {
                request,
                reply_to: reply_tx,
            })
            .ok()?;
        reply_rx.recv_timeout(timeout).ok()
    }
}

/// What a coordinator asks for: `servers_per_site[s]` servers at site `s`,
/// all simultaneously for `duration`, starting no earlier than
/// `earliest_start`.
#[derive(Clone, Debug)]
pub struct MultiRequest {
    /// Per-site spatial demand. Sites not listed are not involved.
    pub parts: BTreeMap<SiteId, u32>,
    /// Earliest acceptable start.
    pub earliest_start: Time,
    /// Window length.
    pub duration: Dur,
}

/// A committed cross-site co-allocation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MultiGrant {
    /// The distributed transaction id.
    pub txn: TxnId,
    /// The common start time across all sites.
    pub start: Time,
    /// The common end time.
    pub end: Time,
    /// Per-site local job and servers.
    pub parts: Vec<(SiteId, JobId, Vec<ServerId>)>,
    /// Window attempts used (1 = first window).
    pub attempts: u32,
}

/// Why a co-allocation failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MultiSiteError {
    /// A named site is not registered with the coordinator.
    UnknownSite(SiteId),
    /// All `r_max` windows were tried without success.
    Exhausted {
        /// Window attempts made.
        attempts: u32,
    },
    /// A site failed to answer within the protocol timeout (after all
    /// retries). Holds already acquired were aborted; if this happened in
    /// the commit phase, every site was sent a compensating abort.
    SiteUnresponsive(SiteId),
    /// A commit arrived after the hold's TTL on some site; all other parts
    /// were compensated (undone), so the system is consistent but the
    /// transaction did not happen.
    CommitExpired(SiteId),
}

impl std::fmt::Display for MultiSiteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MultiSiteError::UnknownSite(s) => write!(f, "unknown site {s:?}"),
            MultiSiteError::Exhausted { attempts } => {
                write!(f, "no common window found in {attempts} attempts")
            }
            MultiSiteError::SiteUnresponsive(s) => {
                write!(f, "site {s:?} did not reply in time (all retries)")
            }
            MultiSiteError::CommitExpired(s) => {
                write!(f, "hold expired before commit at site {s:?}")
            }
        }
    }
}

impl std::error::Error for MultiSiteError {}

/// Protocol tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct CoordinatorConfig {
    /// Per-attempt reply timeout.
    pub rpc_timeout: Duration,
    /// Extra delivery attempts after the first times out (0 = old
    /// fail-fast behaviour).
    pub rpc_retries: u32,
    /// Base of the exponential backoff between attempts: attempt `k`
    /// (0-based, counting retries) waits `retry_base * 2^k` plus a uniform
    /// jitter in `[0, retry_base)` before re-sending.
    pub retry_base: Duration,
    /// Hold TTL granted to sites (must comfortably exceed the time to
    /// acquire the remaining holds and send commits, including retries).
    pub hold_ttl: Duration,
    /// Start-time increment between window attempts (`Delta_t`).
    pub delta_t: Dur,
    /// Maximum window attempts (`R_max`).
    pub r_max: u32,
    /// Seed for the backoff jitter (desynchronises coordinators that start
    /// retrying at the same moment).
    pub seed: u64,
}

impl Default for CoordinatorConfig {
    fn default() -> Self {
        CoordinatorConfig {
            rpc_timeout: Duration::from_secs(2),
            rpc_retries: 3,
            retry_base: Duration::from_millis(10),
            hold_ttl: Duration::from_secs(10),
            delta_t: Dur::from_mins(15),
            r_max: 32,
            seed: 0,
        }
    }
}

/// Statistics of one coordinator's lifetime.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CoordinatorStats {
    /// Successful co-allocations.
    pub granted: u64,
    /// Failed co-allocations.
    pub failed: u64,
    /// Hold-phase aborts issued (contention and denials).
    pub aborts: u64,
    /// Total window attempts.
    pub window_attempts: u64,
    /// RPC attempts beyond the first (timeouts that triggered a re-send).
    pub rpc_retries: u64,
    /// Commit-phase compensations: transactions undone at every site after
    /// an expired or unresolved commit.
    pub compensations: u64,
    /// Commits answered `AlreadyCommitted` — proof a retry was needed and
    /// the idempotent re-delivery saved the transaction.
    pub duplicate_commits: u64,
}

/// Coordinates atomic co-allocations across a set of sites.
pub struct Coordinator {
    sites: BTreeMap<SiteId, SiteEndpoint>,
    cfg: CoordinatorConfig,
    stats: CoordinatorStats,
    rng: SmallRng,
    /// Per-attempt sequence numbers (tracing; lets logs and fault injectors
    /// tell a retry from a link-duplicated copy of the same attempt).
    next_seq: u64,
}

impl Coordinator {
    /// Build a coordinator talking directly to `sites` (reliable channels).
    pub fn new(sites: &[SiteHandle], cfg: CoordinatorConfig) -> Coordinator {
        Self::from_endpoints(sites.iter().map(SiteHandle::endpoint), cfg)
    }

    /// Build a coordinator over explicit endpoints — e.g. channels that lead
    /// through [`crate::network::FlakyLink`]s.
    pub fn from_endpoints(
        endpoints: impl IntoIterator<Item = SiteEndpoint>,
        cfg: CoordinatorConfig,
    ) -> Coordinator {
        Coordinator {
            sites: endpoints.into_iter().map(|e| (e.id, e)).collect(),
            rng: SmallRng::seed_from_u64(cfg.seed ^ 0xC00D),
            cfg,
            stats: CoordinatorStats::default(),
            next_seq: 0,
        }
    }

    /// Lifetime statistics.
    pub fn stats(&self) -> &CoordinatorStats {
        &self.stats
    }

    /// Atomically co-allocate the request across its sites.
    ///
    /// Holds are acquired sequentially in ascending [`SiteId`] order — the
    /// global lock order that prevents deadlock (and livelock cycles)
    /// between concurrent coordinators. Any denial aborts the acquired
    /// prefix and retries the window `Delta_t` later.
    pub fn co_allocate(&mut self, req: &MultiRequest) -> Result<MultiGrant, MultiSiteError> {
        for site in req.parts.keys() {
            if !self.sites.contains_key(site) {
                return Err(MultiSiteError::UnknownSite(*site));
            }
        }
        let mut span = obs_span!(
            "coord.co_allocate",
            "sites" => req.parts.len(),
            "earliest_s" => req.earliest_start.secs(),
            "duration_s" => req.duration.secs().max(0) as u64
        );
        let mut attempts = 0u32;
        let mut start = req.earliest_start;
        let result = 'alloc: {
            while attempts < self.cfg.r_max {
                attempts += 1;
                self.stats.window_attempts += 1;
                let txn = TxnId(NEXT_TXN.fetch_add(1, Ordering::Relaxed));
                match self.try_window(txn, start, req) {
                    Ok(parts) => match self.commit_all(txn, &parts) {
                        Ok(()) => {
                            self.stats.granted += 1;
                            break 'alloc Ok(MultiGrant {
                                txn,
                                start,
                                end: start + req.duration,
                                parts,
                                attempts,
                            });
                        }
                        Err(e) => {
                            self.stats.failed += 1;
                            break 'alloc Err(e);
                        }
                    },
                    Err(HoldFailure::Unresponsive(site)) => {
                        self.stats.failed += 1;
                        break 'alloc Err(MultiSiteError::SiteUnresponsive(site));
                    }
                    Err(HoldFailure::Denied) => {
                        start += self.cfg.delta_t;
                    }
                }
            }
            self.stats.failed += 1;
            Err(MultiSiteError::Exhausted { attempts })
        };
        COORD_WINDOW_ATTEMPTS.observe(attempts as u64);
        match &result {
            Ok(grant) => {
                COORD_GRANTS.inc();
                if span.active() {
                    span.record("outcome", "granted");
                    span.record("txn", grant.txn.0);
                    span.record("attempts", attempts);
                    span.record("start_s", grant.start.secs());
                }
            }
            Err(e) => {
                COORD_FAILURES.inc();
                if span.active() {
                    span.record("outcome", "failed");
                    span.record("attempts", attempts);
                    span.record("error", format!("{e}"));
                }
            }
        }
        result
    }

    /// One RPC with bounded retries: up to `1 + rpc_retries` attempts, each
    /// with a fresh sequence number and reply channel, separated by
    /// exponential backoff plus jitter. Returns `None` only when every
    /// attempt timed out.
    fn call_retry(
        &mut self,
        site_id: SiteId,
        make: impl Fn(u64) -> SiteRequest,
    ) -> Option<SiteReply> {
        let endpoint = self.sites[&site_id].clone();
        for attempt in 0..=self.cfg.rpc_retries {
            if attempt > 0 {
                self.stats.rpc_retries += 1;
                RPC_RETRIES.inc();
                let base = self.cfg.retry_base.as_nanos() as u64;
                let backoff = base.saturating_mul(1u64 << (attempt - 1).min(20));
                let jitter = if base == 0 {
                    0
                } else {
                    self.rng.random_range(0..base)
                };
                RPC_BACKOFF_NS.observe(backoff + jitter);
                obs_event!(
                    "rpc.backoff",
                    "site" => site_id.0,
                    "attempt" => attempt,
                    "wait_ns" => backoff + jitter
                );
                std::thread::sleep(Duration::from_nanos(backoff + jitter));
            }
            let seq = self.next_seq;
            self.next_seq += 1;
            RPC_ATTEMPTS.inc();
            let request = make(seq);
            let mut span = obs_span!(
                "rpc.call",
                "site" => site_id.0,
                "kind" => request.kind(),
                "txn" => request.txn().map(|t| t.0).unwrap_or(0),
                "seq" => seq,
                "attempt" => attempt
            );
            if let Some(reply) = endpoint.call_timeout(request, self.cfg.rpc_timeout) {
                if span.active() {
                    span.record("outcome", "reply");
                }
                return Some(reply);
            }
            RPC_TIMEOUTS.inc();
            if span.active() {
                span.record("outcome", "timeout");
            }
        }
        None
    }

    /// Commit every part, retrying lost replies before compensating. On an
    /// `Expired` outcome or a site that stays silent through all retries the
    /// whole transaction is aborted at every site (commits included).
    fn commit_all(
        &mut self,
        txn: TxnId,
        parts: &[(SiteId, JobId, Vec<ServerId>)],
    ) -> Result<(), MultiSiteError> {
        for (site_id, _, _) in parts {
            let reply = self.call_retry(*site_id, |seq| SiteRequest::Commit { txn, seq });
            match reply {
                Some(SiteReply::CommitResult { outcome, .. }) if outcome.is_success() => {
                    if outcome == CommitOutcome::AlreadyCommitted {
                        self.stats.duplicate_commits += 1;
                    }
                    obs_event!(
                        "coord.commit_ok",
                        "txn" => txn.0,
                        "site" => site_id.0,
                        "duplicate" => outcome == CommitOutcome::AlreadyCommitted
                    );
                }
                Some(SiteReply::CommitResult { .. }) => {
                    // Expired: the TTL ran out before any commit attempt
                    // landed. Undo the transaction everywhere.
                    obs_event!("coord.commit_expired", "txn" => txn.0, "site" => site_id.0);
                    self.compensate(txn, parts);
                    return Err(MultiSiteError::CommitExpired(*site_id));
                }
                Some(SiteReply::Crashed { .. }) | Some(_) | None => {
                    // Unresolved (site silent or restarted mid-commit): the
                    // commit may or may not have landed, so roll the whole
                    // transaction back — aborts are idempotent and undo
                    // commits, which makes the rollback safe either way.
                    obs_event!("coord.commit_unresolved", "txn" => txn.0, "site" => site_id.0);
                    self.compensate(txn, parts);
                    return Err(MultiSiteError::SiteUnresponsive(*site_id));
                }
            }
        }
        Ok(())
    }

    /// Abort `txn` at every listed site (with retries). Used both for
    /// hold-phase cleanup and as the commit-phase compensation path.
    fn compensate(&mut self, txn: TxnId, parts: &[(SiteId, JobId, Vec<ServerId>)]) {
        self.stats.compensations += 1;
        COORD_COMPENSATIONS.inc();
        obs_event!("coord.compensate", "txn" => txn.0, "sites" => parts.len());
        for (site_id, _, _) in parts {
            let _ = self.call_retry(*site_id, |seq| SiteRequest::Abort { txn, seq });
        }
    }

    /// Try to hold one fixed window on every site. On failure the acquired
    /// prefix is aborted.
    fn try_window(
        &mut self,
        txn: TxnId,
        start: Time,
        req: &MultiRequest,
    ) -> Result<Vec<(SiteId, JobId, Vec<ServerId>)>, HoldFailure> {
        let mut acquired: Vec<(SiteId, JobId, Vec<ServerId>)> = Vec::new();
        let ttl = self.cfg.hold_ttl;
        for (&site_id, &servers) in &req.parts {
            let reply = self.call_retry(site_id, |seq| SiteRequest::Hold {
                txn,
                seq,
                start,
                duration: req.duration,
                servers,
                ttl,
            });
            match reply {
                Some(SiteReply::HoldGranted { job, servers, .. }) => {
                    obs_event!(
                        "coord.hold_granted",
                        "txn" => txn.0,
                        "site" => site_id.0,
                        "servers" => servers.len()
                    );
                    acquired.push((site_id, job, servers));
                }
                Some(SiteReply::HoldDenied { available, .. }) => {
                    obs_event!(
                        "coord.hold_denied",
                        "txn" => txn.0,
                        "site" => site_id.0,
                        "available" => available
                    );
                    self.abort_all(txn, &acquired);
                    return Err(HoldFailure::Denied);
                }
                _ => {
                    obs_event!("coord.hold_unresolved", "txn" => txn.0, "site" => site_id.0);
                    self.abort_all(txn, &acquired);
                    return Err(HoldFailure::Unresponsive(site_id));
                }
            }
        }
        Ok(acquired)
    }

    fn abort_all(&mut self, txn: TxnId, acquired: &[(SiteId, JobId, Vec<ServerId>)]) {
        for (site_id, _, _) in acquired {
            self.stats.aborts += 1;
            obs_event!("coord.abort", "txn" => txn.0, "site" => site_id.0);
            let site_id = *site_id;
            let _ = self.call_retry(site_id, |seq| SiteRequest::Abort { txn, seq });
        }
    }
}

enum HoldFailure {
    Denied,
    Unresponsive(SiteId),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{FlakyLink, LinkConfig};
    use coalloc_core::prelude::SchedulerConfig;

    fn sites(n_sites: u32, servers: u32) -> Vec<SiteHandle> {
        let cfg = SchedulerConfig::builder()
            .tau(Dur(60))
            .horizon(Dur(7200))
            .delta_t(Dur(60))
            .build();
        (0..n_sites)
            .map(|i| SiteHandle::spawn(SiteId(i), servers, cfg))
            .collect()
    }

    fn cfg() -> CoordinatorConfig {
        CoordinatorConfig {
            delta_t: Dur(60),
            r_max: 20,
            ..CoordinatorConfig::default()
        }
    }

    fn req(parts: &[(u32, u32)], start: i64, dur: i64) -> MultiRequest {
        MultiRequest {
            parts: parts.iter().map(|&(s, n)| (SiteId(s), n)).collect(),
            earliest_start: Time(start),
            duration: Dur(dur),
        }
    }

    #[test]
    fn grants_across_three_sites() {
        let sites = sites(3, 4);
        let mut coord = Coordinator::new(&sites, cfg());
        let grant = coord
            .co_allocate(&req(&[(0, 2), (1, 3), (2, 1)], 0, 600))
            .unwrap();
        assert_eq!(grant.start, Time(0));
        assert_eq!(grant.parts.len(), 3);
        assert_eq!(grant.parts[0].2.len(), 2);
        assert_eq!(grant.parts[1].2.len(), 3);
        assert_eq!(coord.stats().granted, 1);
    }

    #[test]
    fn contention_shifts_window_atomically() {
        let sites = sites(2, 2);
        let mut coord = Coordinator::new(&sites, cfg());
        // Fill site 1 entirely for [0, 600).
        coord.co_allocate(&req(&[(1, 2)], 0, 600)).unwrap();
        // A cross-site request needing both sites must shift to 600 even
        // though site 0 is free at 0 — the window is common.
        let g = coord.co_allocate(&req(&[(0, 1), (1, 1)], 0, 300)).unwrap();
        assert_eq!(g.start, Time(600));
        assert!(g.attempts > 1);
        assert!(coord.stats().aborts > 0, "prefix holds must have aborted");
    }

    #[test]
    fn unknown_site_rejected() {
        let sites = sites(1, 2);
        let mut coord = Coordinator::new(&sites, cfg());
        assert_eq!(
            coord.co_allocate(&req(&[(7, 1)], 0, 60)),
            Err(MultiSiteError::UnknownSite(SiteId(7)))
        );
    }

    #[test]
    fn impossible_request_exhausts() {
        let sites = sites(1, 2);
        let mut coord = Coordinator::new(&sites, cfg());
        let err = coord.co_allocate(&req(&[(0, 3)], 0, 60)).unwrap_err();
        assert_eq!(err, MultiSiteError::Exhausted { attempts: 20 });
        assert_eq!(coord.stats().failed, 1);
    }

    #[test]
    fn failed_attempts_leave_no_residue() {
        let sites = sites(2, 2);
        {
            let mut coord = Coordinator::new(&sites, cfg());
            // Site 1 can never supply 3 servers → every attempt aborts the
            // hold acquired on site 0.
            let _ = coord.co_allocate(&req(&[(0, 2), (1, 3)], 0, 600));
        }
        // Site 0 must be fully free again.
        let r = sites[0].call(SiteRequest::Query {
            start: Time(0),
            duration: Dur(600),
        });
        assert_eq!(
            r,
            SiteReply::QueryResult {
                site: SiteId(0),
                available: 2
            }
        );
    }

    /// Regression (lost CommitResult): with a reply-dropping link, the old
    /// coordinator compensated the transaction on the first silent commit
    /// even though the site had committed. With retries + idempotent
    /// commits, the co-allocation must succeed.
    #[test]
    fn retries_recover_lost_replies() {
        let sites = sites(2, 2);
        // Drop roughly a third of replies on each link; requests get
        // through. Retries must push every RPC to completion.
        let links: Vec<FlakyLink> = sites
            .iter()
            .map(|s| {
                FlakyLink::new(
                    s.sender(),
                    LinkConfig {
                        drop_reply_prob: 0.34,
                        seed: 0xBEEF + s.id.0 as u64,
                        ..LinkConfig::default()
                    },
                )
            })
            .collect();
        let endpoints: Vec<SiteEndpoint> = sites
            .iter()
            .zip(&links)
            .map(|(s, l)| SiteEndpoint::new(s.id, l.sender()))
            .collect();
        let mut coord = Coordinator::from_endpoints(
            endpoints,
            CoordinatorConfig {
                rpc_timeout: Duration::from_millis(150),
                rpc_retries: 8,
                retry_base: Duration::from_millis(2),
                delta_t: Dur(60),
                r_max: 4,
                ..CoordinatorConfig::default()
            },
        );
        for i in 0..10 {
            let g = coord.co_allocate(&req(&[(0, 1), (1, 1)], i * 600, 600));
            assert!(g.is_ok(), "attempt {i} failed: {g:?}");
        }
        assert!(
            coord.stats().rpc_retries > 0,
            "a 34% reply-drop rate must have forced retries"
        );
        assert_eq!(coord.stats().compensations, 0);
        // The coordinator's endpoints hold link senders; the links can only
        // drain (and their relay threads exit) once those are gone.
        drop(coord);
        drop(links);
        for s in sites {
            let stats = s.shutdown();
            assert_eq!(stats.commits, 10);
            assert_eq!(stats.holds_lost, 0);
        }
    }

    /// With retries disabled (`rpc_retries: 0`) a dead site surfaces as
    /// `SiteUnresponsive` and the acquired prefix is compensated.
    #[test]
    fn fail_fast_without_retries() {
        let sites = sites(2, 2);
        // Site 1's messages all vanish.
        let dead = FlakyLink::new(
            sites[1].sender(),
            LinkConfig {
                drop_prob: 1.0,
                ..LinkConfig::default()
            },
        );
        let endpoints = vec![
            sites[0].endpoint(),
            SiteEndpoint::new(SiteId(1), dead.sender()),
        ];
        let mut coord = Coordinator::from_endpoints(
            endpoints,
            CoordinatorConfig {
                rpc_timeout: Duration::from_millis(100),
                rpc_retries: 0,
                delta_t: Dur(60),
                r_max: 3,
                ..CoordinatorConfig::default()
            },
        );
        let err = coord
            .co_allocate(&req(&[(0, 1), (1, 1)], 0, 600))
            .unwrap_err();
        assert_eq!(err, MultiSiteError::SiteUnresponsive(SiteId(1)));
        // Site 0's hold was aborted: fully free again.
        let r = sites[0].call(SiteRequest::Query {
            start: Time(0),
            duration: Dur(600),
        });
        assert_eq!(
            r,
            SiteReply::QueryResult {
                site: SiteId(0),
                available: 2
            }
        );
    }
}
