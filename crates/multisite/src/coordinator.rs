//! The co-allocation coordinator: acquires holds on every involved site in
//! global site order (deadlock freedom across concurrent coordinators),
//! then commits all-or-nothing, retrying the whole window shifted by
//! `Delta_t` when any site denies — the paper's retry loop lifted to the
//! multi-site level.

use crate::messages::{SiteId, SiteReply, SiteRequest, TxnId};
use crate::site::SiteHandle;
use coalloc_core::prelude::{Dur, JobId, ServerId, Time};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Global transaction-id source (unique across coordinators in-process).
static NEXT_TXN: AtomicU64 = AtomicU64::new(1);

/// What a coordinator asks for: `servers_per_site[s]` servers at site `s`,
/// all simultaneously for `duration`, starting no earlier than
/// `earliest_start`.
#[derive(Clone, Debug)]
pub struct MultiRequest {
    /// Per-site spatial demand. Sites not listed are not involved.
    pub parts: BTreeMap<SiteId, u32>,
    /// Earliest acceptable start.
    pub earliest_start: Time,
    /// Window length.
    pub duration: Dur,
}

/// A committed cross-site co-allocation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MultiGrant {
    /// The distributed transaction id.
    pub txn: TxnId,
    /// The common start time across all sites.
    pub start: Time,
    /// The common end time.
    pub end: Time,
    /// Per-site local job and servers.
    pub parts: Vec<(SiteId, JobId, Vec<ServerId>)>,
    /// Window attempts used (1 = first window).
    pub attempts: u32,
}

/// Why a co-allocation failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MultiSiteError {
    /// A named site is not registered with the coordinator.
    UnknownSite(SiteId),
    /// All `r_max` windows were tried without success.
    Exhausted {
        /// Window attempts made.
        attempts: u32,
    },
    /// A site failed to answer within the protocol timeout during the hold
    /// phase (holds already acquired were aborted).
    SiteUnresponsive(SiteId),
    /// A commit arrived after the hold's TTL on some site; all other parts
    /// were compensated (undone), so the system is consistent but the
    /// transaction did not happen.
    CommitExpired(SiteId),
}

impl std::fmt::Display for MultiSiteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MultiSiteError::UnknownSite(s) => write!(f, "unknown site {s:?}"),
            MultiSiteError::Exhausted { attempts } => {
                write!(f, "no common window found in {attempts} attempts")
            }
            MultiSiteError::SiteUnresponsive(s) => write!(f, "site {s:?} did not reply in time"),
            MultiSiteError::CommitExpired(s) => {
                write!(f, "hold expired before commit at site {s:?}")
            }
        }
    }
}

impl std::error::Error for MultiSiteError {}

/// Protocol tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct CoordinatorConfig {
    /// Per-message reply timeout.
    pub rpc_timeout: Duration,
    /// Hold TTL granted to sites (must comfortably exceed the time to
    /// acquire the remaining holds and send commits).
    pub hold_ttl: Duration,
    /// Start-time increment between window attempts (`Delta_t`).
    pub delta_t: Dur,
    /// Maximum window attempts (`R_max`).
    pub r_max: u32,
}

impl Default for CoordinatorConfig {
    fn default() -> Self {
        CoordinatorConfig {
            rpc_timeout: Duration::from_secs(2),
            hold_ttl: Duration::from_secs(10),
            delta_t: Dur::from_mins(15),
            r_max: 32,
        }
    }
}

/// Statistics of one coordinator's lifetime.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CoordinatorStats {
    /// Successful co-allocations.
    pub granted: u64,
    /// Failed co-allocations.
    pub failed: u64,
    /// Hold-phase aborts issued (contention and denials).
    pub aborts: u64,
    /// Total window attempts.
    pub window_attempts: u64,
}

/// Coordinates atomic co-allocations across a set of sites.
pub struct Coordinator<'a> {
    sites: BTreeMap<SiteId, &'a SiteHandle>,
    cfg: CoordinatorConfig,
    stats: CoordinatorStats,
}

impl<'a> Coordinator<'a> {
    /// Build a coordinator over `sites`.
    pub fn new(sites: &'a [SiteHandle], cfg: CoordinatorConfig) -> Coordinator<'a> {
        Coordinator {
            sites: sites.iter().map(|s| (s.id, s)).collect(),
            cfg,
            stats: CoordinatorStats::default(),
        }
    }

    /// Lifetime statistics.
    pub fn stats(&self) -> &CoordinatorStats {
        &self.stats
    }

    /// Atomically co-allocate the request across its sites.
    ///
    /// Holds are acquired sequentially in ascending [`SiteId`] order — the
    /// global lock order that prevents deadlock (and livelock cycles)
    /// between concurrent coordinators. Any denial aborts the acquired
    /// prefix and retries the window `Delta_t` later.
    pub fn co_allocate(&mut self, req: &MultiRequest) -> Result<MultiGrant, MultiSiteError> {
        for site in req.parts.keys() {
            if !self.sites.contains_key(site) {
                return Err(MultiSiteError::UnknownSite(*site));
            }
        }
        let mut attempts = 0u32;
        let mut start = req.earliest_start;
        while attempts < self.cfg.r_max {
            attempts += 1;
            self.stats.window_attempts += 1;
            let txn = TxnId(NEXT_TXN.fetch_add(1, Ordering::Relaxed));
            match self.try_window(txn, start, req) {
                Ok(parts) => {
                    // All holds acquired: commit everywhere (same order).
                    for (i, (site_id, _, _)) in parts.iter().enumerate() {
                        let site = self.sites[site_id];
                        match site
                            .call_timeout(SiteRequest::Commit { txn }, self.cfg.rpc_timeout)
                        {
                            Some(SiteReply::CommitResult { ok: true, .. }) => {}
                            _ => {
                                // Compensate: undo committed prefix, abort
                                // the (still-held) suffix.
                                for (sid, _, _) in &parts[..i] {
                                    let _ = self.sites[sid].call_timeout(
                                        SiteRequest::Abort { txn },
                                        self.cfg.rpc_timeout,
                                    );
                                }
                                for (sid, _, _) in &parts[i..] {
                                    let _ = self.sites[sid].call_timeout(
                                        SiteRequest::Abort { txn },
                                        self.cfg.rpc_timeout,
                                    );
                                }
                                self.stats.failed += 1;
                                return Err(MultiSiteError::CommitExpired(*site_id));
                            }
                        }
                    }
                    self.stats.granted += 1;
                    return Ok(MultiGrant {
                        txn,
                        start,
                        end: start + req.duration,
                        parts,
                        attempts,
                    });
                }
                Err(HoldFailure::Unresponsive(site)) => {
                    self.stats.failed += 1;
                    return Err(MultiSiteError::SiteUnresponsive(site));
                }
                Err(HoldFailure::Denied) => {
                    start += self.cfg.delta_t;
                }
            }
        }
        self.stats.failed += 1;
        Err(MultiSiteError::Exhausted { attempts })
    }

    /// Try to hold one fixed window on every site. On failure the acquired
    /// prefix is aborted.
    fn try_window(
        &mut self,
        txn: TxnId,
        start: Time,
        req: &MultiRequest,
    ) -> Result<Vec<(SiteId, JobId, Vec<ServerId>)>, HoldFailure> {
        let mut acquired: Vec<(SiteId, JobId, Vec<ServerId>)> = Vec::new();
        for (&site_id, &servers) in &req.parts {
            let site = self.sites[&site_id];
            let reply = site.call_timeout(
                SiteRequest::Hold {
                    txn,
                    start,
                    duration: req.duration,
                    servers,
                    ttl: self.cfg.hold_ttl,
                },
                self.cfg.rpc_timeout,
            );
            match reply {
                Some(SiteReply::HoldGranted { job, servers, .. }) => {
                    acquired.push((site_id, job, servers));
                }
                Some(SiteReply::HoldDenied { .. }) => {
                    self.abort_all(txn, &acquired);
                    return Err(HoldFailure::Denied);
                }
                _ => {
                    self.abort_all(txn, &acquired);
                    return Err(HoldFailure::Unresponsive(site_id));
                }
            }
        }
        Ok(acquired)
    }

    fn abort_all(&mut self, txn: TxnId, acquired: &[(SiteId, JobId, Vec<ServerId>)]) {
        for (site_id, _, _) in acquired {
            self.stats.aborts += 1;
            let _ = self.sites[site_id].call_timeout(
                SiteRequest::Abort { txn },
                self.cfg.rpc_timeout,
            );
        }
    }
}

enum HoldFailure {
    Denied,
    Unresponsive(SiteId),
}

#[cfg(test)]
mod tests {
    use super::*;
    use coalloc_core::prelude::SchedulerConfig;

    fn sites(n_sites: u32, servers: u32) -> Vec<SiteHandle> {
        let cfg = SchedulerConfig::builder()
            .tau(Dur(60))
            .horizon(Dur(7200))
            .delta_t(Dur(60))
            .build();
        (0..n_sites)
            .map(|i| SiteHandle::spawn(SiteId(i), servers, cfg))
            .collect()
    }

    fn cfg() -> CoordinatorConfig {
        CoordinatorConfig {
            delta_t: Dur(60),
            r_max: 20,
            ..CoordinatorConfig::default()
        }
    }

    fn req(parts: &[(u32, u32)], start: i64, dur: i64) -> MultiRequest {
        MultiRequest {
            parts: parts.iter().map(|&(s, n)| (SiteId(s), n)).collect(),
            earliest_start: Time(start),
            duration: Dur(dur),
        }
    }

    #[test]
    fn grants_across_three_sites() {
        let sites = sites(3, 4);
        let mut coord = Coordinator::new(&sites, cfg());
        let grant = coord
            .co_allocate(&req(&[(0, 2), (1, 3), (2, 1)], 0, 600))
            .unwrap();
        assert_eq!(grant.start, Time(0));
        assert_eq!(grant.parts.len(), 3);
        assert_eq!(grant.parts[0].2.len(), 2);
        assert_eq!(grant.parts[1].2.len(), 3);
        assert_eq!(coord.stats().granted, 1);
    }

    #[test]
    fn contention_shifts_window_atomically() {
        let sites = sites(2, 2);
        let mut coord = Coordinator::new(&sites, cfg());
        // Fill site 1 entirely for [0, 600).
        coord.co_allocate(&req(&[(1, 2)], 0, 600)).unwrap();
        // A cross-site request needing both sites must shift to 600 even
        // though site 0 is free at 0 — the window is common.
        let g = coord.co_allocate(&req(&[(0, 1), (1, 1)], 0, 300)).unwrap();
        assert_eq!(g.start, Time(600));
        assert!(g.attempts > 1);
        assert!(coord.stats().aborts > 0, "prefix holds must have aborted");
    }

    #[test]
    fn unknown_site_rejected() {
        let sites = sites(1, 2);
        let mut coord = Coordinator::new(&sites, cfg());
        assert_eq!(
            coord.co_allocate(&req(&[(7, 1)], 0, 60)),
            Err(MultiSiteError::UnknownSite(SiteId(7)))
        );
    }

    #[test]
    fn impossible_request_exhausts() {
        let sites = sites(1, 2);
        let mut coord = Coordinator::new(&sites, cfg());
        let err = coord.co_allocate(&req(&[(0, 3)], 0, 60)).unwrap_err();
        assert_eq!(err, MultiSiteError::Exhausted { attempts: 20 });
        assert_eq!(coord.stats().failed, 1);
    }

    #[test]
    fn failed_attempts_leave_no_residue() {
        let sites = sites(2, 2);
        {
            let mut coord = Coordinator::new(&sites, cfg());
            // Site 1 can never supply 3 servers → every attempt aborts the
            // hold acquired on site 0.
            let _ = coord.co_allocate(&req(&[(0, 2), (1, 3)], 0, 600));
        }
        // Site 0 must be fully free again.
        let r = sites[0].call(SiteRequest::Query {
            start: Time(0),
            duration: Dur(600),
        });
        assert_eq!(
            r,
            SiteReply::QueryResult {
                site: SiteId(0),
                available: 2
            }
        );
    }
}
