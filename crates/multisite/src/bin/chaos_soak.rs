//! Chaos soak driver: concurrent coordinators over faulty links, optional
//! site crashes, invariant verification at the end.
//!
//! ```text
//! chaos_soak [sites] [coordinators] [requests-per-coordinator] [seed] \
//!            [drop-prob] [duplicate-prob] [crash-interval-ms] \
//!            [--trace-out PATH] [--metrics-dump]
//! ```
//!
//! Numeric arguments are optional and positional; `drop-prob` and
//! `duplicate-prob` are applied to both the request and the reply path.
//! A `crash-interval-ms` of 0 (the default) disables crash injection.
//!
//! * `--trace-out PATH` enables tracing, streams every span/event to `PATH`
//!   as JSONL, and keeps a ring buffer so that on invariant violation the
//!   per-transaction Hold/Commit/Abort timelines are reconstructed and
//!   printed for post-mortem analysis.
//! * `--metrics-dump` prints the Prometheus-style metrics exposition
//!   (RPC retries, link faults, grant counters) before exiting.
//! * `COALLOC_OBS` (see the `obs` crate docs) configures tracing when
//!   `--trace-out` is not given.
//!
//! Exits non-zero when any protocol invariant is violated, printing each
//! failing invariant on stderr.

use coalloc_multisite::chaos::{run_chaos, ChaosConfig};
use std::time::Duration;

fn arg<T: std::str::FromStr>(positional: &[String], n: usize, default: T) -> T {
    positional.get(n).and_then(|a| a.parse().ok()).unwrap_or(default)
}

/// Split the raw argv into (positional numeric args, trace path, dump flag).
fn parse_args(raw: impl Iterator<Item = String>) -> (Vec<String>, Option<String>, bool) {
    let mut positional = Vec::new();
    let mut trace_out = None;
    let mut metrics_dump = false;
    let mut raw = raw.peekable();
    while let Some(a) = raw.next() {
        match a.as_str() {
            "--trace-out" => trace_out = raw.next(),
            "--metrics-dump" => metrics_dump = true,
            _ => positional.push(a),
        }
    }
    (positional, trace_out, metrics_dump)
}

/// Dump per-transaction event timelines from the ring buffer (newest-capacity
/// window) so a violated invariant can be traced to the exact
/// Hold/Commit/Abort interleaving that produced it.
fn dump_txn_timelines() {
    let events = obs::trace::ring_events();
    let timelines = obs::trace::timelines_by(&events, "txn");
    if timelines.is_empty() {
        eprintln!("(no per-txn events in the trace ring; run with --trace-out)");
        return;
    }
    eprintln!("--- per-txn timelines ({} txns in ring) ---", timelines.len());
    for (txn, evs) in &timelines {
        eprintln!("txn {txn}:");
        for e in evs {
            eprintln!("  {}", e.pretty());
        }
    }
}

fn main() {
    let (positional, trace_out, metrics_dump) = parse_args(std::env::args().skip(1));
    println!("{}", obs::init_from_env());
    if let Some(path) = &trace_out {
        match obs::trace::JsonlSink::create(path) {
            Ok(sink) => {
                obs::trace::set_sink(Some(std::sync::Arc::new(sink)));
                obs::trace::set_ring_capacity(obs::trace::DEFAULT_RING_CAPACITY);
                obs::trace::set_enabled(true);
                obs::trace::set_detail(true); // post-mortems want everything
                println!("tracing to {path} (jsonl)");
            }
            Err(e) => {
                eprintln!("cannot open trace file {path}: {e}");
                std::process::exit(2);
            }
        }
    }

    let defaults = ChaosConfig::default();
    let drop_prob: f64 = arg(&positional, 4, 0.05);
    let duplicate_prob: f64 = arg(&positional, 5, 0.05);
    let crash_ms: u64 = arg(&positional, 6, 0);
    let cfg = ChaosConfig {
        sites: arg(&positional, 0, 4),
        coordinators: arg(&positional, 1, 6),
        requests_per_coordinator: arg(&positional, 2, 50),
        seed: arg(&positional, 3, defaults.seed),
        link: coalloc_multisite::LinkConfig {
            drop_prob,
            duplicate_prob,
            drop_reply_prob: drop_prob,
            duplicate_reply_prob: duplicate_prob,
            ..defaults.link
        },
        crash_interval: (crash_ms > 0).then(|| Duration::from_millis(crash_ms)),
        ..defaults
    };
    println!("chaos soak: {cfg:?}");
    let t0 = std::time::Instant::now();
    let report = run_chaos(cfg);
    println!("{}", report.summary());
    println!("elapsed: {:.1?}", t0.elapsed());
    for (i, s) in report.sites.iter().enumerate() {
        println!("site {i}: {s:?}");
    }
    obs::trace::flush_sink();
    if metrics_dump {
        println!("--- metrics ---");
        print!("{}", obs::metrics::exposition());
    }
    match report.verify() {
        Ok(()) => println!("all invariants hold"),
        Err(errors) => {
            for e in &errors {
                eprintln!("INVARIANT VIOLATED: {e}");
            }
            if obs::trace::enabled() {
                dump_txn_timelines();
            }
            obs::trace::flush_sink();
            std::process::exit(1);
        }
    }
}
