//! Chaos soak driver: concurrent coordinators over faulty links, optional
//! site crashes, invariant verification at the end.
//!
//! ```text
//! chaos_soak [sites] [coordinators] [requests-per-coordinator] [seed] \
//!            [drop-prob] [duplicate-prob] [crash-interval-ms]
//! ```
//!
//! All arguments are optional and positional; `drop-prob` and
//! `duplicate-prob` are applied to both the request and the reply path.
//! A `crash-interval-ms` of 0 (the default) disables crash injection.
//! Exits non-zero when any protocol invariant is violated.

use coalloc_multisite::chaos::{run_chaos, ChaosConfig};
use std::time::Duration;

fn arg<T: std::str::FromStr>(n: usize, default: T) -> T {
    std::env::args()
        .nth(n)
        .and_then(|a| a.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let defaults = ChaosConfig::default();
    let drop_prob: f64 = arg(5, 0.05);
    let duplicate_prob: f64 = arg(6, 0.05);
    let crash_ms: u64 = arg(7, 0);
    let cfg = ChaosConfig {
        sites: arg(1, 4),
        coordinators: arg(2, 6),
        requests_per_coordinator: arg(3, 50),
        seed: arg(4, defaults.seed),
        link: coalloc_multisite::LinkConfig {
            drop_prob,
            duplicate_prob,
            drop_reply_prob: drop_prob,
            duplicate_reply_prob: duplicate_prob,
            ..defaults.link
        },
        crash_interval: (crash_ms > 0).then(|| Duration::from_millis(crash_ms)),
        ..defaults
    };
    println!("chaos soak: {cfg:?}");
    let t0 = std::time::Instant::now();
    let report = run_chaos(cfg);
    println!("{}", report.summary());
    println!("elapsed: {:.1?}", t0.elapsed());
    for (i, s) in report.sites.iter().enumerate() {
        println!("site {i}: {s:?}");
    }
    match report.verify() {
        Ok(()) => println!("all invariants hold"),
        Err(errors) => {
            for e in &errors {
                eprintln!("INVARIANT VIOLATED: {e}");
            }
            std::process::exit(1);
        }
    }
}
