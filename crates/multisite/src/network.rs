//! Network fault injection for protocol testing.
//!
//! Sites and coordinators exchange messages over crossbeam channels; this
//! module interposes a relay thread that can delay or drop requests with a
//! seeded RNG, exercising the protocol's timeout, abort and TTL-expiry paths
//! without real sockets.

use crate::messages::Envelope;
use crossbeam::channel::{unbounded, Receiver, Sender};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::thread::JoinHandle;
use std::time::Duration;

/// Configuration of an unreliable link.
#[derive(Clone, Copy, Debug)]
pub struct LinkConfig {
    /// Probability a request is silently dropped.
    pub drop_prob: f64,
    /// Fixed latency added to every delivered request.
    pub base_delay: Duration,
    /// Additional uniformly random latency in `[0, jitter)`.
    pub jitter: Duration,
    /// RNG seed for reproducibility.
    pub seed: u64,
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig {
            drop_prob: 0.0,
            base_delay: Duration::ZERO,
            jitter: Duration::ZERO,
            seed: 0,
        }
    }
}

/// A faulty relay in front of a site's inbox. Send [`Envelope`]s to
/// [`FlakyLink::sender`]; surviving messages arrive at the wrapped
/// destination after the configured delay.
#[derive(Debug)]
pub struct FlakyLink {
    tx: Sender<Envelope>,
    join: Option<JoinHandle<LinkStats>>,
}

/// Delivery statistics of a link.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Messages delivered.
    pub delivered: u64,
    /// Messages dropped.
    pub dropped: u64,
}

impl FlakyLink {
    /// Interpose a relay in front of `dest`.
    pub fn new(dest: Sender<Envelope>, cfg: LinkConfig) -> FlakyLink {
        let (tx, rx): (Sender<Envelope>, Receiver<Envelope>) = unbounded();
        let join = std::thread::Builder::new()
            .name("flaky-link".into())
            .spawn(move || {
                let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0x11A7);
                let mut stats = LinkStats::default();
                while let Ok(env) = rx.recv() {
                    if cfg.drop_prob > 0.0 && rng.random_bool(cfg.drop_prob) {
                        stats.dropped += 1;
                        continue;
                    }
                    let jitter_ns = if cfg.jitter.is_zero() {
                        0
                    } else {
                        rng.random_range(0..cfg.jitter.as_nanos() as u64)
                    };
                    let delay = cfg.base_delay + Duration::from_nanos(jitter_ns);
                    if !delay.is_zero() {
                        std::thread::sleep(delay);
                    }
                    if dest.send(env).is_err() {
                        break; // destination gone
                    }
                    stats.delivered += 1;
                }
                stats
            })
            .expect("spawn relay");
        FlakyLink {
            tx,
            join: Some(join),
        }
    }

    /// The faulty endpoint to send through.
    pub fn sender(&self) -> Sender<Envelope> {
        self.tx.clone()
    }

    /// Close the link and collect delivery statistics.
    pub fn shutdown(mut self) -> LinkStats {
        drop(self.tx.clone());
        // Dropping our sender ends the relay loop once all clones are gone.
        let tx = std::mem::replace(&mut self.tx, {
            let (t, _) = unbounded();
            t
        });
        drop(tx);
        self.join
            .take()
            .expect("not yet joined")
            .join()
            .expect("relay panicked")
    }
}

impl Drop for FlakyLink {
    fn drop(&mut self) {
        if let Some(join) = self.join.take() {
            let (t, _) = unbounded();
            let tx = std::mem::replace(&mut self.tx, t);
            drop(tx);
            let _ = join.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::{SiteReply, SiteRequest};
    use crate::site::SiteHandle;
    use crate::messages::SiteId;
    use coalloc_core::prelude::*;

    fn site() -> SiteHandle {
        SiteHandle::spawn(
            SiteId(0),
            2,
            SchedulerConfig::builder()
                .tau(Dur(60))
                .horizon(Dur(3600))
                .delta_t(Dur(60))
                .build(),
        )
    }

    fn call_via(
        link: &FlakyLink,
        request: SiteRequest,
        timeout: Duration,
    ) -> Option<SiteReply> {
        let (reply_tx, reply_rx) = unbounded();
        link.sender()
            .send(Envelope {
                request,
                reply_to: reply_tx,
            })
            .ok()?;
        reply_rx.recv_timeout(timeout).ok()
    }

    #[test]
    fn reliable_link_passes_through() {
        let s = site();
        let link = FlakyLink::new(s.sender(), LinkConfig::default());
        let r = call_via(
            &link,
            SiteRequest::Query {
                start: Time(0),
                duration: Dur(60),
            },
            Duration::from_secs(2),
        );
        assert_eq!(
            r,
            Some(SiteReply::QueryResult {
                site: SiteId(0),
                available: 2
            })
        );
        let stats = link.shutdown();
        assert_eq!(stats.delivered, 1);
        assert_eq!(stats.dropped, 0);
    }

    #[test]
    fn lossy_link_drops_messages() {
        let s = site();
        let link = FlakyLink::new(
            s.sender(),
            LinkConfig {
                drop_prob: 1.0,
                ..LinkConfig::default()
            },
        );
        let r = call_via(
            &link,
            SiteRequest::Query {
                start: Time(0),
                duration: Dur(60),
            },
            Duration::from_millis(100),
        );
        assert_eq!(r, None, "fully lossy link must time out");
        let stats = link.shutdown();
        assert_eq!(stats.dropped, 1);
    }

    #[test]
    fn delay_is_applied() {
        let s = site();
        let link = FlakyLink::new(
            s.sender(),
            LinkConfig {
                base_delay: Duration::from_millis(80),
                ..LinkConfig::default()
            },
        );
        let t0 = std::time::Instant::now();
        let r = call_via(
            &link,
            SiteRequest::Query {
                start: Time(0),
                duration: Dur(60),
            },
            Duration::from_secs(2),
        );
        assert!(r.is_some());
        assert!(t0.elapsed() >= Duration::from_millis(80));
    }
}
