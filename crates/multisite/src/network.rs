//! Network fault injection for protocol testing.
//!
//! Sites and coordinators exchange messages over crossbeam channels; this
//! module interposes a relay thread that can delay, drop, **duplicate** and
//! **reorder** requests, and drop or duplicate **replies**, with a seeded
//! RNG — exercising the protocol's timeout, retry, idempotency and
//! TTL-expiry paths without real sockets. Whole-site crashes are injected
//! separately by sending [`SiteRequest::Crash`](crate::SiteRequest::Crash).
//!
//! Reply faults work by rewriting each forwarded envelope's `reply_to` to a
//! relay-owned proxy channel; the relay pumps proxied replies back to the
//! original requester, applying the reply-path fault probabilities on the
//! way. To the coordinator a dropped reply is indistinguishable from a
//! dropped request — both surface as an RPC timeout — but the site *did*
//! execute the call, which is exactly the at-least-once ambiguity the
//! idempotent protocol has to absorb.

use crate::messages::{Envelope, SiteReply};
use crossbeam::channel::{unbounded, Receiver, Sender};
use obs::{obs_event, LazyCounter};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::thread::JoinHandle;
use std::time::Duration;

/// Configuration of an unreliable link.
#[derive(Clone, Copy, Debug)]
pub struct LinkConfig {
    /// Probability a request is silently dropped.
    pub drop_prob: f64,
    /// Probability a delivered request is delivered twice (duplicate
    /// delivery, as after an ambiguous send on a real network).
    pub duplicate_prob: f64,
    /// Probability a delivered request is held back and delivered *after*
    /// the next request (adjacent-pair reordering).
    pub reorder_prob: f64,
    /// Probability a site reply is silently dropped on the way back.
    pub drop_reply_prob: f64,
    /// Probability a site reply is delivered twice.
    pub duplicate_reply_prob: f64,
    /// Fixed latency added to every delivered request.
    pub base_delay: Duration,
    /// Additional uniformly random latency in `[0, jitter)`.
    pub jitter: Duration,
    /// RNG seed for reproducibility.
    pub seed: u64,
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig {
            drop_prob: 0.0,
            duplicate_prob: 0.0,
            reorder_prob: 0.0,
            drop_reply_prob: 0.0,
            duplicate_reply_prob: 0.0,
            base_delay: Duration::ZERO,
            jitter: Duration::ZERO,
            seed: 0,
        }
    }
}

/// A faulty relay in front of a site's inbox. Send [`Envelope`]s to
/// [`FlakyLink::sender`]; surviving messages arrive at the wrapped
/// destination after the configured delay, possibly duplicated or reordered,
/// and their replies are relayed back subject to the reply-path faults.
#[derive(Debug)]
pub struct FlakyLink {
    tx: Sender<Envelope>,
    join: Option<JoinHandle<LinkStats>>,
}

/// Delivery statistics of a link.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Requests delivered (duplicate copies included).
    pub delivered: u64,
    /// Requests dropped.
    pub dropped: u64,
    /// Extra request copies injected by duplication.
    pub duplicated: u64,
    /// Requests held back and delivered out of order.
    pub reordered: u64,
    /// Replies forwarded back to the requester (duplicates included).
    pub replies_delivered: u64,
    /// Replies dropped on the return path.
    pub replies_dropped: u64,
    /// Extra reply copies injected by duplication.
    pub replies_duplicated: u64,
}

// Link-fault metrics, aggregated over every FlakyLink in the process.
static LINK_DROPS: LazyCounter = LazyCounter::new("link_drops_total");
static LINK_DUPS: LazyCounter = LazyCounter::new("link_dups_total");
static LINK_REORDERS: LazyCounter = LazyCounter::new("link_reorders_total");
static LINK_REPLY_DROPS: LazyCounter = LazyCounter::new("link_reply_drops_total");
static LINK_REPLY_DUPS: LazyCounter = LazyCounter::new("link_reply_dups_total");

/// Emit a link fault event carrying the affected request's kind and txn so
/// post-mortem timelines show which protocol step the fault hit.
fn link_event(name: &'static str, env: &Envelope) {
    obs_event!(
        name,
        "kind" => env.request.kind(),
        "txn" => env.request.txn().map(|t| t.0).unwrap_or(0)
    );
}

/// A proxied in-flight reply: messages arriving on `proxy` are forwarded to
/// `requester` with the reply faults applied.
struct ReplyRoute {
    proxy: Receiver<SiteReply>,
    requester: Sender<SiteReply>,
}

/// The relay's mutable state, shared by the live loop and the drain phase.
struct Relay {
    dest: Sender<Envelope>,
    cfg: LinkConfig,
    rng: SmallRng,
    stats: LinkStats,
    /// A request held back for adjacent-pair reordering.
    held: Option<Envelope>,
    /// Open return paths for proxied replies.
    routes: Vec<ReplyRoute>,
}

impl Relay {
    /// Apply request-path faults to one incoming envelope. Returns `false`
    /// when the destination is gone.
    fn handle(&mut self, mut env: Envelope) -> bool {
        if self.cfg.drop_prob > 0.0 && self.rng.random_bool(self.cfg.drop_prob) {
            self.stats.dropped += 1;
            LINK_DROPS.inc();
            link_event("link.drop", &env);
            return true;
        }
        if self.cfg.drop_reply_prob > 0.0 || self.cfg.duplicate_reply_prob > 0.0 {
            let (proxy_tx, proxy_rx) = unbounded();
            let requester = std::mem::replace(&mut env.reply_to, proxy_tx);
            self.routes.push(ReplyRoute {
                proxy: proxy_rx,
                requester,
            });
        }
        let jitter_ns = if self.cfg.jitter.is_zero() {
            0
        } else {
            self.rng.random_range(0..self.cfg.jitter.as_nanos() as u64)
        };
        let delay = self.cfg.base_delay + Duration::from_nanos(jitter_ns);
        if !delay.is_zero() {
            std::thread::sleep(delay);
        }
        let duplicate =
            self.cfg.duplicate_prob > 0.0 && self.rng.random_bool(self.cfg.duplicate_prob);
        if duplicate {
            self.stats.duplicated += 1;
            LINK_DUPS.inc();
            link_event("link.dup", &env);
            if !self.deliver(env.clone()) {
                return false;
            }
        }
        if self.cfg.reorder_prob > 0.0
            && self.held.is_none()
            && self.rng.random_bool(self.cfg.reorder_prob)
        {
            // Hold this one back; it goes out right after the next request
            // (or on the idle flush).
            self.stats.reordered += 1;
            LINK_REORDERS.inc();
            link_event("link.reorder", &env);
            self.held = Some(env);
            return true;
        }
        if !self.deliver(env) {
            return false;
        }
        if let Some(h) = self.held.take() {
            if !self.deliver(h) {
                return false;
            }
        }
        true
    }

    fn deliver(&mut self, env: Envelope) -> bool {
        if self.dest.send(env).is_err() {
            return false;
        }
        self.stats.delivered += 1;
        true
    }

    fn flush_held(&mut self) {
        if let Some(h) = self.held.take() {
            self.deliver(h);
        }
    }

    /// Forward any proxied replies that have arrived, applying reply faults,
    /// and prune return paths whose proxy sender is gone and drained.
    fn pump_replies(&mut self) {
        let mut i = 0;
        while i < self.routes.len() {
            let mut finished = false;
            loop {
                match self.routes[i].proxy.try_recv() {
                    Ok(reply) => {
                        if self.cfg.drop_reply_prob > 0.0
                            && self.rng.random_bool(self.cfg.drop_reply_prob)
                        {
                            self.stats.replies_dropped += 1;
                            LINK_REPLY_DROPS.inc();
                            obs_event!(
                                "link.reply_drop",
                                "txn" => reply.txn().map(|t| t.0).unwrap_or(0)
                            );
                            continue;
                        }
                        if self.cfg.duplicate_reply_prob > 0.0
                            && self.rng.random_bool(self.cfg.duplicate_reply_prob)
                        {
                            self.stats.replies_duplicated += 1;
                            LINK_REPLY_DUPS.inc();
                            obs_event!(
                                "link.reply_dup",
                                "txn" => reply.txn().map(|t| t.0).unwrap_or(0)
                            );
                            if self.routes[i].requester.send(reply.clone()).is_ok() {
                                self.stats.replies_delivered += 1;
                            }
                        }
                        // A requester that timed out and went away is fine.
                        if self.routes[i].requester.send(reply).is_ok() {
                            self.stats.replies_delivered += 1;
                        }
                    }
                    Err(crossbeam::channel::TryRecvError::Empty) => break,
                    Err(crossbeam::channel::TryRecvError::Disconnected) => {
                        finished = true;
                        break;
                    }
                }
            }
            if finished {
                self.routes.swap_remove(i);
            } else {
                i += 1;
            }
        }
    }
}

impl FlakyLink {
    /// Interpose a relay in front of `dest`.
    pub fn new(dest: Sender<Envelope>, cfg: LinkConfig) -> FlakyLink {
        let (tx, rx): (Sender<Envelope>, Receiver<Envelope>) = unbounded();
        let join = std::thread::Builder::new()
            .name("flaky-link".into())
            .spawn(move || {
                let mut relay = Relay {
                    dest,
                    cfg,
                    rng: SmallRng::seed_from_u64(cfg.seed ^ 0x11A7),
                    stats: LinkStats::default(),
                    held: None,
                    routes: Vec::new(),
                };
                loop {
                    // Short poll so proxied replies and held-back requests
                    // keep moving even when no new request arrives.
                    match rx.recv_timeout(Duration::from_millis(1)) {
                        Ok(env) => {
                            if !relay.handle(env) {
                                break; // destination gone
                            }
                        }
                        Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                            relay.flush_held();
                        }
                        Err(crossbeam::channel::RecvTimeoutError::Disconnected) => break,
                    }
                    relay.pump_replies();
                }
                // Drain: flush the reorder buffer and keep pumping until all
                // in-flight replies have been answered or abandoned.
                relay.flush_held();
                while !relay.routes.is_empty() {
                    relay.pump_replies();
                    std::thread::sleep(Duration::from_millis(1));
                }
                relay.stats
            })
            .expect("spawn relay");
        FlakyLink {
            tx,
            join: Some(join),
        }
    }

    /// The faulty endpoint to send through.
    pub fn sender(&self) -> Sender<Envelope> {
        self.tx.clone()
    }

    /// Close the link and collect delivery statistics. Blocks until every
    /// in-flight request and reply has drained — which requires all other
    /// senders obtained from [`Self::sender`] (e.g. coordinator endpoints)
    /// to have been dropped first.
    pub fn shutdown(mut self) -> LinkStats {
        // Replace our sender with a dummy so the relay loop sees the channel
        // disconnect once outstanding clones are gone.
        let (dummy, _) = unbounded();
        drop(std::mem::replace(&mut self.tx, dummy));
        self.join
            .take()
            .expect("not yet joined")
            .join()
            .expect("relay panicked")
    }
}

impl Drop for FlakyLink {
    fn drop(&mut self) {
        if let Some(join) = self.join.take() {
            let (t, _) = unbounded();
            let tx = std::mem::replace(&mut self.tx, t);
            drop(tx);
            let _ = join.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::SiteId;
    use crate::messages::{SiteReply, SiteRequest};
    use crate::site::SiteHandle;
    use coalloc_core::prelude::*;

    fn site() -> SiteHandle {
        SiteHandle::spawn(
            SiteId(0),
            2,
            SchedulerConfig::builder()
                .tau(Dur(60))
                .horizon(Dur(3600))
                .delta_t(Dur(60))
                .build(),
        )
    }

    fn call_via(link: &FlakyLink, request: SiteRequest, timeout: Duration) -> Option<SiteReply> {
        let (reply_tx, reply_rx) = unbounded();
        link.sender()
            .send(Envelope {
                request,
                reply_to: reply_tx,
            })
            .ok()?;
        reply_rx.recv_timeout(timeout).ok()
    }

    fn query() -> SiteRequest {
        SiteRequest::Query {
            start: Time(0),
            duration: Dur(60),
        }
    }

    #[test]
    fn reliable_link_passes_through() {
        let s = site();
        let link = FlakyLink::new(s.sender(), LinkConfig::default());
        let r = call_via(&link, query(), Duration::from_secs(2));
        assert_eq!(
            r,
            Some(SiteReply::QueryResult {
                site: SiteId(0),
                available: 2
            })
        );
        let stats = link.shutdown();
        assert_eq!(stats.delivered, 1);
        assert_eq!(stats.dropped, 0);
    }

    #[test]
    fn lossy_link_drops_messages() {
        let s = site();
        let link = FlakyLink::new(
            s.sender(),
            LinkConfig {
                drop_prob: 1.0,
                ..LinkConfig::default()
            },
        );
        let r = call_via(&link, query(), Duration::from_millis(100));
        assert_eq!(r, None, "fully lossy link must time out");
        let stats = link.shutdown();
        assert_eq!(stats.dropped, 1);
    }

    #[test]
    fn delay_is_applied() {
        let s = site();
        let link = FlakyLink::new(
            s.sender(),
            LinkConfig {
                base_delay: Duration::from_millis(80),
                ..LinkConfig::default()
            },
        );
        let t0 = std::time::Instant::now();
        let r = call_via(&link, query(), Duration::from_secs(2));
        assert!(r.is_some());
        assert!(t0.elapsed() >= Duration::from_millis(80));
    }

    #[test]
    fn duplicating_link_delivers_twice() {
        let s = site();
        let link = FlakyLink::new(
            s.sender(),
            LinkConfig {
                duplicate_prob: 1.0,
                ..LinkConfig::default()
            },
        );
        let (reply_tx, reply_rx) = unbounded();
        link.sender()
            .send(Envelope {
                request: query(),
                reply_to: reply_tx,
            })
            .unwrap();
        // Both copies reach the site; both replies come back.
        let a = reply_rx.recv_timeout(Duration::from_secs(2)).unwrap();
        let b = reply_rx.recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(a, b);
        let stats = link.shutdown();
        assert_eq!(stats.delivered, 2);
        assert_eq!(stats.duplicated, 1);
    }

    #[test]
    fn reply_dropping_link_times_out_after_execution() {
        let s = site();
        let link = FlakyLink::new(
            s.sender(),
            LinkConfig {
                drop_reply_prob: 1.0,
                ..LinkConfig::default()
            },
        );
        // The request executes at the site, but the reply never returns.
        let r = call_via(
            &link,
            SiteRequest::Hold {
                txn: crate::messages::TxnId(1),
                seq: 0,
                start: Time(0),
                duration: Dur(600),
                servers: 1,
                ttl: Duration::from_secs(5),
            },
            Duration::from_millis(150),
        );
        assert_eq!(r, None, "reply must be dropped");
        let stats = link.shutdown();
        assert_eq!(stats.delivered, 1);
        assert_eq!(stats.replies_dropped, 1);
        // Proof the site executed the call: the hold is in place.
        let q = s.call(query());
        assert_eq!(
            q,
            SiteReply::QueryResult {
                site: SiteId(0),
                available: 1
            }
        );
    }

    #[test]
    fn reordering_link_swaps_adjacent_requests() {
        let s = site();
        let link = FlakyLink::new(
            s.sender(),
            LinkConfig {
                // Every request wants to be held back; only one can be at a
                // time, so pairs swap.
                reorder_prob: 1.0,
                ..LinkConfig::default()
            },
        );
        // Send Abort(7) then Hold(7): in order, the hold would be granted
        // (abort of an unknown txn is a no-op... but it records a terminal),
        // reordered the hold goes first and is granted, then the abort
        // releases it. Use Query bracketing to observe effects instead of
        // relying on timing: send two queries and check both reply.
        let (tx_a, rx_a) = unbounded();
        let (tx_b, rx_b) = unbounded();
        link.sender()
            .send(Envelope {
                request: query(),
                reply_to: tx_a,
            })
            .unwrap();
        link.sender()
            .send(Envelope {
                request: query(),
                reply_to: tx_b,
            })
            .unwrap();
        assert!(rx_a.recv_timeout(Duration::from_secs(2)).is_ok());
        assert!(rx_b.recv_timeout(Duration::from_secs(2)).is_ok());
        let stats = link.shutdown();
        assert_eq!(stats.delivered, 2);
        assert!(stats.reordered >= 1);
        drop(s);
    }
}
