//! # coalloc-multisite
//!
//! Atomic cross-site resource co-allocation: sites are independent scheduler
//! domains (threads with message channels as the network); a coordinator
//! acquires tentative TTL-bounded **holds** for one fixed time window on
//! every involved site — always in ascending site order, so concurrent
//! coordinators cannot deadlock — then **commits** all-or-nothing. A denial
//! aborts the acquired prefix and retries the window shifted by `Delta_t`,
//! lifting the paper's single-site retry loop (Section 4.2) to the
//! multi-site setting.
//!
//! Failure handling: coordinator crashes or message loss leave holds that
//! expire after their TTL; late commits fail cleanly (`ok = false`) and are
//! compensated, so no capacity is ever leaked and no partial co-allocation
//! survives.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod coordinator;
pub mod messages;
pub mod network;
pub mod site;

pub use coordinator::{
    Coordinator, CoordinatorConfig, CoordinatorStats, MultiGrant, MultiRequest, MultiSiteError,
};
pub use messages::{Envelope, SiteId, SiteReply, SiteRequest, TxnId};
pub use network::{FlakyLink, LinkConfig, LinkStats};
pub use site::{SiteHandle, SiteStats};
