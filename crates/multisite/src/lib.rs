//! # coalloc-multisite
//!
//! Atomic cross-site resource co-allocation: sites are independent scheduler
//! domains (threads with message channels as the network); a coordinator
//! acquires tentative TTL-bounded **holds** for one fixed time window on
//! every involved site — always in ascending site order, so concurrent
//! coordinators cannot deadlock — then **commits** all-or-nothing. A denial
//! aborts the acquired prefix and retries the window shifted by `Delta_t`,
//! lifting the paper's single-site retry loop (Section 4.2) to the
//! multi-site setting.
//!
//! Failure handling: the protocol assumes **at-least-once delivery** — RPCs
//! time out and are retried with exponential backoff, links may drop,
//! duplicate or reorder messages, and sites may crash and restart losing
//! volatile state. Sites answer `Hold`/`Commit`/`Abort` idempotently via a
//! per-transaction outcome cache, commits report a three-valued
//! [`CommitOutcome`] so a retried commit is never mistaken for an expired
//! hold, and unresolved transactions are compensated (aborted everywhere,
//! undoing partial commits). Orphaned holds expire after their TTL, so no
//! capacity is ever leaked and no partial co-allocation survives. The
//! [`chaos`] module turns all of this into a soak harness with conservation
//! checks.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod chaos;
pub mod coordinator;
pub mod messages;
pub mod network;
pub mod site;

pub use chaos::{run_chaos, ChaosConfig, ChaosReport};
pub use coordinator::{
    Coordinator, CoordinatorConfig, CoordinatorStats, MultiGrant, MultiRequest, MultiSiteError,
    SiteEndpoint,
};
pub use messages::{CommitOutcome, Envelope, SiteId, SiteReply, SiteRequest, TxnId};
pub use network::{FlakyLink, LinkConfig, LinkStats};
pub use site::{SiteHandle, SiteStats};
