//! Chaos soak harness: concurrent coordinators over lossy, duplicating,
//! reordering links, with optional whole-site crash/restart injection —
//! and conservation checks over every statistics surface afterwards.
//!
//! [`run_chaos`] wires `coordinators × sites` independent [`FlakyLink`]s (so
//! every coordinator sees its own fault pattern), drives a random but
//! seeded workload through the full hold/commit protocol, drains, and
//! returns a [`ChaosReport`]. [`ChaosReport::verify`] asserts the invariants
//! the fault-tolerant protocol promises:
//!
//! 1. **No leaked holds** — per site, `holds_granted == commits +
//!    holds_aborted + expired + holds_lost` after the drain.
//! 2. **No lost or phantom commits** — the committed parts surviving at the
//!    sites exactly match the co-allocations the coordinators report granted
//!    (with a documented allowance for transactions a coordinator had to
//!    abandon as unresolved).
//! 3. **Liveness under message faults** — when no crashes are injected, at
//!    least 99% of the feasible requests (those not exhausted by capacity
//!    contention) eventually commit.
//!
//! Each site's scheduler additionally self-checks (`check_consistency`) at
//! shutdown, so structural corruption panics the site thread and fails the
//! run loudly.

use crate::coordinator::{
    Coordinator, CoordinatorConfig, CoordinatorStats, MultiRequest, MultiSiteError, SiteEndpoint,
};
use crate::messages::{SiteId, SiteRequest};
use crate::network::{FlakyLink, LinkConfig, LinkStats};
use crate::site::{SiteHandle, SiteStats};
use coalloc_core::prelude::{Dur, SchedulerConfig, Time};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Parameters of one chaos run.
#[derive(Clone, Copy, Debug)]
pub struct ChaosConfig {
    /// Number of sites.
    pub sites: u32,
    /// Servers per site.
    pub servers_per_site: u32,
    /// Concurrent coordinators.
    pub coordinators: u32,
    /// Co-allocation requests each coordinator issues.
    pub requests_per_coordinator: u32,
    /// Link fault template. Every (coordinator, site) link derives its own
    /// RNG seed from this template's seed.
    pub link: LinkConfig,
    /// Coordinator protocol template (timeouts, retries, TTL). Seeds are
    /// likewise derived per coordinator.
    pub coordinator: CoordinatorConfig,
    /// When set, a crash injector restarts a random site at this interval
    /// for the duration of the workload.
    pub crash_interval: Option<Duration>,
    /// Master seed; the whole run is a pure function of the config.
    pub seed: u64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            sites: 3,
            servers_per_site: 8,
            coordinators: 4,
            requests_per_coordinator: 25,
            link: LinkConfig {
                drop_prob: 0.05,
                duplicate_prob: 0.05,
                drop_reply_prob: 0.05,
                duplicate_reply_prob: 0.05,
                reorder_prob: 0.02,
                ..LinkConfig::default()
            },
            coordinator: CoordinatorConfig {
                rpc_timeout: Duration::from_millis(150),
                rpc_retries: 8,
                retry_base: Duration::from_millis(2),
                hold_ttl: Duration::from_secs(3),
                delta_t: Dur(60),
                r_max: 12,
                seed: 0,
            },
            crash_interval: None,
            seed: 0xC0FFEE,
        }
    }
}

/// Everything a chaos run measured.
#[derive(Clone, Debug)]
pub struct ChaosReport {
    /// Total requests issued.
    pub requests: u64,
    /// Requests that committed everywhere.
    pub granted: u64,
    /// Committed site-parts across all grants (what must survive at sites).
    pub granted_parts: u64,
    /// Requests that ran out of windows (capacity contention — counted as
    /// infeasible, not as protocol failures).
    pub exhausted: u64,
    /// Requests abandoned because a site stayed silent through all retries
    /// (the transaction was compensated; commits may have been undone).
    pub unresponsive: u64,
    /// Requests whose hold expired before the commit landed (compensated).
    pub commit_expired: u64,
    /// Site crashes injected.
    pub crashes_injected: u64,
    /// Aggregated coordinator counters.
    pub coordinators: CoordinatorStats,
    /// Per-site counters, indexed by site.
    pub sites: Vec<SiteStats>,
    /// Per-link counters (coordinator-major order).
    pub links: Vec<LinkStats>,
}

impl ChaosReport {
    /// Check the protocol's invariants; returns every violation found.
    pub fn verify(&self) -> Result<(), Vec<String>> {
        let mut errors = Vec::new();

        // 1. Per-site hold conservation: every granted hold ended in exactly
        //    one of commit / abort / TTL-expiry / crash-loss.
        for (i, s) in self.sites.iter().enumerate() {
            let accounted = s.commits + s.holds_aborted + s.expired + s.holds_lost;
            if s.holds_granted != accounted {
                errors.push(format!(
                    "site {i}: leaked holds — granted {} != commits {} + aborted {} \
                     + expired {} + lost {} (= {accounted})",
                    s.holds_granted, s.commits, s.holds_aborted, s.expired, s.holds_lost
                ));
            }
        }

        // 2. Commit conservation: surviving commits at the sites must match
        //    the parts of the co-allocations reported granted. Transactions
        //    abandoned as unresolved may legitimately leave extra durable
        //    commits (the compensating abort itself can be lost), bounded by
        //    sites-per-unresolved-txn.
        let net_commits: u64 = self
            .sites
            .iter()
            .map(|s| s.commits - s.commits_undone)
            .sum();
        let slack = self.unresponsive * self.sites.len() as u64;
        if net_commits < self.granted_parts || net_commits > self.granted_parts + slack {
            errors.push(format!(
                "commit conservation: {} net commits at sites, expected {} \
                 (+ at most {slack} from unresolved txns)",
                net_commits, self.granted_parts
            ));
        }
        if self.coordinators.granted != self.granted {
            errors.push(format!(
                "coordinator stats disagree with driver: {} vs {} granted",
                self.coordinators.granted, self.granted
            ));
        }

        // 3. Liveness: without crashes, ≥99% of feasible requests commit.
        if self.crashes_injected == 0 {
            let feasible = self.requests - self.exhausted;
            if feasible > 0 && (self.granted as f64) < 0.99 * feasible as f64 {
                errors.push(format!(
                    "liveness: only {}/{} feasible requests committed (<99%)",
                    self.granted, feasible
                ));
            }
        }

        if errors.is_empty() {
            Ok(())
        } else {
            Err(errors)
        }
    }

    /// Human-readable summary.
    pub fn summary(&self) -> String {
        let delivered: u64 = self.links.iter().map(|l| l.delivered).sum();
        let dropped: u64 = self
            .links
            .iter()
            .map(|l| l.dropped + l.replies_dropped)
            .sum();
        let duplicated: u64 = self
            .links
            .iter()
            .map(|l| l.duplicated + l.replies_duplicated)
            .sum();
        let reordered: u64 = self.links.iter().map(|l| l.reordered).sum();
        format!(
            "requests {} | granted {} | exhausted {} | unresponsive {} | \
             commit-expired {} | crashes {} | rpc retries {} | compensations {} | \
             link: {delivered} delivered / {dropped} dropped / {duplicated} duplicated / \
             {reordered} reordered",
            self.requests,
            self.granted,
            self.exhausted,
            self.unresponsive,
            self.commit_expired,
            self.crashes_injected,
            self.coordinators.rpc_retries,
            self.coordinators.compensations,
        )
    }
}

/// Split a master seed into decorrelated per-component seeds.
fn mix(seed: u64, salt: u64) -> u64 {
    let mut z = seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One coordinator thread's contribution to the report.
struct WorkerResult {
    granted: u64,
    granted_parts: u64,
    exhausted: u64,
    unresponsive: u64,
    commit_expired: u64,
    stats: CoordinatorStats,
    links: Vec<LinkStats>,
}

/// Generate one random-but-seeded multi-site request. Windows land on the
/// scheduler's slot grid within the first half of the horizon, demands are
/// light (1–2 servers at 1–`sites` sites), so most requests are feasible
/// within `r_max` window shifts.
fn random_request(rng: &mut SmallRng, sites: u32, servers_per_site: u32) -> MultiRequest {
    let n_sites = rng.random_range(1..=sites.min(3)) as usize;
    let mut parts = BTreeMap::new();
    while parts.len() < n_sites {
        let site = SiteId(rng.random_range(0..sites));
        let max = 2.min(servers_per_site);
        parts.entry(site).or_insert(rng.random_range(1..=max));
    }
    let start = Time(60 * rng.random_range(0..60i64));
    let duration = Dur(60 * rng.random_range(1..=10i64));
    MultiRequest {
        parts,
        earliest_start: start,
        duration,
    }
}

/// Run one chaos soak: spawn the grid, drive the workload, drain, report.
pub fn run_chaos(cfg: ChaosConfig) -> ChaosReport {
    assert!(cfg.sites > 0 && cfg.coordinators > 0);
    let sched_cfg = SchedulerConfig::builder()
        .tau(Dur(60))
        .horizon(Dur(7200))
        .delta_t(Dur(60))
        .build();
    let sites: Vec<SiteHandle> = (0..cfg.sites)
        .map(|i| SiteHandle::spawn(SiteId(i), cfg.servers_per_site, sched_cfg))
        .collect();

    // Optional crash injector: restarts a random site every interval until
    // the workload finishes. Crash messages travel on the reliable channel —
    // a crash is a site event, not a network one.
    let stop = Arc::new(AtomicBool::new(false));
    let injector = cfg.crash_interval.map(|interval| {
        let senders: Vec<_> = sites.iter().map(|s| s.sender()).collect();
        let stop = Arc::clone(&stop);
        let mut rng = SmallRng::seed_from_u64(mix(cfg.seed, 0xC7A5));
        std::thread::spawn(move || {
            let mut crashes = 0u64;
            'outer: while !stop.load(Ordering::Relaxed) {
                // Sleep in short slices so the injector notices the end of
                // the workload promptly even with long intervals.
                let wake = std::time::Instant::now() + interval;
                while std::time::Instant::now() < wake {
                    if stop.load(Ordering::Relaxed) {
                        break 'outer;
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                let victim = rng.random_range(0..senders.len());
                let (reply_tx, reply_rx) = crossbeam::channel::unbounded();
                if senders[victim]
                    .send(crate::messages::Envelope {
                        request: SiteRequest::Crash,
                        reply_to: reply_tx,
                    })
                    .is_ok()
                    && reply_rx.recv_timeout(Duration::from_secs(5)).is_ok()
                {
                    crashes += 1;
                }
            }
            crashes
        })
    });

    // One thread per coordinator, each with its own flaky link to every
    // site so fault patterns are independent.
    let workers: Vec<std::thread::JoinHandle<WorkerResult>> = (0..cfg.coordinators)
        .map(|c| {
            let site_senders: Vec<_> = sites.iter().map(|s| (s.id, s.sender())).collect();
            std::thread::Builder::new()
                .name(format!("chaos-coord-{c}"))
                .spawn(move || {
                    let links: Vec<FlakyLink> = site_senders
                        .iter()
                        .enumerate()
                        .map(|(i, (_, tx))| {
                            FlakyLink::new(
                                tx.clone(),
                                LinkConfig {
                                    seed: mix(cfg.seed, (c as u64) << 16 | i as u64),
                                    ..cfg.link
                                },
                            )
                        })
                        .collect();
                    let endpoints = site_senders
                        .iter()
                        .zip(&links)
                        .map(|((id, _), link)| SiteEndpoint::new(*id, link.sender()));
                    let mut coord = Coordinator::from_endpoints(
                        endpoints,
                        CoordinatorConfig {
                            seed: mix(cfg.seed, 0xB0_0000 | c as u64),
                            ..cfg.coordinator
                        },
                    );
                    let mut rng = SmallRng::seed_from_u64(mix(cfg.seed, 0xA0_0000 | c as u64));
                    let mut res = WorkerResult {
                        granted: 0,
                        granted_parts: 0,
                        exhausted: 0,
                        unresponsive: 0,
                        commit_expired: 0,
                        stats: CoordinatorStats::default(),
                        links: Vec::new(),
                    };
                    for _ in 0..cfg.requests_per_coordinator {
                        let req = random_request(&mut rng, cfg.sites, cfg.servers_per_site);
                        match coord.co_allocate(&req) {
                            Ok(grant) => {
                                res.granted += 1;
                                res.granted_parts += grant.parts.len() as u64;
                            }
                            Err(MultiSiteError::Exhausted { .. }) => res.exhausted += 1,
                            Err(MultiSiteError::SiteUnresponsive(_)) => res.unresponsive += 1,
                            Err(MultiSiteError::CommitExpired(_)) => res.commit_expired += 1,
                            Err(MultiSiteError::UnknownSite(_)) => {
                                unreachable!("driver only names known sites")
                            }
                        }
                    }
                    res.stats = *coord.stats();
                    drop(coord);
                    res.links = links.into_iter().map(FlakyLink::shutdown).collect();
                    res
                })
                .expect("spawn chaos coordinator")
        })
        .collect();

    let results: Vec<WorkerResult> = workers
        .into_iter()
        .map(|w| w.join().expect("chaos coordinator panicked"))
        .collect();
    stop.store(true, Ordering::Relaxed);
    let crashes_injected = injector.map_or(0, |j| j.join().expect("injector panicked"));

    // Drain: any hold orphaned by lost aborts lives at most `hold_ttl`; wait
    // it out (plus the sweep period) so conservation can be exact.
    std::thread::sleep(cfg.coordinator.hold_ttl + Duration::from_millis(200));

    let site_stats: Vec<SiteStats> = sites.into_iter().map(SiteHandle::shutdown).collect();

    let mut report = ChaosReport {
        requests: (cfg.coordinators * cfg.requests_per_coordinator) as u64,
        granted: 0,
        granted_parts: 0,
        exhausted: 0,
        unresponsive: 0,
        commit_expired: 0,
        crashes_injected,
        coordinators: CoordinatorStats::default(),
        sites: site_stats,
        links: Vec::new(),
    };
    for r in results {
        report.granted += r.granted;
        report.granted_parts += r.granted_parts;
        report.exhausted += r.exhausted;
        report.unresponsive += r.unresponsive;
        report.commit_expired += r.commit_expired;
        report.coordinators.granted += r.stats.granted;
        report.coordinators.failed += r.stats.failed;
        report.coordinators.aborts += r.stats.aborts;
        report.coordinators.window_attempts += r.stats.window_attempts;
        report.coordinators.rpc_retries += r.stats.rpc_retries;
        report.coordinators.compensations += r.stats.compensations;
        report.coordinators.duplicate_commits += r.stats.duplicate_commits;
        report.links.extend(r.links);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A fault-free chaos run: everything feasible commits, nothing leaks.
    #[test]
    fn clean_run_conserves_everything() {
        let defaults = ChaosConfig::default();
        let report = run_chaos(ChaosConfig {
            coordinators: 2,
            requests_per_coordinator: 10,
            link: LinkConfig::default(),
            coordinator: CoordinatorConfig {
                // Reliable links: no orphaned holds to wait out.
                hold_ttl: Duration::from_millis(300),
                ..defaults.coordinator
            },
            seed: 7,
            ..defaults
        });
        assert_eq!(report.requests, 20);
        report.verify().unwrap_or_else(|e| panic!("{e:?}"));
        assert_eq!(report.unresponsive, 0);
        assert_eq!(report.commit_expired, 0);
    }
}
