//! The WAL gauges behind the admin plane's `/status` — `wal_segments_live`,
//! `wal_bytes_since_snapshot`, `wal_last_fsync_batch` — must move through a
//! roll/sync/snapshot/truncation cycle and agree with the `Wal` accessors.
//!
//! Kept in its own integration-test binary: the gauges are process-global,
//! so this test owns the whole process to read them deterministically.

use coalloc_wal::{Wal, WalConfig};

fn gauge(name: &'static str) -> i64 {
    obs::metrics::gauge(name).get()
}

#[test]
fn gauges_move_through_a_snapshot_truncation_cycle() {
    let dir = std::env::temp_dir().join(format!("wal-gauges-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut cfg = WalConfig::new(&dir);
    cfg.segment_bytes = 128; // tiny: force rolls
    cfg.fsync = false; // tmpfs-friendly; batching bookkeeping is identical

    let (mut wal, _rec) = Wal::open(cfg.clone()).unwrap();
    assert_eq!(gauge("wal_segments_live"), 1);
    assert_eq!(gauge("wal_bytes_since_snapshot"), 0);
    assert_eq!(gauge("wal_last_fsync_batch"), 0);

    // Appends grow the byte gauge record by record, before any sync.
    wal.append(b"submit 0 0 3600 4").unwrap();
    wal.append(b"release 0").unwrap();
    let after_two = gauge("wal_bytes_since_snapshot");
    assert!(after_two > 0, "bytes gauge moves on append");
    assert_eq!(after_two as u64, wal.bytes_since_snapshot());

    // One sync covering both records: last-batch gauge records the group.
    wal.sync().unwrap();
    assert_eq!(gauge("wal_last_fsync_batch"), 2);
    wal.append(b"submit 1 0 60 1").unwrap();
    wal.sync().unwrap();
    assert_eq!(gauge("wal_last_fsync_batch"), 1, "latest batch, not a max");

    // Fill past segment_bytes so the log rolls: live segments grow.
    for i in 0..40u32 {
        wal.append(format!("submit {i} 0 3600 2").as_bytes()).unwrap();
        wal.sync().unwrap();
    }
    assert!(wal.segments_live() > 1, "fixture must roll segments");
    assert_eq!(gauge("wal_segments_live") as u64, wal.segments_live());
    let before_snap = gauge("wal_bytes_since_snapshot");
    assert!(before_snap > after_two);

    // Snapshot install truncates: both gauges collapse.
    wal.install_snapshot(b"STATE").unwrap();
    assert_eq!(gauge("wal_segments_live"), 1);
    assert_eq!(wal.segments_live(), 1);
    assert_eq!(gauge("wal_bytes_since_snapshot"), 0);

    // And they resume moving afterwards.
    wal.append(b"submit 99 0 60 1").unwrap();
    assert!(gauge("wal_bytes_since_snapshot") > 0);
    drop(wal);

    // Reopen: the replayed tail counts as bytes-since-snapshot again.
    let (wal, rec) = Wal::open(cfg).unwrap();
    assert_eq!(rec.records.len(), 0, "unsynced tail record was lost, as designed");
    assert_eq!(gauge("wal_bytes_since_snapshot") as u64, wal.bytes_since_snapshot());
    assert_eq!(gauge("wal_segments_live") as u64, wal.segments_live());
    std::fs::remove_dir_all(&dir).unwrap();
}
