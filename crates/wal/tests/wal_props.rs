//! Property tests for the WAL's recovery guarantees: whatever a crash does
//! to the tail of the log, recovery yields a *prefix* of the synced records
//! — never an invented record, never a reordering, never a panic.

use coalloc_wal::{Wal, WalConfig};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn tmp(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "coalloc-wal-props-{}-{tag}-{n}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Write `records`, syncing after every one, and return the single segment
/// file backing them (large segment bound: nothing rolls).
fn write_all(dir: &PathBuf, records: &[Vec<u8>]) -> PathBuf {
    let (mut wal, _) = Wal::open(WalConfig::new(dir)).expect("open fresh");
    for r in records {
        wal.append(r).expect("append");
    }
    wal.sync().expect("sync");
    let seg = wal.active_segment();
    drop(wal);
    dir.join(format!("seg-{seg:020}.log"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Truncating the last segment at ANY byte boundary recovers a prefix
    /// of the records, with the rest counted as torn.
    #[test]
    fn truncation_recovers_a_prefix(
        recs in prop::collection::vec(prop::collection::vec(0u8..=255, 0..40), 1..20),
        cut_fraction in 0.0f64..1.0,
    ) {
        let dir = tmp("truncate");
        let seg = write_all(&dir, &recs);
        let len = std::fs::metadata(&seg).unwrap().len();
        let cut = (len as f64 * cut_fraction) as u64;
        let f = std::fs::OpenOptions::new().write(true).open(&seg).unwrap();
        f.set_len(cut).unwrap();
        drop(f);

        let (_w, rec) = Wal::open(WalConfig::new(&dir)).expect("recovery must not fail");
        prop_assert!(rec.records.len() <= recs.len());
        for (got, want) in rec.records.iter().zip(recs.iter()) {
            prop_assert_eq!(got, want, "recovered records must be an in-order prefix");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Flipping ANY byte of the last segment still recovers an in-order
    /// prefix (everything from the damaged frame on is dropped as torn).
    #[test]
    fn byte_flip_in_last_segment_recovers_a_prefix(
        recs in prop::collection::vec(prop::collection::vec(0u8..=255, 0..40), 1..20),
        victim_fraction in 0.0f64..1.0,
        flip in 1u8..=255,
    ) {
        let dir = tmp("flip");
        let seg = write_all(&dir, &recs);
        let mut bytes = std::fs::read(&seg).unwrap();
        prop_assert!(!bytes.is_empty());
        let victim = ((bytes.len() - 1) as f64 * victim_fraction) as usize;
        bytes[victim] ^= flip;
        std::fs::write(&seg, &bytes).unwrap();

        let (_w, rec) = Wal::open(WalConfig::new(&dir)).expect("recovery must not fail");
        // A flip always invalidates the frame it lands in (the CRC is over
        // the payload, the length gates the CRC's position): at least that
        // record and everything after it must be dropped as torn.
        prop_assert!(rec.records.len() < recs.len());
        prop_assert!(rec.torn_bytes > 0);
        for (got, want) in rec.records.iter().zip(recs.iter()) {
            prop_assert_eq!(got, want, "recovered records must be an in-order prefix");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Appending arbitrary garbage after the valid tail (a torn concurrent
    /// write) is truncated away and appends resume cleanly afterwards.
    #[test]
    fn garbage_tail_roundtrips_after_repair(
        recs in prop::collection::vec(prop::collection::vec(0u8..=255, 0..40), 1..12),
        garbage in prop::collection::vec(0u8..=255, 1..64),
    ) {
        let dir = tmp("garbage");
        let seg = write_all(&dir, &recs);
        let mut bytes = std::fs::read(&seg).unwrap();
        bytes.extend_from_slice(&garbage);
        std::fs::write(&seg, &bytes).unwrap();

        let (mut wal, _rec) = Wal::open(WalConfig::new(&dir)).expect("recovery must not fail");
        // Whether the garbage parsed as checksum-valid frames (astronomically
        // unlikely) or was torn away, a follow-up append must survive a
        // clean reopen with no residual tear.
        wal.append(b"after repair").unwrap();
        wal.sync().unwrap();
        drop(wal);
        let (_w, rec2) = Wal::open(WalConfig::new(&dir)).expect("reopen");
        prop_assert_eq!(rec2.torn_bytes, 0);
        prop_assert_eq!(rec2.records.last().unwrap().as_slice(), b"after repair");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
