//! # coalloc-wal
//!
//! A dependency-free (std-only) write-ahead log for the scheduler's
//! commitments: append-only segment files with per-record length+CRC32
//! framing, group-commit fsync batching driven by the caller, periodic
//! snapshot installation with segment truncation, and torn-tail detection
//! on open.
//!
//! The paper defines the scheduler's state as "the set of commitments that
//! the system has made" (Section 2); this crate makes those commitments
//! durable. The serving path (`crates/net`) appends every state-changing
//! command *before* releasing its reply, so an acknowledged grant can never
//! be lost to a crash, and replays the log on startup to recover the exact
//! pre-crash state (DESIGN.md §13).
//!
//! ## On-disk layout
//!
//! A WAL directory holds numbered segment files and snapshot files:
//!
//! ```text
//! wal/
//!   snap-00000000000000000007.snap   state covering segments < 7
//!   seg-00000000000000000007.log     records appended after that state
//!   seg-00000000000000000008.log     (rolled when a segment fills up)
//! ```
//!
//! Every record (and the snapshot payload) is framed as
//! `[len: u32 LE][crc32(payload): u32 LE][payload]`. Recovery replays the
//! newest snapshot whose frame verifies, then every record of the segments
//! numbered at or above it, in order. A partial or corrupt frame at the end
//! of the *last* segment is a torn tail from the crash: it is counted,
//! truncated away, and appends resume at the cut. A bad frame anywhere else
//! is real corruption and surfaces as [`WalError::Corrupt`].
//!
//! ## Group commit
//!
//! [`Wal::append`] buffers; [`Wal::sync`] makes everything appended so far
//! durable with one fsync and records the batch size in the
//! `wal_fsync_batch_size` histogram. The caller decides the batching
//! policy (the net scheduler thread fsyncs once per burst of queued
//! commands, or on a configurable flush interval), which is what amortizes
//! the durability tax under concurrent load.
//!
//! ```
//! use coalloc_wal::{Wal, WalConfig};
//!
//! let dir = std::env::temp_dir().join(format!("wal-doc-{}", std::process::id()));
//! let _ = std::fs::remove_dir_all(&dir);
//!
//! let (mut wal, recovery) = Wal::open(WalConfig::new(&dir)).unwrap();
//! assert!(recovery.records.is_empty());
//! wal.append(b"submit 0 0 50 2").unwrap();
//! wal.append(b"release 0").unwrap();
//! wal.sync().unwrap(); // both records durable with one fsync
//! drop(wal);
//!
//! let (_wal, recovery) = Wal::open(WalConfig::new(&dir)).unwrap();
//! assert_eq!(recovery.records.len(), 2);
//! assert_eq!(recovery.records[0], b"submit 0 0 50 2");
//! # std::fs::remove_dir_all(&dir).unwrap();
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod crc;

use obs::{LazyCounter, LazyGauge, LazyHistogram};
use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

static APPENDS: LazyCounter = LazyCounter::new("wal_append_total");
static APPEND_BYTES: LazyCounter = LazyCounter::new("wal_append_bytes_total");
static FSYNCS: LazyCounter = LazyCounter::new("wal_fsync_total");
static BATCH: LazyHistogram = LazyHistogram::new("wal_fsync_batch_size");
static SNAPSHOTS: LazyCounter = LazyCounter::new("wal_snapshot_total");
static SEGMENTS_REMOVED: LazyCounter = LazyCounter::new("wal_segments_removed_total");
static TORN_BYTES: LazyCounter = LazyCounter::new("wal_torn_bytes_total");
// Live gauges for the admin plane's `/status` (DESIGN.md §8). They mirror
// the most recently updated `Wal` in this process — in production exactly
// one log is open per server.
static SEGMENTS_LIVE: LazyGauge = LazyGauge::new("wal_segments_live");
static BYTES_SINCE_SNAPSHOT: LazyGauge = LazyGauge::new("wal_bytes_since_snapshot");
static LAST_FSYNC_BATCH: LazyGauge = LazyGauge::new("wal_last_fsync_batch");

/// Frame header size: 4 bytes length + 4 bytes CRC32.
const HEADER: usize = 8;

/// Upper bound on a single record's payload. Anything larger in a frame
/// header is treated as corruption (or a torn tail), never allocated.
pub const MAX_RECORD: u32 = 16 * 1024 * 1024;

/// Configuration of a [`Wal`].
#[derive(Clone, Debug)]
pub struct WalConfig {
    /// Directory holding the segment and snapshot files (created if absent).
    pub dir: PathBuf,
    /// Roll to a new segment once the active one reaches this many bytes.
    pub segment_bytes: u64,
    /// Whether [`Wal::sync`] actually fsyncs. `false` only flushes to the
    /// OS, which loses crash durability — for tests and baseline benches.
    pub fsync: bool,
}

impl WalConfig {
    /// A configuration with the defaults: 8 MiB segments, fsync on.
    pub fn new(dir: impl Into<PathBuf>) -> WalConfig {
        WalConfig {
            dir: dir.into(),
            segment_bytes: 8 * 1024 * 1024,
            fsync: true,
        }
    }
}

/// Errors from the log.
#[derive(Debug)]
pub enum WalError {
    /// An underlying filesystem operation failed.
    Io(std::io::Error),
    /// A frame failed to verify somewhere other than the tail of the last
    /// segment — the log is damaged beyond a crash's reach and must not be
    /// silently repaired.
    Corrupt {
        /// Sequence number of the damaged segment.
        segment: u64,
        /// Byte offset of the bad frame within it.
        offset: u64,
        /// What failed to verify.
        reason: &'static str,
    },
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal io error: {e}"),
            WalError::Corrupt {
                segment,
                offset,
                reason,
            } => write!(f, "wal segment {segment} corrupt at byte {offset}: {reason}"),
        }
    }
}

impl std::error::Error for WalError {}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> WalError {
        WalError::Io(e)
    }
}

/// Everything [`Wal::open`] recovered from the directory.
#[derive(Debug)]
pub struct Recovery {
    /// Payload of the newest snapshot whose frame verified, if any.
    pub snapshot: Option<Vec<u8>>,
    /// Every record appended after that snapshot, in append order.
    pub records: Vec<Vec<u8>>,
    /// Bytes dropped from the torn tail of the last segment (0 after a
    /// clean shutdown).
    pub torn_bytes: u64,
    /// Snapshot files that failed verification and were skipped in favor of
    /// an older one.
    pub snapshots_skipped: u64,
}

/// An open write-ahead log. See the [crate docs](crate) for the layout and
/// recovery rules.
pub struct Wal {
    cfg: WalConfig,
    active: File,
    active_seq: u64,
    active_len: u64,
    buffered: Vec<u8>,
    unsynced_records: u64,
    since_snapshot: u64,
    first_seq: u64,
    since_snapshot_bytes: u64,
}

fn seg_name(seq: u64) -> String {
    format!("seg-{seq:020}.log")
}

fn snap_name(seq: u64) -> String {
    format!("snap-{seq:020}.snap")
}

/// Best-effort directory fsync, so renames and creates are durable. Opening
/// a directory read-only for fsync works on the Unixes we target; elsewhere
/// the open may fail and the rename is only as durable as the OS makes it.
fn sync_dir(dir: &Path) {
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
}

fn frame_into(out: &mut Vec<u8>, payload: &[u8]) {
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc::crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Outcome of parsing one frame out of `bytes[offset..]`.
enum Parsed<'a> {
    Record(&'a [u8], usize),
    /// Nothing after `offset` (a clean end).
    End,
    /// The remaining bytes do not form a valid frame.
    Bad(&'static str),
}

fn parse_frame(bytes: &[u8], offset: usize) -> Parsed<'_> {
    let rest = &bytes[offset..];
    if rest.is_empty() {
        return Parsed::End;
    }
    if rest.len() < HEADER {
        return Parsed::Bad("truncated header");
    }
    let len = u32::from_le_bytes(rest[..4].try_into().expect("4 bytes")) as usize;
    if len > MAX_RECORD as usize {
        return Parsed::Bad("oversized record length");
    }
    if rest.len() < HEADER + len {
        return Parsed::Bad("truncated payload");
    }
    let crc = u32::from_le_bytes(rest[4..8].try_into().expect("4 bytes"));
    let payload = &rest[HEADER..HEADER + len];
    if crc::crc32(payload) != crc {
        return Parsed::Bad("checksum mismatch");
    }
    Parsed::Record(payload, HEADER + len)
}

/// The numbered WAL files found in a directory.
struct DirListing {
    segs: Vec<u64>,
    snaps: Vec<u64>,
}

fn list_dir(dir: &Path) -> Result<DirListing, WalError> {
    let mut segs = Vec::new();
    let mut snaps = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(seq) = name
            .strip_prefix("seg-")
            .and_then(|s| s.strip_suffix(".log"))
            .and_then(|s| s.parse::<u64>().ok())
        {
            segs.push(seq);
        } else if let Some(seq) = name
            .strip_prefix("snap-")
            .and_then(|s| s.strip_suffix(".snap"))
            .and_then(|s| s.parse::<u64>().ok())
        {
            snaps.push(seq);
        } else if name.ends_with(".tmp") {
            // A snapshot that never finished installing: dead weight.
            let _ = fs::remove_file(entry.path());
        }
    }
    segs.sort_unstable();
    snaps.sort_unstable();
    Ok(DirListing { segs, snaps })
}

impl Wal {
    /// Open (or create) the log in `cfg.dir`, recovering whatever it holds:
    /// the newest verifiable snapshot, every record after it, and a
    /// truncated torn tail if the process died mid-append. Returns the log
    /// positioned to append after the last valid record.
    pub fn open(cfg: WalConfig) -> Result<(Wal, Recovery), WalError> {
        fs::create_dir_all(&cfg.dir)?;
        let listing = list_dir(&cfg.dir)?;

        // Newest snapshot whose single frame verifies; damaged ones are
        // skipped so one bad write cannot brick recovery.
        let mut snapshot: Option<Vec<u8>> = None;
        let mut snap_seq = 0u64;
        let mut snapshots_skipped = 0u64;
        for &seq in listing.snaps.iter().rev() {
            let bytes = fs::read(cfg.dir.join(snap_name(seq)))?;
            match parse_frame(&bytes, 0) {
                Parsed::Record(payload, consumed) if consumed == bytes.len() => {
                    snapshot = Some(payload.to_vec());
                    snap_seq = seq;
                    break;
                }
                _ => snapshots_skipped += 1,
            }
        }

        // Segments covered by the snapshot (and snapshots older than the
        // chosen one) are garbage from an interrupted truncation.
        for &seq in &listing.segs {
            if seq < snap_seq {
                let _ = fs::remove_file(cfg.dir.join(seg_name(seq)));
            }
        }
        for &seq in &listing.snaps {
            if seq < snap_seq {
                let _ = fs::remove_file(cfg.dir.join(snap_name(seq)));
            }
        }
        let segs: Vec<u64> = listing.segs.into_iter().filter(|&s| s >= snap_seq).collect();
        if snapshot.is_some() && !segs.is_empty() && segs[0] != snap_seq {
            return Err(WalError::Corrupt {
                segment: segs[0],
                offset: 0,
                reason: "records between the snapshot and the first segment are missing",
            });
        }
        for w in segs.windows(2) {
            if w[1] != w[0] + 1 {
                return Err(WalError::Corrupt {
                    segment: w[0] + 1,
                    offset: 0,
                    reason: "segment sequence has a gap",
                });
            }
        }

        // Replay every record; a bad frame is a torn tail only in the last
        // segment, where it is truncated away.
        let mut records = Vec::new();
        let mut torn_bytes = 0u64;
        let mut replayed_bytes = 0u64;
        for (i, &seq) in segs.iter().enumerate() {
            let path = cfg.dir.join(seg_name(seq));
            let bytes = fs::read(&path)?;
            let mut offset = 0usize;
            loop {
                match parse_frame(&bytes, offset) {
                    Parsed::Record(payload, consumed) => {
                        records.push(payload.to_vec());
                        offset += consumed;
                    }
                    Parsed::End => break,
                    Parsed::Bad(reason) => {
                        if i + 1 != segs.len() {
                            return Err(WalError::Corrupt {
                                segment: seq,
                                offset: offset as u64,
                                reason,
                            });
                        }
                        torn_bytes = (bytes.len() - offset) as u64;
                        let f = OpenOptions::new().write(true).open(&path)?;
                        f.set_len(offset as u64)?;
                        f.sync_all()?;
                        break;
                    }
                }
            }
            replayed_bytes += offset as u64;
        }
        TORN_BYTES.add(torn_bytes);

        // The active segment: the last one on disk, or a fresh genesis.
        let active_seq = match segs.last() {
            Some(&seq) => seq,
            None => snap_seq.max(1),
        };
        let path = cfg.dir.join(seg_name(active_seq));
        let active = OpenOptions::new().create(true).append(true).open(&path)?;
        let active_len = active.metadata()?.len();
        sync_dir(&cfg.dir);

        let wal = Wal {
            cfg,
            active,
            active_seq,
            active_len,
            buffered: Vec::with_capacity(4096),
            unsynced_records: 0,
            since_snapshot: records.len() as u64,
            first_seq: segs.first().copied().unwrap_or(active_seq),
            since_snapshot_bytes: replayed_bytes,
        };
        SEGMENTS_LIVE.set(wal.segments_live() as i64);
        BYTES_SINCE_SNAPSHOT.set(wal.since_snapshot_bytes as i64);
        LAST_FSYNC_BATCH.set(0);
        Ok((
            wal,
            Recovery {
                snapshot,
                records,
                torn_bytes,
                snapshots_skipped,
            },
        ))
    }

    /// Append one record. The record is *buffered*, not yet durable: call
    /// [`Wal::sync`] before acting on it (releasing a reply, acknowledging
    /// a commit). Rolls to a new segment when the active one is full.
    pub fn append(&mut self, payload: &[u8]) -> Result<(), WalError> {
        assert!(
            payload.len() <= MAX_RECORD as usize,
            "record exceeds MAX_RECORD"
        );
        if self.active_len + self.buffered.len() as u64 >= self.cfg.segment_bytes {
            self.roll()?;
        }
        frame_into(&mut self.buffered, payload);
        self.unsynced_records += 1;
        self.since_snapshot += 1;
        self.since_snapshot_bytes += (payload.len() + HEADER) as u64;
        APPENDS.inc();
        APPEND_BYTES.add((payload.len() + HEADER) as u64);
        BYTES_SINCE_SNAPSHOT.set(self.since_snapshot_bytes as i64);
        Ok(())
    }

    /// Make every appended record durable: one write, one fsync. A no-op
    /// when nothing is pending. The number of records the fsync covered is
    /// recorded in the `wal_fsync_batch_size` histogram — under concurrent
    /// load this is the group-commit batch.
    pub fn sync(&mut self) -> Result<(), WalError> {
        if self.unsynced_records == 0 {
            return Ok(());
        }
        self.active.write_all(&self.buffered)?;
        self.active_len += self.buffered.len() as u64;
        self.buffered.clear();
        if self.cfg.fsync {
            self.active.sync_data()?;
        }
        FSYNCS.inc();
        BATCH.observe(self.unsynced_records);
        LAST_FSYNC_BATCH.set(self.unsynced_records as i64);
        self.unsynced_records = 0;
        Ok(())
    }

    /// Finish the active segment and start the next one.
    fn roll(&mut self) -> Result<(), WalError> {
        self.sync()?;
        let seq = self.active_seq + 1;
        let path = self.cfg.dir.join(seg_name(seq));
        self.active = OpenOptions::new().create_new(true).append(true).open(&path)?;
        self.active_seq = seq;
        self.active_len = 0;
        sync_dir(&self.cfg.dir);
        SEGMENTS_LIVE.set(self.segments_live() as i64);
        Ok(())
    }

    /// Install `state` as the new recovery base and truncate the log: after
    /// this returns, recovery loads `state` and replays only records
    /// appended from now on. Pending records are synced first, the snapshot
    /// is written to a temporary file and atomically renamed, and only then
    /// are the superseded segments deleted — a crash at any point recovers
    /// either the old base plus the full log, or the new base.
    pub fn install_snapshot(&mut self, state: &[u8]) -> Result<(), WalError> {
        self.sync()?;
        // New segment first: the snapshot's sequence number must point at a
        // segment that exists, and records appended after the snapshot must
        // not land in a segment the truncation below deletes.
        let seq = self.active_seq + 1;
        let seg_path = self.cfg.dir.join(seg_name(seq));
        self.active = OpenOptions::new().create_new(true).append(true).open(&seg_path)?;
        let old_seq = self.active_seq;
        self.active_seq = seq;
        self.active_len = 0;
        sync_dir(&self.cfg.dir);

        let mut framed = Vec::with_capacity(state.len() + HEADER);
        frame_into(&mut framed, state);
        let tmp = self.cfg.dir.join(format!("snap-{seq:020}.tmp"));
        let final_path = self.cfg.dir.join(snap_name(seq));
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&framed)?;
            f.sync_all()?;
        }
        fs::rename(&tmp, &final_path)?;
        sync_dir(&self.cfg.dir);
        SNAPSHOTS.inc();

        // The new base is durable: everything before it is garbage.
        let listing = list_dir(&self.cfg.dir)?;
        for s in listing.segs.into_iter().filter(|&s| s <= old_seq) {
            if fs::remove_file(self.cfg.dir.join(seg_name(s))).is_ok() {
                SEGMENTS_REMOVED.inc();
            }
        }
        for s in listing.snaps.into_iter().filter(|&s| s < seq) {
            let _ = fs::remove_file(self.cfg.dir.join(snap_name(s)));
        }
        sync_dir(&self.cfg.dir);
        self.since_snapshot = 0;
        self.since_snapshot_bytes = 0;
        self.first_seq = seq;
        SEGMENTS_LIVE.set(self.segments_live() as i64);
        BYTES_SINCE_SNAPSHOT.set(0);
        Ok(())
    }

    /// Records appended since the last [`Wal::install_snapshot`] (or since
    /// recovery counted the replayed tail). The caller's snapshot cadence.
    pub fn records_since_snapshot(&self) -> u64 {
        self.since_snapshot
    }

    /// Records appended but not yet made durable by [`Wal::sync`].
    pub fn unsynced_records(&self) -> u64 {
        self.unsynced_records
    }

    /// Sequence number of the segment currently receiving appends.
    pub fn active_segment(&self) -> u64 {
        self.active_seq
    }

    /// Number of segment files currently live on disk (oldest kept through
    /// the active one). Exported as the `wal_segments_live` gauge.
    pub fn segments_live(&self) -> u64 {
        self.active_seq - self.first_seq + 1
    }

    /// Bytes appended (framed) since the last snapshot install, including
    /// the tail replayed at recovery. Exported as the
    /// `wal_bytes_since_snapshot` gauge; the admin plane's `/status` shows
    /// it so an operator can see how much replay a crash would cost.
    pub fn bytes_since_snapshot(&self) -> u64 {
        self.since_snapshot_bytes
    }

    /// The directory this log lives in.
    pub fn dir(&self) -> &Path {
        &self.cfg.dir
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("coalloc-wal-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn reopen(dir: &Path) -> (Wal, Recovery) {
        Wal::open(WalConfig::new(dir)).expect("open")
    }

    #[test]
    fn append_sync_reopen_roundtrip() {
        let dir = tmp("roundtrip");
        let (mut wal, rec) = reopen(&dir);
        assert!(rec.snapshot.is_none() && rec.records.is_empty());
        for i in 0..100u32 {
            wal.append(format!("record {i}").as_bytes()).unwrap();
        }
        assert_eq!(wal.unsynced_records(), 100);
        wal.sync().unwrap();
        assert_eq!(wal.unsynced_records(), 0);
        drop(wal);
        let (_w, rec) = reopen(&dir);
        assert_eq!(rec.records.len(), 100);
        assert_eq!(rec.records[7], b"record 7");
        assert_eq!(rec.torn_bytes, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unsynced_records_are_not_recovered() {
        let dir = tmp("unsynced");
        let (mut wal, _) = reopen(&dir);
        wal.append(b"durable").unwrap();
        wal.sync().unwrap();
        wal.append(b"lost").unwrap(); // never synced
        drop(wal);
        let (_w, rec) = reopen(&dir);
        assert_eq!(rec.records, vec![b"durable".to_vec()]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_and_appends_resume() {
        let dir = tmp("torn");
        let (mut wal, _) = reopen(&dir);
        wal.append(b"good one").unwrap();
        wal.append(b"good two").unwrap();
        wal.sync().unwrap();
        let seg = dir.join(seg_name(wal.active_segment()));
        drop(wal);
        // Simulate a crash mid-append: a partial frame at the tail.
        let mut f = OpenOptions::new().append(true).open(&seg).unwrap();
        f.write_all(&[42u8, 0, 0, 0, 99, 99]).unwrap(); // header cut short
        drop(f);
        let (mut wal, rec) = reopen(&dir);
        assert_eq!(rec.records.len(), 2);
        assert_eq!(rec.torn_bytes, 6);
        wal.append(b"good three").unwrap();
        wal.sync().unwrap();
        drop(wal);
        let (_w, rec) = reopen(&dir);
        assert_eq!(rec.records.len(), 3);
        assert_eq!(rec.records[2], b"good three");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_middle_segment_is_an_error_not_a_repair() {
        let dir = tmp("corrupt-mid");
        let mut cfg = WalConfig::new(&dir);
        cfg.segment_bytes = 64; // tiny: force several segments
        let (mut wal, _) = Wal::open(cfg.clone()).unwrap();
        for i in 0..20u32 {
            wal.append(format!("record number {i}").as_bytes()).unwrap();
            wal.sync().unwrap();
        }
        assert!(wal.active_segment() > 1, "fixture must roll segments");
        drop(wal);
        // Flip a payload byte in the FIRST segment.
        let seg = dir.join(seg_name(1));
        let mut bytes = fs::read(&seg).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(&seg, &bytes).unwrap();
        match Wal::open(cfg) {
            Err(WalError::Corrupt { segment: 1, .. }) => {}
            Err(other) => panic!("want Corrupt in segment 1, got {other:?}"),
            Ok(_) => panic!("want Corrupt in segment 1, got a successful open"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_truncates_and_recovers() {
        let dir = tmp("snapshot");
        let (mut wal, _) = reopen(&dir);
        for i in 0..10u32 {
            wal.append(format!("pre {i}").as_bytes()).unwrap();
        }
        wal.install_snapshot(b"STATE AFTER 10").unwrap();
        assert_eq!(wal.records_since_snapshot(), 0);
        wal.append(b"post 0").unwrap();
        wal.sync().unwrap();
        drop(wal);
        let (_w, rec) = reopen(&dir);
        assert_eq!(rec.snapshot.as_deref(), Some(&b"STATE AFTER 10"[..]));
        assert_eq!(rec.records, vec![b"post 0".to_vec()]);
        // The pre-snapshot segment is gone.
        assert!(!dir.join(seg_name(1)).exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn damaged_newest_snapshot_falls_back_to_older() {
        let dir = tmp("snap-fallback");
        let (mut wal, _) = reopen(&dir);
        wal.append(b"a").unwrap();
        wal.install_snapshot(b"OLD BASE").unwrap();
        let base_seq = wal.active_segment();
        wal.append(b"b").unwrap();
        wal.sync().unwrap();
        drop(wal);
        // Simulate a crash halfway through the NEXT snapshot install: the
        // rolled segment exists, but the snapshot file was cut short before
        // its frame was complete (then the truncation never ran).
        fs::write(dir.join(seg_name(base_seq + 1)), b"").unwrap();
        fs::write(dir.join(snap_name(base_seq + 1)), [9u8, 0, 0]).unwrap();
        let (_w, rec) = reopen(&dir);
        assert_eq!(rec.snapshots_skipped, 1);
        assert_eq!(rec.snapshot.as_deref(), Some(&b"OLD BASE"[..]));
        assert_eq!(rec.records, vec![b"b".to_vec()]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn segment_gap_is_corruption() {
        let dir = tmp("gap");
        let mut cfg = WalConfig::new(&dir);
        cfg.segment_bytes = 32;
        let (mut wal, _) = Wal::open(cfg.clone()).unwrap();
        for i in 0..12u32 {
            wal.append(format!("record number {i}").as_bytes()).unwrap();
            wal.sync().unwrap();
        }
        assert!(wal.active_segment() >= 3);
        drop(wal);
        fs::remove_file(dir.join(seg_name(2))).unwrap();
        assert!(matches!(Wal::open(cfg), Err(WalError::Corrupt { .. })));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_payloads_and_binary_payloads_roundtrip() {
        let dir = tmp("binary");
        let (mut wal, _) = reopen(&dir);
        wal.append(b"").unwrap();
        let blob: Vec<u8> = (0..=255u8).collect();
        wal.append(&blob).unwrap();
        wal.sync().unwrap();
        drop(wal);
        let (_w, rec) = reopen(&dir);
        assert_eq!(rec.records[0], b"");
        assert_eq!(rec.records[1], blob);
        fs::remove_dir_all(&dir).unwrap();
    }
}
