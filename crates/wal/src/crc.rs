//! CRC-32 (IEEE 802.3 polynomial), the checksum behind every WAL record
//! and snapshot frame. Table-driven, dependency-free.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// The 256-entry lookup table, built once at compile time.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC-32 of `bytes` (IEEE, the `crc32` of zlib/gzip/Ethernet).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"coalloc"), crc32(b"coalloc"));
        assert_ne!(crc32(b"coalloc"), crc32(b"coallod"));
    }

    #[test]
    fn sensitive_to_order_and_length() {
        assert_ne!(crc32(b"ab"), crc32(b"ba"));
        assert_ne!(crc32(b"a"), crc32(b"a\0"));
    }
}
