//! Decision-equivalence properties of the sharded scheduler.
//!
//! The load-bearing guarantees (DESIGN.md §9):
//!
//! * for **every** policy and every shard count `K`, a sharded run makes the
//!   same grant/reject decisions, start times, attempt counts **and server
//!   choices** as the single [`CoAllocScheduler`] (every policy sorts the
//!   feasible set by a total key, so selection is partition-independent);
//! * sharded runs are identical across `K` and deterministic for a fixed
//!   seed.

use coalloc_core::prelude::*;
use coalloc_shard::ShardedScheduler;
use coalloc_sim::runner::{run_online, run_with, RunResult};
use proptest::prelude::*;

const SHARD_COUNTS: [u32; 4] = [1, 2, 4, 8];

/// A stream of small requests fitting a tau=10 / horizon=400 slotting.
fn request_stream(n_servers: u32, len: usize) -> impl Strategy<Value = Vec<Request>> {
    prop::collection::vec(
        (
            0i64..200, // submit offset from previous
            0i64..120, // advance offset (s_r - q_r)
            1i64..80,  // duration
            1u32..=n_servers,
        ),
        1..len,
    )
    .prop_map(|raw| {
        let mut t = 0i64;
        raw.into_iter()
            .map(|(dt, adv, dur, n)| {
                t += dt % 20;
                Request::advance(Time(t), Time(t + adv), Dur(dur), n)
            })
            .collect()
    })
}

fn cfg(policy: SelectionPolicy, seed: u64) -> SchedulerConfig {
    SchedulerConfig::builder()
        .tau(Dur(10))
        .horizon(Dur(400))
        .delta_t(Dur(10))
        .policy(policy)
        .seed(seed)
        .build()
}

/// The decision-relevant projection of a run: (start, attempts) per request.
fn decisions(r: &RunResult) -> Vec<(Option<Time>, u32)> {
    r.outcomes.iter().map(|o| (o.start, o.attempts)).collect()
}

/// Full equality up to data-structure operation counts (tree shapes, and
/// hence visit counts, legitimately differ across partitions).
fn assert_same_outcomes(a: &RunResult, b: &RunResult, ctx: &str) {
    assert_eq!(decisions(a), decisions(b), "{ctx}: decisions diverge");
    assert!(
        (a.utilization - b.utilization).abs() < 1e-12,
        "{ctx}: utilization diverges"
    );
    assert_eq!(a.makespan, b.makespan, "{ctx}: makespan diverges");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Sharded decisions equal the single scheduler's for every policy and
    /// K; server choice matches too.
    #[test]
    fn sharded_equals_plain(reqs in request_stream(9, 30), seed in 0u64..1000) {
        for policy in [
            SelectionPolicy::PaperOrder,
            SelectionPolicy::BestFit,
            SelectionPolicy::WorstFit,
            SelectionPolicy::ByServerId,
        ] {
            let mut plain = CoAllocScheduler::new(9, cfg(policy, seed));
            let base = run_online(&mut plain, &reqs, "plain");
            for k in SHARD_COUNTS {
                let mut sharded = ShardedScheduler::new(9, k, cfg(policy, seed));
                let run = run_with(&mut sharded, &reqs, "sharded");
                assert_same_outcomes(&base, &run, &format!("{policy:?} k={k}"));
                sharded.check_consistency();
            }
        }
        // Server-level equality: replay request-by-request comparing each
        // grant (and each rejection) between the two schedulers.
        for policy in [
            SelectionPolicy::PaperOrder,
            SelectionPolicy::BestFit,
            SelectionPolicy::WorstFit,
            SelectionPolicy::ByServerId,
        ] {
            for k in SHARD_COUNTS {
                let mut plain = CoAllocScheduler::new(9, cfg(policy, seed));
                let mut sharded = ShardedScheduler::new(9, k, cfg(policy, seed));
                for r in &reqs {
                    plain.advance_to(r.submit);
                    sharded.advance_to(r.submit);
                    match (plain.submit(r), sharded.submit(r)) {
                        (Ok(a), Ok(b)) => {
                            prop_assert_eq!(a.start, b.start);
                            prop_assert_eq!(&a.servers, &b.servers,
                                "{:?} k={} servers diverge", policy, k);
                            prop_assert_eq!(a.attempts, b.attempts);
                        }
                        (Err(a), Err(b)) => prop_assert_eq!(a, b),
                        other => prop_assert!(false, "grant/reject divergence: {:?}", other),
                    }
                }
            }
        }
    }

    /// Sharded runs are bit-identical across shard counts — including the
    /// paper-order policy, whose canonical merge order is partition-free.
    #[test]
    fn sharded_identical_across_k(reqs in request_stream(8, 30), seed in 0u64..1000) {
        type GrantSummary = (Option<Time>, Vec<ServerId>, u32);
        for policy in [SelectionPolicy::PaperOrder, SelectionPolicy::BestFit] {
            let mut grants_by_k: Vec<Vec<GrantSummary>> = Vec::new();
            for k in SHARD_COUNTS {
                let mut sharded = ShardedScheduler::new(8, k, cfg(policy, seed));
                let mut grants = Vec::new();
                for r in &reqs {
                    sharded.advance_to(r.submit);
                    grants.push(match sharded.submit(r) {
                        Ok(g) => (Some(g.start), g.servers, g.attempts),
                        Err(ScheduleError::Exhausted { attempts, .. }) => (None, Vec::new(), attempts),
                        Err(_) => (None, Vec::new(), 0),
                    });
                }
                grants_by_k.push(grants);
            }
            for w in grants_by_k.windows(2) {
                prop_assert_eq!(&w[0], &w[1], "{:?}: K-dependence detected", policy);
            }
        }
    }

    /// Releases propagate to the owning shards only, and the freed capacity
    /// behaves exactly like the single scheduler's.
    #[test]
    fn release_equivalence(reqs in request_stream(6, 20), seed in 0u64..1000) {
        for k in [2u32, 4] {
            let mut plain = CoAllocScheduler::new(6, cfg(SelectionPolicy::ByServerId, seed));
            let mut sharded = ShardedScheduler::new(6, k, cfg(SelectionPolicy::ByServerId, seed));
            let mut plain_jobs = Vec::new();
            let mut shard_jobs = Vec::new();
            for (i, r) in reqs.iter().enumerate() {
                plain.advance_to(r.submit);
                sharded.advance_to(r.submit);
                let (a, b) = (plain.submit(r), sharded.submit(r));
                prop_assert_eq!(a.is_ok(), b.is_ok());
                if let (Ok(ga), Ok(gb)) = (a, b) {
                    prop_assert_eq!(&ga.servers, &gb.servers);
                    plain_jobs.push(ga.job);
                    shard_jobs.push(gb.job);
                }
                // Release every other accepted job immediately.
                if i % 2 == 0 {
                    if let (Some(ja), Some(jb)) = (plain_jobs.pop(), shard_jobs.pop()) {
                        plain.release(ja).unwrap();
                        sharded.release(jb).unwrap();
                    }
                }
            }
            sharded.check_consistency();
            plain.check_consistency();
        }
    }
}

/// Same seed, same workload, two independent sharded schedulers: the entire
/// [`RunResult`] (including op counts) must be identical.
#[test]
fn sharded_runs_are_deterministic() {
    let spec_reqs: Vec<Request> = (0..40)
        .map(|i| {
            Request::advance(
                Time(i * 7),
                Time(i * 7 + (i % 5) * 10),
                Dur(10 + (i % 7) * 11),
                1 + (i % 4) as u32,
            )
        })
        .collect();
    for k in SHARD_COUNTS {
        let mut a = ShardedScheduler::new(8, k, cfg(SelectionPolicy::PaperOrder, 0xFEED));
        let mut b = ShardedScheduler::new(8, k, cfg(SelectionPolicy::PaperOrder, 0xFEED));
        let ra = run_with(&mut a, &spec_reqs, "a");
        let rb = run_with(&mut b, &spec_reqs, "b");
        assert_eq!(ra.outcomes, rb.outcomes, "k={k}");
        assert_eq!(ra.makespan, rb.makespan);
        assert!((ra.utilization - rb.utilization).abs() < 1e-15);
        assert_eq!(ra.total_ops, rb.total_ops);
    }
}

/// The deadline path matches the plain scheduler's under sharding.
#[test]
fn deadline_equivalence_smoke() {
    let c = cfg(SelectionPolicy::ByServerId, 1);
    for k in SHARD_COUNTS {
        let mut plain = CoAllocScheduler::new(4, c);
        let mut sharded = ShardedScheduler::new(4, k, c);
        let fills = [
            Request::on_demand(Time::ZERO, Dur(40), 2),
            Request::on_demand(Time::ZERO, Dur(25), 1),
        ];
        for f in &fills {
            plain.submit(f).unwrap();
            sharded.submit(f).unwrap();
        }
        for (dur, deadline) in [(20i64, 70i64), (20, 45), (50, 40), (35, 200), (10, 390)] {
            let req = Request::on_demand(Time::ZERO, Dur(dur), 2);
            let a = plain.submit_with_deadline(&req, Time(deadline));
            let b = sharded.submit_with_deadline(&req, Time(deadline));
            match (a, b) {
                (Ok(x), Ok(y)) => {
                    assert_eq!(x.start, y.start, "k={k} dl={deadline}");
                    assert_eq!(x.servers, y.servers);
                    assert_eq!(x.attempts, y.attempts);
                }
                (Err(x), Err(y)) => assert_eq!(x, y, "k={k} dl={deadline}"),
                other => panic!("divergence k={k} dl={deadline}: {other:?}"),
            }
        }
    }
}
