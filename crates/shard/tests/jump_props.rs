//! Capacity-profile attempt jumping across the sharded front-end
//! (DESIGN.md §14): decisions are bit-identical to the exhaustive linear
//! ladder for every policy, shard count and batch size, on both execution
//! strategies, and the only accounting difference is the probed/jumped
//! split of each search's attempt budget.

use coalloc_core::prelude::*;
use coalloc_shard::ShardedScheduler;
use proptest::prelude::*;

const SHARD_COUNTS: [u32; 2] = [1, 4];
const BATCH_SIZES: [usize; 2] = [1, 64];

/// A stream of small requests fitting a tau=10 / horizon=400 slotting.
fn request_stream(n_servers: u32, len: usize) -> impl Strategy<Value = Vec<Request>> {
    prop::collection::vec(
        (
            0i64..200, // submit offset from previous
            0i64..120, // advance offset (s_r - q_r)
            1i64..80,  // duration
            1u32..=n_servers,
        ),
        1..len,
    )
    .prop_map(|raw| {
        let mut t = 0i64;
        raw.into_iter()
            .map(|(dt, adv, dur, n)| {
                t += dt % 20;
                Request::advance(Time(t), Time(t + adv), Dur(dur), n)
            })
            .collect()
    })
}

fn cfg(policy: SelectionPolicy, seed: u64, jump: bool) -> SchedulerConfig {
    SchedulerConfig::builder()
        .tau(Dur(10))
        .horizon(Dur(400))
        .delta_t(Dur(10))
        .policy(policy)
        .seed(seed)
        .jump_retries(jump)
        .build()
}

/// Drive a jumping and a linear scheduler through the workload in lockstep
/// chunks of `batch`, with churn (clock advances plus every-third release),
/// and require identical replies throughout. Both go through the pool path
/// when it exists so jumping is exercised inside the speculative stages too.
fn assert_jump_equals_linear(
    reqs: &[Request],
    policy: SelectionPolicy,
    k: u32,
    batch: usize,
    seed: u64,
) {
    let ctx = format!("{policy:?} k={k} b={batch} seed={seed}");
    let mut jump = ShardedScheduler::new(6, k, cfg(policy, seed, true));
    let mut lin = ShardedScheduler::new(6, k, cfg(policy, seed, false));
    jump.set_pool_min_batch(0);
    lin.set_pool_min_batch(0);
    let mut live: Vec<JobId> = Vec::new();
    let mut churn = 0usize;
    for chunk in reqs.chunks(batch) {
        jump.advance_to(chunk[0].submit);
        lin.advance_to(chunk[0].submit);
        let a = jump.submit_batch(chunk);
        let b = lin.submit_batch(chunk);
        assert_eq!(a, b, "jump/linear divergence: {ctx} chunk={chunk:?}");
        for g in a.iter().flatten() {
            live.push(g.job);
        }
        live.retain(|&job| {
            churn += 1;
            if churn.is_multiple_of(3) {
                assert_eq!(jump.release(job), lin.release(job), "release diverges: {ctx}");
                false
            } else {
                true
            }
        });
    }
    // Accounting identity: every linear probe is either probed or jumped,
    // and jumped attempts are the only new skips.
    let (js, ls) = (jump.stats(), lin.stats());
    assert_eq!(
        js.attempts + js.attempts_jumped,
        ls.attempts,
        "probed + jumped != linear probes: {ctx}"
    );
    assert_eq!(
        js.attempts_skipped - js.attempts_jumped,
        ls.attempts_skipped,
        "non-jump skips diverge: {ctx}"
    );
    assert_eq!(ls.attempts_jumped, 0, "linear mode never jumps: {ctx}");
    jump.check_consistency();
    lin.check_consistency();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Jumping ≡ linear for every policy × K × batch size under random
    /// churn. Six servers with up to six requested per member keep windows
    /// contended, so both deep retry ladders and profile jumps occur.
    #[test]
    fn jumping_equals_linear_across_shards_and_batches(
        reqs in request_stream(6, 40),
        seed in 0u64..1000,
    ) {
        for policy in [
            SelectionPolicy::PaperOrder,
            SelectionPolicy::BestFit,
            SelectionPolicy::WorstFit,
            SelectionPolicy::ByServerId,
        ] {
            for k in SHARD_COUNTS {
                for &batch in &BATCH_SIZES {
                    assert_jump_equals_linear(&reqs, policy, k, batch, seed);
                }
            }
        }
    }

    /// The jumping sharded scheduler still matches the jumping core
    /// scheduler decision-for-decision (the profile bound is partition
    /// independent), deep-exhaustion cases included.
    #[test]
    fn jumping_shards_match_core(reqs in request_stream(5, 30), seed in 0u64..1000) {
        let mut core = CoAllocScheduler::new(5, cfg(SelectionPolicy::ByServerId, seed, true));
        let mut shard = ShardedScheduler::new(5, 4, cfg(SelectionPolicy::ByServerId, seed, true));
        for r in &reqs {
            core.advance_to(r.submit);
            shard.advance_to(r.submit);
            match (core.submit(r), shard.submit(r)) {
                (Ok(a), Ok(b)) => {
                    prop_assert_eq!(a.start, b.start);
                    prop_assert_eq!(a.attempts, b.attempts);
                    let mut sa = a.servers.clone();
                    let mut sb = b.servers.clone();
                    sa.sort();
                    sb.sort();
                    prop_assert_eq!(sa, sb);
                }
                (Err(a), Err(b)) => prop_assert_eq!(a, b),
                (a, b) => prop_assert!(false, "core/shard divergence: {a:?} vs {b:?}"),
            }
        }
        shard.check_consistency();
    }
}
