//! Allocation guard for the sharded batched submission path.
//!
//! Mirrors `crates/core/tests/alloc_guard.rs` for the coordinator: after
//! warm-up, steady-state all-reject batches through
//! `ShardedScheduler::submit_batch_into` must perform **zero** heap
//! allocations on the inline (load-bypass) path — the coordinator scratch
//! (count arrays, feasible/enumerate buffers, per-shard commit groups) is
//! reused across batch members — and granted members stay within the same
//! small per-grant budget as the single scheduler.
//!
//! Only the inline path is measured: the pool path hands work to other
//! threads, whose message traffic allocates by design and is amortized by
//! batching, not eliminated.

use coalloc_core::prelude::*;
use coalloc_shard::ShardedScheduler;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::SeqCst)
}

fn cfg() -> SchedulerConfig {
    SchedulerConfig::builder()
        .tau(Dur(10))
        .horizon(Dur(400))
        .delta_t(Dur(10))
        .build()
}

/// Rendezvous with the worker pool before measuring: a worker's first
/// blocking recv lazily allocates its thread-parking context, so worker
/// startup can otherwise race a handful of allocations into a measured
/// window. One pooled batch wakes every worker (the probe stage
/// broadcasts to all shards) and the batch-end barrier drains it;
/// re-blocking afterwards reuses the cached per-thread context. Leaves
/// the scheduler empty and pinned to the inline path.
fn settle_pool(sched: &mut ShardedScheduler, width: u32) {
    sched.set_pool_min_batch(0);
    let warm = vec![Request::on_demand(Time::ZERO, Dur(10), width); 2];
    for g in sched.submit_batch(&warm) {
        sched.release(g.unwrap().job).unwrap();
    }
    sched.set_pool_min_batch(usize::MAX);
}

/// One test function: the counter is process-global, so the measurements
/// must run sequentially, not on parallel test threads.
#[test]
fn steady_state_batched_submissions_do_not_allocate() {
    let mut sched = ShardedScheduler::new(8, 4, cfg());
    settle_pool(&mut sched, 8); // also pins the inline path

    // A pinned server makes 8-wide requests uncountable (phase-1 reject).
    sched
        .submit(&Request::on_demand(Time::ZERO, Dur(390), 1))
        .unwrap();

    // Warm-up: grow every coordinator scratch buffer, shard tree slab and
    // metric registry with a mixed grant/reject/release load.
    let mut jobs = Vec::with_capacity(64);
    for i in 0..200i64 {
        let req = Request::advance(
            Time::ZERO,
            Time((i % 30) * 10),
            Dur(10 + (i % 5) * 20),
            1 + (i % 6) as u32,
        );
        if let Ok(g) = sched.submit(&req) {
            jobs.push(g.job);
        }
        if i % 2 == 0 {
            if let Some(j) = jobs.pop() {
                sched.release(j).unwrap();
            }
        }
    }
    for j in jobs.drain(..) {
        sched.release(j).unwrap();
    }

    // ---- Batched rejects: zero allocations in steady state.
    let probe = Request::on_demand(Time::ZERO, Dur(50), 8);
    let batch: Vec<Request> = vec![probe; 16];
    let mut out = Vec::with_capacity(batch.len());
    sched.submit_batch_into(&batch, &mut out); // warm the out-buffer
    assert!(out.iter().all(|r| r.is_err()), "7 free servers < 8 wanted");
    let before = allocs();
    for _ in 0..20 {
        sched.submit_batch_into(&batch, &mut out);
        assert!(out.iter().all(|r| r.is_err()));
    }
    assert_eq!(
        allocs() - before,
        0,
        "steady-state batched sharded rejections must not allocate"
    );

    // ---- Profile-jump rejects: a comb of fully-busy even slots lets the
    // coordinator's capacity profile refute every Δt-aligned window for a
    // 20 s member, so the gather loop resolves each one by `next_allowed`
    // jumps alone — zero shard probes — and must stay allocation-free.
    let mut sched2 = ShardedScheduler::new(2, 2, cfg());
    settle_pool(&mut sched2, 2);
    for i in (0..40i64).step_by(2) {
        sched2
            .submit(&Request::advance(Time::ZERO, Time(i * 10), Dur(10), 2))
            .unwrap();
    }
    let comb = Request::on_demand(Time::ZERO, Dur(20), 1);
    let comb_batch: Vec<Request> = vec![comb; 16];
    sched2.submit_batch_into(&comb_batch, &mut out); // warm
    assert!(out.iter().all(|r| r.is_err()));
    let base_attempts = sched2.stats().attempts;
    let before = allocs();
    for _ in 0..20 {
        sched2.submit_batch_into(&comb_batch, &mut out);
        assert!(out.iter().all(|r| r.is_err()));
    }
    assert_eq!(
        allocs() - before,
        0,
        "steady-state profile-jump batched rejections must not allocate"
    );
    assert_eq!(
        sched2.stats().attempts,
        base_attempts,
        "every attempt must be jumped, none probed"
    );

    // ---- Batched grants: bounded, not zero — each grant returns an owned
    // `Grant::servers` vector and records per-shard reservation entries,
    // all O(n_r); the coordinator scratch is reused across members.
    let pair = [
        Request::on_demand(Time::ZERO, Dur(30), 3),
        Request::on_demand(Time::ZERO, Dur(30), 3),
    ];
    sched.submit_batch_into(&pair, &mut out); // warm
    for r in out.drain(..) {
        sched.release(r.unwrap().job).unwrap();
    }
    let iters = 50u64;
    let before = allocs();
    for _ in 0..iters {
        sched.submit_batch_into(&pair, &mut out);
        for r in out.drain(..) {
            sched.release(r.unwrap().job).unwrap();
        }
    }
    let per_grant = (allocs() - before) / (iters * pair.len() as u64);
    println!("sharded batched grant+release allocations per member: {per_grant}");
    assert!(
        per_grant <= 32,
        "sharded batched grant+release allocated {per_grant} per member; \
         expected the per-grant budget"
    );
}
