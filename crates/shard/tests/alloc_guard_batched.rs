//! Allocation guard for the sharded batched submission path.
//!
//! Mirrors `crates/core/tests/alloc_guard.rs` for the coordinator: after
//! warm-up, steady-state all-reject batches through
//! `ShardedScheduler::submit_batch_into` must perform **zero** heap
//! allocations on the inline (load-bypass) path — the coordinator scratch
//! (count arrays, feasible/enumerate buffers, per-shard commit groups) is
//! reused across batch members — and granted members stay within the same
//! small per-grant budget as the single scheduler.
//!
//! Only the inline path is measured: the pool path hands work to other
//! threads, whose message traffic allocates by design and is amortized by
//! batching, not eliminated.

use coalloc_core::prelude::*;
use coalloc_shard::ShardedScheduler;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::SeqCst)
}

fn cfg() -> SchedulerConfig {
    SchedulerConfig::builder()
        .tau(Dur(10))
        .horizon(Dur(400))
        .delta_t(Dur(10))
        .build()
}

/// One test function: the counter is process-global, so the measurements
/// must run sequentially, not on parallel test threads.
#[test]
fn steady_state_batched_submissions_do_not_allocate() {
    let mut sched = ShardedScheduler::new(8, 4, cfg());
    sched.set_pool_min_batch(usize::MAX); // pin the inline path

    // A pinned server makes 8-wide requests uncountable (phase-1 reject).
    sched
        .submit(&Request::on_demand(Time::ZERO, Dur(390), 1))
        .unwrap();

    // Warm-up: grow every coordinator scratch buffer, shard tree slab and
    // metric registry with a mixed grant/reject/release load.
    let mut jobs = Vec::with_capacity(64);
    for i in 0..200i64 {
        let req = Request::advance(
            Time::ZERO,
            Time((i % 30) * 10),
            Dur(10 + (i % 5) * 20),
            1 + (i % 6) as u32,
        );
        if let Ok(g) = sched.submit(&req) {
            jobs.push(g.job);
        }
        if i % 2 == 0 {
            if let Some(j) = jobs.pop() {
                sched.release(j).unwrap();
            }
        }
    }
    for j in jobs.drain(..) {
        sched.release(j).unwrap();
    }

    // ---- Batched rejects: zero allocations in steady state.
    let probe = Request::on_demand(Time::ZERO, Dur(50), 8);
    let batch: Vec<Request> = vec![probe; 16];
    let mut out = Vec::with_capacity(batch.len());
    sched.submit_batch_into(&batch, &mut out); // warm the out-buffer
    assert!(out.iter().all(|r| r.is_err()), "7 free servers < 8 wanted");
    let before = allocs();
    for _ in 0..20 {
        sched.submit_batch_into(&batch, &mut out);
        assert!(out.iter().all(|r| r.is_err()));
    }
    assert_eq!(
        allocs() - before,
        0,
        "steady-state batched sharded rejections must not allocate"
    );

    // ---- Batched grants: bounded, not zero — each grant returns an owned
    // `Grant::servers` vector and records per-shard reservation entries,
    // all O(n_r); the coordinator scratch is reused across members.
    let pair = [
        Request::on_demand(Time::ZERO, Dur(30), 3),
        Request::on_demand(Time::ZERO, Dur(30), 3),
    ];
    sched.submit_batch_into(&pair, &mut out); // warm
    for r in out.drain(..) {
        sched.release(r.unwrap().job).unwrap();
    }
    let iters = 50u64;
    let before = allocs();
    for _ in 0..iters {
        sched.submit_batch_into(&pair, &mut out);
        for r in out.drain(..) {
            sched.release(r.unwrap().job).unwrap();
        }
    }
    let per_grant = (allocs() - before) / (iters * pair.len() as u64);
    println!("sharded batched grant+release allocations per member: {per_grant}");
    assert!(
        per_grant <= 32,
        "sharded batched grant+release allocated {per_grant} per member; \
         expected the per-grant budget"
    );
}
