//! Batched-execution equivalence properties.
//!
//! The contract of `submit_batch` (DESIGN.md §9): member `i` of a batch
//! observes exactly the state that sequential submission of members
//! `0..i` would have left — same grants and rejections, same start times,
//! same attempt counts, same server choices, same job ids — for every
//! selection policy, every shard count, every batch size, and both
//! execution strategies (inline bypass and speculative pool stages,
//! including the validate-and-repair path under contention).
//!
//! Operation accounting is also grouping-invariant, with one documented
//! exception: speculative probes measure their work against the pre-batch
//! snapshot, so the snapshot-dependent probe counters (`primary_visits`,
//! `secondary_visits`, `phase2_searches`) may differ while every other
//! counter (attempts, skips, phase-1 searches, structural work) must
//! match exactly.

use coalloc_core::prelude::*;
use coalloc_shard::ShardedScheduler;
use proptest::prelude::*;

const SHARD_COUNTS: [u32; 4] = [1, 2, 4, 8];
const BATCH_SIZES: [usize; 4] = [1, 2, 7, 64];

/// A stream of small requests fitting a tau=10 / horizon=400 slotting.
fn request_stream(n_servers: u32, len: usize) -> impl Strategy<Value = Vec<Request>> {
    prop::collection::vec(
        (
            0i64..200, // submit offset from previous
            0i64..120, // advance offset (s_r - q_r)
            1i64..80,  // duration
            1u32..=n_servers,
        ),
        1..len,
    )
    .prop_map(|raw| {
        let mut t = 0i64;
        raw.into_iter()
            .map(|(dt, adv, dur, n)| {
                t += dt % 20;
                Request::advance(Time(t), Time(t + adv), Dur(dur), n)
            })
            .collect()
    })
}

fn cfg(policy: SelectionPolicy, seed: u64) -> SchedulerConfig {
    SchedulerConfig::builder()
        .tau(Dur(10))
        .horizon(Dur(400))
        .delta_t(Dur(10))
        .policy(policy)
        .seed(seed)
        .build()
}

/// Zero the counters that legitimately differ under speculation: tree
/// visits, and `phase2_searches` — `enumerate` only invokes Phase 2 when
/// Phase 1 found candidates, and the pre-batch snapshot can hold (dirty,
/// infeasible) candidates an in-batch commit has since consumed.
fn comparable(mut s: OpStats) -> OpStats {
    s.primary_visits = 0;
    s.secondary_visits = 0;
    s.phase2_searches = 0;
    s
}

/// Drive the three execution strategies through the workload in lockstep
/// chunks of `batch`, comparing each chunk's replies before moving on (so
/// a divergence reports the exact chunk that caused it). Churn: the clock
/// advances to each chunk's first submit time (batch semantics: the clock
/// is constant within a batch) and every third accepted job is released
/// after its chunk lands. A released job may already have been pruned from
/// history by an intervening advance; all that matters here is that every
/// strategy answers the release identically too.
fn assert_chunked_equivalence(
    reqs: &[Request],
    policy: SelectionPolicy,
    k: u32,
    batch: usize,
    seed: u64,
) {
    let ctx = format!("{policy:?} k={k} b={batch} seed={seed}");
    let mut seq = ShardedScheduler::new(6, k, cfg(policy, seed));
    let mut pooled = ShardedScheduler::new(6, k, cfg(policy, seed));
    pooled.set_pool_min_batch(0); // force the speculative pool path
    let mut inline = ShardedScheduler::new(6, k, cfg(policy, seed));
    inline.set_pool_min_batch(usize::MAX); // force the bypass
    let mut live: Vec<JobId> = Vec::new();
    let mut churn = 0usize;
    for chunk in reqs.chunks(batch) {
        seq.advance_to(chunk[0].submit);
        pooled.advance_to(chunk[0].submit);
        inline.advance_to(chunk[0].submit);
        let expect: Vec<_> = chunk.iter().map(|r| seq.submit(r)).collect();
        let got = pooled.submit_batch(chunk);
        assert_eq!(expect, got, "pool path diverges: {ctx} chunk={chunk:?}");
        let got = inline.submit_batch(chunk);
        assert_eq!(expect, got, "inline path diverges: {ctx} chunk={chunk:?}");
        for g in expect.iter().flatten() {
            live.push(g.job);
        }
        live.retain(|&job| {
            churn += 1;
            if churn.is_multiple_of(3) {
                let a = seq.release(job);
                assert_eq!(a, pooled.release(job), "release diverges: {ctx}");
                assert_eq!(a, inline.release(job), "release diverges: {ctx}");
                false
            } else {
                true
            }
        });
    }
    // Inline batching is byte-for-byte the sequential algorithm, so even
    // the visit counters must match; the pool path's visits are measured
    // against pre-batch snapshots and may legitimately differ.
    assert_eq!(seq.stats(), inline.stats(), "inline stats diverge: {ctx}");
    assert_eq!(
        comparable(seq.stats()),
        comparable(pooled.stats()),
        "pool stats diverge: {ctx}"
    );
    pooled.check_consistency();
    inline.check_consistency();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// `submit_batch` ≡ sequential `submit` for every policy × K × batch
    /// size under random churn, on both execution strategies. Six servers
    /// and up to six requested per member keep the batches contending, so
    /// the repair path runs routinely.
    #[test]
    fn batched_equals_sequential(reqs in request_stream(6, 40), seed in 0u64..1000) {
        for policy in [
            SelectionPolicy::PaperOrder,
            SelectionPolicy::BestFit,
            SelectionPolicy::WorstFit,
            SelectionPolicy::ByServerId,
        ] {
            for k in SHARD_COUNTS {
                for &batch in &BATCH_SIZES {
                    assert_chunked_equivalence(&reqs, policy, k, batch, seed);
                }
            }
        }
    }

    /// The plain scheduler's `submit_batch` is the reference fold — exact
    /// equality including every stats counter.
    #[test]
    fn plain_batched_equals_sequential(reqs in request_stream(8, 40), seed in 0u64..1000) {
        for &batch in &BATCH_SIZES {
            let mut a = CoAllocScheduler::new(8, cfg(SelectionPolicy::PaperOrder, seed));
            let mut b = CoAllocScheduler::new(8, cfg(SelectionPolicy::PaperOrder, seed));
            let mut expect = Vec::new();
            let mut got = Vec::new();
            for chunk in reqs.chunks(batch) {
                a.advance_to(chunk[0].submit);
                b.advance_to(chunk[0].submit);
                expect.extend(chunk.iter().map(|r| a.submit(r)));
                got.extend(b.submit_batch(chunk));
            }
            prop_assert_eq!(&expect, &got, "b={}", batch);
            prop_assert_eq!(*a.stats(), *b.stats(), "b={}", batch);
        }
    }

    /// Maximum-contention batches: three servers, every member wanting
    /// most of them, whole workload in one batch. Forces dense
    /// validate-and-repair chains through the pool path.
    #[test]
    fn repair_chains_stay_sequential_exact(
        durs in prop::collection::vec((1i64..60, 2u32..=3), 2..64),
        seed in 0u64..1000,
    ) {
        let reqs: Vec<Request> = durs
            .iter()
            .map(|&(d, n)| Request::on_demand(Time::ZERO, Dur(d), n))
            .collect();
        for k in [2u32, 3] {
            let mut pooled = ShardedScheduler::new(3, k, cfg(SelectionPolicy::PaperOrder, seed));
            pooled.set_pool_min_batch(0);
            let got = pooled.submit_batch(&reqs);
            let mut seq = ShardedScheduler::new(3, k, cfg(SelectionPolicy::PaperOrder, seed));
            let expect: Vec<_> = reqs.iter().map(|r| seq.submit(r)).collect();
            prop_assert_eq!(&expect, &got, "k={}", k);
            prop_assert_eq!(
                comparable(pooled.stats()), comparable(seq.stats()),
                "stats diverge k={}", k
            );
            pooled.check_consistency();
        }
    }
}
