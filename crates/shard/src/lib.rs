//! # coalloc-shard
//!
//! A sharded, parallel front-end for the co-allocation scheduler.
//!
//! The `M` servers are partitioned into `K` contiguous shards, each owning
//! an independent timeline + slot-ring + trailing index over its servers
//! ([`state::ShardState`]). A coordinator ([`ShardedScheduler`]) drives the
//! paper's online algorithm: Phase-1/Phase-2 searches fan out to all shards
//! (as feasible-count queries batched over several `Delta_t` attempts),
//! per-shard feasible sets are merged deterministically under the active
//! [`SelectionPolicy`], and commit deltas are dispatched only to the shards
//! owning the chosen servers.
//!
//! **Decision equivalence.** Feasible counts are partition sums and every
//! feasible set holds at most one period per server, so every policy's
//! selection key is total before its id tie-break: a sharded run makes the
//! same grant/reject decisions, start times, attempt counts, *and server
//! choices* as [`CoAllocScheduler`] for every policy and every `K`. See
//! DESIGN.md §9 for the full argument.
//!
//! With `K = 1` the coordinator runs the shard inline — no threads, no
//! channels — so the single-shard configuration measures pure coordinator
//! overhead against [`CoAllocScheduler`].

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod state;

mod pool;

use crate::pool::{Cmd, Reply, MAX_BATCH};
use crate::state::ShardState;
use coalloc_core::prelude::*;
use coalloc_sim::runner::OnlineScheduler;
use std::collections::HashMap;

/// How the coordinator talks to its shards.
#[derive(Debug)]
enum Backend {
    /// `K = 1`: the single shard lives in the coordinator, zero threads.
    Inline(Box<ShardState>),
    /// `K > 1`: one persistent worker thread per shard.
    Threads {
        cmd: Vec<crossbeam::channel::Sender<Cmd>>,
        reply: crossbeam::channel::Receiver<Reply>,
        handles: Vec<std::thread::JoinHandle<()>>,
    },
}

/// The sharded parallel co-allocation scheduler.
///
/// Drop-in equivalent of [`CoAllocScheduler`] for the submit/advance/release
/// flow; see the crate docs for the equivalence guarantees. Index updates
/// are always applied eagerly (the `deferred_updates` knob only shapes the
/// single scheduler's latency profile, never its decisions).
#[derive(Debug)]
pub struct ShardedScheduler {
    cfg: SchedulerConfig,
    slot_cfg: SlotConfig,
    num_servers: u32,
    origin: Time,
    now: Time,
    /// First live slot — mirrors every shard ring's base.
    base_slot: SlotIdx,
    /// `(base, count)` of each shard's server range.
    layout: Vec<(u32, u32)>,
    backend: Backend,
    /// Latest cumulative [`OpStats`] seen from each shard.
    shard_stats: Vec<OpStats>,
    /// Coordinator-side counters (attempts, attempts_skipped).
    local: OpStats,
    /// Per live job: bitmask of shards holding its reservations, and its
    /// end time (for the coordinator-side mirror of history pruning).
    job_shards: HashMap<JobId, (u64, Time)>,
    /// History boundary of the last amortized prune — mirrors every shard
    /// scheduler's, so `release` of a pruned job reports `UnknownJob`
    /// exactly when the single scheduler would.
    last_prune: Time,
    next_job: u64,
}

impl ShardedScheduler {
    /// Create a sharded scheduler over `num_servers` servers split into `k`
    /// shards, clock at the epoch. `k` is clamped to `[1, min(64,
    /// num_servers)]` so every shard owns at least one server and the
    /// per-job shard mask fits a word.
    ///
    /// Decisions are bit-identical to a single [`CoAllocScheduler`] over
    /// the same servers, for every `k`:
    ///
    /// ```
    /// use coalloc_core::prelude::*;
    /// use coalloc_shard::ShardedScheduler;
    ///
    /// let req = Request::advance(Time::ZERO, Time::from_hours(2), Dur::from_hours(1), 3);
    /// let mut single = CoAllocScheduler::new(8, SchedulerConfig::default());
    /// let mut sharded = ShardedScheduler::new(8, 4, SchedulerConfig::default());
    /// let (a, b) = (single.submit(&req).unwrap(), sharded.submit(&req).unwrap());
    /// assert_eq!((a.job, a.start, a.end, a.servers), (b.job, b.start, b.end, b.servers));
    /// ```
    pub fn new(num_servers: u32, k: u32, cfg: SchedulerConfig) -> ShardedScheduler {
        ShardedScheduler::starting_at(num_servers, k, Time::ZERO, cfg)
    }

    /// Create a sharded scheduler with the clock at `origin`.
    pub fn starting_at(
        num_servers: u32,
        k: u32,
        origin: Time,
        cfg: SchedulerConfig,
    ) -> ShardedScheduler {
        assert!(num_servers > 0, "a system needs at least one server");
        let k = k.clamp(1, num_servers.min(64));
        let slot_cfg = cfg.slot_config();
        // Contiguous partition: the first `rem` shards get one extra server.
        let per = num_servers / k;
        let rem = num_servers % k;
        let mut layout = Vec::with_capacity(k as usize);
        let mut base = 0u32;
        for i in 0..k {
            let count = per + u32::from(i < rem);
            layout.push((base, count));
            base += count;
        }
        let states: Vec<ShardState> = layout
            .iter()
            .enumerate()
            .map(|(i, &(base, count))| {
                let seed = cfg.seed ^ (i as u64).wrapping_mul(0xA24BAED4963EE407);
                ShardState::new(&cfg, base, count, origin, seed)
            })
            .collect();
        let backend = if k == 1 {
            Backend::Inline(Box::new(states.into_iter().next().expect("one shard")))
        } else {
            let (cmd, reply, handles) = pool::spawn_workers(states);
            Backend::Threads {
                cmd,
                reply,
                handles,
            }
        };
        ShardedScheduler {
            cfg,
            slot_cfg,
            num_servers,
            origin,
            now: origin,
            base_slot: slot_cfg.slot_of(origin),
            layout,
            backend,
            shard_stats: vec![OpStats::new(); k as usize],
            local: OpStats::new(),
            job_shards: HashMap::new(),
            last_prune: origin,
            next_job: 0,
        }
    }

    /// The number of shards.
    pub fn num_shards(&self) -> u32 {
        self.layout.len() as u32
    }

    /// Number of servers `N`.
    pub fn num_servers(&self) -> u32 {
        self.num_servers
    }

    /// The configuration in force.
    pub fn config(&self) -> &SchedulerConfig {
        &self.cfg
    }

    /// The scheduler's current clock.
    pub fn now(&self) -> Time {
        self.now
    }

    /// The clock value the scheduler started at.
    pub fn origin(&self) -> Time {
        self.origin
    }

    /// First instant covered by the live slot window.
    pub fn window_start(&self) -> Time {
        self.slot_cfg.slot_start(self.base_slot)
    }

    /// End of the current scheduling horizon.
    pub fn horizon_end(&self) -> Time {
        self.slot_cfg
            .slot_start(SlotIdx(self.base_slot.0 + self.slot_cfg.num_slots as i64))
    }

    /// Aggregated operation counters: the sum of every shard's tree work
    /// plus the coordinator's attempt accounting.
    pub fn stats(&self) -> OpStats {
        let mut total = self.local;
        for s in &self.shard_stats {
            total.primary_visits += s.primary_visits;
            total.secondary_visits += s.secondary_visits;
            total.update_visits += s.update_visits;
            total.phase1_searches += s.phase1_searches;
            total.phase2_searches += s.phase2_searches;
            total.rebuilds += s.rebuilds;
            total.periods_inserted += s.periods_inserted;
            total.periods_removed += s.periods_removed;
        }
        total
    }

    /// Advance the clock. Shards only hear about it when the live slot
    /// window actually moves (ring rotation and prune cadence depend only on
    /// the slot index, so intra-slot advances are a coordinator-local no-op).
    pub fn advance_to(&mut self, now: Time) {
        if now <= self.now {
            return;
        }
        self.now = now;
        let target = self.slot_cfg.slot_of(now);
        if target <= self.base_slot {
            return;
        }
        self.base_slot = target;
        match &mut self.backend {
            Backend::Inline(st) => st.advance_to(now),
            Backend::Threads { cmd, .. } => {
                for tx in cmd {
                    tx.send(Cmd::Advance { now }).expect("shard worker alive");
                }
            }
        }
        // Mirror the shard schedulers' amortized history prune in the
        // coordinator's job map: once they forget a job, `release` must
        // report `UnknownJob` here rather than fan out a release no shard
        // still knows (identical to the single scheduler's answer).
        let window_start = self.slot_cfg.slot_start(target);
        if (window_start - self.last_prune).secs()
            >= coalloc_core::scheduler::PRUNE_EVERY_SLOTS * self.slot_cfg.tau.secs()
        {
            self.job_shards.retain(|_, &mut (_, end)| end > window_start);
            self.last_prune = window_start;
        }
    }

    /// Handle a request — the same online algorithm as
    /// [`CoAllocScheduler::submit`], with each attempt's feasibility decided
    /// by summing per-shard counts. Attempts are probed in staged doubling
    /// batches (1, 2, 4, … capped at a small constant) so a request that
    /// needs many `Delta_t` shifts costs `O(log attempts)` fan-out rounds
    /// rather than one round per attempt.
    pub fn submit(&mut self, req: &Request) -> Result<Grant, ScheduleError> {
        req.validate().map_err(ScheduleError::InvalidRequest)?;
        if req.servers > self.num_servers {
            return Err(ScheduleError::TooManyServers {
                requested: req.servers,
                available: self.num_servers,
            });
        }
        let earliest = req.earliest_start.max(self.now);
        let r_max = self.cfg.effective_r_max();
        let budget = r_max as u64 + 1;
        self.run_search(req, earliest, budget, budget)
    }

    /// Deadline-bounded submission — the sharded analogue of
    /// [`CoAllocScheduler::submit_with_deadline`]: no start later than
    /// `deadline - l_r` is ever probed.
    pub fn submit_with_deadline(
        &mut self,
        req: &Request,
        deadline: Time,
    ) -> Result<Grant, ScheduleError> {
        req.validate().map_err(ScheduleError::InvalidRequest)?;
        if req.servers > self.num_servers {
            return Err(ScheduleError::TooManyServers {
                requested: req.servers,
                available: self.num_servers,
            });
        }
        let earliest = req.earliest_start.max(self.now);
        let latest_start = deadline - req.duration;
        if latest_start < earliest {
            return Err(ScheduleError::Exhausted {
                attempts: 0,
                last_tried: earliest,
            });
        }
        let r_max = self.cfg.effective_r_max();
        let full = r_max as u64 + 1;
        let budget = full
            .min(((latest_start - earliest).secs() / self.cfg.delta_t.secs()) as u64 + 1);
        self.run_search(req, earliest, budget, full)
    }

    /// The shared retry loop. `budget` is the number of starts the caller's
    /// bounds allow (R_max, possibly deadline-capped); `full_budget` is the
    /// plain R_max budget, used only to account skipped attempts the same
    /// way the core scheduler does.
    fn run_search(
        &mut self,
        req: &Request,
        earliest: Time,
        budget: u64,
        full_budget: u64,
    ) -> Result<Grant, ScheduleError> {
        debug_assert!(budget <= full_budget);
        let horizon_end = self.horizon_end();
        let horizon_attempts = if earliest + req.duration > horizon_end {
            0
        } else {
            ((horizon_end - req.duration - earliest).secs() / self.cfg.delta_t.secs()) as u64 + 1
        };
        let tries = budget.min(horizon_attempts);
        let n = req.servers;
        let mut tried = 0u64;
        let mut batch = 1u64;
        let mut winner: Option<(u32, Time)> = None;
        'probe: while tried < tries {
            let m = batch.min(tries - tried).min(MAX_BATCH as u64) as u32;
            let first = earliest + self.cfg.delta_t * (tried as i64);
            let totals = self.sync_counts(first, req.duration, m);
            for (i, &total) in totals.iter().take(m as usize).enumerate() {
                if total >= n as u64 {
                    let attempts = (tried + i as u64 + 1) as u32;
                    winner = Some((attempts, first + self.cfg.delta_t * (i as i64)));
                    tried += i as u64 + 1;
                    break 'probe;
                }
            }
            tried += m as u64;
            batch = (batch * 2).min(MAX_BATCH as u64);
        }
        self.local.attempts += tried;
        if let Some((attempts, start)) = winner {
            let end = start + req.duration;
            let mut feasible = self.sync_enumerate(start, end);
            // At most one period per server is feasible for a given start, so
            // every policy key is total before its id tie-break and the merged
            // selection is independent of shard count and reply order — and
            // identical to the single scheduler's, server for server.
            self.cfg.policy.select_in_place(&mut feasible, n as usize, end);
            debug_assert_eq!(feasible.len(), n as usize, "count/enumerate mismatch");
            let job = JobId(self.next_job);
            self.next_job += 1;
            let mask = self.sync_commit(job, start, end, &feasible);
            self.job_shards.insert(job, (mask, end));
            return Ok(Grant {
                job,
                start,
                end,
                servers: feasible.iter().map(|p| p.server).collect(),
                attempts,
                waiting: start.saturating_since(earliest),
            });
        }
        let skipped = full_budget - tried;
        if skipped > 0 {
            self.local.attempts_skipped += skipped;
        }
        if horizon_attempts < budget {
            Err(ScheduleError::HorizonExceeded { horizon_end })
        } else {
            Err(ScheduleError::Exhausted {
                attempts: tried as u32,
                last_tried: earliest + self.cfg.delta_t * (tried as i64 - 1),
            })
        }
    }

    /// Cancel a committed job on every shard holding part of it.
    pub fn release(&mut self, job: JobId) -> Result<(), ScheduleError> {
        let (mask, _end) = self
            .job_shards
            .remove(&job)
            .ok_or(ScheduleError::UnknownJob(job))?;
        match &mut self.backend {
            Backend::Inline(st) => st.release(job),
            Backend::Threads { cmd, reply, .. } => {
                let mut expect = 0u32;
                for (i, tx) in cmd.iter().enumerate() {
                    if mask & (1 << i) != 0 {
                        tx.send(Cmd::Release { job }).expect("shard worker alive");
                        expect += 1;
                    }
                }
                for _ in 0..expect {
                    match reply.recv().expect("shard worker alive") {
                        Reply::Done { shard, stats } => {
                            self.shard_stats[shard as usize] = stats;
                        }
                        Reply::Died { shard } => panic!("shard worker {shard} died"),
                        other => panic!("unexpected shard reply {other:?}"),
                    }
                }
            }
        }
        if let Backend::Inline(st) = &self.backend {
            self.shard_stats[0] = st.stats();
        }
        Ok(())
    }

    /// System utilization over `[origin, until)` — the partition sum of
    /// per-shard busy time over total capacity, identical to
    /// [`CoAllocScheduler::utilization`].
    pub fn utilization(&mut self, until: Time) -> f64 {
        let span = (until - self.origin).secs();
        if span <= 0 {
            return 0.0;
        }
        let mut busy = 0i64;
        match &mut self.backend {
            Backend::Inline(st) => busy = st.busy_secs_before(until),
            Backend::Threads { cmd, reply, .. } => {
                for tx in cmd.iter() {
                    tx.send(Cmd::Busy { until }).expect("shard worker alive");
                }
                for _ in 0..cmd.len() {
                    match reply.recv().expect("shard worker alive") {
                        Reply::BusySecs { shard, secs, stats } => {
                            self.shard_stats[shard as usize] = stats;
                            busy += secs;
                        }
                        Reply::Died { shard } => panic!("shard worker {shard} died"),
                        other => panic!("unexpected shard reply {other:?}"),
                    }
                }
            }
        }
        busy as f64 / (span as f64 * self.num_servers as f64)
    }

    /// Cross-check every shard's indexes against its timeline (test helper;
    /// expensive).
    #[doc(hidden)]
    pub fn check_consistency(&mut self) {
        match &mut self.backend {
            Backend::Inline(st) => st.check(),
            Backend::Threads { cmd, reply, .. } => {
                for tx in cmd.iter() {
                    tx.send(Cmd::Check).expect("shard worker alive");
                }
                for _ in 0..cmd.len() {
                    match reply.recv().expect("shard worker alive") {
                        Reply::Done { shard, stats } => {
                            self.shard_stats[shard as usize] = stats;
                        }
                        Reply::Died { shard } => panic!("shard worker {shard} died"),
                        other => panic!("unexpected shard reply {other:?}"),
                    }
                }
            }
        }
    }

    /// Which shard owns a global server id.
    fn shard_of(&self, server: ServerId) -> usize {
        let k = self.layout.len() as u32;
        let per = self.num_servers / k;
        let rem = self.num_servers % k;
        let s = server.0;
        if s < rem * (per + 1) {
            (s / (per + 1)) as usize
        } else {
            (rem + (s - rem * (per + 1)) / per) as usize
        }
    }

    /// Fan a count batch to every shard and sum the per-attempt totals.
    fn sync_counts(&mut self, first: Time, duration: Dur, m: u32) -> [u64; MAX_BATCH] {
        let mut totals = [0u64; MAX_BATCH];
        let step = self.cfg.delta_t;
        match &mut self.backend {
            Backend::Inline(st) => {
                let mut counts = [0u32; MAX_BATCH];
                st.count_batch(first, step, duration, m, &mut counts);
                for (t, c) in totals.iter_mut().zip(counts) {
                    *t += c as u64;
                }
                self.shard_stats[0] = st.stats();
            }
            Backend::Threads { cmd, reply, .. } => {
                for tx in cmd.iter() {
                    tx.send(Cmd::Count {
                        first,
                        step,
                        duration,
                        m,
                    })
                    .expect("shard worker alive");
                }
                for _ in 0..cmd.len() {
                    match reply.recv().expect("shard worker alive") {
                        Reply::Counts {
                            shard,
                            counts,
                            stats,
                        } => {
                            self.shard_stats[shard as usize] = stats;
                            for (t, c) in totals.iter_mut().zip(counts) {
                                *t += c as u64;
                            }
                        }
                        Reply::Died { shard } => panic!("shard worker {shard} died"),
                        other => panic!("unexpected shard reply {other:?}"),
                    }
                }
            }
        }
        totals
    }

    /// Fan a feasible-set enumeration to every shard and concatenate.
    fn sync_enumerate(&mut self, start: Time, end: Time) -> Vec<IdlePeriod> {
        let mut feasible = Vec::new();
        match &mut self.backend {
            Backend::Inline(st) => {
                st.enumerate(start, end, &mut feasible);
                self.shard_stats[0] = st.stats();
            }
            Backend::Threads { cmd, reply, .. } => {
                for tx in cmd.iter() {
                    tx.send(Cmd::Enumerate { start, end })
                        .expect("shard worker alive");
                }
                for _ in 0..cmd.len() {
                    match reply.recv().expect("shard worker alive") {
                        Reply::Feasible {
                            shard,
                            periods,
                            stats,
                        } => {
                            self.shard_stats[shard as usize] = stats;
                            feasible.extend(periods);
                        }
                        Reply::Died { shard } => panic!("shard worker {shard} died"),
                        other => panic!("unexpected shard reply {other:?}"),
                    }
                }
            }
        }
        feasible
    }

    /// Dispatch the commit to the shards owning the chosen servers; returns
    /// the shard bitmask for the job.
    fn sync_commit(&mut self, job: JobId, start: Time, end: Time, chosen: &[IdlePeriod]) -> u64 {
        let k = self.layout.len();
        let mut per_shard: Vec<Vec<ServerId>> = vec![Vec::new(); k];
        let mut mask = 0u64;
        for p in chosen {
            let s = self.shard_of(p.server);
            per_shard[s].push(p.server);
            mask |= 1 << s;
        }
        match &mut self.backend {
            Backend::Inline(st) => {
                st.commit(job, start, end, &per_shard[0]);
                self.shard_stats[0] = st.stats();
            }
            Backend::Threads { cmd, reply, .. } => {
                let mut expect = 0u32;
                for (i, servers) in per_shard.into_iter().enumerate() {
                    if !servers.is_empty() {
                        cmd[i]
                            .send(Cmd::Commit {
                                job,
                                start,
                                end,
                                servers,
                            })
                            .expect("shard worker alive");
                        expect += 1;
                    }
                }
                for _ in 0..expect {
                    match reply.recv().expect("shard worker alive") {
                        Reply::Done { shard, stats } => {
                            self.shard_stats[shard as usize] = stats;
                        }
                        Reply::Died { shard } => panic!("shard worker {shard} died"),
                        other => panic!("unexpected shard reply {other:?}"),
                    }
                }
            }
        }
        mask
    }
}

impl Drop for ShardedScheduler {
    fn drop(&mut self) {
        if let Backend::Threads { cmd, handles, .. } = &mut self.backend {
            cmd.clear(); // disconnects the workers' command receivers
            for h in handles.drain(..) {
                let _ = h.join();
            }
        }
    }
}

impl OnlineScheduler for ShardedScheduler {
    fn advance_to(&mut self, now: Time) {
        ShardedScheduler::advance_to(self, now);
    }
    fn submit(&mut self, req: &Request) -> Result<Grant, ScheduleError> {
        ShardedScheduler::submit(self, req)
    }
    fn total_ops(&mut self) -> u64 {
        self.stats().total_ops()
    }
    fn utilization(&mut self, until: Time) -> f64 {
        ShardedScheduler::utilization(self, until)
    }
    fn now(&self) -> Time {
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> SchedulerConfig {
        SchedulerConfig::builder()
            .tau(Dur(10))
            .horizon(Dur(100))
            .delta_t(Dur(10))
            .build()
    }

    #[test]
    fn sharded_matches_basic_grant() {
        for k in [1, 2, 4] {
            let mut s = ShardedScheduler::new(4, k, small_cfg());
            let g = s.submit(&Request::on_demand(Time::ZERO, Dur(30), 3)).unwrap();
            assert_eq!(g.start, Time::ZERO, "k={k}");
            assert_eq!(g.servers.len(), 3);
            assert_eq!(g.attempts, 1);
            s.check_consistency();
        }
    }

    #[test]
    fn sharded_delays_like_plain() {
        for k in [1, 2] {
            let mut s = ShardedScheduler::new(2, k, small_cfg());
            s.submit(&Request::on_demand(Time::ZERO, Dur(30), 2)).unwrap();
            let g = s.submit(&Request::on_demand(Time::ZERO, Dur(20), 1)).unwrap();
            assert_eq!(g.start, Time(30), "k={k}");
            assert_eq!(g.attempts, 4);
            assert_eq!(g.waiting, Dur(30));
        }
    }

    #[test]
    fn sharded_horizon_and_exhaustion_errors_match() {
        let mut s = ShardedScheduler::new(1, 1, small_cfg());
        let err = s.submit(&Request::on_demand(Time::ZERO, Dur(200), 1)).unwrap_err();
        assert!(matches!(err, ScheduleError::HorizonExceeded { .. }));

        let cfg = SchedulerConfig::builder()
            .tau(Dur(10))
            .horizon(Dur(100))
            .delta_t(Dur(10))
            .r_max(2)
            .build();
        let mut s = ShardedScheduler::new(1, 1, cfg);
        s.submit(&Request::on_demand(Time::ZERO, Dur(90), 1)).unwrap();
        let err = s.submit(&Request::on_demand(Time::ZERO, Dur(10), 1)).unwrap_err();
        assert_eq!(
            err,
            ScheduleError::Exhausted {
                attempts: 3,
                last_tried: Time(20)
            }
        );
    }

    #[test]
    fn release_restores_capacity_across_shards() {
        let mut s = ShardedScheduler::new(4, 2, small_cfg());
        let g = s.submit(&Request::on_demand(Time::ZERO, Dur(100), 4)).unwrap();
        assert!(s.submit(&Request::on_demand(Time::ZERO, Dur(20), 1)).is_err());
        s.release(g.job).unwrap();
        let g2 = s.submit(&Request::on_demand(Time::ZERO, Dur(20), 4)).unwrap();
        assert_eq!(g2.start, Time::ZERO);
        assert_eq!(
            s.release(JobId(999)),
            Err(ScheduleError::UnknownJob(JobId(999)))
        );
        s.check_consistency();
    }

    #[test]
    fn deadline_path_matches_plain_semantics() {
        let mut s = ShardedScheduler::new(1, 1, small_cfg());
        s.submit(&Request::on_demand(Time::ZERO, Dur(30), 1)).unwrap();
        let g = s
            .submit_with_deadline(&Request::on_demand(Time::ZERO, Dur(20), 1), Time(60))
            .unwrap();
        assert_eq!(g.start, Time(30));
        let err = s
            .submit_with_deadline(&Request::on_demand(Time::ZERO, Dur(50), 1), Time(40))
            .unwrap_err();
        assert_eq!(
            err,
            ScheduleError::Exhausted {
                attempts: 0,
                last_tried: Time::ZERO
            }
        );
    }

    #[test]
    fn shard_of_is_the_inverse_of_the_layout() {
        for (n, k) in [(7u32, 3u32), (8, 4), (64, 8), (5, 5), (9, 2)] {
            let s = ShardedScheduler::new(n, k, small_cfg());
            for (i, &(base, count)) in s.layout.iter().enumerate() {
                for srv in base..base + count {
                    assert_eq!(s.shard_of(ServerId(srv)), i, "n={n} k={k} srv={srv}");
                }
            }
        }
    }
}
