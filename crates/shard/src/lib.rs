//! # coalloc-shard
//!
//! A sharded, parallel front-end for the co-allocation scheduler.
//!
//! The `M` servers are partitioned into `K` contiguous shards, each owning
//! an independent timeline + slot-ring + trailing index over its servers
//! ([`state::ShardState`]). A coordinator ([`ShardedScheduler`]) drives the
//! paper's online algorithm and executes in one of two modes:
//!
//! * **Inline** (per-request `submit`, and batches below the pool
//!   threshold): the coordinator locks each shard state directly and runs
//!   the two-phase search sequentially — no threads are woken, so the
//!   low-load path costs the same as the single scheduler plus a handful
//!   of uncontended mutex acquisitions.
//! * **Batched pool** ([`ShardedScheduler::submit_batch`] above the
//!   threshold): each shard worker is woken **once per batch per stage**.
//!   Phase-1 count ladders for every batch member are probed speculatively
//!   against the pre-batch snapshot in staged-doubling rounds (one mailbox
//!   message per shard per round), Phase-2 feasible sets for every
//!   speculative winner go out in one more message, and commit deltas are
//!   pipelined to the owning shards asynchronously with a drain barrier at
//!   batch end. A speculative decision is *validated* in submission order:
//!   it is accepted only if its feasible set is disjoint from every server
//!   committed earlier in the batch, and re-probed sequentially otherwise
//!   (validate-and-repair), so decisions are bit-identical to sequential
//!   submission. See DESIGN.md §9 for the full argument.
//!
//! **Decision equivalence.** Feasible counts are partition sums and every
//! feasible set holds at most one period per server, so every policy's
//! selection key is total before its id tie-break: a sharded run makes the
//! same grant/reject decisions, start times, attempt counts, *and server
//! choices* as [`CoAllocScheduler`] for every policy and every `K` —
//! batched or not.
//!
//! **Attempt jumping.** The coordinator maintains the same free-capacity
//! profile as the core scheduler (DESIGN.md §14) and uses it to skip retry
//! starts that are provably infeasible *before* any shard is locked or
//! woken — both in the inline ladder and when assembling the pool's
//! speculative probe rounds. The profile bound is partition-independent
//! (it counts servers busy throughout a slot, regardless of which shard
//! owns them), so jumping never changes a decision here either.
//!
//! With `K = 1` the coordinator always runs the shard inline — no threads,
//! no channels — so the single-shard configuration measures pure
//! coordinator overhead against [`CoAllocScheduler`].

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod state;

mod pool;

use crate::pool::{Cmd, ProbeJob, ProbeStage, Reply, MAX_BATCH};
use crate::state::ShardState;
use coalloc_core::prelude::*;
use coalloc_sim::runner::OnlineScheduler;
use obs::{LazyCounter, LazyHistogram};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Default batch size at which `submit_batch` hands work to the worker
/// pool instead of running inline. Only reached when the host has more
/// than one CPU — on a single CPU the pool can only add context switches,
/// so the bypass threshold defaults to "never". Overridable at
/// construction with the `COALLOC_POOL_MIN_BATCH` environment variable,
/// or per instance with [`ShardedScheduler::set_pool_min_batch`].
const POOL_MIN_BATCH: usize = 16;

// Batched-execution metrics: how work reaches the shards (batch sizes) and
// how often speculation fails and is re-probed sequentially.
static BATCH_SIZE: LazyHistogram = LazyHistogram::new("shard_batch_size");
static BATCH_REPROBES: LazyCounter = LazyCounter::new("shard_batch_repro_probes_total");

/// How the coordinator talks to its shards.
#[derive(Debug)]
struct Backend {
    /// The shard states. The coordinator locks them directly for all
    /// sequential work (the load-adaptive bypass); pool workers lock them
    /// for batch stages. The two never contend: the coordinator only
    /// touches a state inline when the pool has no outstanding work.
    states: Vec<Arc<Mutex<ShardState>>>,
    /// Worker pool, spawned only for `K > 1`.
    pool: Option<Pool>,
}

/// The worker-pool half of the backend.
#[derive(Debug)]
struct Pool {
    cmd: Vec<crossbeam::channel::Sender<Cmd>>,
    reply: crossbeam::channel::Receiver<Reply>,
    /// Per-shard count of asynchronous commits not yet acknowledged.
    outstanding: Vec<u32>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

/// Coordinator-side reusable buffers, so steady-state submission (inline
/// or batched) performs no per-request heap allocation beyond the returned
/// `Grant`.
#[derive(Debug, Default)]
struct CoordScratch {
    /// Merged feasible set of the winning attempt.
    feasible: Vec<IdlePeriod>,
    /// Per-shard staging buffer for inline enumeration.
    enum_tmp: Vec<IdlePeriod>,
    /// Chosen servers grouped by owning shard for commit dispatch.
    per_shard: Vec<Vec<ServerId>>,
    /// Servers committed earlier in the current batch (validate-and-repair
    /// conflict set), indexed by global server id.
    dirty: Vec<bool>,
}

/// Per-request bookkeeping for the speculative batch path.
#[derive(Debug)]
struct ReqSlot {
    earliest: Time,
    horizon_attempts: u64,
    tries: u64,
    /// Next logical attempt index to gather (capacity-profile jumping makes
    /// the probed sequence a subset of `0..tries`).
    k: u64,
    /// Current staged-doubling round size.
    round: u64,
    /// Phase-1 windows actually probed against the pre-batch snapshot
    /// (for the live-ladder accounting adjustment in stage 3).
    windows: u64,
    /// Probe/enumerate tree-op work, charged only if the speculative
    /// decision is accepted.
    delta: OpStats,
    /// Pre-search validation error (never probed).
    err: Option<ScheduleError>,
    /// Speculative winner: `(logical attempt index, start)`.
    winner: Option<(u64, Time)>,
    /// Speculative reject: the ladder exhausted every permitted start.
    rejected: bool,
    /// Index of this request's window in the enumerate stage.
    enum_k: usize,
}

impl ReqSlot {
    fn probing(&self) -> bool {
        self.err.is_none() && self.winner.is_none() && !self.rejected
    }
}

/// Coordinator-side record of one live job: the shards holding its
/// reservations plus the reservation window and width, so `release` can
/// withdraw the job's contribution from the capacity profile without
/// consulting any shard.
#[derive(Clone, Copy, Debug)]
struct JobInfo {
    /// Bitmask of shards holding the job's reservations.
    mask: u64,
    start: Time,
    end: Time,
    /// Number of servers reserved.
    servers: u32,
}

/// The sharded parallel co-allocation scheduler.
///
/// Drop-in equivalent of [`CoAllocScheduler`] for the submit/advance/release
/// flow; see the crate docs for the equivalence guarantees. Index updates
/// are always applied eagerly (the `deferred_updates` knob only shapes the
/// single scheduler's latency profile, never its decisions).
#[derive(Debug)]
pub struct ShardedScheduler {
    cfg: SchedulerConfig,
    slot_cfg: SlotConfig,
    num_servers: u32,
    origin: Time,
    now: Time,
    /// First live slot — mirrors every shard ring's base.
    base_slot: SlotIdx,
    /// `(base, count)` of each shard's server range.
    layout: Vec<(u32, u32)>,
    backend: Backend,
    /// Latest cumulative [`OpStats`] seen from each shard.
    shard_stats: Vec<OpStats>,
    /// Coordinator-side counters: attempt accounting plus the probe work
    /// of accepted speculative batch decisions.
    local: OpStats,
    /// Aggregate free-capacity upper bound over the live slot window,
    /// maintained from the same commit/release deltas the shards see. The
    /// retry loop uses it to jump over provably-infeasible starts before
    /// any shard is probed (inline) or woken (pool stage 1).
    profile: FreeProfile,
    /// Per live job: shard mask plus reservation window, mirrored for
    /// history pruning and profile withdrawal on release.
    job_shards: HashMap<JobId, JobInfo>,
    /// History boundary of the last amortized prune — mirrors every shard
    /// scheduler's, so `release` of a pruned job reports `UnknownJob`
    /// exactly when the single scheduler would.
    last_prune: Time,
    next_job: u64,
    /// Batch size below which `submit_batch` bypasses the pool.
    pool_min_batch: usize,
    scratch: CoordScratch,
}

impl ShardedScheduler {
    /// Create a sharded scheduler over `num_servers` servers split into `k`
    /// shards, clock at the epoch. `k` is clamped to `[1, min(64,
    /// num_servers)]` so every shard owns at least one server and the
    /// per-job shard mask fits a word.
    ///
    /// Decisions are bit-identical to a single [`CoAllocScheduler`] over
    /// the same servers, for every `k`:
    ///
    /// ```
    /// use coalloc_core::prelude::*;
    /// use coalloc_shard::ShardedScheduler;
    ///
    /// let req = Request::advance(Time::ZERO, Time::from_hours(2), Dur::from_hours(1), 3);
    /// let mut single = CoAllocScheduler::new(8, SchedulerConfig::default());
    /// let mut sharded = ShardedScheduler::new(8, 4, SchedulerConfig::default());
    /// let (a, b) = (single.submit(&req).unwrap(), sharded.submit(&req).unwrap());
    /// assert_eq!((a.job, a.start, a.end, a.servers), (b.job, b.start, b.end, b.servers));
    /// ```
    pub fn new(num_servers: u32, k: u32, cfg: SchedulerConfig) -> ShardedScheduler {
        ShardedScheduler::starting_at(num_servers, k, Time::ZERO, cfg)
    }

    /// Create a sharded scheduler with the clock at `origin`.
    pub fn starting_at(
        num_servers: u32,
        k: u32,
        origin: Time,
        cfg: SchedulerConfig,
    ) -> ShardedScheduler {
        assert!(num_servers > 0, "a system needs at least one server");
        let k = k.clamp(1, num_servers.min(64));
        let slot_cfg = cfg.slot_config();
        // Contiguous partition: the first `rem` shards get one extra server.
        let per = num_servers / k;
        let rem = num_servers % k;
        let mut layout = Vec::with_capacity(k as usize);
        let mut base = 0u32;
        for i in 0..k {
            let count = per + u32::from(i < rem);
            layout.push((base, count));
            base += count;
        }
        let states: Vec<Arc<Mutex<ShardState>>> = layout
            .iter()
            .enumerate()
            .map(|(i, &(base, count))| {
                let seed = cfg.seed ^ (i as u64).wrapping_mul(0xA24BAED4963EE407);
                Arc::new(Mutex::new(ShardState::new(&cfg, base, count, origin, seed)))
            })
            .collect();
        let pool = if k == 1 {
            None
        } else {
            let (cmd, reply, handles) = pool::spawn_workers(&states);
            Some(Pool {
                cmd,
                reply,
                outstanding: vec![0; k as usize],
                handles,
            })
        };
        // Load-adaptive default: the pool only pays off when batch stages
        // can actually run in parallel, so a single-CPU host keeps every
        // batch on the inline path. `COALLOC_POOL_MIN_BATCH` overrides the
        // adaptive choice (benchmarks use it to pin the execution mode).
        let env_min_batch = std::env::var("COALLOC_POOL_MIN_BATCH")
            .ok()
            .and_then(|v| v.parse::<usize>().ok());
        let pool_min_batch = match env_min_batch {
            Some(n) => n,
            None if pool.is_none() => usize::MAX,
            None => match std::thread::available_parallelism() {
                Ok(p) if p.get() > 1 => POOL_MIN_BATCH,
                _ => usize::MAX,
            },
        };
        ShardedScheduler {
            cfg,
            slot_cfg,
            num_servers,
            origin,
            now: origin,
            base_slot: slot_cfg.slot_of(origin),
            layout,
            backend: Backend { states, pool },
            shard_stats: vec![OpStats::new(); k as usize],
            local: OpStats::new(),
            profile: FreeProfile::new(slot_cfg, num_servers, origin),
            job_shards: HashMap::new(),
            last_prune: origin,
            next_job: 0,
            pool_min_batch,
            scratch: CoordScratch {
                per_shard: vec![Vec::new(); k as usize],
                ..CoordScratch::default()
            },
        }
    }

    /// The number of shards.
    pub fn num_shards(&self) -> u32 {
        self.layout.len() as u32
    }

    /// Number of servers `N`.
    pub fn num_servers(&self) -> u32 {
        self.num_servers
    }

    /// The configuration in force.
    pub fn config(&self) -> &SchedulerConfig {
        &self.cfg
    }

    /// The scheduler's current clock.
    pub fn now(&self) -> Time {
        self.now
    }

    /// The clock value the scheduler started at.
    pub fn origin(&self) -> Time {
        self.origin
    }

    /// First instant covered by the live slot window.
    pub fn window_start(&self) -> Time {
        self.slot_cfg.slot_start(self.base_slot)
    }

    /// End of the current scheduling horizon.
    pub fn horizon_end(&self) -> Time {
        self.slot_cfg
            .slot_start(SlotIdx(self.base_slot.0 + self.slot_cfg.num_slots as i64))
    }

    /// Override the batch size at which [`Self::submit_batch`] hands work
    /// to the worker pool (default: adaptive — `16` on multi-CPU hosts
    /// with `K > 1`, never otherwise). `0` forces every batch through the
    /// pool; `usize::MAX` forces the inline path. Decisions are identical
    /// either way; only the execution strategy changes.
    pub fn set_pool_min_batch(&mut self, n: usize) {
        self.pool_min_batch = n;
    }

    /// Aggregated operation counters: the sum of every shard's tree work
    /// plus the coordinator's attempt accounting and accepted speculative
    /// probe work. Independent of how submissions were grouped into
    /// batches, except that speculative probes measure their work against
    /// the pre-batch snapshot, so the snapshot-dependent probe counters
    /// (`primary_visits`, `secondary_visits`, `phase2_searches`) can
    /// drift; attempts, skips (including `attempts_jumped`), phase-1
    /// searches and all structural-update counters are grouping-invariant
    /// exactly.
    pub fn stats(&self) -> OpStats {
        let mut total = self.local;
        for s in &self.shard_stats {
            total.primary_visits += s.primary_visits;
            total.secondary_visits += s.secondary_visits;
            total.update_visits += s.update_visits;
            total.phase1_searches += s.phase1_searches;
            total.phase2_searches += s.phase2_searches;
            total.rebuilds += s.rebuilds;
            total.periods_inserted += s.periods_inserted;
            total.periods_removed += s.periods_removed;
        }
        total
    }

    /// Advance the clock. Shards only hear about it when the live slot
    /// window actually moves (ring rotation and prune cadence depend only on
    /// the slot index, so intra-slot advances are a coordinator-local no-op).
    pub fn advance_to(&mut self, now: Time) {
        if now <= self.now {
            return;
        }
        self.now = now;
        let target = self.slot_cfg.slot_of(now);
        if target <= self.base_slot {
            return;
        }
        self.base_slot = target;
        self.profile.advance_to(now);
        self.drain_pool();
        for i in 0..self.backend.states.len() {
            let mut st = self.backend.states[i].lock().expect("shard state lock");
            st.advance_to(now);
            self.shard_stats[i] = st.stats();
        }
        // Mirror the shard schedulers' amortized history prune in the
        // coordinator's job map: once they forget a job, `release` must
        // report `UnknownJob` here rather than fan out a release no shard
        // still knows (identical to the single scheduler's answer).
        let window_start = self.slot_cfg.slot_start(target);
        if (window_start - self.last_prune).secs()
            >= coalloc_core::scheduler::PRUNE_EVERY_SLOTS * self.slot_cfg.tau.secs()
        {
            self.job_shards.retain(|_, info| info.end > window_start);
            self.last_prune = window_start;
        }
    }

    /// Handle a request — the same online algorithm as
    /// [`CoAllocScheduler::submit`], with each attempt's feasibility decided
    /// by summing per-shard counts. Attempts are probed in staged doubling
    /// batches (1, 2, 4, … capped at a small constant). Always runs inline:
    /// a single request is below any pool threshold by definition.
    pub fn submit(&mut self, req: &Request) -> Result<Grant, ScheduleError> {
        req.validate().map_err(ScheduleError::InvalidRequest)?;
        if req.servers > self.num_servers {
            return Err(ScheduleError::TooManyServers {
                requested: req.servers,
                available: self.num_servers,
            });
        }
        self.drain_pool();
        let earliest = req.earliest_start.max(self.now);
        let r_max = self.cfg.effective_r_max();
        let budget = r_max as u64 + 1;
        self.run_search(req, earliest, budget)
    }

    /// Handle a batch of requests in submission order, returning one reply
    /// per member in order. Semantically identical to submitting each
    /// member with [`Self::submit`] against the current clock — member `i`
    /// observes the commits of members `0..i` — but above the pool
    /// threshold the coordination is amortized: each shard worker is woken
    /// once per batch per stage instead of once per request.
    ///
    /// ```
    /// use coalloc_core::prelude::*;
    /// use coalloc_shard::ShardedScheduler;
    ///
    /// let reqs: Vec<Request> = (0..6)
    ///     .map(|i| Request::on_demand(Time::ZERO, Dur::from_mins(30 + i * 10), 2))
    ///     .collect();
    /// let mut batched = ShardedScheduler::new(8, 4, SchedulerConfig::default());
    /// let mut sequential = ShardedScheduler::new(8, 4, SchedulerConfig::default());
    /// let a = batched.submit_batch(&reqs);
    /// let b: Vec<_> = reqs.iter().map(|r| sequential.submit(r)).collect();
    /// assert_eq!(a, b);
    /// ```
    pub fn submit_batch(&mut self, reqs: &[Request]) -> Vec<Result<Grant, ScheduleError>> {
        let mut out = Vec::new();
        self.submit_batch_into(reqs, &mut out);
        out
    }

    /// [`Self::submit_batch`] writing into a caller-owned buffer (cleared
    /// first), so a steady-state stream of all-reject batches performs no
    /// heap allocation once capacities have warmed up.
    pub fn submit_batch_into(
        &mut self,
        reqs: &[Request],
        out: &mut Vec<Result<Grant, ScheduleError>>,
    ) {
        out.clear();
        BATCH_SIZE.observe(reqs.len() as u64);
        if self.backend.pool.is_none() || reqs.len() < self.pool_min_batch {
            // Load-adaptive bypass: below the threshold the rendezvous
            // cost of the pool exceeds its parallelism, so run the exact
            // sequential algorithm inline.
            out.reserve(reqs.len());
            for req in reqs {
                out.push(self.submit(req));
            }
            return;
        }
        self.submit_batch_pool(reqs, out);
    }

    /// Deadline-bounded submission — the sharded analogue of
    /// [`CoAllocScheduler::submit_with_deadline`]: no start later than
    /// `deadline - l_r` is ever probed.
    pub fn submit_with_deadline(
        &mut self,
        req: &Request,
        deadline: Time,
    ) -> Result<Grant, ScheduleError> {
        req.validate().map_err(ScheduleError::InvalidRequest)?;
        if req.servers > self.num_servers {
            return Err(ScheduleError::TooManyServers {
                requested: req.servers,
                available: self.num_servers,
            });
        }
        self.drain_pool();
        let earliest = req.earliest_start.max(self.now);
        let latest_start = deadline - req.duration;
        if latest_start < earliest {
            return Err(ScheduleError::Exhausted {
                attempts: 0,
                last_tried: earliest,
            });
        }
        let r_max = self.cfg.effective_r_max();
        let budget = (r_max as u64 + 1)
            .min(((latest_start - earliest).secs() / self.cfg.delta_t.secs()) as u64 + 1);
        self.run_search(req, earliest, budget)
    }

    /// The shared retry loop of the inline path. `budget` is the number of
    /// starts the caller's bounds allow (R_max, possibly deadline-capped).
    ///
    /// Attempt windows are gathered through the capacity profile: a start
    /// whose free upper bound is below `n_r` is provably infeasible on any
    /// shard partition, so it is jumped over (charged to `attempts_skipped`
    /// / `attempts_jumped`) instead of probed. Decisions are identical to
    /// the exhaustive linear walk; see DESIGN.md §14.
    ///
    /// Callers must have drained the pool first: this path locks shard
    /// states directly.
    fn run_search(
        &mut self,
        req: &Request,
        earliest: Time,
        budget: u64,
    ) -> Result<Grant, ScheduleError> {
        let horizon_end = self.horizon_end();
        let horizon_attempts = if earliest + req.duration > horizon_end {
            0
        } else {
            ((horizon_end - req.duration - earliest).secs() / self.cfg.delta_t.secs()) as u64 + 1
        };
        let tries = budget.min(horizon_attempts);
        let n = req.servers;
        let step = self.cfg.delta_t;
        let jump = self.cfg.jump_retries;
        let mut starts = [Time::ZERO; MAX_BATCH];
        let mut ks = [0u64; MAX_BATCH];
        let mut k = 0u64;
        let mut round = 1u64;
        let mut gathered = 0u64;
        let mut winner: Option<(u64, Time)> = None;
        'probe: while k < tries {
            // Gather this round's profile-allowed starts (all of 0..tries
            // when jumping is off — the exhaustive ladder).
            let want = round.min(MAX_BATCH as u64) as usize;
            let mut m = 0usize;
            while m < want && k < tries {
                let kk = if jump {
                    match self.profile.next_allowed(earliest, step, req.duration, n, k, tries) {
                        Some(kk) => kk,
                        None => {
                            k = tries;
                            break;
                        }
                    }
                } else {
                    k
                };
                k = kk;
                starts[m] = earliest + step * (kk as i64);
                ks[m] = kk;
                m += 1;
                k += 1;
            }
            if m == 0 {
                break;
            }
            let totals = self.sync_counts_at(&starts[..m], req.duration);
            for (i, &total) in totals.iter().take(m).enumerate() {
                if total >= n as u64 {
                    gathered += i as u64 + 1;
                    winner = Some((ks[i], starts[i]));
                    break 'probe;
                }
            }
            gathered += m as u64;
            round = (round * 2).min(MAX_BATCH as u64);
        }
        self.local.attempts += gathered;
        if let Some((kw, start)) = winner {
            // Jumped-over starts up to the winner were all profile-refuted.
            let skipped = (kw + 1) - gathered;
            if skipped > 0 {
                self.local.attempts_skipped += skipped;
                self.local.attempts_jumped += skipped;
                coalloc_core::scheduler::record_attempts_jumped(skipped);
            }
            let end = start + req.duration;
            let mut feasible = std::mem::take(&mut self.scratch.feasible);
            self.sync_enumerate_into(start, end, &mut feasible);
            // At most one period per server is feasible for a given start, so
            // every policy key is total before its id tie-break and the merged
            // selection is independent of shard count and merge order — and
            // identical to the single scheduler's, server for server.
            self.cfg.policy.select_in_place(&mut feasible, n as usize, end);
            debug_assert_eq!(feasible.len(), n as usize, "count/enumerate mismatch");
            let job = JobId(self.next_job);
            self.next_job += 1;
            let mask = self.sync_commit(job, start, end, &feasible);
            self.profile.add(start, end, n);
            self.job_shards.insert(
                job,
                JobInfo {
                    mask,
                    start,
                    end,
                    servers: n,
                },
            );
            let servers = feasible.iter().map(|p| p.server).collect();
            self.scratch.feasible = feasible;
            return Ok(Grant {
                job,
                start,
                end,
                servers,
                attempts: (kw + 1) as u32,
                waiting: start.saturating_since(earliest),
            });
        }
        let skipped = budget - gathered;
        if skipped > 0 {
            self.local.attempts_skipped += skipped;
        }
        let jumped = tries - gathered;
        if jumped > 0 {
            self.local.attempts_jumped += jumped;
            coalloc_core::scheduler::record_attempts_jumped(jumped);
        }
        if horizon_attempts < budget {
            Err(ScheduleError::HorizonExceeded { horizon_end })
        } else {
            Err(ScheduleError::Exhausted {
                attempts: tries as u32,
                last_tried: earliest + self.cfg.delta_t * (tries as i64 - 1),
            })
        }
    }

    /// Replay the inline gathering ladder against the **live** profile for
    /// a speculative batch member whose outcome is already known, returning
    /// `(attempts, windows)`: the attempts the sequential path would charge
    /// and the Phase-1 windows (per shard) it would probe.
    ///
    /// With jumping off the gathering sequence is state-independent, so
    /// this reproduces the speculative ladder's own numbers and every
    /// downstream adjustment is zero. With jumping on, the pre-batch
    /// profile may allow windows that the live profile — which has
    /// absorbed this batch's earlier commits — provably refutes; replaying
    /// against the live profile keeps attempt/skip/phase-1 accounting
    /// identical to sequential submission. Must run *before* the member's
    /// own commit is added to the profile.
    fn simulate_ladder(
        &self,
        duration: Dur,
        n: u32,
        earliest: Time,
        tries: u64,
        winner_k: Option<u64>,
    ) -> (u64, u64) {
        let step = self.cfg.delta_t;
        let jump = self.cfg.jump_retries;
        let mut k = 0u64;
        let mut round = 1u64;
        let mut attempts = 0u64;
        let mut windows = 0u64;
        while k < tries {
            let want = round.min(MAX_BATCH as u64) as usize;
            let mut m = 0usize;
            let mut hit: Option<usize> = None;
            while m < want && k < tries {
                let kk = if jump {
                    match self.profile.next_allowed(earliest, step, duration, n, k, tries) {
                        Some(kk) => kk,
                        None => {
                            k = tries;
                            break;
                        }
                    }
                } else {
                    k
                };
                k = kk;
                if winner_k == Some(kk) {
                    hit = Some(m);
                }
                m += 1;
                k += 1;
            }
            if m == 0 {
                break;
            }
            // The sequential path probes the whole gathered round even when
            // the winner sits mid-round, but only charges attempts through
            // the winner position.
            windows += m as u64;
            if let Some(i) = hit {
                attempts += i as u64 + 1;
                return (attempts, windows);
            }
            attempts += m as u64;
            round = (round * 2).min(MAX_BATCH as u64);
        }
        debug_assert!(
            winner_k.is_none(),
            "an accepted winner's start is always live-reachable"
        );
        (attempts, windows)
    }

    /// The speculative pool path of [`Self::submit_batch`]. Requires the
    /// pool to exist; decisions are bit-identical to the inline path.
    fn submit_batch_pool(
        &mut self,
        reqs: &[Request],
        out: &mut Vec<Result<Grant, ScheduleError>>,
    ) {
        // Any commit still in flight belongs to an earlier batch and must
        // land before this batch's pre-batch snapshot is probed.
        self.drain_pool();
        let k = self.backend.states.len();
        let step = self.cfg.delta_t;
        let horizon_end = self.horizon_end();
        let budget = self.cfg.effective_r_max() as u64 + 1;

        // Per-request setup: validation and ladder bounds, exactly as the
        // sequential path derives them (the clock is constant across the
        // batch, so `earliest` and the horizon are batch-invariant).
        let mut slots: Vec<ReqSlot> = reqs
            .iter()
            .map(|req| {
                let mut slot = ReqSlot {
                    earliest: Time::ZERO,
                    horizon_attempts: 0,
                    tries: 0,
                    k: 0,
                    round: 1,
                    windows: 0,
                    delta: OpStats::new(),
                    err: None,
                    winner: None,
                    rejected: false,
                    enum_k: usize::MAX,
                };
                if let Err(e) = req.validate() {
                    slot.err = Some(ScheduleError::InvalidRequest(e));
                    return slot;
                }
                if req.servers > self.num_servers {
                    slot.err = Some(ScheduleError::TooManyServers {
                        requested: req.servers,
                        available: self.num_servers,
                    });
                    return slot;
                }
                slot.earliest = req.earliest_start.max(self.now);
                slot.horizon_attempts = if slot.earliest + req.duration > horizon_end {
                    0
                } else {
                    ((horizon_end - req.duration - slot.earliest).secs() / step.secs()) as u64 + 1
                };
                slot.tries = budget.min(slot.horizon_attempts);
                slot.rejected = slot.tries == 0;
                slot
            })
            .collect();

        // Stage 1 — speculative Phase-1 ladders against the pre-batch
        // snapshot, in staged-doubling rounds. Every round wakes each
        // shard once with the windows of every still-unresolved member.
        // Gathering consults the pre-batch capacity profile: a start it
        // refutes has even less capacity live (in-batch commits only
        // remove capacity), so pruning it cannot change any decision.
        let jump = self.cfg.jump_retries;
        let mut idx_map: Vec<usize> = Vec::new();
        let mut round_ks: Vec<[u64; MAX_BATCH]> = Vec::new();
        let mut totals: Vec<u64> = Vec::new();
        loop {
            idx_map.clear();
            round_ks.clear();
            let mut jobs = Vec::new();
            for (i, slot) in slots.iter_mut().enumerate() {
                if !slot.probing() {
                    continue;
                }
                let req = &reqs[i];
                let want = slot.round.min(MAX_BATCH as u64) as usize;
                let mut starts = [Time::ZERO; MAX_BATCH];
                let mut ks = [0u64; MAX_BATCH];
                let mut m = 0usize;
                while m < want && slot.k < slot.tries {
                    let kk = if jump {
                        match self.profile.next_allowed(
                            slot.earliest,
                            step,
                            req.duration,
                            req.servers,
                            slot.k,
                            slot.tries,
                        ) {
                            Some(kk) => kk,
                            None => {
                                slot.k = slot.tries;
                                break;
                            }
                        }
                    } else {
                        slot.k
                    };
                    slot.k = kk;
                    starts[m] = slot.earliest + step * (kk as i64);
                    ks[m] = kk;
                    m += 1;
                    slot.k += 1;
                }
                if m == 0 {
                    slot.rejected = true;
                    continue;
                }
                slot.windows += m as u64;
                jobs.push(ProbeJob {
                    starts,
                    duration: req.duration,
                    m: m as u32,
                });
                round_ks.push(ks);
                idx_map.push(i);
            }
            if jobs.is_empty() {
                break;
            }
            let stage = Arc::new(ProbeStage { jobs });
            {
                let pool = self.backend.pool.as_ref().expect("pool path");
                for tx in &pool.cmd {
                    tx.send(Cmd::Probe {
                        stage: Arc::clone(&stage),
                    })
                    .expect("shard worker alive");
                }
            }
            let total_attempts: usize = stage.jobs.iter().map(|j| j.m as usize).sum();
            totals.clear();
            totals.resize(total_attempts, 0);
            let mut got = 0;
            while got < k {
                match self.recv_reply() {
                    Reply::Probed { counts, deltas } => {
                        for (t, c) in totals.iter_mut().zip(&counts) {
                            *t += *c as u64;
                        }
                        for (j, d) in deltas.iter().enumerate() {
                            slots[idx_map[j]].delta.accumulate(d);
                        }
                        got += 1;
                    }
                    other => panic!("unexpected shard reply {other:?}"),
                }
            }
            // Resolve this round per request: the winner is the first
            // gathered window with enough capacity; its logical attempt
            // index comes from the gathering record.
            let mut off = 0usize;
            for (j, job) in stage.jobs.iter().enumerate() {
                let slot = &mut slots[idx_map[j]];
                let counts = &totals[off..off + job.m as usize];
                off += job.m as usize;
                let n = reqs[idx_map[j]].servers as u64;
                if let Some(a) = counts.iter().position(|&c| c >= n) {
                    slot.winner = Some((round_ks[j][a], job.starts[a]));
                } else if slot.k >= slot.tries {
                    slot.rejected = true;
                } else {
                    slot.round = (slot.round * 2).min(MAX_BATCH as u64);
                }
            }
        }

        // Stage 2 — Phase-2 feasible sets for every speculative winner,
        // one message per shard.
        let mut windows: Vec<(Time, Time)> = Vec::new();
        let mut enum_idx: Vec<usize> = Vec::new();
        for (i, slot) in slots.iter_mut().enumerate() {
            if let Some((_, start)) = slot.winner {
                slot.enum_k = windows.len();
                windows.push((start, start + reqs[i].duration));
                enum_idx.push(i);
            }
        }
        let mut feasible_sets: Vec<Vec<IdlePeriod>> = vec![Vec::new(); windows.len()];
        if !windows.is_empty() {
            let windows = Arc::new(windows);
            {
                let pool = self.backend.pool.as_ref().expect("pool path");
                for tx in &pool.cmd {
                    tx.send(Cmd::Enumerate {
                        windows: Arc::clone(&windows),
                    })
                    .expect("shard worker alive");
                }
            }
            let mut got = 0;
            while got < k {
                match self.recv_reply() {
                    Reply::Enumerated { sets, deltas } => {
                        for (j, set) in sets.into_iter().enumerate() {
                            feasible_sets[j].extend(set);
                        }
                        for (j, d) in deltas.iter().enumerate() {
                            slots[enum_idx[j]].delta.accumulate(d);
                        }
                        got += 1;
                    }
                    other => panic!("unexpected shard reply {other:?}"),
                }
            }
        }

        // Stage 3 — validate and commit in submission order. A speculative
        // decision survives iff its feasible set avoids every server
        // committed earlier in the batch: in-batch commits only ever
        // *remove* capacity, so (a) speculative rejects are always exact,
        // and (b) an accepted winner's feasible set — and therefore its
        // attempt count, start, and server selection — is exactly what a
        // sequential probe would have seen. Anything else is re-probed
        // sequentially against live state (validate-and-repair).
        self.scratch.dirty.clear();
        self.scratch.dirty.resize(self.num_servers as usize, false);
        out.reserve(reqs.len());
        for (i, req) in reqs.iter().enumerate() {
            let slot = &mut slots[i];
            if let Some(err) = slot.err.take() {
                out.push(Err(err));
                continue;
            }
            if slot.rejected {
                // Exact reject (capacity only shrank in-batch), but the
                // *live* gathering may jump more windows than the
                // speculative one did: replay it for the accounting, and
                // re-base the Phase-1 window charge from the speculative
                // ladder to the live one (identical when jumping is off).
                let (attempts, windows) = self.simulate_ladder(
                    req.duration,
                    req.servers,
                    slot.earliest,
                    slot.tries,
                    None,
                );
                self.local.accumulate(&slot.delta);
                self.local.phase1_searches -= k as u64 * slot.windows;
                self.local.phase1_searches += k as u64 * windows;
                self.local.attempts += attempts;
                let skipped = budget - attempts;
                if skipped > 0 {
                    self.local.attempts_skipped += skipped;
                }
                let jumped = slot.tries - attempts;
                if jumped > 0 {
                    self.local.attempts_jumped += jumped;
                    coalloc_core::scheduler::record_attempts_jumped(jumped);
                }
                out.push(Err(if slot.horizon_attempts < budget {
                    ScheduleError::HorizonExceeded { horizon_end }
                } else {
                    ScheduleError::Exhausted {
                        attempts: slot.tries as u32,
                        last_tried: slot.earliest + step * (slot.tries as i64 - 1),
                    }
                }));
                continue;
            }
            let (kw, start) = slot.winner.expect("resolved slot");
            let set = &mut feasible_sets[slot.enum_k];
            if set.iter().any(|p| self.scratch.dirty[p.server.0 as usize]) {
                // Speculation raced an earlier in-batch commit: discard it
                // and re-run the full sequential search against live state.
                BATCH_REPROBES.inc();
                self.drain_pool();
                let earliest = slot.earliest;
                let res = self.run_search(req, earliest, budget);
                if let Ok(g) = &res {
                    for s in &g.servers {
                        self.scratch.dirty[s.0 as usize] = true;
                    }
                }
                out.push(res);
                continue;
            }
            // Accepted: the winner's feasible set is untouched by earlier
            // in-batch commits, so the live search would find the same
            // winner. Replay the live gathering for the accounting (see
            // the rejected arm), then charge the speculative work and
            // commit asynchronously to the owning shards. The replay must
            // precede this member's own profile update.
            let (attempts_live, windows_live) = self.simulate_ladder(
                req.duration,
                req.servers,
                slot.earliest,
                slot.tries,
                Some(kw),
            );
            self.local.accumulate(&slot.delta);
            self.local.phase1_searches -= k as u64 * slot.windows;
            self.local.phase1_searches += k as u64 * windows_live;
            self.local.attempts += attempts_live;
            let skipped = (kw + 1) - attempts_live;
            if skipped > 0 {
                self.local.attempts_skipped += skipped;
                self.local.attempts_jumped += skipped;
                coalloc_core::scheduler::record_attempts_jumped(skipped);
            }
            let end = start + req.duration;
            let n = req.servers as usize;
            self.cfg.policy.select_in_place(set, n, end);
            debug_assert_eq!(set.len(), n, "count/enumerate mismatch");
            let job = JobId(self.next_job);
            self.next_job += 1;
            let mask = self.async_commit(job, start, end, set);
            self.profile.add(start, end, req.servers);
            self.job_shards.insert(
                job,
                JobInfo {
                    mask,
                    start,
                    end,
                    servers: req.servers,
                },
            );
            for p in set.iter() {
                self.scratch.dirty[p.server.0 as usize] = true;
            }
            out.push(Ok(Grant {
                job,
                start,
                end,
                servers: set.iter().map(|p| p.server).collect(),
                attempts: (kw + 1) as u32,
                waiting: start.saturating_since(slot.earliest),
            }));
        }

        // Batch-end drain barrier: every pipelined commit has landed before
        // control returns to the caller.
        self.drain_pool();
    }

    /// Cancel a committed job on every shard holding part of it.
    pub fn release(&mut self, job: JobId) -> Result<(), ScheduleError> {
        let info = self
            .job_shards
            .remove(&job)
            .ok_or(ScheduleError::UnknownJob(job))?;
        // Unconditional: the profile clamps to the live window, so windows
        // already partly (or fully) rotated out withdraw exactly what the
        // commit's surviving contribution was.
        self.profile.remove(info.start, info.end, info.servers);
        self.drain_pool();
        for i in 0..self.backend.states.len() {
            if info.mask & (1 << i) != 0 {
                let mut st = self.backend.states[i].lock().expect("shard state lock");
                st.release(job);
                self.shard_stats[i] = st.stats();
            }
        }
        Ok(())
    }

    /// System utilization over `[origin, until)` — the partition sum of
    /// per-shard busy time over total capacity, identical to
    /// [`CoAllocScheduler::utilization`].
    pub fn utilization(&mut self, until: Time) -> f64 {
        let span = (until - self.origin).secs();
        if span <= 0 {
            return 0.0;
        }
        self.drain_pool();
        let mut busy = 0i64;
        for st in &self.backend.states {
            busy += st.lock().expect("shard state lock").busy_secs_before(until);
        }
        busy as f64 / (span as f64 * self.num_servers as f64)
    }

    /// Cross-check every shard's indexes against its timeline, and the
    /// coordinator's capacity profile against the union of live shard
    /// reservations (test helper; expensive).
    #[doc(hidden)]
    pub fn check_consistency(&mut self) {
        self.drain_pool();
        let mut reservations: Vec<(Time, Time)> = Vec::new();
        for st in &self.backend.states {
            let st = st.lock().expect("shard state lock");
            st.check();
            st.collect_reservations(&mut reservations);
        }
        self.profile.check_against(reservations.iter().copied());
    }

    /// Which shard owns a global server id.
    fn shard_of(&self, server: ServerId) -> usize {
        let k = self.layout.len() as u32;
        let per = self.num_servers / k;
        let rem = self.num_servers % k;
        let s = server.0;
        if s < rem * (per + 1) {
            (s / (per + 1)) as usize
        } else {
            (rem + (s - rem * (per + 1)) / per) as usize
        }
    }

    /// Harvest pool acknowledgements until no asynchronous commit is
    /// outstanding. No-op without a pool or when everything has landed.
    fn drain_pool(&mut self) {
        let Some(pool) = &mut self.backend.pool else {
            return;
        };
        while pool.outstanding.iter().any(|&c| c > 0) {
            match pool.reply.recv().expect("shard worker alive") {
                Reply::Committed { shard, stats } => {
                    pool.outstanding[shard as usize] -= 1;
                    self.shard_stats[shard as usize] = stats;
                }
                Reply::Died { shard } => panic!("shard worker {shard} died"),
                other => panic!("unexpected shard reply {other:?}"),
            }
        }
    }

    /// Receive one pool reply, transparently retiring any interleaved
    /// commit acknowledgements.
    fn recv_reply(&mut self) -> Reply {
        let pool = self.backend.pool.as_mut().expect("pool path");
        loop {
            match pool.reply.recv().expect("shard worker alive") {
                Reply::Committed { shard, stats } => {
                    pool.outstanding[shard as usize] -= 1;
                    self.shard_stats[shard as usize] = stats;
                }
                Reply::Died { shard } => panic!("shard worker {shard} died"),
                other => return other,
            }
        }
    }

    /// Inline count fan-out: lock each shard in turn and sum the
    /// per-attempt totals for the explicit start list.
    fn sync_counts_at(&mut self, starts: &[Time], duration: Dur) -> [u64; MAX_BATCH] {
        let mut totals = [0u64; MAX_BATCH];
        let mut counts = [0u32; MAX_BATCH];
        for i in 0..self.backend.states.len() {
            let mut st = self.backend.states[i].lock().expect("shard state lock");
            st.count_starts(starts, duration, &mut counts);
            self.shard_stats[i] = st.stats();
            for (t, c) in totals.iter_mut().zip(counts) {
                *t += c as u64;
            }
        }
        totals
    }

    /// Inline feasible-set enumeration: concatenate every shard's set into
    /// `out` (cleared first).
    fn sync_enumerate_into(&mut self, start: Time, end: Time, out: &mut Vec<IdlePeriod>) {
        out.clear();
        let mut tmp = std::mem::take(&mut self.scratch.enum_tmp);
        for i in 0..self.backend.states.len() {
            let mut st = self.backend.states[i].lock().expect("shard state lock");
            st.enumerate(start, end, &mut tmp);
            self.shard_stats[i] = st.stats();
            out.extend_from_slice(&tmp);
        }
        self.scratch.enum_tmp = tmp;
    }

    /// Inline commit to the shards owning the chosen servers; returns the
    /// shard bitmask for the job.
    fn sync_commit(&mut self, job: JobId, start: Time, end: Time, chosen: &[IdlePeriod]) -> u64 {
        let mut per_shard = std::mem::take(&mut self.scratch.per_shard);
        let mask = self.group_by_shard(chosen, &mut per_shard);
        for (i, servers) in per_shard.iter().enumerate() {
            if !servers.is_empty() {
                let mut st = self.backend.states[i].lock().expect("shard state lock");
                st.commit(job, start, end, servers);
                self.shard_stats[i] = st.stats();
            }
        }
        self.scratch.per_shard = per_shard;
        mask
    }

    /// Pipelined commit: dispatch the per-shard deltas to the pool and
    /// return immediately; the acknowledgements are harvested by the next
    /// drain point (batch end, or any inline operation).
    fn async_commit(&mut self, job: JobId, start: Time, end: Time, chosen: &[IdlePeriod]) -> u64 {
        let mut per_shard = std::mem::take(&mut self.scratch.per_shard);
        let mask = self.group_by_shard(chosen, &mut per_shard);
        let pool = self.backend.pool.as_mut().expect("pool path");
        for (i, servers) in per_shard.iter().enumerate() {
            if !servers.is_empty() {
                pool.cmd[i]
                    .send(Cmd::Commit {
                        job,
                        start,
                        end,
                        servers: servers.clone(),
                    })
                    .expect("shard worker alive");
                pool.outstanding[i] += 1;
            }
        }
        self.scratch.per_shard = per_shard;
        mask
    }

    /// Group chosen periods' servers by owning shard into `per_shard`
    /// (cleared first); returns the shard bitmask.
    fn group_by_shard(&self, chosen: &[IdlePeriod], per_shard: &mut [Vec<ServerId>]) -> u64 {
        for v in per_shard.iter_mut() {
            v.clear();
        }
        let mut mask = 0u64;
        for p in chosen {
            let s = self.shard_of(p.server);
            per_shard[s].push(p.server);
            mask |= 1 << s;
        }
        mask
    }
}

impl Drop for ShardedScheduler {
    fn drop(&mut self) {
        if let Some(pool) = &mut self.backend.pool {
            pool.cmd.clear(); // disconnects the workers' command receivers
            for h in pool.handles.drain(..) {
                let _ = h.join();
            }
        }
    }
}

impl OnlineScheduler for ShardedScheduler {
    fn advance_to(&mut self, now: Time) {
        ShardedScheduler::advance_to(self, now);
    }
    fn submit(&mut self, req: &Request) -> Result<Grant, ScheduleError> {
        ShardedScheduler::submit(self, req)
    }
    fn total_ops(&mut self) -> u64 {
        self.stats().total_ops()
    }
    fn utilization(&mut self, until: Time) -> f64 {
        ShardedScheduler::utilization(self, until)
    }
    fn now(&self) -> Time {
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> SchedulerConfig {
        SchedulerConfig::builder()
            .tau(Dur(10))
            .horizon(Dur(100))
            .delta_t(Dur(10))
            .build()
    }

    #[test]
    fn sharded_matches_basic_grant() {
        for k in [1, 2, 4] {
            let mut s = ShardedScheduler::new(4, k, small_cfg());
            let g = s.submit(&Request::on_demand(Time::ZERO, Dur(30), 3)).unwrap();
            assert_eq!(g.start, Time::ZERO, "k={k}");
            assert_eq!(g.servers.len(), 3);
            assert_eq!(g.attempts, 1);
            s.check_consistency();
        }
    }

    #[test]
    fn sharded_delays_like_plain() {
        for k in [1, 2] {
            let mut s = ShardedScheduler::new(2, k, small_cfg());
            s.submit(&Request::on_demand(Time::ZERO, Dur(30), 2)).unwrap();
            let g = s.submit(&Request::on_demand(Time::ZERO, Dur(20), 1)).unwrap();
            assert_eq!(g.start, Time(30), "k={k}");
            assert_eq!(g.attempts, 4);
            assert_eq!(g.waiting, Dur(30));
        }
    }

    #[test]
    fn sharded_horizon_and_exhaustion_errors_match() {
        let mut s = ShardedScheduler::new(1, 1, small_cfg());
        let err = s.submit(&Request::on_demand(Time::ZERO, Dur(200), 1)).unwrap_err();
        assert!(matches!(err, ScheduleError::HorizonExceeded { .. }));

        let cfg = SchedulerConfig::builder()
            .tau(Dur(10))
            .horizon(Dur(100))
            .delta_t(Dur(10))
            .r_max(2)
            .build();
        let mut s = ShardedScheduler::new(1, 1, cfg);
        s.submit(&Request::on_demand(Time::ZERO, Dur(90), 1)).unwrap();
        let err = s.submit(&Request::on_demand(Time::ZERO, Dur(10), 1)).unwrap_err();
        assert_eq!(
            err,
            ScheduleError::Exhausted {
                attempts: 3,
                last_tried: Time(20)
            }
        );
    }

    #[test]
    fn release_restores_capacity_across_shards() {
        let mut s = ShardedScheduler::new(4, 2, small_cfg());
        let g = s.submit(&Request::on_demand(Time::ZERO, Dur(100), 4)).unwrap();
        assert!(s.submit(&Request::on_demand(Time::ZERO, Dur(20), 1)).is_err());
        s.release(g.job).unwrap();
        let g2 = s.submit(&Request::on_demand(Time::ZERO, Dur(20), 4)).unwrap();
        assert_eq!(g2.start, Time::ZERO);
        assert_eq!(
            s.release(JobId(999)),
            Err(ScheduleError::UnknownJob(JobId(999)))
        );
        s.check_consistency();
    }

    #[test]
    fn deadline_path_matches_plain_semantics() {
        let mut s = ShardedScheduler::new(1, 1, small_cfg());
        s.submit(&Request::on_demand(Time::ZERO, Dur(30), 1)).unwrap();
        let g = s
            .submit_with_deadline(&Request::on_demand(Time::ZERO, Dur(20), 1), Time(60))
            .unwrap();
        assert_eq!(g.start, Time(30));
        let err = s
            .submit_with_deadline(&Request::on_demand(Time::ZERO, Dur(50), 1), Time(40))
            .unwrap_err();
        assert_eq!(
            err,
            ScheduleError::Exhausted {
                attempts: 0,
                last_tried: Time::ZERO
            }
        );
    }

    #[test]
    fn shard_of_is_the_inverse_of_the_layout() {
        for (n, k) in [(7u32, 3u32), (8, 4), (64, 8), (5, 5), (9, 2)] {
            let s = ShardedScheduler::new(n, k, small_cfg());
            for (i, &(base, count)) in s.layout.iter().enumerate() {
                for srv in base..base + count {
                    assert_eq!(s.shard_of(ServerId(srv)), i, "n={n} k={k} srv={srv}");
                }
            }
        }
    }

    /// The pool path must agree with the inline path decision-for-decision,
    /// including the validate-and-repair case where batch members contend
    /// for the same servers.
    #[test]
    fn pool_path_matches_inline_path_under_contention() {
        // 2 servers, members asking for both: every later member's
        // feasible set intersects the earlier commits, forcing repairs.
        let reqs: Vec<Request> = (0..8)
            .map(|i| Request::on_demand(Time::ZERO, Dur(10 + (i % 3) * 10), 1 + (i as u32) % 2))
            .collect();
        let mut pooled = ShardedScheduler::new(2, 2, small_cfg());
        pooled.set_pool_min_batch(0); // force every batch through the pool
        let mut inline = ShardedScheduler::new(2, 2, small_cfg());
        inline.set_pool_min_batch(usize::MAX);
        let a = pooled.submit_batch(&reqs);
        let b = inline.submit_batch(&reqs);
        assert_eq!(a, b);
        assert_eq!(pooled.stats().attempts, inline.stats().attempts);
        assert_eq!(
            pooled.stats().attempts_skipped,
            inline.stats().attempts_skipped
        );
        pooled.check_consistency();
        inline.check_consistency();
    }
}
