//! The persistent worker pool: one thread per shard, fed over channels.
//!
//! The coordinator issues one synchronous operation at a time, so replies
//! need no sequence numbers — each worker sends at most one reply per
//! command and the coordinator counts replies per fan-out. Commands to a
//! single shard are FIFO (channel order), which is what makes the no-reply
//! [`Cmd::Advance`] safe: any later search on that shard observes it.

use crate::state::ShardState;
use coalloc_core::prelude::*;
use crossbeam::channel::{Receiver, Sender};
use std::thread::JoinHandle;

/// Upper bound on attempts counted per fan-out round (the staged-doubling
/// batch cap). Chosen so a `Counts` reply stays a small flat array.
pub(crate) const MAX_BATCH: usize = 32;

/// A command from the coordinator to one shard worker.
#[derive(Clone, Debug)]
pub(crate) enum Cmd {
    /// Count feasible periods for `m` attempt windows starting at `first`,
    /// spaced `step` apart, each `duration` long.
    Count {
        first: Time,
        step: Dur,
        duration: Dur,
        m: u32,
    },
    /// Enumerate the full feasible set for `[start, end)`.
    Enumerate { start: Time, end: Time },
    /// Reserve `[start, end)` for `job` on these (shard-owned) servers.
    Commit {
        job: JobId,
        start: Time,
        end: Time,
        servers: Vec<ServerId>,
    },
    /// Release the shard's reservations of `job`.
    Release { job: JobId },
    /// Advance the shard clock (fire-and-forget: no reply).
    Advance { now: Time },
    /// Run the shard's consistency checks.
    Check,
    /// Report committed busy server-seconds before `until`.
    Busy { until: Time },
}

/// A reply from a shard worker. Every synced reply carries the shard's full
/// cumulative [`OpStats`] so the coordinator's cache is always current.
#[derive(Clone, Debug)]
pub(crate) enum Reply {
    Counts {
        shard: u32,
        counts: [u32; MAX_BATCH],
        stats: OpStats,
    },
    Feasible {
        shard: u32,
        periods: Vec<IdlePeriod>,
        stats: OpStats,
    },
    Done {
        shard: u32,
        stats: OpStats,
    },
    BusySecs {
        shard: u32,
        secs: i64,
        stats: OpStats,
    },
    /// Sent by the panic canary when a worker dies mid-command, so the
    /// coordinator fails loudly instead of hanging on a missing reply.
    Died {
        shard: u32,
    },
}

/// Notifies the coordinator if the worker thread unwinds.
struct Canary {
    shard: u32,
    tx: Sender<Reply>,
}

impl Drop for Canary {
    fn drop(&mut self) {
        if std::thread::panicking() {
            let _ = self.tx.send(Reply::Died { shard: self.shard });
        }
    }
}

/// Spawn one worker thread per shard state. Returns the per-shard command
/// senders, the shared reply receiver, and the join handles.
pub(crate) fn spawn_workers(
    states: Vec<ShardState>,
) -> (Vec<Sender<Cmd>>, Receiver<Reply>, Vec<JoinHandle<()>>) {
    let (reply_tx, reply_rx) = crossbeam::channel::unbounded();
    let mut cmd_txs = Vec::with_capacity(states.len());
    let mut handles = Vec::with_capacity(states.len());
    for (i, state) in states.into_iter().enumerate() {
        let (tx, rx) = crossbeam::channel::unbounded();
        cmd_txs.push(tx);
        let reply_tx = reply_tx.clone();
        handles.push(
            std::thread::Builder::new()
                .name(format!("coalloc-shard-{i}"))
                .spawn(move || worker(i as u32, state, rx, reply_tx))
                .expect("spawn shard worker"),
        );
    }
    (cmd_txs, reply_rx, handles)
}

/// Execute one command against a shard state, producing its reply (`None`
/// for fire-and-forget commands). Shared by the threaded workers and the
/// inline (K = 1) backend so both run the exact same code.
pub(crate) fn execute(shard: u32, st: &mut ShardState, cmd: Cmd) -> Option<Reply> {
    match cmd {
        Cmd::Count {
            first,
            step,
            duration,
            m,
        } => {
            let mut counts = [0u32; MAX_BATCH];
            st.count_batch(first, step, duration, m, &mut counts);
            Some(Reply::Counts {
                shard,
                counts,
                stats: st.stats(),
            })
        }
        Cmd::Enumerate { start, end } => {
            let mut periods = Vec::new();
            st.enumerate(start, end, &mut periods);
            Some(Reply::Feasible {
                shard,
                periods,
                stats: st.stats(),
            })
        }
        Cmd::Commit {
            job,
            start,
            end,
            servers,
        } => {
            st.commit(job, start, end, &servers);
            Some(Reply::Done {
                shard,
                stats: st.stats(),
            })
        }
        Cmd::Release { job } => {
            st.release(job);
            Some(Reply::Done {
                shard,
                stats: st.stats(),
            })
        }
        Cmd::Advance { now } => {
            st.advance_to(now);
            None
        }
        Cmd::Check => {
            st.check();
            Some(Reply::Done {
                shard,
                stats: st.stats(),
            })
        }
        Cmd::Busy { until } => Some(Reply::BusySecs {
            shard,
            secs: st.busy_secs_before(until),
            stats: st.stats(),
        }),
    }
}

fn worker(shard: u32, mut st: ShardState, rx: Receiver<Cmd>, tx: Sender<Reply>) {
    let _canary = Canary {
        shard,
        tx: tx.clone(),
    };
    // Exits when the coordinator drops the command sender.
    for cmd in rx.iter() {
        if let Some(reply) = execute(shard, &mut st, cmd) {
            if tx.send(reply).is_err() {
                break; // coordinator gone
            }
        }
    }
}
