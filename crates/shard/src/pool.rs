//! The persistent worker pool: one thread per shard, fed over channels.
//!
//! Since the batched-execution redesign the pool is a *batch-stage engine*,
//! not a per-request RPC endpoint: shard states live in `Arc<Mutex<_>>`
//! shared with the coordinator, which locks them directly for all
//! sequential work (per-request submits, releases, clock advances — the
//! load-adaptive bypass). Workers are woken only for the three batch
//! stages, each covering a whole batch in a single mailbox message:
//!
//! * [`Cmd::Probe`] — the Phase-1 count ladders of every unresolved batch
//!   member for one staged-doubling round;
//! * [`Cmd::Enumerate`] — the Phase-2 feasible sets of every speculative
//!   winner;
//! * [`Cmd::Commit`] — one accepted member's reservation delta, applied
//!   asynchronously while the coordinator moves on (acknowledged with
//!   [`Reply::Committed`], harvested at the batch-end drain barrier).
//!
//! Commands to a single shard are FIFO (channel order), so a drain of the
//! acknowledgements is enough to know a shard has applied every delta sent
//! to it. Probe and enumerate stages charge their tree-op work into
//! *per-request deltas* (not the shard's cumulative stats): the coordinator
//! charges only the deltas of requests whose speculation is accepted, which
//! keeps the aggregate accounting identical to sequential submission.

use crate::state::ShardState;
use coalloc_core::prelude::*;
use crossbeam::channel::{Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Upper bound on attempts counted per probe round per request (the
/// staged-doubling batch cap). Chosen so a round's counts stay a small
/// flat array per request.
pub(crate) const MAX_BATCH: usize = 32;

/// One request's slice of a probe round: count the windows
/// `[starts[i], starts[i] + duration)` for `i < m`. Starts are explicit
/// rather than an arithmetic ladder because the coordinator's capacity
/// profile prunes provably-failing attempts before fan-out, leaving an
/// irregular start sequence.
#[derive(Clone, Copy, Debug)]
pub(crate) struct ProbeJob {
    pub starts: [Time; MAX_BATCH],
    pub duration: Dur,
    pub m: u32,
}

/// One staged-doubling round of Phase-1 probes for every still-unresolved
/// batch member. Shared read-only across all shard workers.
#[derive(Debug)]
pub(crate) struct ProbeStage {
    pub jobs: Vec<ProbeJob>,
}

/// A command from the coordinator to one shard worker.
#[derive(Clone, Debug)]
pub(crate) enum Cmd {
    /// Run one probe round: per-window feasible counts for every job in
    /// the stage, plus a per-job [`OpStats`] delta.
    Probe { stage: Arc<ProbeStage> },
    /// Enumerate the full feasible set for each `[start, end)` window.
    Enumerate { windows: Arc<Vec<(Time, Time)>> },
    /// Reserve `[start, end)` for `job` on these (shard-owned) servers.
    /// Applied asynchronously; acknowledged with [`Reply::Committed`].
    Commit {
        job: JobId,
        start: Time,
        end: Time,
        servers: Vec<ServerId>,
    },
}

/// A reply from a shard worker.
#[derive(Clone, Debug)]
pub(crate) enum Reply {
    /// Per-window counts (concatenated in stage-job order) and per-job
    /// stat deltas for one probe round. Carries no shard id: counts are
    /// summed and deltas accumulated, so arrival order is irrelevant.
    Probed {
        counts: Vec<u32>,
        deltas: Vec<OpStats>,
    },
    /// Per-window feasible sets (global server ids) and per-window stat
    /// deltas.
    Enumerated {
        sets: Vec<Vec<IdlePeriod>>,
        deltas: Vec<OpStats>,
    },
    /// An asynchronous commit has been applied; carries the shard's full
    /// cumulative [`OpStats`] so the coordinator's cache stays current.
    Committed { shard: u32, stats: OpStats },
    /// Sent by the panic canary when a worker dies mid-command, so the
    /// coordinator fails loudly instead of hanging on a missing reply.
    Died { shard: u32 },
}

/// Notifies the coordinator if the worker thread unwinds.
struct Canary {
    shard: u32,
    tx: Sender<Reply>,
}

impl Drop for Canary {
    fn drop(&mut self) {
        if std::thread::panicking() {
            let _ = self.tx.send(Reply::Died { shard: self.shard });
        }
    }
}

/// Spawn one worker thread per shard state. Returns the per-shard command
/// senders, the shared reply receiver, and the join handles.
pub(crate) fn spawn_workers(
    states: &[Arc<Mutex<ShardState>>],
) -> (Vec<Sender<Cmd>>, Receiver<Reply>, Vec<JoinHandle<()>>) {
    let (reply_tx, reply_rx) = crossbeam::channel::unbounded();
    let mut cmd_txs = Vec::with_capacity(states.len());
    let mut handles = Vec::with_capacity(states.len());
    for (i, state) in states.iter().enumerate() {
        let (tx, rx) = crossbeam::channel::unbounded();
        cmd_txs.push(tx);
        let reply_tx = reply_tx.clone();
        let state = Arc::clone(state);
        handles.push(
            std::thread::Builder::new()
                .name(format!("coalloc-shard-{i}"))
                .spawn(move || worker(i as u32, state, rx, reply_tx))
                .expect("spawn shard worker"),
        );
    }
    (cmd_txs, reply_rx, handles)
}

fn worker(shard: u32, state: Arc<Mutex<ShardState>>, rx: Receiver<Cmd>, tx: Sender<Reply>) {
    let _canary = Canary {
        shard,
        tx: tx.clone(),
    };
    // Exits when the coordinator drops the command sender.
    for cmd in rx.iter() {
        let reply = match cmd {
            Cmd::Probe { stage } => {
                let mut st = state.lock().expect("shard state lock");
                let total: usize = stage.jobs.iter().map(|j| j.m as usize).sum();
                let mut counts = Vec::with_capacity(total);
                let mut deltas = Vec::with_capacity(stage.jobs.len());
                let mut buf = [0u32; MAX_BATCH];
                for job in &stage.jobs {
                    let mut delta = OpStats::new();
                    st.count_starts_into(
                        &job.starts[..job.m as usize],
                        job.duration,
                        &mut buf,
                        &mut delta,
                    );
                    counts.extend_from_slice(&buf[..job.m as usize]);
                    deltas.push(delta);
                }
                Reply::Probed { counts, deltas }
            }
            Cmd::Enumerate { windows } => {
                let mut st = state.lock().expect("shard state lock");
                let mut sets = Vec::with_capacity(windows.len());
                let mut deltas = Vec::with_capacity(windows.len());
                for &(start, end) in windows.iter() {
                    let mut delta = OpStats::new();
                    let mut set = Vec::new();
                    st.enumerate_into(start, end, &mut set, &mut delta);
                    sets.push(set);
                    deltas.push(delta);
                }
                Reply::Enumerated { sets, deltas }
            }
            Cmd::Commit {
                job,
                start,
                end,
                servers,
            } => {
                let mut st = state.lock().expect("shard state lock");
                st.commit(job, start, end, &servers);
                Reply::Committed {
                    shard,
                    stats: st.stats(),
                }
            }
        };
        if tx.send(reply).is_err() {
            break; // coordinator gone
        }
    }
}
