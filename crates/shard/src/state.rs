//! Per-shard scheduler state: a self-contained slice of the system.
//!
//! A shard owns a contiguous range of servers `[base, base + count)` and
//! maintains its own [`Timeline`], [`SlotRing`] and [`TrailingSet`] over
//! exactly those servers. Internally everything is indexed by *local* server
//! ids `0..count`; the shard translates to global ids at its API boundary so
//! the coordinator never sees the offset.
//!
//! Because a server's idle periods are disjoint, the union of per-shard
//! feasible sets equals the whole system's feasible set, and feasible counts
//! sum across shards — the foundation of the decision-equivalence argument
//! (see DESIGN.md §9).

use coalloc_core::prelude::*;
use coalloc_core::ring::SlotRing;
use coalloc_core::trailing::TrailingSet;
use std::collections::HashMap;

/// Slot advances between history prunes (mirrors the core scheduler).
const PRUNE_EVERY_SLOTS: i64 = 32;

/// The scheduler state owned by one shard worker.
#[derive(Debug)]
pub struct ShardState {
    slot_cfg: SlotConfig,
    /// First global server id owned by this shard.
    base: u32,
    timeline: Timeline,
    ring: SlotRing,
    trailing: TrailingSet,
    jobs: HashMap<JobId, Vec<Reservation>>,
    stats: OpStats,
    scratch: Scratch,
    last_prune: Time,
}

impl ShardState {
    /// Create the state for a shard owning global servers
    /// `[base, base + count)`, with the clock at `origin`.
    pub fn new(cfg: &SchedulerConfig, base: u32, count: u32, origin: Time, seed: u64) -> ShardState {
        assert!(count > 0, "empty shards are not allowed");
        let slot_cfg = cfg.slot_config();
        let timeline = Timeline::new(count, origin);
        let ring = SlotRing::new(slot_cfg, origin, seed);
        let mut stats = OpStats::new();
        let mut trailing = TrailingSet::new(seed);
        for srv in 0..count {
            let p = timeline.trailing_period(ServerId(srv));
            trailing.insert(&p, &mut stats);
        }
        ShardState {
            slot_cfg,
            base,
            timeline,
            ring,
            trailing,
            jobs: HashMap::new(),
            stats,
            scratch: Scratch::new(),
            last_prune: origin,
        }
    }

    /// Number of servers owned by this shard.
    pub fn num_servers(&self) -> u32 {
        self.timeline.num_servers()
    }

    /// The shard's cumulative operation counters.
    pub fn stats(&self) -> OpStats {
        self.stats
    }

    /// Feasible-period counts for a batch of attempt windows: window `i` is
    /// `[starts[i], starts[i] + duration)`. Counts are written to
    /// `out[..starts.len()]`. Every start must lie within the horizon.
    /// Starts are explicit (not an arithmetic ladder) because the
    /// coordinator's profile-jumping prunes provably-failing attempts
    /// before fan-out, leaving an irregular sequence.
    ///
    /// A window's count is the number of this shard's idle periods that
    /// could host the job: open-ended periods with `st <= start` (always
    /// feasible) plus finite candidates whose end covers the window.
    pub fn count_starts(&mut self, starts: &[Time], duration: Dur, out: &mut [u32]) {
        let mut stats = self.stats;
        self.count_starts_into(starts, duration, out, &mut stats);
        self.stats = stats;
    }

    /// [`Self::count_starts`] charging an explicit counter set instead of
    /// the shard's cumulative stats. The batched coordinator uses this to
    /// keep speculative probe work in a per-request delta: only the deltas
    /// of requests whose speculation is *accepted* are ever charged, so the
    /// aggregate accounting is independent of how submissions were grouped
    /// into batches.
    pub fn count_starts_into(
        &mut self,
        starts: &[Time],
        duration: Dur,
        out: &mut [u32],
        stats: &mut OpStats,
    ) {
        for (slot, &start) in out.iter_mut().zip(starts) {
            let end = start + duration;
            let q = self.slot_cfg.slot_of(start);
            let trailing = self.trailing.count_candidates(start, stats);
            let finite = self
                .ring
                .phase1_candidates_into(q, start, &mut self.scratch.stab, stats);
            let feasible = if finite == 0 {
                0
            } else {
                self.ring.count_feasible(end, &self.scratch.stab, stats)
            };
            *slot = (trailing + feasible) as u32;
        }
    }

    /// Enumerate the shard's full feasible set for a job over
    /// `[start, end)`, appending periods (with **global** server ids) to
    /// `out` after clearing it.
    pub fn enumerate(&mut self, start: Time, end: Time, out: &mut Vec<IdlePeriod>) {
        let mut stats = self.stats;
        self.enumerate_into(start, end, out, &mut stats);
        self.stats = stats;
    }

    /// [`Self::enumerate`] charging an explicit counter set — the Phase-2
    /// analogue of [`Self::count_starts_into`] for speculative batch probes.
    pub fn enumerate_into(
        &mut self,
        start: Time,
        end: Time,
        out: &mut Vec<IdlePeriod>,
        stats: &mut OpStats,
    ) {
        out.clear();
        let q = self.slot_cfg.slot_of(start);
        if !self.ring.is_live(q) {
            return;
        }
        self.scratch.ids.clear();
        self.trailing
            .collect_candidates(start, usize::MAX, &mut self.scratch.ids, stats);
        let finite = self
            .ring
            .phase1_candidates_into(q, start, &mut self.scratch.stab, stats);
        if finite > 0 {
            self.ring.phase2_feasible_into(
                end,
                &self.scratch.stab,
                usize::MAX,
                &mut self.scratch.ids,
                stats,
            );
        }
        for id in &self.scratch.ids {
            let p = *self
                .timeline
                .period(*id)
                .expect("shard index refers to live period");
            out.push(IdlePeriod {
                server: ServerId(self.base + p.server.0),
                ..p
            });
        }
    }

    /// Commit `job` over `[start, end)` on the given **global** servers
    /// (all owned by this shard). The coordinator only commits servers whose
    /// feasibility this shard just reported, so the covering idle period
    /// must exist.
    pub fn commit(&mut self, job: JobId, start: Time, end: Time, servers: &[ServerId]) {
        let mut delta = std::mem::take(&mut self.scratch.delta);
        for s in servers {
            let local = ServerId(s.0 - self.base);
            let p = self
                .timeline
                .covering_idle(local, start, end)
                .expect("coordinator commits only servers it found feasible");
            self.timeline.reserve_into(p.id, job, start, end, &mut delta);
            self.apply_delta(&delta);
            self.jobs.entry(job).or_default().push(Reservation {
                job,
                server: local,
                start,
                end,
            });
        }
        self.scratch.delta = delta;
    }

    /// Release this shard's reservations of `job` (no-op if the shard holds
    /// none). Windows fully inside pruned history are dropped, matching the
    /// core scheduler.
    pub fn release(&mut self, job: JobId) {
        let Some(reservations) = self.jobs.remove(&job) else {
            return;
        };
        let mut delta = std::mem::take(&mut self.scratch.delta);
        for r in reservations {
            if r.end <= self.ring.window_start() {
                continue;
            }
            self.timeline
                .release_into(r.server, r.job, r.start, r.end, &mut delta);
            self.apply_delta(&delta);
        }
        self.scratch.delta = delta;
    }

    /// Advance the shard clock: rotate the slot ring and prune dead history
    /// on the same cadence as the core scheduler.
    pub fn advance_to(&mut self, now: Time) {
        self.ring
            .advance_to_with(now, &mut self.scratch, &mut self.stats);
        let window_start = self.ring.window_start();
        if (window_start - self.last_prune).secs() >= PRUNE_EVERY_SLOTS * self.slot_cfg.tau.secs()
        {
            self.timeline.prune_before(window_start);
            self.last_prune = window_start;
        }
    }

    /// Committed busy server-seconds before `until` on this shard's servers.
    pub fn busy_secs_before(&self, until: Time) -> i64 {
        self.timeline.busy_secs_before(until)
    }

    /// Append this shard's live reservation windows to `out` (coordinator
    /// consistency-check helper; server identity is irrelevant to the
    /// capacity profile, so only `(start, end)` pairs are reported).
    #[doc(hidden)]
    pub fn collect_reservations(&self, out: &mut Vec<(Time, Time)>) {
        for reservations in self.jobs.values() {
            for r in reservations {
                out.push((r.start, r.end));
            }
        }
    }

    /// Cross-check the shard's indexes against its timeline (test helper;
    /// expensive).
    #[doc(hidden)]
    pub fn check(&self) {
        self.timeline.check_invariants();
        self.ring.check_mirror(&self.timeline);
        self.trailing.check_invariants();
        let mut expect: Vec<u64> = (0..self.num_servers())
            .map(|s| self.timeline.trailing_period(ServerId(s)).id.0)
            .collect();
        expect.sort_unstable();
        let mut got: Vec<u64> = self.trailing.ids_in_order().iter().map(|p| p.0).collect();
        got.sort_unstable();
        assert_eq!(got, expect, "shard trailing set out of sync with timeline");
    }

    /// Mirror a timeline delta into the slot ring and trailing index. The
    /// delta must not alias `self.scratch.delta` (callers `mem::take` it).
    fn apply_delta(&mut self, delta: &PeriodDelta) {
        for p in &delta.removed {
            if p.end.is_inf() {
                let removed = self.trailing.remove(p, &mut self.stats);
                debug_assert!(removed, "shard trailing period {p:?} missing");
            } else {
                self.ring
                    .remove_period_with(p, &mut self.scratch, &mut self.stats);
            }
        }
        for p in &delta.added {
            if p.end.is_inf() {
                self.trailing.insert(p, &mut self.stats);
            } else {
                self.ring
                    .insert_period_with(p, &mut self.scratch, &mut self.stats);
            }
        }
    }
}
