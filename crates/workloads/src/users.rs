//! User attribution for workloads.
//!
//! The paper's problem statement asks schedulers to "allocate resources
//! fairly among users" (Section 2), and the SWF traces carry a user id per
//! job. This module tags synthetic requests with users drawn from a
//! Zipf-like popularity distribution (a few heavy users dominate, a long
//! tail submits occasionally — the classic parallel-workload pattern), so
//! fairness metrics can be computed per user.

use coalloc_core::prelude::Request;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A workload user.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct UserId(pub u32);

/// A request attributed to a user.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TaggedRequest {
    /// The request itself.
    pub request: Request,
    /// The submitting user.
    pub user: UserId,
}

/// Assign users to a request stream with Zipf(s≈1) popularity over
/// `num_users` users, seeded. Consecutive jobs by the same user are common
/// (session behaviour): with probability `stickiness` a job reuses the
/// previous job's user.
pub fn assign_users(
    requests: &[Request],
    num_users: u32,
    stickiness: f64,
    seed: u64,
) -> Vec<TaggedRequest> {
    assert!(num_users > 0, "need at least one user");
    assert!((0.0..1.0).contains(&stickiness) || stickiness == 0.0 || stickiness < 1.0);
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x05E7);
    // Zipf CDF over ranks 1..=num_users.
    let weights: Vec<f64> = (1..=num_users).map(|r| 1.0 / r as f64).collect();
    let total: f64 = weights.iter().sum();
    let mut cdf = Vec::with_capacity(num_users as usize);
    let mut acc = 0.0;
    for w in &weights {
        acc += w / total;
        cdf.push(acc);
    }
    let draw = |rng: &mut SmallRng| {
        let x: f64 = rng.random();
        let idx = cdf.partition_point(|&c| c < x);
        UserId(idx.min(num_users as usize - 1) as u32)
    };
    let mut prev: Option<UserId> = None;
    requests
        .iter()
        .map(|&request| {
            let user = match prev {
                Some(u) if rng.random_bool(stickiness) => u,
                _ => draw(&mut rng),
            };
            prev = Some(user);
            TaggedRequest { request, user }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use coalloc_core::prelude::{Dur, Time};

    fn stream(n: usize) -> Vec<Request> {
        (0..n)
            .map(|i| Request::on_demand(Time(i as i64 * 60), Dur(600), 2))
            .collect()
    }

    #[test]
    fn preserves_requests_in_order() {
        let s = stream(100);
        let tagged = assign_users(&s, 10, 0.3, 1);
        assert_eq!(tagged.len(), 100);
        for (t, r) in tagged.iter().zip(&s) {
            assert_eq!(&t.request, r);
        }
    }

    #[test]
    fn zipf_head_dominates() {
        let s = stream(5000);
        let tagged = assign_users(&s, 50, 0.0, 7);
        let mut counts = vec![0usize; 50];
        for t in &tagged {
            counts[t.user.0 as usize] += 1;
        }
        // Rank-1 user should have several times the median user's jobs.
        let mut sorted = counts.clone();
        sorted.sort_unstable();
        let median = sorted[25];
        assert!(
            counts[0] > median * 3,
            "rank-1 {} vs median {median}",
            counts[0]
        );
        // Everyone in range.
        assert!(tagged.iter().all(|t| t.user.0 < 50));
    }

    #[test]
    fn stickiness_creates_runs() {
        let s = stream(2000);
        let sticky = assign_users(&s, 20, 0.9, 3);
        let loose = assign_users(&s, 20, 0.0, 3);
        let runs = |ts: &[TaggedRequest]| {
            ts.windows(2).filter(|w| w[0].user == w[1].user).count()
        };
        assert!(
            runs(&sticky) > runs(&loose) * 2,
            "sticky {} vs loose {}",
            runs(&sticky),
            runs(&loose)
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let s = stream(50);
        assert_eq!(assign_users(&s, 5, 0.5, 9), assign_users(&s, 5, 0.5, 9));
        assert_ne!(assign_users(&s, 5, 0.5, 9), assign_users(&s, 5, 0.5, 10));
    }

    #[test]
    fn single_user_degenerate() {
        let s = stream(10);
        let tagged = assign_users(&s, 1, 0.5, 2);
        assert!(tagged.iter().all(|t| t.user == UserId(0)));
    }
}
