//! # coalloc-workloads
//!
//! Workload substrate for the HPDC'09 co-allocation reproduction:
//!
//! * [`swf`] — parser for the Standard Workload Format of the Parallel
//!   Workloads Archive, so the *real* CTC/KTH/HPC2N traces drop in when
//!   available (including each job's recorded batch-scheduler wait);
//! * [`synthetic`] — seeded statistical twins of those three traces,
//!   calibrated to the published features the paper's analysis relies on;
//! * [`reservations`] — the advance-reservation mix generator of
//!   Section 5.2 (`rho` fraction, `s_r - q_r ~ U[0, 3h]`).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod reservations;
pub mod swf;
pub mod users;
pub mod synthetic;

pub use reservations::{with_advance_reservations, with_paper_reservations, PAPER_MAX_ADVANCE};
pub use swf::{parse_swf, swf_to_requests, write_swf, SwfJob};
pub use users::{assign_users, TaggedRequest, UserId};
pub use synthetic::{WorkloadSpec, WorkloadStats};
