//! Advance-reservation augmentation (Section 5.2).
//!
//! "Due to the fact that advance reservations are not widely implemented in
//! existing systems, there are no workload traces [...] that represent the
//! advance reservation model. In order to evaluate the performance of our
//! algorithm we generated advance reservation requests by randomly selecting
//! jobs from the workload traces according to a desired proportion [...].
//! For any advance reservation request we randomly set its requested start
//! time (`s_r`) to be within zero to three hours in the future, as in the
//! study presented in [Smith, Foster, Taylor 2000]."

use coalloc_core::prelude::{Dur, Request};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The paper's advance window: `s_r - q_r ~ U[0, 3h]`.
pub const PAPER_MAX_ADVANCE: Dur = Dur(3 * 3600);

/// Return a copy of `requests` where a fraction `rho` of jobs (selected
/// uniformly at random, seeded) become advance reservations with
/// `s_r = q_r + U[0, max_advance)`. `rho = 0` returns the stream unchanged;
/// `rho = 1` converts every job.
pub fn with_advance_reservations(
    requests: &[Request],
    rho: f64,
    max_advance: Dur,
    seed: u64,
) -> Vec<Request> {
    assert!((0.0..=1.0).contains(&rho), "rho must be in [0, 1]");
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xAD5A);
    requests
        .iter()
        .map(|r| {
            if rho > 0.0 && rng.random_bool(rho) {
                let adv = rng.random_range(0..=max_advance.secs());
                Request::advance(r.submit, r.submit + Dur(adv), r.duration, r.servers)
            } else {
                *r
            }
        })
        .collect()
}

/// Convenience wrapper using the paper's 0–3 h window.
pub fn with_paper_reservations(requests: &[Request], rho: f64, seed: u64) -> Vec<Request> {
    with_advance_reservations(requests, rho, PAPER_MAX_ADVANCE, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use coalloc_core::prelude::Time;

    fn stream(n: usize) -> Vec<Request> {
        (0..n)
            .map(|i| Request::on_demand(Time(i as i64 * 60), Dur(1800), 2))
            .collect()
    }

    #[test]
    fn rho_zero_is_identity() {
        let s = stream(50);
        assert_eq!(with_paper_reservations(&s, 0.0, 1), s);
    }

    #[test]
    fn rho_one_converts_every_job() {
        let s = stream(200);
        let out = with_paper_reservations(&s, 1.0, 1);
        assert!(out.iter().all(|r| r.earliest_start >= r.submit));
        assert!(out.iter().filter(|r| r.is_advance()).count() > 190);
        // Advance offsets stay within the paper's window.
        assert!(out
            .iter()
            .all(|r| (r.earliest_start - r.submit) <= PAPER_MAX_ADVANCE));
    }

    #[test]
    fn rho_half_converts_about_half() {
        let s = stream(2000);
        let out = with_paper_reservations(&s, 0.5, 42);
        let frac = out.iter().filter(|r| r.is_advance()).count() as f64 / 2000.0;
        assert!((frac - 0.5).abs() < 0.05, "fraction {frac}");
    }

    #[test]
    fn only_start_time_changes() {
        let s = stream(100);
        let out = with_paper_reservations(&s, 1.0, 7);
        for (a, b) in s.iter().zip(&out) {
            assert_eq!(a.submit, b.submit);
            assert_eq!(a.duration, b.duration);
            assert_eq!(a.servers, b.servers);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let s = stream(100);
        assert_eq!(
            with_paper_reservations(&s, 0.4, 9),
            with_paper_reservations(&s, 0.4, 9)
        );
        assert_ne!(
            with_paper_reservations(&s, 0.4, 9),
            with_paper_reservations(&s, 0.4, 10)
        );
    }

    #[test]
    fn custom_advance_window_respected() {
        let s = stream(100);
        let out = with_advance_reservations(&s, 1.0, Dur(600), 3);
        assert!(out.iter().all(|r| (r.earliest_start - r.submit) <= Dur(600)));
    }
}
