//! Parser for the Standard Workload Format (SWF) of the Parallel Workloads
//! Archive — the format of the CTC, KTH and HPC2N traces the paper replays.
//!
//! The paper extracts the four request parameters `(q_r, s_r, l_r, n_r)`
//! from each log entry; this parser additionally preserves the *recorded*
//! waiting time, which is the paper's "batch" curve (the behaviour of the
//! production batch scheduler that produced the trace).
//!
//! SWF reference: each non-comment line has 18 whitespace-separated fields;
//! comment lines start with `;`. Missing values are `-1`.

use coalloc_core::prelude::{Dur, Request, Time};

/// One SWF record (the fields this reproduction uses).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SwfJob {
    /// Field 1: job number.
    pub id: i64,
    /// Field 2: submit time, seconds from trace start (`q_r`).
    pub submit: i64,
    /// Field 3: wait time in seconds as recorded by the original batch
    /// scheduler (−1 if unknown).
    pub wait: i64,
    /// Field 4: actual run time in seconds.
    pub run_time: i64,
    /// Field 5: number of allocated processors.
    pub used_procs: i64,
    /// Field 8: requested processors (−1 → fall back to `used_procs`).
    pub req_procs: i64,
    /// Field 9: requested (estimated) run time (−1 → fall back to
    /// `run_time`). This is the paper's `l_r` — "the a priori knowledge of
    /// the temporal size of a job is a common practice".
    pub req_time: i64,
    /// Field 11: completion status.
    pub status: i64,
}

impl SwfJob {
    /// The spatial size `n_r`: requested processors, falling back to used.
    pub fn servers(&self) -> Option<u32> {
        let p = if self.req_procs > 0 {
            self.req_procs
        } else {
            self.used_procs
        };
        (p > 0).then_some(p as u32)
    }

    /// The temporal size `l_r`: requested time, falling back to actual.
    pub fn duration(&self) -> Option<Dur> {
        let t = if self.req_time > 0 {
            self.req_time
        } else {
            self.run_time
        };
        (t > 0).then(|| Dur::from_secs(t))
    }

    /// Convert to an on-demand request (`s_r = q_r`), if the record is
    /// usable.
    pub fn to_request(&self) -> Option<Request> {
        Some(Request::on_demand(
            Time(self.submit),
            self.duration()?,
            self.servers()?,
        ))
    }

    /// The recorded batch-scheduler waiting time, if present.
    pub fn recorded_wait(&self) -> Option<Dur> {
        (self.wait >= 0).then(|| Dur::from_secs(self.wait))
    }
}

/// Errors from SWF parsing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SwfError {
    /// A data line had fewer than 18 fields.
    TooFewFields {
        /// 1-based line number.
        line: usize,
        /// Fields found.
        found: usize,
    },
    /// A field failed integer parsing.
    BadField {
        /// 1-based line number.
        line: usize,
        /// 0-based field index.
        field: usize,
    },
}

impl std::fmt::Display for SwfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SwfError::TooFewFields { line, found } => {
                write!(f, "line {line}: expected 18 fields, found {found}")
            }
            SwfError::BadField { line, field } => {
                write!(f, "line {line}: field {field} is not an integer")
            }
        }
    }
}

impl std::error::Error for SwfError {}

/// Parse SWF text into records, skipping `;` comment lines and blank lines.
pub fn parse_swf(text: &str) -> Result<Vec<SwfJob>, SwfError> {
    let mut jobs = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with(';') {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() < 18 {
            return Err(SwfError::TooFewFields {
                line: lineno + 1,
                found: fields.len(),
            });
        }
        let get = |i: usize| -> Result<i64, SwfError> {
            fields[i].parse::<i64>().map_err(|_| SwfError::BadField {
                line: lineno + 1,
                field: i,
            })
        };
        jobs.push(SwfJob {
            id: get(0)?,
            submit: get(1)?,
            wait: get(2)?,
            run_time: get(3)?,
            used_procs: get(4)?,
            req_procs: get(7)?,
            req_time: get(8)?,
            status: get(10)?,
        });
    }
    Ok(jobs)
}

/// Convert parsed records to a request stream sorted by submission time,
/// dropping unusable records (zero processors or non-positive duration).
pub fn swf_to_requests(jobs: &[SwfJob]) -> Vec<Request> {
    let mut reqs: Vec<Request> = jobs.iter().filter_map(|j| j.to_request()).collect();
    reqs.sort_by_key(|r| r.submit);
    reqs
}

/// Serialize a request stream as SWF text (18 fields, unknown fields `-1`),
/// so synthetic twins can be exported for use with external SWF tooling.
/// The optional `waits` (parallel to `requests`) populate the recorded-wait
/// field, e.g. from a simulated batch run.
pub fn write_swf(header: &str, requests: &[Request], waits: Option<&[i64]>) -> String {
    let mut out = String::new();
    for line in header.lines() {
        out.push_str("; ");
        out.push_str(line);
        out.push('\n');
    }
    for (i, r) in requests.iter().enumerate() {
        let wait = waits.map(|w| w[i]).unwrap_or(-1);
        // job submit wait runtime used_procs avg_cpu used_mem req_procs
        // req_time req_mem status user group exe queue partition prec think
        out.push_str(&format!(
            "{} {} {} {} {} -1 -1 {} {} -1 1 {} 1 -1 1 -1 -1 -1\n",
            i + 1,
            r.submit.secs(),
            wait,
            r.duration.secs(), // actual = estimate (paper's model)
            r.servers,
            r.servers,
            r.duration.secs(),
            (i % 64) + 1, // synthetic user id
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
; Version: 2
; Computer: IBM SP2
; note: sanitized
  1  100  30  3600  16 -1 -1  16  7200 -1 1 1 1 -1 1 -1 -1 -1
  2  160  -1  1800   8 -1 -1  -1    -1 -1 1 2 1 -1 1 -1 -1 -1
  3  120   0     0   0 -1 -1   0     0 -1 0 3 1 -1 1 -1 -1 -1

  4  200   5   600   1 -1 -1   4   900 -1 1 4 1 -1 1 -1 -1 -1
";

    #[test]
    fn parses_records_and_skips_comments() {
        let jobs = parse_swf(SAMPLE).unwrap();
        assert_eq!(jobs.len(), 4);
        assert_eq!(jobs[0].id, 1);
        assert_eq!(jobs[0].submit, 100);
        assert_eq!(jobs[0].wait, 30);
    }

    #[test]
    fn requested_values_preferred_with_fallback() {
        let jobs = parse_swf(SAMPLE).unwrap();
        // Job 1: requested 16 procs / 7200 s.
        assert_eq!(jobs[0].servers(), Some(16));
        assert_eq!(jobs[0].duration(), Some(Dur(7200)));
        // Job 2: requested fields are -1 → falls back to used/actual.
        assert_eq!(jobs[1].servers(), Some(8));
        assert_eq!(jobs[1].duration(), Some(Dur(1800)));
        // Job 3 is unusable.
        assert_eq!(jobs[2].to_request(), None);
        // Job 4: requested 4 procs / 900 s even though it used 1 / 600.
        assert_eq!(jobs[3].servers(), Some(4));
        assert_eq!(jobs[3].duration(), Some(Dur(900)));
    }

    #[test]
    fn recorded_wait_roundtrip() {
        let jobs = parse_swf(SAMPLE).unwrap();
        assert_eq!(jobs[0].recorded_wait(), Some(Dur(30)));
        assert_eq!(jobs[1].recorded_wait(), None);
    }

    #[test]
    fn to_requests_sorted_and_filtered() {
        let jobs = parse_swf(SAMPLE).unwrap();
        let reqs = swf_to_requests(&jobs);
        assert_eq!(reqs.len(), 3);
        assert!(reqs.windows(2).all(|w| w[0].submit <= w[1].submit));
        assert_eq!(reqs[0].submit, Time(100));
    }

    #[test]
    fn writer_parser_roundtrip() {
        let reqs = vec![
            Request::on_demand(Time(0), Dur(3600), 4),
            Request::on_demand(Time(90), Dur(600), 1),
            Request::on_demand(Time(200), Dur(7200), 16),
        ];
        let text = write_swf("Computer: twin\nVersion: 2", &reqs, Some(&[5, -1, 30]));
        let jobs = parse_swf(&text).unwrap();
        assert_eq!(jobs.len(), 3);
        let back = swf_to_requests(&jobs);
        assert_eq!(back, reqs);
        assert_eq!(jobs[0].recorded_wait(), Some(Dur(5)));
        assert_eq!(jobs[1].recorded_wait(), None);
        assert_eq!(jobs[2].recorded_wait(), Some(Dur(30)));
        assert!(text.starts_with("; Computer: twin\n; Version: 2\n"));
    }

    #[test]
    fn synthetic_twin_exports_cleanly() {
        let reqs = crate::synthetic::WorkloadSpec::kth()
            .scaled(0.002)
            .generate(3);
        let text = write_swf("KTH twin", &reqs, None);
        let back = swf_to_requests(&parse_swf(&text).unwrap());
        assert_eq!(back.len(), reqs.len());
        assert_eq!(back, reqs);
    }

    #[test]
    fn error_on_short_line() {
        let err = parse_swf("1 2 3").unwrap_err();
        assert_eq!(err, SwfError::TooFewFields { line: 1, found: 3 });
    }

    #[test]
    fn error_on_bad_integer() {
        let bad = "1 2 3 x 5 6 7 8 9 10 11 12 13 14 15 16 17 18";
        let err = parse_swf(bad).unwrap_err();
        assert_eq!(err, SwfError::BadField { line: 1, field: 3 });
    }
}
