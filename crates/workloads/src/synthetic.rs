//! Synthetic statistical twins of the paper's three workloads.
//!
//! The real CTC/KTH/HPC2N traces from the Parallel Workloads Archive are not
//! redistributable here, so experiments run against seeded generators
//! calibrated to the published features the paper's analysis relies on
//! (Table 1 and Figure 4b):
//!
//! | trace | N   | jobs    | mean `l_r` | temporal shape                   |
//! |-------|-----|---------|-----------|----------------------------------|
//! | CTC   | 512 | 39,734  | 5.82 h    | ≤14 % of jobs under 2 h          |
//! | KTH   | 128 | 28,481  | 2.46 h    | most jobs under 2 h (Fig. 4b)    |
//! | HPC2N | 240 | 202,825 | 4.72 h    | intermediate                     |
//!
//! Durations are a two-component lognormal mixture (short interactive body +
//! heavy batch tail), spatial sizes are power-of-two biased (the classic
//! parallel-workload shape), arrivals follow a diurnally modulated Poisson
//! process whose rate is derived from a target offered load. An optional
//! exact-mean calibration rescales durations so Table 1 reproduces tightly.

use coalloc_core::prelude::{Dur, Request, Time};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Parameters of a synthetic workload twin.
#[derive(Clone, Debug)]
pub struct WorkloadSpec {
    /// Display name ("CTC", "KTH", ...).
    pub name: String,
    /// Number of servers `N`.
    pub servers: u32,
    /// Number of jobs to generate.
    pub jobs: usize,
    /// Target mean requested duration, hours.
    pub mean_duration_hours: f64,
    /// Fraction of jobs drawn from the short-duration component.
    pub short_frac: f64,
    /// Lognormal `mu` (ln hours) of the short component.
    pub short_mu: f64,
    /// Lognormal `sigma` of the short component.
    pub short_sigma: f64,
    /// Lognormal `mu` (ln hours) of the long component.
    pub long_mu: f64,
    /// Lognormal `sigma` of the long component.
    pub long_sigma: f64,
    /// Durations are clamped to this maximum (hours).
    pub max_duration_hours: f64,
    /// Fraction of strictly serial jobs (`n_r = 1`).
    pub serial_frac: f64,
    /// Among parallel jobs, fraction with exact power-of-two sizes.
    pub pow2_frac: f64,
    /// Offered load (fraction of total capacity) used to derive the arrival
    /// rate: `span = total_work / (N * load)`.
    pub offered_load: f64,
    /// Whether arrivals follow a day/night cycle.
    pub diurnal: bool,
    /// Rescale durations so the empirical mean matches
    /// `mean_duration_hours` exactly (shape-preserving).
    pub calibrate_mean: bool,
}

impl WorkloadSpec {
    /// The CTC SP2 twin (512 processors, 39,734 jobs, mean 5.82 h, few
    /// short jobs).
    pub fn ctc() -> WorkloadSpec {
        WorkloadSpec {
            name: "CTC".into(),
            servers: 512,
            jobs: 39_734,
            mean_duration_hours: 5.82,
            short_frac: 0.10,
            short_mu: (0.75f64).ln(),
            short_sigma: 0.6,
            long_mu: (5.5f64).ln(),
            long_sigma: 0.6,
            max_duration_hours: 18.0,
            serial_frac: 0.25,
            pow2_frac: 0.7,
            offered_load: 0.66,
            diurnal: true,
            calibrate_mean: true,
        }
    }

    /// The KTH SP2 twin (128 processors, 28,481 jobs, mean 2.46 h, most
    /// jobs under 2 h — the high-fragmentation workload of Figure 4b).
    pub fn kth() -> WorkloadSpec {
        WorkloadSpec {
            name: "KTH".into(),
            servers: 128,
            jobs: 28_481,
            mean_duration_hours: 2.46,
            short_frac: 0.70,
            short_mu: (0.45f64).ln(),
            short_sigma: 0.8,
            long_mu: (4.5f64).ln(),
            long_sigma: 0.7,
            max_duration_hours: 44.0,
            serial_frac: 0.30,
            pow2_frac: 0.75,
            offered_load: 0.69,
            diurnal: true,
            calibrate_mean: true,
        }
    }

    /// The HPC2N twin (240 processors, 202,825 jobs, mean 4.72 h).
    pub fn hpc2n() -> WorkloadSpec {
        WorkloadSpec {
            name: "HPC2N".into(),
            servers: 240,
            jobs: 202_825,
            mean_duration_hours: 4.72,
            short_frac: 0.45,
            short_mu: (0.5f64).ln(),
            short_sigma: 0.75,
            long_mu: (5.5f64).ln(),
            long_sigma: 0.8,
            max_duration_hours: 36.0,
            serial_frac: 0.35,
            pow2_frac: 0.7,
            offered_load: 0.62,
            diurnal: true,
            calibrate_mean: true,
        }
    }

    /// All three presets (the paper's Table 1).
    pub fn all() -> Vec<WorkloadSpec> {
        vec![WorkloadSpec::ctc(), WorkloadSpec::kth(), WorkloadSpec::hpc2n()]
    }

    /// Scale the job count by `f` (for quick experiments and CI), keeping
    /// every distribution and the offered load unchanged.
    pub fn scaled(mut self, f: f64) -> WorkloadSpec {
        assert!(f > 0.0 && f <= 1.0, "scale must be in (0, 1]");
        self.jobs = ((self.jobs as f64 * f).round() as usize).max(1);
        self
    }

    /// Generate the request stream (on-demand requests, sorted by `q_r`).
    pub fn generate(&self, seed: u64) -> Vec<Request> {
        let mut rng = SmallRng::seed_from_u64(seed ^ hash_name(&self.name));
        // --- durations -------------------------------------------------
        let mut hours: Vec<f64> = (0..self.jobs)
            .map(|_| {
                let (mu, sigma) = if rng.random_bool(self.short_frac) {
                    (self.short_mu, self.short_sigma)
                } else {
                    (self.long_mu, self.long_sigma)
                };
                lognormal(&mut rng, mu, sigma).clamp(1.0 / 60.0, self.max_duration_hours)
            })
            .collect();
        if self.calibrate_mean {
            let actual = hours.iter().sum::<f64>() / hours.len() as f64;
            let k = self.mean_duration_hours / actual;
            for h in &mut hours {
                *h = (*h * k).clamp(1.0 / 60.0, self.max_duration_hours);
            }
        }
        // --- spatial sizes ---------------------------------------------
        let max_log2 = (self.servers as f64).log2().floor() as u32;
        let sizes: Vec<u32> = (0..self.jobs)
            .map(|_| {
                if rng.random_bool(self.serial_frac) {
                    1
                } else if rng.random_bool(self.pow2_frac) {
                    // Power-of-two biased towards smaller sizes.
                    let a = rng.random_range(1..=max_log2);
                    let b = rng.random_range(1..=max_log2);
                    1u32 << a.min(b)
                } else {
                    rng.random_range(2..=self.servers)
                }
            })
            .map(|n| n.min(self.servers))
            .collect();
        // --- arrivals ---------------------------------------------------
        // Derive the span from the offered load, then draw exponential
        // interarrivals modulated by a diurnal rate factor.
        let total_work_hours: f64 = hours
            .iter()
            .zip(&sizes)
            .map(|(h, &n)| h * n as f64)
            .sum();
        let span_hours = total_work_hours / (self.servers as f64 * self.offered_load);
        let mean_gap_secs = span_hours * 3600.0 / self.jobs as f64;
        let mut t = 0.0f64;
        let mut reqs = Vec::with_capacity(self.jobs);
        for i in 0..self.jobs {
            let factor = if self.diurnal {
                diurnal_factor(t)
            } else {
                1.0
            };
            // Exponential interarrival with rate scaled by the diurnal
            // factor (thinning-free approximation, adequate at this scale).
            let u: f64 = rng.random::<f64>().max(1e-12);
            t += -u.ln() * mean_gap_secs / factor;
            reqs.push(Request::on_demand(
                Time(t as i64),
                Dur::from_secs((hours[i] * 3600.0).round() as i64),
                sizes[i],
            ));
        }
        reqs
    }
}

fn hash_name(name: &str) -> u64 {
    name.bytes().fold(0xcbf29ce484222325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x100000001b3)
    })
}

/// Sample `exp(mu + sigma * Z)` with `Z ~ N(0,1)` via Box-Muller.
fn lognormal(rng: &mut SmallRng, mu: f64, sigma: f64) -> f64 {
    let u1: f64 = rng.random::<f64>().max(1e-12);
    let u2: f64 = rng.random();
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    (mu + sigma * z).exp()
}

/// Day/night arrival-rate modulation: peak in working hours, trough at
/// night, as observed across Parallel Workloads Archive traces.
fn diurnal_factor(t_secs: f64) -> f64 {
    let hour = (t_secs / 3600.0) % 24.0;
    // Smooth bump peaking at 14:00, min at 02:00.
    1.0 + 0.6 * ((hour - 14.0) / 24.0 * 2.0 * std::f64::consts::PI).cos()
}

/// Summary features of a request stream (Table 1).
#[derive(Clone, Debug, PartialEq)]
pub struct WorkloadStats {
    /// Number of requests.
    pub jobs: usize,
    /// Mean requested duration, hours.
    pub mean_duration_hours: f64,
    /// Mean spatial size.
    pub mean_servers: f64,
    /// Largest spatial size.
    pub max_servers: u32,
    /// Span from first to last submission, hours.
    pub span_hours: f64,
    /// Fraction of jobs shorter than 2 hours (the Figure-4b discriminator).
    pub frac_under_2h: f64,
}

impl WorkloadStats {
    /// Compute the summary of a request stream.
    pub fn of(reqs: &[Request]) -> WorkloadStats {
        if reqs.is_empty() {
            return WorkloadStats {
                jobs: 0,
                mean_duration_hours: 0.0,
                mean_servers: 0.0,
                max_servers: 0,
                span_hours: 0.0,
                frac_under_2h: 0.0,
            };
        }
        let n = reqs.len() as f64;
        let mean_duration_hours = reqs.iter().map(|r| r.duration.hours()).sum::<f64>() / n;
        let mean_servers = reqs.iter().map(|r| r.servers as f64).sum::<f64>() / n;
        let max_servers = reqs.iter().map(|r| r.servers).max().unwrap();
        let first = reqs.iter().map(|r| r.submit).min().unwrap();
        let last = reqs.iter().map(|r| r.submit).max().unwrap();
        let under = reqs.iter().filter(|r| r.duration.hours() < 2.0).count();
        WorkloadStats {
            jobs: reqs.len(),
            mean_duration_hours,
            mean_servers,
            max_servers,
            span_hours: (last - first).hours(),
            frac_under_2h: under as f64 / n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctc_twin_matches_table1() {
        let reqs = WorkloadSpec::ctc().scaled(0.1).generate(1);
        let stats = WorkloadStats::of(&reqs);
        assert_eq!(stats.jobs, 3973);
        assert!(
            (stats.mean_duration_hours - 5.82).abs() < 0.35,
            "CTC mean duration {} != 5.82",
            stats.mean_duration_hours
        );
        // "at most 14% of all jobs are smaller than 2 hours" — allow the
        // clamped calibration a little slack.
        assert!(
            stats.frac_under_2h < 0.20,
            "CTC short-job fraction {} too high",
            stats.frac_under_2h
        );
        assert!(stats.max_servers <= 512);
    }

    #[test]
    fn kth_twin_is_short_job_dominated() {
        let reqs = WorkloadSpec::kth().scaled(0.1).generate(1);
        let stats = WorkloadStats::of(&reqs);
        assert!(
            (stats.mean_duration_hours - 2.46).abs() < 0.25,
            "KTH mean duration {}",
            stats.mean_duration_hours
        );
        // "most jobs in the KTH workload have a duration smaller than 2h".
        assert!(
            stats.frac_under_2h > 0.5,
            "KTH short-job fraction {} should dominate",
            stats.frac_under_2h
        );
        assert!(stats.max_servers <= 128);
    }

    #[test]
    fn hpc2n_twin_sized_correctly() {
        let reqs = WorkloadSpec::hpc2n().scaled(0.02).generate(1);
        let stats = WorkloadStats::of(&reqs);
        assert_eq!(stats.jobs, 4057);
        assert!((stats.mean_duration_hours - 4.72).abs() < 0.4);
        assert!(stats.max_servers <= 240);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = WorkloadSpec::kth().scaled(0.01).generate(7);
        let b = WorkloadSpec::kth().scaled(0.01).generate(7);
        let c = WorkloadSpec::kth().scaled(0.01).generate(8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn arrivals_sorted_and_positive() {
        let reqs = WorkloadSpec::ctc().scaled(0.01).generate(3);
        assert!(reqs.windows(2).all(|w| w[0].submit <= w[1].submit));
        assert!(reqs.iter().all(|r| r.duration.secs() >= 60));
        assert!(reqs.iter().all(|r| r.servers >= 1));
    }

    #[test]
    fn offered_load_controls_span() {
        let mut light = WorkloadSpec::kth().scaled(0.02);
        light.offered_load = 0.3;
        let mut heavy = light.clone();
        heavy.offered_load = 0.9;
        let sl = WorkloadStats::of(&light.generate(5)).span_hours;
        let sh = WorkloadStats::of(&heavy.generate(5)).span_hours;
        assert!(
            sl > sh * 2.0,
            "lighter load should stretch the trace: {sl} vs {sh}"
        );
    }

    #[test]
    fn spatial_sizes_have_pow2_bias_and_serial_jobs() {
        let reqs = WorkloadSpec::ctc().scaled(0.05).generate(11);
        let serial = reqs.iter().filter(|r| r.servers == 1).count() as f64;
        let pow2 = reqs
            .iter()
            .filter(|r| r.servers.is_power_of_two() && r.servers > 1)
            .count() as f64;
        let n = reqs.len() as f64;
        assert!(serial / n > 0.15 && serial / n < 0.40);
        assert!(pow2 / n > 0.35, "power-of-two fraction {}", pow2 / n);
    }

    #[test]
    fn diurnal_factor_cycles_daily() {
        let peak = diurnal_factor(14.0 * 3600.0);
        let trough = diurnal_factor(2.0 * 3600.0);
        assert!(peak > 1.5 && trough < 0.5);
        assert!((diurnal_factor(0.0) - diurnal_factor(24.0 * 3600.0)).abs() < 1e-9);
    }

    #[test]
    fn table1_row_shapes_hold_across_all_twins() {
        for spec in WorkloadSpec::all() {
            let name = spec.name.clone();
            let reqs = spec.scaled(0.01).generate(2);
            let stats = WorkloadStats::of(&reqs);
            assert!(stats.jobs > 0);
            assert!(stats.mean_duration_hours > 1.0);
            assert!(stats.span_hours > 24.0, "{name} span too short");
        }
    }
}
