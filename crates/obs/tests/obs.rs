//! Integration tests for the obs crate: histogram bucket boundaries,
//! concurrent counter increments, span nesting/timeline ordering, and JSONL
//! sink round-trip parsing.
//!
//! Tracing state (enabled flag, ring, sink) is process-global, so every test
//! that touches it serializes on [`GUARD`] and restores a clean state.

use std::sync::{Arc, Mutex, MutexGuard};

use obs::trace::{self, EventKind};
use obs::{obs_event, obs_span};

static GUARD: Mutex<()> = Mutex::new(());

/// Take the serialization lock and reset tracing to a known-clean state.
fn trace_lock() -> MutexGuard<'static, ()> {
    let guard = GUARD.lock().unwrap_or_else(|p| p.into_inner());
    trace::set_enabled(false);
    trace::set_detail(false);
    trace::set_sink(None);
    trace::set_ring_capacity(0);
    trace::clear_ring();
    guard
}

#[test]
fn detail_level_gates_fine_grained_spans() {
    let _g = trace_lock();
    trace::set_enabled(true);
    trace::set_ring_capacity(64);

    // Detail off: detail-level macros are inert, normal level still records.
    {
        let s = obs::obs_span_detail!("test.detail_span", "k" => 1u64);
        assert!(!s.active(), "detail span inert while detail is off");
        obs::obs_event_detail!("test.detail_point");
        obs_event!("test.normal_point");
    }
    assert_eq!(trace::ring_events().len(), 1, "only the normal-level event");

    // Detail on: both levels record, and detail spans nest normally.
    trace::set_detail(true);
    trace::clear_ring();
    {
        let outer = obs_span!("test.outer");
        let inner = obs::obs_span_detail!("test.detail_span");
        assert!(inner.active());
        assert_eq!(
            trace::ring_events().last().unwrap().parent,
            outer.id(),
            "detail span nests under the normal-level span"
        );
    }
    assert_eq!(trace::ring_events().len(), 4);
    trace::set_detail(false);
    trace::set_enabled(false);
}

#[test]
fn histogram_bucket_boundaries() {
    // Small values get exact buckets.
    for v in 0..4u64 {
        assert_eq!(obs::metrics::bucket_index(v), v as usize, "exact bucket for {v}");
        assert_eq!(obs::metrics::bucket_upper(v as usize), v);
    }
    // Each octave [2^k, 2^(k+1)) splits into 4 sub-buckets: [4,5) [5,6) [6,7) [7,8),
    // then [8,10) [10,12) [12,14) [14,16), etc.
    assert_eq!(obs::metrics::bucket_index(4), 4);
    assert_eq!(obs::metrics::bucket_index(5), 5);
    assert_eq!(obs::metrics::bucket_index(7), 7);
    assert_eq!(obs::metrics::bucket_index(8), 8);
    assert_eq!(obs::metrics::bucket_index(9), 8); // same sub-bucket as 8
    assert_eq!(obs::metrics::bucket_index(10), 9);
    assert_eq!(obs::metrics::bucket_index(15), 11);
    assert_eq!(obs::metrics::bucket_index(16), 12);

    // Index is monotone non-decreasing and the upper bound is an inverse:
    // every value lands in a bucket whose reported range contains it.
    let mut probes: Vec<u64> = (0..63)
        .flat_map(|exp| [1u64 << exp, (1u64 << exp) + 1, (1u64 << exp).saturating_mul(2) - 1])
        .collect();
    probes.sort_unstable();
    probes.dedup();
    let mut prev = 0;
    for v in probes {
        let idx = obs::metrics::bucket_index(v);
        assert!(idx >= prev, "monotone at {v}");
        prev = idx;
        assert!(obs::metrics::bucket_upper(idx) >= v, "upper({idx}) >= {v}");
        if idx > 0 {
            assert!(obs::metrics::bucket_upper(idx - 1) < v, "lower bound excludes {v}");
        }
    }

    // Relative bucket width stays ~25% (log-linear guarantee).
    for v in [100u64, 1_000, 65_537, 1_000_000_007] {
        let idx = obs::metrics::bucket_index(v);
        let hi = obs::metrics::bucket_upper(idx);
        let lo = if idx == 0 { 0 } else { obs::metrics::bucket_upper(idx - 1) + 1 };
        assert!(hi >= v && lo <= v);
        assert!((hi - lo) as f64 <= 0.26 * lo as f64, "bucket [{lo},{hi}] too wide for {v}");
    }
}

#[test]
fn histogram_observe_and_quantiles() {
    let h = obs::metrics::histogram("test_obs_hist_quantiles");
    for v in 1..=1000u64 {
        h.observe(v);
    }
    assert_eq!(h.count(), 1000);
    assert_eq!(h.sum(), 500_500);
    let median = h.quantile(0.5).unwrap();
    // Log-linear buckets: the answer is within one bucket (~25%) of 500.
    assert!((380..=640).contains(&median), "median ~500, got {median}");
    assert!(h.quantile(1.0).unwrap() >= 1000);
    assert_eq!(obs::metrics::histogram("test_obs_hist_empty").quantile(0.5), None);
}

#[test]
fn concurrent_counter_increments() {
    let c = obs::metrics::counter("test_obs_concurrent_total");
    let h = obs::metrics::histogram("test_obs_concurrent_hist");
    std::thread::scope(|s| {
        for t in 0..8 {
            let c = c.clone();
            let h = h.clone();
            s.spawn(move || {
                for i in 0..10_000u64 {
                    c.inc();
                    if i % 100 == 0 {
                        h.observe(t * 1000 + i);
                    }
                }
            });
        }
    });
    assert_eq!(c.get(), 80_000);
    assert_eq!(h.count(), 800);
    // Registry handle resolves to the same underlying atomics.
    assert_eq!(obs::metrics::counter("test_obs_concurrent_total").get(), 80_000);
}

#[test]
fn exposition_renders_all_metric_kinds() {
    obs::metrics::counter("test_obs_expo_total").add(3);
    obs::metrics::gauge("test_obs_expo_gauge").set(-7);
    let h = obs::metrics::histogram("test_obs_expo_hist");
    h.observe(5);
    h.observe(5);
    h.observe(100);
    let text = obs::metrics::exposition();
    assert!(text.contains("# TYPE test_obs_expo_total counter"));
    assert!(text.contains("test_obs_expo_total 3"));
    assert!(text.contains("test_obs_expo_gauge -7"));
    assert!(text.contains("test_obs_expo_hist_bucket{le=\"5\"} 2"));
    assert!(text.contains("test_obs_expo_hist_bucket{le=\"+Inf\"} 3"));
    assert!(text.contains("test_obs_expo_hist_sum 110"));
    assert!(text.contains("test_obs_expo_hist_count 3"));
    // Cumulative counts are non-decreasing in bucket order.
    let mut last = 0u64;
    for line in text.lines().filter(|l| l.starts_with("test_obs_expo_hist_bucket")) {
        let n: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
        assert!(n >= last, "cumulative buckets must be monotone: {line}");
        last = n;
    }
}

#[test]
fn span_nesting_and_timeline_ordering() {
    let _g = trace_lock();
    trace::set_enabled(true);
    trace::set_ring_capacity(256);

    {
        let mut outer = obs_span!("test.outer", "n" => 2u64);
        obs_event!("test.point_in_outer");
        {
            let _inner = obs_span!("test.inner");
            obs_event!("test.point_in_inner", "k" => "v");
        }
        outer.record("done", true);
    }
    trace::set_enabled(false);

    let events = trace::ring_events();
    assert_eq!(events.len(), 6, "outer start, point, inner start, point, inner end, outer end");

    // Timestamps are non-decreasing (monotonic clock, single thread).
    for w in events.windows(2) {
        assert!(w[0].ts_ns <= w[1].ts_ns);
    }

    let outer_start = &events[0];
    assert_eq!(outer_start.kind, EventKind::SpanStart);
    assert_eq!(outer_start.name, "test.outer");
    assert_eq!(outer_start.parent, 0);
    let outer_id = outer_start.span;

    // The free point inherits the enclosing span.
    assert_eq!(events[1].kind, EventKind::Point);
    assert_eq!(events[1].span, outer_id);

    let inner_start = &events[2];
    assert_eq!(inner_start.parent, outer_id, "inner span nests under outer");
    let inner_id = inner_start.span;
    assert_ne!(inner_id, outer_id);
    assert_eq!(events[3].span, inner_id);
    assert_eq!(events[3].parent, outer_id);

    let inner_end = &events[4];
    assert_eq!(inner_end.kind, EventKind::SpanEnd);
    assert_eq!(inner_end.span, inner_id);
    assert!(inner_end.field("dur_ns").is_some());

    let outer_end = &events[5];
    assert_eq!(outer_end.span, outer_id);
    assert_eq!(outer_end.field("done"), Some(&trace::Value::Bool(true)));
    // Inner span is fully contained in outer.
    assert!(inner_start.ts_ns >= outer_start.ts_ns && inner_end.ts_ns <= outer_end.ts_ns);
}

#[test]
fn disabled_tracing_is_inert_and_skips_fields() {
    let _g = trace_lock();
    trace::set_ring_capacity(64);
    // Field expressions must not run while disabled.
    let mut evaluated = false;
    {
        let _s = obs_span!("test.disabled", "x" => { evaluated = true; 1u64 });
        obs_event!("test.disabled_point", "y" => { evaluated = true; 2u64 });
    }
    assert!(!evaluated, "disabled macros must not evaluate fields");
    assert!(trace::ring_events().is_empty());
}

#[test]
fn ring_buffer_caps_and_drops_oldest() {
    let _g = trace_lock();
    trace::set_enabled(true);
    trace::set_ring_capacity(8);
    for i in 0..20u64 {
        obs_event!("test.ring", "i" => i);
    }
    trace::set_enabled(false);
    let events = trace::ring_events();
    assert_eq!(events.len(), 8);
    // Oldest dropped: survivors are 12..=19.
    assert_eq!(events[0].field("i"), Some(&trace::Value::U64(12)));
    assert_eq!(events[7].field("i"), Some(&trace::Value::U64(19)));
}

#[test]
fn jsonl_sink_round_trip() {
    let _g = trace_lock();
    let dir = std::env::temp_dir().join(format!("obs_test_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("round_trip.jsonl");

    let sink = trace::JsonlSink::create(&path).unwrap();
    trace::set_sink(Some(Arc::new(sink)));
    trace::set_enabled(true);
    {
        let mut s = obs_span!("test.rt", "count" => 42u64, "label" => "a \"quoted\"\nline");
        obs_event!("test.rt_point", "neg" => -5i64, "pi" => 3.5f64, "flag" => true);
        s.record("outcome", "ok");
    }
    trace::set_enabled(false);
    trace::flush_sink();
    trace::set_sink(None);

    let text = std::fs::read_to_string(&path).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 3, "start, point, end");

    let start = obs::json::parse(lines[0]).unwrap();
    assert_eq!(start.get("kind").unwrap().as_str(), Some("span_start"));
    assert_eq!(start.get("name").unwrap().as_str(), Some("test.rt"));
    assert_eq!(start.get("count").unwrap().as_num(), Some(42.0));
    assert_eq!(
        start.get("label").unwrap().as_str(),
        Some("a \"quoted\"\nline"),
        "escapes survive the round trip"
    );

    let point = obs::json::parse(lines[1]).unwrap();
    assert_eq!(point.get("neg").unwrap().as_num(), Some(-5.0));
    assert_eq!(point.get("pi").unwrap().as_num(), Some(3.5));
    assert_eq!(point.get("flag"), Some(&obs::json::Json::Bool(true)));
    // The point nests inside the span.
    assert_eq!(point.get("span"), start.get("span"));

    let end = obs::json::parse(lines[2]).unwrap();
    assert_eq!(end.get("kind").unwrap().as_str(), Some("span_end"));
    assert_eq!(end.get("outcome").unwrap().as_str(), Some("ok"));
    assert!(end.get("dur_ns").unwrap().as_num().unwrap() >= 0.0);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn timelines_by_groups_and_orders() {
    let _g = trace_lock();
    trace::set_enabled(true);
    trace::set_ring_capacity(64);
    obs_event!("site.hold_granted", "txn" => 1u64, "site" => 0u64);
    obs_event!("site.hold_granted", "txn" => 2u64, "site" => 0u64);
    obs_event!("site.commit", "txn" => 1u64, "site" => 0u64);
    obs_event!("site.abort", "txn" => 2u64, "site" => 0u64);
    obs_event!("link.drop", "kind" => "hold"); // no txn field: excluded
    trace::set_enabled(false);

    let groups = trace::timelines_by(&trace::ring_events(), "txn");
    assert_eq!(groups.len(), 2);
    let txn1 = &groups.iter().find(|(v, _)| *v == trace::Value::U64(1)).unwrap().1;
    assert_eq!(txn1.len(), 2);
    assert_eq!(txn1[0].name, "site.hold_granted");
    assert_eq!(txn1[1].name, "site.commit");
    assert!(txn1[0].ts_ns <= txn1[1].ts_ns);
}

#[test]
fn json_parser_rejects_malformed() {
    assert!(obs::json::parse("{\"a\":1").is_err());
    assert!(obs::json::parse("{\"a\" 1}").is_err());
    assert!(obs::json::parse("{} trailing").is_err());
    assert!(obs::json::parse("\"unterminated").is_err());
    assert!(obs::json::parse("[1,2,]").is_err());
    assert!(obs::json::parse("nul").is_err());
    assert_eq!(
        obs::json::parse("{\"a\":[1,true,null,\"x\"]}").unwrap().get("a"),
        Some(&obs::json::Json::Arr(vec![
            obs::json::Json::Num(1.0),
            obs::json::Json::Bool(true),
            obs::json::Json::Null,
            obs::json::Json::Str("x".to_string()),
        ]))
    );
}

/// Trace lines may repeat an envelope key as a span attribute (an rpc span
/// carries `"kind":"hold"` after the envelope's `"kind":"span_start"`);
/// readers must see the first occurrence, not the shadowing attribute.
#[test]
fn json_parser_keeps_first_duplicate_key() {
    let v = obs::json::parse("{\"kind\":\"span_start\",\"txn\":1,\"kind\":\"hold\"}").unwrap();
    assert_eq!(v.get("kind").and_then(|k| k.as_str()), Some("span_start"));
    assert_eq!(v.get("txn").and_then(|t| t.as_num()), Some(1.0));
}
