//! Hostile-input coverage for the `trace_check` binary and the strict
//! exposition validator: torn last lines, non-UTF-8 bytes, and
//! depth-mismatched spans must produce a clean error (nonzero exit, one-line
//! diagnostic), never a panic.

use std::io::Write;
use std::path::PathBuf;
use std::process::Command;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("trace_check_test_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn run(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_trace_check"))
        .args(args)
        .output()
        .expect("spawn trace_check");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

const GOOD_LINE: &str =
    "{\"ts_ns\":1,\"thread\":7,\"kind\":\"point\",\"name\":\"net.request\"}";

#[test]
fn valid_trace_passes() {
    let p = tmp("ok.jsonl");
    std::fs::write(
        &p,
        "{\"ts_ns\":1,\"thread\":7,\"kind\":\"span_start\",\"name\":\"a\",\"span\":1}\n\
         {\"ts_ns\":2,\"thread\":7,\"kind\":\"point\",\"name\":\"p\"}\n\
         {\"ts_ns\":3,\"thread\":7,\"kind\":\"span_end\",\"name\":\"a\",\"span\":1}\n",
    )
    .unwrap();
    let (ok, stdout, stderr) = run(&[p.to_str().unwrap()]);
    assert!(ok, "stdout={stdout} stderr={stderr}");
    assert!(stdout.contains("3 events"), "{stdout}");
}

#[test]
fn torn_last_line_fails_cleanly() {
    let p = tmp("torn.jsonl");
    let mut f = std::fs::File::create(&p).unwrap();
    writeln!(f, "{GOOD_LINE}").unwrap();
    // A crashed writer leaves a prefix of the next record, no newline.
    write!(f, "{{\"ts_ns\":2,\"thread\":7,\"ki").unwrap();
    drop(f);
    let (ok, _, stderr) = run(&[p.to_str().unwrap()]);
    assert!(!ok);
    assert!(stderr.contains("line 2") && stderr.contains("invalid JSON"), "{stderr}");
}

#[test]
fn non_utf8_fails_cleanly() {
    let p = tmp("binary.jsonl");
    let mut bytes = GOOD_LINE.as_bytes().to_vec();
    bytes.push(b'\n');
    bytes.extend_from_slice(&[0xff, 0xfe, 0x80, b'\n']);
    std::fs::write(&p, bytes).unwrap();
    let (ok, _, stderr) = run(&[p.to_str().unwrap()]);
    assert!(!ok);
    assert!(stderr.contains("not valid UTF-8"), "{stderr}");
}

#[test]
fn depth_mismatched_spans_fail_cleanly() {
    let p = tmp("depth.jsonl");
    std::fs::write(
        &p,
        "{\"ts_ns\":1,\"thread\":7,\"kind\":\"span_start\",\"name\":\"outer\",\"span\":1}\n\
         {\"ts_ns\":2,\"thread\":7,\"kind\":\"span_start\",\"name\":\"inner\",\"span\":2}\n\
         {\"ts_ns\":3,\"thread\":7,\"kind\":\"span_end\",\"name\":\"outer\",\"span\":1}\n",
    )
    .unwrap();
    let (ok, _, stderr) = run(&[p.to_str().unwrap()]);
    assert!(!ok);
    assert!(stderr.contains("depth mismatch"), "{stderr}");
}

#[test]
fn empty_and_missing_key_traces_fail_cleanly() {
    let p = tmp("empty.jsonl");
    std::fs::write(&p, "").unwrap();
    let (ok, _, stderr) = run(&[p.to_str().unwrap()]);
    assert!(!ok);
    assert!(stderr.contains("no events"), "{stderr}");

    let p = tmp("missing_key.jsonl");
    std::fs::write(&p, "{\"ts_ns\":1,\"thread\":7,\"kind\":\"point\"}\n").unwrap();
    let (ok, _, stderr) = run(&[p.to_str().unwrap()]);
    assert!(!ok);
    assert!(stderr.contains("missing key 'name'"), "{stderr}");
}

#[test]
fn expo_mode_validates_real_exposition() {
    // Real registry output must pass the strict validator...
    obs::metrics::counter("tc_expo_total").add(2);
    obs::metrics::gauge("tc_expo_gauge").set(-4);
    let h = obs::metrics::histogram("tc_expo_hist");
    for v in [0u64, 3, 70, 5_000, u64::MAX] {
        h.observe(v);
    }
    let text = obs::metrics::exposition();
    let p = tmp("metrics.txt");
    std::fs::write(&p, &text).unwrap();
    let (ok, stdout, stderr) = run(&["--expo", p.to_str().unwrap()]);
    assert!(ok, "stdout={stdout} stderr={stderr}\n{text}");

    // ...and corrupted variants must fail with a located error.
    for (broken, needle) in [
        (text.replace("le=\"+Inf\"", "le=\"+inf\""), "le"),
        (text.replace("# TYPE tc_expo_hist histogram\n", ""), "tc_expo_hist"),
    ] {
        let p = tmp("metrics_bad.txt");
        std::fs::write(&p, &broken).unwrap();
        let (ok, _, stderr) = run(&["--expo", p.to_str().unwrap()]);
        assert!(!ok, "corrupted exposition accepted");
        assert!(stderr.contains(needle), "{stderr}");
    }
}

#[test]
fn validator_rejects_inconsistent_histograms() {
    let bad = "# TYPE h histogram\n\
               h_bucket{le=\"1\"} 5\n\
               h_bucket{le=\"2\"} 3\n\
               h_bucket{le=\"+Inf\"} 5\n\
               h_sum 10\n\
               h_count 5\n";
    let err = obs::metrics::validate_exposition(bad).unwrap_err();
    assert!(err.contains("decreased"), "{err}");

    let bad = "# TYPE h histogram\n\
               h_bucket{le=\"1\"} 5\n\
               h_bucket{le=\"+Inf\"} 5\n\
               h_sum 10\n\
               h_count 7\n";
    let err = obs::metrics::validate_exposition(bad).unwrap_err();
    assert!(err.contains("_count"), "{err}");

    let bad = "# TYPE c counter\nc -3\n";
    let err = obs::metrics::validate_exposition(bad).unwrap_err();
    assert!(err.contains("negative"), "{err}");

    let bad = "orphan 3\n";
    let err = obs::metrics::validate_exposition(bad).unwrap_err();
    assert!(err.contains("before any TYPE"), "{err}");
}
