//! Process-global metrics registry: counters, gauges, log-linear histograms.
//!
//! Metrics are **always live** (no enabled flag): every update is a single
//! relaxed atomic RMW, cheap enough for the scheduler hot path. Handles are
//! `Clone` + cheap (an `Arc` around the atomics), so call sites either fetch
//! once via [`counter`]/[`gauge`]/[`histogram`] or use the `static`-friendly
//! [`LazyCounter`]/[`LazyGauge`]/[`LazyHistogram`] wrappers that resolve the
//! registry entry on first touch.
//!
//! [`exposition`] renders every registered metric in Prometheus text format
//! (histograms as cumulative `_bucket{le=...}` series plus `_sum`/`_count`),
//! which is what `coallocd --metrics-dump` and the chaos binaries print.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotonically increasing counter.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    value: Arc<AtomicU64>,
}

impl Counter {
    /// Add 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge: a signed value that can move both ways.
#[derive(Clone, Debug, Default)]
pub struct Gauge {
    value: Arc<AtomicI64>,
}

impl Gauge {
    /// Set to an absolute value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Add a (possibly negative) delta.
    #[inline]
    pub fn add(&self, d: i64) {
        self.value.fetch_add(d, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Sub-buckets per power-of-two octave (see [`bucket_index`]).
const SUB: u64 = 4;
const SUB_BITS: u32 = 2; // log2(SUB)
/// Number of histogram buckets (covers all of u64 at ~19% resolution).
pub const BUCKETS: usize = ((64 - SUB_BITS as usize - 1) * SUB as usize) + SUB as usize + 1;

/// Map a value to its log-linear bucket: values below `SUB` (= 4) get
/// exact buckets, and each octave `[2^k, 2^(k+1))` above that is split
/// into `SUB` equal sub-buckets, giving a constant ~1/SUB relative error
/// with pure integer math (no floats on the hot path).
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < SUB {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let shift = msb - SUB_BITS;
    let sub = (v >> shift) - SUB;
    let idx = ((msb - SUB_BITS) as u64 * SUB + SUB + sub) as usize;
    idx.min(BUCKETS - 1)
}

/// Inclusive upper bound of bucket `idx` (the Prometheus `le` label).
pub fn bucket_upper(idx: usize) -> u64 {
    if idx < SUB as usize {
        return idx as u64;
    }
    let rel = (idx - SUB as usize) as u64;
    let octave = rel / SUB; // 0 => values in [4,8)
    let sub = rel % SUB;
    let base = SUB << octave; // 2^(octave+2)
    let width = 1u64 << octave; // base / SUB
    // Upper bound is the next bucket's lower bound minus one.
    (base + (sub + 1) * width).saturating_sub(1)
}

/// A log-linear histogram of u64 observations (latencies in ns, depths,
/// counts). Concurrent [`Histogram::observe`] calls are lock-free.
#[derive(Clone, Debug)]
pub struct Histogram {
    buckets: Arc<[AtomicU64]>,
    sum: Arc<AtomicU64>,
    count: Arc<AtomicU64>,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            sum: Arc::new(AtomicU64::new(0)),
            count: Arc::new(AtomicU64::new(0)),
        }
    }
}

impl Histogram {
    /// Record one observation.
    #[inline]
    pub fn observe(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Mean observation, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        let n = self.count();
        (n > 0).then(|| self.sum() as f64 / n as f64)
    }

    /// Non-empty buckets as `(upper_bound, count)` pairs, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let c = b.load(Ordering::Relaxed);
                (c > 0).then_some((bucket_upper(i), c))
            })
            .collect()
    }

    /// Approximate quantile `q` in `[0,1]` (upper bound of the bucket where
    /// the cumulative count crosses `q`), or `None` if empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let n = self.count();
        if n == 0 {
            return None;
        }
        let target = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut acc = 0;
        for (i, b) in self.buckets.iter().enumerate() {
            acc += b.load(Ordering::Relaxed);
            if acc >= target {
                return Some(bucket_upper(i));
            }
        }
        Some(bucket_upper(BUCKETS - 1))
    }
}

#[derive(Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

fn registry() -> &'static Mutex<BTreeMap<&'static str, Metric>> {
    static REGISTRY: OnceLock<Mutex<BTreeMap<&'static str, Metric>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Fetch (registering on first use) the counter named `name`.
pub fn counter(name: &'static str) -> Counter {
    let mut reg = registry().lock().expect("metrics registry");
    match reg
        .entry(name)
        .or_insert_with(|| Metric::Counter(Counter::default()))
    {
        Metric::Counter(c) => c.clone(),
        _ => panic!("metric '{name}' already registered with a different type"),
    }
}

/// Fetch (registering on first use) the gauge named `name`.
pub fn gauge(name: &'static str) -> Gauge {
    let mut reg = registry().lock().expect("metrics registry");
    match reg
        .entry(name)
        .or_insert_with(|| Metric::Gauge(Gauge::default()))
    {
        Metric::Gauge(g) => g.clone(),
        _ => panic!("metric '{name}' already registered with a different type"),
    }
}

/// Fetch (registering on first use) the histogram named `name`.
pub fn histogram(name: &'static str) -> Histogram {
    let mut reg = registry().lock().expect("metrics registry");
    match reg
        .entry(name)
        .or_insert_with(|| Metric::Histogram(Histogram::default()))
    {
        Metric::Histogram(h) => h.clone(),
        _ => panic!("metric '{name}' already registered with a different type"),
    }
}

/// Remove every registered metric (test isolation helper).
pub fn reset() {
    registry().lock().expect("metrics registry").clear();
}

/// Render all registered metrics as Prometheus-style text exposition.
/// Histograms emit cumulative `_bucket{le="..."}` lines for their non-empty
/// buckets plus `{le="+Inf"}`, `_sum`, and `_count`.
pub fn exposition() -> String {
    let reg = registry().lock().expect("metrics registry");
    let mut out = String::new();
    for (name, metric) in reg.iter() {
        match metric {
            Metric::Counter(c) => {
                out.push_str(&format!("# TYPE {name} counter\n{name} {}\n", c.get()));
            }
            Metric::Gauge(g) => {
                out.push_str(&format!("# TYPE {name} gauge\n{name} {}\n", g.get()));
            }
            Metric::Histogram(h) => {
                out.push_str(&format!("# TYPE {name} histogram\n"));
                // Snapshot buckets first, then take the larger of the bucket
                // total and the count register: `observe` bumps the bucket
                // before the count, so a concurrent observer could otherwise
                // leave `+Inf` (from `count`) behind the cumulative buckets,
                // which strict exposition parsers reject.
                let buckets = h.nonzero_buckets();
                let mut cum = 0;
                for (upper, count) in buckets {
                    cum += count;
                    out.push_str(&format!("{name}_bucket{{le=\"{upper}\"}} {cum}\n"));
                }
                let total = h.count().max(cum);
                out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {total}\n"));
                out.push_str(&format!("{name}_sum {}\n", h.sum()));
                out.push_str(&format!("{name}_count {total}\n"));
            }
        }
    }
    out
}

/// Strictly validate Prometheus text-exposition output (format 0.0.4).
///
/// Std-only parser used by tests and `trace_check --expo` against real
/// server output. Checks, per metric family:
///
/// - every sample is preceded by a `# TYPE <name> <counter|gauge|histogram>`
///   line for its family, with no duplicate or interleaved families;
/// - metric and label names are well-formed (`[a-zA-Z_:][a-zA-Z0-9_:]*`);
/// - sample values parse as finite numbers (counters non-negative);
/// - histograms expose `_bucket{le="..."}` series with strictly increasing
///   `le` bounds and non-decreasing cumulative counts, a terminal
///   `{le="+Inf"}` bucket, and `_sum`/`_count` series where `_count`
///   equals the `+Inf` bucket and is `>=` the last finite bucket.
///
/// Returns `Ok(families)` (number of `# TYPE` families seen) or a
/// `line N: ...` error message.
pub fn validate_exposition(text: &str) -> Result<usize, String> {
    fn valid_name(s: &str) -> bool {
        let mut chars = s.chars();
        match chars.next() {
            Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
            _ => return false,
        }
        chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    }

    struct Family {
        name: String,
        kind: String,
        // histogram bookkeeping
        last_le: Option<f64>,
        last_cum: u64,
        inf_bucket: Option<u64>,
        sum_seen: bool,
        count_val: Option<u64>,
        samples: usize,
    }

    impl Family {
        fn finish(&self, line_no: usize) -> Result<(), String> {
            if self.samples == 0 {
                return Err(format!(
                    "line {line_no}: family '{}' has a TYPE line but no samples",
                    self.name
                ));
            }
            if self.kind == "histogram" {
                let inf = self.inf_bucket.ok_or_else(|| format!(
                    "line {line_no}: histogram '{}' missing le=\"+Inf\" bucket",
                    self.name
                ))?;
                if !self.sum_seen {
                    return Err(format!(
                        "line {line_no}: histogram '{}' missing _sum",
                        self.name
                    ));
                }
                let count = self.count_val.ok_or_else(|| format!(
                    "line {line_no}: histogram '{}' missing _count",
                    self.name
                ))?;
                if count != inf {
                    return Err(format!(
                        "line {line_no}: histogram '{}': _count {count} != +Inf bucket {inf}",
                        self.name
                    ));
                }
                if inf < self.last_cum {
                    return Err(format!(
                        "line {line_no}: histogram '{}': +Inf bucket {inf} < last finite bucket {}",
                        self.name, self.last_cum
                    ));
                }
            }
            Ok(())
        }
    }

    let mut family: Option<Family> = None;
    let mut done: Vec<String> = Vec::new();
    let mut families = 0usize;

    for (i, line) in text.lines().enumerate() {
        let no = i + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let (name, kind) = match (parts.next(), parts.next(), parts.next()) {
                (Some(n), Some(k), None) => (n, k),
                _ => return Err(format!("line {no}: malformed TYPE line")),
            };
            if !valid_name(name) {
                return Err(format!("line {no}: invalid metric name '{name}'"));
            }
            if !matches!(kind, "counter" | "gauge" | "histogram" | "summary" | "untyped") {
                return Err(format!("line {no}: unknown metric type '{kind}'"));
            }
            if let Some(f) = family.take() {
                f.finish(no)?;
                done.push(f.name);
            }
            if done.iter().any(|d| d == name) {
                return Err(format!("line {no}: duplicate/interleaved family '{name}'"));
            }
            families += 1;
            family = Some(Family {
                name: name.to_string(),
                kind: kind.to_string(),
                last_le: None,
                last_cum: 0,
                inf_bucket: None,
                sum_seen: false,
                count_val: None,
                samples: 0,
            });
            continue;
        }
        if line.starts_with('#') {
            continue; // comments / HELP lines
        }
        // Sample line: name[{labels}] value
        let (series, value_str) = match line.rsplit_once(' ') {
            Some((s, v)) if !s.is_empty() && !v.is_empty() => (s.trim_end(), v),
            _ => return Err(format!("line {no}: malformed sample line")),
        };
        let (series_name, labels) = match series.find('{') {
            Some(b) => {
                let Some(stripped) = series[b..].strip_prefix('{').and_then(|r| r.strip_suffix('}'))
                else {
                    return Err(format!("line {no}: unbalanced label braces"));
                };
                (&series[..b], Some(stripped))
            }
            None => (series, None),
        };
        if !valid_name(series_name) {
            return Err(format!("line {no}: invalid series name '{series_name}'"));
        }
        let mut le: Option<&str> = None;
        if let Some(labels) = labels {
            for pair in labels.split(',') {
                let Some((lname, lval)) = pair.split_once('=') else {
                    return Err(format!("line {no}: malformed label '{pair}'"));
                };
                if !valid_name(lname) || lname.contains(':') {
                    return Err(format!("line {no}: invalid label name '{lname}'"));
                }
                let Some(unq) = lval.strip_prefix('"').and_then(|v| v.strip_suffix('"')) else {
                    return Err(format!("line {no}: unquoted label value '{lval}'"));
                };
                if lname == "le" {
                    le = Some(unq);
                }
            }
        }
        let fam = family.as_mut().ok_or_else(|| format!(
            "line {no}: sample '{series_name}' before any TYPE line"
        ))?;
        let base = series_name
            .strip_suffix("_bucket")
            .or_else(|| series_name.strip_suffix("_sum"))
            .or_else(|| series_name.strip_suffix("_count"))
            .filter(|b| fam.kind == "histogram" && *b == fam.name)
            .unwrap_or(series_name);
        if base != fam.name {
            return Err(format!(
                "line {no}: sample '{series_name}' does not belong to family '{}'",
                fam.name
            ));
        }
        let value: f64 = value_str
            .parse()
            .map_err(|_| format!("line {no}: unparseable value '{value_str}'"))?;
        if !value.is_finite() {
            return Err(format!("line {no}: non-finite sample value '{value_str}'"));
        }
        if fam.kind == "counter" && value < 0.0 {
            return Err(format!("line {no}: counter '{series_name}' is negative"));
        }
        fam.samples += 1;
        if fam.kind == "histogram" {
            if series_name.ends_with("_bucket") && series_name.len() > fam.name.len() {
                let le = le.ok_or_else(|| format!("line {no}: _bucket sample without le label"))?;
                let cum = value as u64;
                if le == "+Inf" {
                    if fam.inf_bucket.is_some() {
                        return Err(format!("line {no}: duplicate +Inf bucket"));
                    }
                    fam.inf_bucket = Some(cum);
                } else {
                    if fam.inf_bucket.is_some() {
                        return Err(format!("line {no}: finite bucket after +Inf"));
                    }
                    let bound: f64 = le
                        .parse()
                        .map_err(|_| format!("line {no}: unparseable le bound '{le}'"))?;
                    if !bound.is_finite() {
                        return Err(format!(
                            "line {no}: non-finite le bound '{le}' (only \"+Inf\" is allowed)"
                        ));
                    }
                    if let Some(prev) = fam.last_le {
                        if bound <= prev {
                            return Err(format!(
                                "line {no}: le bounds not strictly increasing ({prev} then {bound})"
                            ));
                        }
                    }
                    if cum < fam.last_cum {
                        return Err(format!(
                            "line {no}: cumulative bucket count decreased ({} then {cum})",
                            fam.last_cum
                        ));
                    }
                    fam.last_le = Some(bound);
                    fam.last_cum = cum;
                }
            } else if series_name.ends_with("_sum") && series_name.len() > fam.name.len() {
                fam.sum_seen = true;
            } else if series_name.ends_with("_count") && series_name.len() > fam.name.len() {
                fam.count_val = Some(value as u64);
            } else {
                return Err(format!(
                    "line {no}: bare sample '{series_name}' in histogram family"
                ));
            }
        }
    }
    let last_line = text.lines().count();
    if let Some(f) = family.take() {
        f.finish(last_line)?;
    }
    Ok(families)
}

/// A counter handle resolvable from a `static` context:
///
/// ```
/// static REQS: obs::LazyCounter = obs::LazyCounter::new("myapp_requests_total");
/// REQS.inc();
/// ```
pub struct LazyCounter {
    name: &'static str,
    cell: OnceLock<Counter>,
}

impl LazyCounter {
    /// Declare a counter bound to `name` (registered on first use).
    pub const fn new(name: &'static str) -> LazyCounter {
        LazyCounter {
            name,
            cell: OnceLock::new(),
        }
    }

    /// The underlying registered counter.
    #[inline]
    pub fn get(&self) -> &Counter {
        self.cell.get_or_init(|| counter(self.name))
    }

    /// Add 1.
    #[inline]
    pub fn inc(&self) {
        self.get().inc();
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.get().add(n);
    }
}

/// A gauge handle resolvable from a `static` context (see [`LazyCounter`]).
pub struct LazyGauge {
    name: &'static str,
    cell: OnceLock<Gauge>,
}

impl LazyGauge {
    /// Declare a gauge bound to `name` (registered on first use).
    pub const fn new(name: &'static str) -> LazyGauge {
        LazyGauge {
            name,
            cell: OnceLock::new(),
        }
    }

    /// The underlying registered gauge.
    #[inline]
    pub fn get(&self) -> &Gauge {
        self.cell.get_or_init(|| gauge(self.name))
    }

    /// Set to an absolute value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.get().set(v);
    }

    /// Add a (possibly negative) delta.
    #[inline]
    pub fn add(&self, d: i64) {
        self.get().add(d);
    }
}

/// A histogram handle resolvable from a `static` context (see
/// [`LazyCounter`]).
pub struct LazyHistogram {
    name: &'static str,
    cell: OnceLock<Histogram>,
}

impl LazyHistogram {
    /// Declare a histogram bound to `name` (registered on first use).
    pub const fn new(name: &'static str) -> LazyHistogram {
        LazyHistogram {
            name,
            cell: OnceLock::new(),
        }
    }

    /// The underlying registered histogram.
    #[inline]
    pub fn get(&self) -> &Histogram {
        self.cell.get_or_init(|| histogram(self.name))
    }

    /// Record one observation.
    #[inline]
    pub fn observe(&self, v: u64) {
        self.get().observe(v);
    }
}
