//! Process-global metrics registry: counters, gauges, log-linear histograms.
//!
//! Metrics are **always live** (no enabled flag): every update is a single
//! relaxed atomic RMW, cheap enough for the scheduler hot path. Handles are
//! `Clone` + cheap (an `Arc` around the atomics), so call sites either fetch
//! once via [`counter`]/[`gauge`]/[`histogram`] or use the `static`-friendly
//! [`LazyCounter`]/[`LazyGauge`]/[`LazyHistogram`] wrappers that resolve the
//! registry entry on first touch.
//!
//! [`exposition`] renders every registered metric in Prometheus text format
//! (histograms as cumulative `_bucket{le=...}` series plus `_sum`/`_count`),
//! which is what `coallocd --metrics-dump` and the chaos binaries print.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotonically increasing counter.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    value: Arc<AtomicU64>,
}

impl Counter {
    /// Add 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge: a signed value that can move both ways.
#[derive(Clone, Debug, Default)]
pub struct Gauge {
    value: Arc<AtomicI64>,
}

impl Gauge {
    /// Set to an absolute value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Add a (possibly negative) delta.
    #[inline]
    pub fn add(&self, d: i64) {
        self.value.fetch_add(d, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Sub-buckets per power-of-two octave (see [`bucket_index`]).
const SUB: u64 = 4;
const SUB_BITS: u32 = 2; // log2(SUB)
/// Number of histogram buckets (covers all of u64 at ~19% resolution).
pub const BUCKETS: usize = ((64 - SUB_BITS as usize - 1) * SUB as usize) + SUB as usize + 1;

/// Map a value to its log-linear bucket: values below `SUB` (= 4) get
/// exact buckets, and each octave `[2^k, 2^(k+1))` above that is split
/// into `SUB` equal sub-buckets, giving a constant ~1/SUB relative error
/// with pure integer math (no floats on the hot path).
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < SUB {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let shift = msb - SUB_BITS;
    let sub = (v >> shift) - SUB;
    let idx = ((msb - SUB_BITS) as u64 * SUB + SUB + sub) as usize;
    idx.min(BUCKETS - 1)
}

/// Inclusive upper bound of bucket `idx` (the Prometheus `le` label).
pub fn bucket_upper(idx: usize) -> u64 {
    if idx < SUB as usize {
        return idx as u64;
    }
    let rel = (idx - SUB as usize) as u64;
    let octave = rel / SUB; // 0 => values in [4,8)
    let sub = rel % SUB;
    let base = SUB << octave; // 2^(octave+2)
    let width = 1u64 << octave; // base / SUB
    // Upper bound is the next bucket's lower bound minus one.
    (base + (sub + 1) * width).saturating_sub(1)
}

/// A log-linear histogram of u64 observations (latencies in ns, depths,
/// counts). Concurrent [`Histogram::observe`] calls are lock-free.
#[derive(Clone, Debug)]
pub struct Histogram {
    buckets: Arc<[AtomicU64]>,
    sum: Arc<AtomicU64>,
    count: Arc<AtomicU64>,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            sum: Arc::new(AtomicU64::new(0)),
            count: Arc::new(AtomicU64::new(0)),
        }
    }
}

impl Histogram {
    /// Record one observation.
    #[inline]
    pub fn observe(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Mean observation, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        let n = self.count();
        (n > 0).then(|| self.sum() as f64 / n as f64)
    }

    /// Non-empty buckets as `(upper_bound, count)` pairs, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let c = b.load(Ordering::Relaxed);
                (c > 0).then_some((bucket_upper(i), c))
            })
            .collect()
    }

    /// Approximate quantile `q` in `[0,1]` (upper bound of the bucket where
    /// the cumulative count crosses `q`), or `None` if empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let n = self.count();
        if n == 0 {
            return None;
        }
        let target = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut acc = 0;
        for (i, b) in self.buckets.iter().enumerate() {
            acc += b.load(Ordering::Relaxed);
            if acc >= target {
                return Some(bucket_upper(i));
            }
        }
        Some(bucket_upper(BUCKETS - 1))
    }
}

#[derive(Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

fn registry() -> &'static Mutex<BTreeMap<&'static str, Metric>> {
    static REGISTRY: OnceLock<Mutex<BTreeMap<&'static str, Metric>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Fetch (registering on first use) the counter named `name`.
pub fn counter(name: &'static str) -> Counter {
    let mut reg = registry().lock().expect("metrics registry");
    match reg
        .entry(name)
        .or_insert_with(|| Metric::Counter(Counter::default()))
    {
        Metric::Counter(c) => c.clone(),
        _ => panic!("metric '{name}' already registered with a different type"),
    }
}

/// Fetch (registering on first use) the gauge named `name`.
pub fn gauge(name: &'static str) -> Gauge {
    let mut reg = registry().lock().expect("metrics registry");
    match reg
        .entry(name)
        .or_insert_with(|| Metric::Gauge(Gauge::default()))
    {
        Metric::Gauge(g) => g.clone(),
        _ => panic!("metric '{name}' already registered with a different type"),
    }
}

/// Fetch (registering on first use) the histogram named `name`.
pub fn histogram(name: &'static str) -> Histogram {
    let mut reg = registry().lock().expect("metrics registry");
    match reg
        .entry(name)
        .or_insert_with(|| Metric::Histogram(Histogram::default()))
    {
        Metric::Histogram(h) => h.clone(),
        _ => panic!("metric '{name}' already registered with a different type"),
    }
}

/// Remove every registered metric (test isolation helper).
pub fn reset() {
    registry().lock().expect("metrics registry").clear();
}

/// Render all registered metrics as Prometheus-style text exposition.
/// Histograms emit cumulative `_bucket{le="..."}` lines for their non-empty
/// buckets plus `{le="+Inf"}`, `_sum`, and `_count`.
pub fn exposition() -> String {
    let reg = registry().lock().expect("metrics registry");
    let mut out = String::new();
    for (name, metric) in reg.iter() {
        match metric {
            Metric::Counter(c) => {
                out.push_str(&format!("# TYPE {name} counter\n{name} {}\n", c.get()));
            }
            Metric::Gauge(g) => {
                out.push_str(&format!("# TYPE {name} gauge\n{name} {}\n", g.get()));
            }
            Metric::Histogram(h) => {
                out.push_str(&format!("# TYPE {name} histogram\n"));
                let mut cum = 0;
                for (upper, count) in h.nonzero_buckets() {
                    cum += count;
                    out.push_str(&format!("{name}_bucket{{le=\"{upper}\"}} {cum}\n"));
                }
                out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", h.count()));
                out.push_str(&format!("{name}_sum {}\n", h.sum()));
                out.push_str(&format!("{name}_count {}\n", h.count()));
            }
        }
    }
    out
}

/// A counter handle resolvable from a `static` context:
///
/// ```
/// static REQS: obs::LazyCounter = obs::LazyCounter::new("myapp_requests_total");
/// REQS.inc();
/// ```
pub struct LazyCounter {
    name: &'static str,
    cell: OnceLock<Counter>,
}

impl LazyCounter {
    /// Declare a counter bound to `name` (registered on first use).
    pub const fn new(name: &'static str) -> LazyCounter {
        LazyCounter {
            name,
            cell: OnceLock::new(),
        }
    }

    /// The underlying registered counter.
    #[inline]
    pub fn get(&self) -> &Counter {
        self.cell.get_or_init(|| counter(self.name))
    }

    /// Add 1.
    #[inline]
    pub fn inc(&self) {
        self.get().inc();
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.get().add(n);
    }
}

/// A gauge handle resolvable from a `static` context (see [`LazyCounter`]).
pub struct LazyGauge {
    name: &'static str,
    cell: OnceLock<Gauge>,
}

impl LazyGauge {
    /// Declare a gauge bound to `name` (registered on first use).
    pub const fn new(name: &'static str) -> LazyGauge {
        LazyGauge {
            name,
            cell: OnceLock::new(),
        }
    }

    /// The underlying registered gauge.
    #[inline]
    pub fn get(&self) -> &Gauge {
        self.cell.get_or_init(|| gauge(self.name))
    }

    /// Set to an absolute value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.get().set(v);
    }

    /// Add a (possibly negative) delta.
    #[inline]
    pub fn add(&self, d: i64) {
        self.get().add(d);
    }
}

/// A histogram handle resolvable from a `static` context (see
/// [`LazyCounter`]).
pub struct LazyHistogram {
    name: &'static str,
    cell: OnceLock<Histogram>,
}

impl LazyHistogram {
    /// Declare a histogram bound to `name` (registered on first use).
    pub const fn new(name: &'static str) -> LazyHistogram {
        LazyHistogram {
            name,
            cell: OnceLock::new(),
        }
    }

    /// The underlying registered histogram.
    #[inline]
    pub fn get(&self) -> &Histogram {
        self.cell.get_or_init(|| histogram(self.name))
    }

    /// Record one observation.
    #[inline]
    pub fn observe(&self, v: u64) {
        self.get().observe(v);
    }
}
