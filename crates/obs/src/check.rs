//! Validation of JSONL trace streams (the library behind the `trace_check`
//! binary and the CI observability job).
//!
//! [`check_trace`] accepts the raw text of a `--trace-out` / `jsonl:` sink
//! file and verifies structural integrity without ever panicking on hostile
//! input: every non-empty line must parse as a JSON object carrying the
//! mandatory trace keys, span start/end events must balance per thread
//! (a `span_end` must close the innermost open span of its thread), and —
//! optionally — at least one transaction must have a complete
//! hold→commit/abort timeline. Truncated files (a torn final line from a
//! crashed writer) are reported as a clean error naming the line.

use std::collections::BTreeMap;

/// Summary returned by [`check_trace`] on success.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceReport {
    /// Non-empty JSONL event lines seen.
    pub events: usize,
    /// Distinct `txn` field values seen.
    pub txns: usize,
    /// Transactions with both a hold event and a terminal
    /// (commit/abort/expired) event.
    pub complete_txns: usize,
    /// Spans still open at end-of-file (legal: the writer may have been
    /// stopped mid-span; reported for visibility).
    pub open_spans: usize,
}

/// Validate the JSONL trace text. Returns a [`TraceReport`] or a
/// `line N: ...` error string. Never panics, whatever the input.
///
/// Structural checks, per line:
/// - parses as a JSON object (a torn/truncated tail line is an error);
/// - carries `ts_ns`, `thread`, `kind`, and `name` keys;
/// - `kind` is one of `span_start`, `span_end`, `point`;
/// - `span_start`/`span_end` carry a numeric `span` id;
/// - a `span_end` must match the innermost open span started by the *same
///   thread* (depth-mismatched or orphaned ends are errors).
///
/// With `require_txn`, additionally requires at least one complete per-txn
/// hold→terminal timeline (the multisite chaos contract).
pub fn check_trace(text: &str, require_txn: bool) -> Result<TraceReport, String> {
    let mut events = 0usize;
    // txn -> (has hold event, has terminal commit/abort/expired event)
    let mut txns: BTreeMap<String, (bool, bool)> = BTreeMap::new();
    // thread id -> stack of open span ids
    let mut stacks: BTreeMap<String, Vec<u64>> = BTreeMap::new();

    for (i, line) in text.lines().enumerate() {
        let no = i + 1;
        if line.trim().is_empty() {
            continue;
        }
        events += 1;
        let value =
            crate::json::parse(line).map_err(|e| format!("line {no}: invalid JSON: {e}"))?;
        for key in ["ts_ns", "thread", "kind", "name"] {
            if value.get(key).is_none() {
                return Err(format!("line {no}: missing key '{key}'"));
            }
        }
        let kind = value.get("kind").and_then(|v| v.as_str()).unwrap_or("");
        if !matches!(kind, "span_start" | "span_end" | "point") {
            return Err(format!("line {no}: unknown event kind '{kind}'"));
        }
        let thread = match value.get("thread") {
            Some(crate::json::Json::Num(n)) => format!("{n}"),
            Some(v) => v.as_str().unwrap_or("?").to_string(),
            None => unreachable!("checked above"),
        };
        if kind != "point" {
            let span = value
                .get("span")
                .and_then(|v| v.as_num())
                .ok_or_else(|| format!("line {no}: {kind} without numeric 'span' id"))?
                as u64;
            let stack = stacks.entry(thread).or_default();
            match kind {
                "span_start" => stack.push(span),
                _ => match stack.pop() {
                    Some(top) if top == span => {}
                    Some(top) => {
                        return Err(format!(
                            "line {no}: span_end for span {span} but innermost open span is {top} (depth mismatch)"
                        ));
                    }
                    None => {
                        return Err(format!(
                            "line {no}: span_end for span {span} with no open span on this thread"
                        ));
                    }
                },
            }
        }
        let name = value.get("name").and_then(|v| v.as_str()).unwrap_or("");
        if let Some(txn) = value.get("txn").map(|v| match v.as_num() {
            Some(n) => format!("{n}"),
            None => v.as_str().unwrap_or("?").to_string(),
        }) {
            let entry = txns.entry(txn).or_insert((false, false));
            if name.contains("hold") {
                entry.0 = true;
            }
            if name.contains("commit") || name.contains("abort") || name.contains("expired") {
                entry.1 = true;
            }
        }
    }

    if events == 0 {
        return Err("trace contains no events".to_string());
    }
    let complete = txns.values().filter(|(h, t)| *h && *t).count();
    if require_txn && complete == 0 {
        return Err(format!(
            "no complete per-txn timelines ({} txns seen)",
            txns.len()
        ));
    }
    Ok(TraceReport {
        events,
        txns: txns.len(),
        complete_txns: complete,
        open_spans: stacks.values().map(Vec::len).sum(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ts: u64, thread: u64, kind: &str, name: &str, span: Option<u64>) -> String {
        let span = span.map(|s| format!(",\"span\":{s}")).unwrap_or_default();
        format!("{{\"ts_ns\":{ts},\"thread\":{thread},\"kind\":\"{kind}\",\"name\":\"{name}\"{span}}}")
    }

    #[test]
    fn accepts_balanced_spans_and_reports_open_tail() {
        let text = [
            ev(1, 7, "span_start", "a", Some(1)),
            ev(2, 7, "point", "p", None),
            ev(3, 7, "span_start", "b", Some(2)),
            ev(4, 7, "span_end", "b", Some(2)),
            ev(5, 8, "span_start", "other", Some(3)),
        ]
        .join("\n");
        let r = check_trace(&text, false).unwrap();
        assert_eq!(r.events, 5);
        assert_eq!(r.open_spans, 2, "span 1 on thread 7, span 3 on thread 8");
    }

    #[test]
    fn rejects_depth_mismatch_cleanly() {
        let text = [
            ev(1, 7, "span_start", "a", Some(1)),
            ev(2, 7, "span_start", "b", Some(2)),
            ev(3, 7, "span_end", "a", Some(1)), // closes outer before inner
        ]
        .join("\n");
        let err = check_trace(&text, false).unwrap_err();
        assert!(err.contains("line 3") && err.contains("depth mismatch"), "{err}");
    }

    #[test]
    fn rejects_orphan_end_and_missing_span_id() {
        let err = check_trace(&ev(1, 7, "span_end", "a", Some(9)), false).unwrap_err();
        assert!(err.contains("no open span"), "{err}");
        let err = check_trace(&ev(1, 7, "span_start", "a", None), false).unwrap_err();
        assert!(err.contains("'span'"), "{err}");
    }

    #[test]
    fn torn_last_line_is_a_clean_error() {
        let mut text = ev(1, 7, "point", "p", None);
        text.push('\n');
        text.push_str("{\"ts_ns\":2,\"thread\":7,\"kind\":\"poi"); // torn mid-write
        let err = check_trace(&text, false).unwrap_err();
        assert!(err.contains("line 2") && err.contains("invalid JSON"), "{err}");
    }

    #[test]
    fn txn_timeline_requirement() {
        let hold = "{\"ts_ns\":1,\"thread\":1,\"kind\":\"point\",\"name\":\"site.hold_granted\",\"txn\":4}";
        let commit = "{\"ts_ns\":2,\"thread\":1,\"kind\":\"point\",\"name\":\"site.commit\",\"txn\":4}";
        let both = format!("{hold}\n{commit}");
        let r = check_trace(&both, true).unwrap();
        assert_eq!((r.txns, r.complete_txns), (1, 1));
        let err = check_trace(hold, true).unwrap_err();
        assert!(err.contains("no complete per-txn timelines"), "{err}");
    }
}
