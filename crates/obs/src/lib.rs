//! # obs — dependency-free observability for the co-allocation system
//!
//! The paper's evaluation (Section 5) hinges on knowing *where* scheduling
//! time goes — Phase-1 candidate marking vs. Phase-2 secondary-tree descent
//! vs. retries at `s_r + Δt` — and the multi-site chaos harness needs to
//! reconstruct *which* Hold/Commit/Abort interleaving broke an invariant.
//! This crate provides the shared substrate for both, with **zero external
//! dependencies** (pure std, like the vendored stubs — the container has no
//! crates.io access):
//!
//! * [`trace`] — span/event tracing: thread-local span stacks, monotonic
//!   timestamps, an in-memory ring buffer of structured events with
//!   key=value fields, and pluggable sinks (null, stderr pretty-printer,
//!   JSONL file writer for post-mortem analysis).
//! * [`metrics`] — a process-global registry of named counters, gauges and
//!   log-linear-bucket histograms with relaxed-atomic updates (safe under
//!   the multisite crate's concurrent coordinators and site threads),
//!   snapshot-able to a Prometheus-style text exposition.
//! * [`json`] — the minimal JSON escape/parse helpers the JSONL sink and
//!   its round-trip validation (`trace_check` bin, tests, CI) share.
//!
//! ## Overhead budget
//!
//! Tracing is **off by default**. The disabled path of [`obs_span!`] /
//! [`obs_event!`] is a single relaxed atomic load and a branch — field
//! expressions are not even evaluated. Metrics are always live (one relaxed
//! atomic add each), cheap enough that the scheduler instrumentation stays
//! within a <5% throughput budget with tracing enabled on the null sink
//! (asserted by `crates/bench/tests/obs_overhead.rs`).
//!
//! ## Quick start
//!
//! ```
//! use obs::{obs_event, obs_span};
//!
//! obs::trace::set_enabled(true);
//! obs::trace::set_ring_capacity(1024);
//! {
//!     let mut span = obs_span!("demo.work", "items" => 3u64);
//!     obs_event!("demo.step", "i" => 1u64);
//!     span.record("outcome", "done");
//! } // span end (with duration) is recorded on drop
//! let events = obs::trace::ring_events();
//! assert_eq!(events.len(), 3); // start, step, end
//! obs::trace::set_enabled(false);
//!
//! let reqs = obs::metrics::counter("demo_requests_total");
//! reqs.inc();
//! assert!(obs::metrics::exposition().contains("demo_requests_total 1"));
//! ```
//!
//! ## Environment control
//!
//! Binaries call [`init_from_env`], which reads `COALLOC_OBS`:
//!
//! | value | effect |
//! |---|---|
//! | unset, `""`, `off` | tracing disabled (metrics still live) |
//! | `on`, `ring` | tracing enabled, ring buffer only (post-mortem dumps) |
//! | `stderr` | tracing enabled, pretty-printed to stderr |
//! | `jsonl:PATH` | tracing enabled, JSONL events appended to `PATH` |
//!
//! Appending `,detail` to any enabling mode (e.g. `jsonl:/tmp/t.jsonl,detail`)
//! also turns on **detail-level** tracing: the per-attempt `sched.phase1` /
//! `sched.phase2` spans inside the retry loop, which are too voluminous for
//! the default level's overhead budget (hundreds of events per request under
//! retry churn) but exactly what a post-mortem wants.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod check;
pub mod json;
pub mod metrics;
pub mod trace;

pub use metrics::{Counter, Gauge, Histogram, LazyCounter, LazyGauge, LazyHistogram};
pub use trace::{Event, EventKind, Sink, SpanGuard, Value};

/// Configure tracing from the `COALLOC_OBS` environment variable (see the
/// crate docs for the accepted values). Unknown values are treated as `off`
/// so a typo cannot take a production binary down. Returns a short
/// human-readable description of what was configured.
pub fn init_from_env() -> String {
    let spec = std::env::var("COALLOC_OBS").unwrap_or_default();
    // "MODE" or "MODE,detail": the detail flag additionally enables the
    // per-attempt phase spans (see `trace::detail_enabled`).
    let (mode, flags) = match spec.split_once(',') {
        Some((m, f)) => (m, f),
        None => (spec.as_str(), ""),
    };
    let detail = flags.split(',').any(|f| f.trim() == "detail");
    let msg = match mode {
        "" | "off" => "obs: tracing off".to_string(),
        "on" | "ring" => {
            trace::set_ring_capacity(trace::DEFAULT_RING_CAPACITY);
            trace::set_enabled(true);
            "obs: tracing to ring buffer".to_string()
        }
        "stderr" => {
            trace::set_sink(Some(std::sync::Arc::new(trace::StderrSink)));
            trace::set_enabled(true);
            "obs: tracing to stderr".to_string()
        }
        s if s.starts_with("jsonl:") => {
            let path = &s["jsonl:".len()..];
            match trace::JsonlSink::create(path) {
                Ok(sink) => {
                    trace::set_sink(Some(std::sync::Arc::new(sink)));
                    trace::set_enabled(true);
                    format!("obs: tracing to {path} (jsonl)")
                }
                Err(e) => format!("obs: cannot open {path}: {e}; tracing off"),
            }
        }
        other => format!("obs: unknown COALLOC_OBS value '{other}'; tracing off"),
    };
    if detail && trace::enabled() {
        trace::set_detail(true);
        format!("{msg} (detail level)")
    } else {
        msg
    }
}
