//! Minimal JSON helpers shared by the JSONL sink, its round-trip tests, and
//! the `trace_check` CI validator. This is deliberately *not* a general JSON
//! library — just enough to write trace lines and to verify that what was
//! written parses back (objects, arrays, strings with the escapes we emit,
//! numbers, booleans, null).

use std::collections::BTreeMap;

/// Escape `s` for inclusion inside a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as f64).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (key order normalized).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Object field access; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Parse a complete JSON document. Returns `Err` with a position-annotated
/// message on malformed input or trailing garbage. Duplicate object keys
/// keep the first occurrence (trace lines serialize the envelope fields
/// before span attributes, which may legally reuse an envelope name).
pub fn parse(input: &str) -> Result<Json, String> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number '{text}' at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Copy one UTF-8 scalar (possibly multi-byte).
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        // First occurrence wins on duplicate keys: trace lines put the
        // envelope fields (ts_ns/thread/kind/name) first, and a span
        // attribute reusing one of those names must not shadow them.
        let value = parse_value(b, pos)?;
        map.entry(key).or_insert(value);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}
