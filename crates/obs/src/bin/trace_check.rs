//! Validate a JSONL trace file (CI gate for `--trace-out` output).
//!
//! Usage: `trace_check <trace.jsonl> [--require-txn-timelines]`
//!
//! Exits 0 iff the file is non-empty and every line parses as a JSON object
//! with the mandatory trace keys. With `--require-txn-timelines`, also
//! requires at least one transaction that has both a hold event and a
//! terminal (commit/abort/expired) event — i.e. the trace really contains
//! per-txn protocol timelines, not just scheduler spans.

use std::collections::BTreeMap;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(path) = args.first() else {
        eprintln!("usage: trace_check <trace.jsonl> [--require-txn-timelines]");
        return ExitCode::from(2);
    };
    let require_txn = args.iter().any(|a| a == "--require-txn-timelines");

    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("trace_check: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut lines = 0usize;
    // txn -> (has hold event, has terminal commit/abort/expired event)
    let mut txns: BTreeMap<String, (bool, bool)> = BTreeMap::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        lines += 1;
        let value = match obs::json::parse(line) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("trace_check: line {}: invalid JSON: {e}", i + 1);
                return ExitCode::FAILURE;
            }
        };
        for key in ["ts_ns", "thread", "kind", "name"] {
            if value.get(key).is_none() {
                eprintln!("trace_check: line {}: missing key '{key}'", i + 1);
                return ExitCode::FAILURE;
            }
        }
        let name = value.get("name").and_then(|v| v.as_str()).unwrap_or("");
        if let Some(txn) = value.get("txn").map(|v| match v.as_num() {
            Some(n) => format!("{n}"),
            None => v.as_str().unwrap_or("?").to_string(),
        }) {
            let entry = txns.entry(txn).or_insert((false, false));
            if name.contains("hold") {
                entry.0 = true;
            }
            if name.contains("commit") || name.contains("abort") || name.contains("expired") {
                entry.1 = true;
            }
        }
    }

    if lines == 0 {
        eprintln!("trace_check: {path} contains no events");
        return ExitCode::FAILURE;
    }
    let complete = txns.values().filter(|(h, t)| *h && *t).count();
    if require_txn && complete == 0 {
        eprintln!(
            "trace_check: {path} has no complete per-txn timelines ({} txns seen)",
            txns.len()
        );
        return ExitCode::FAILURE;
    }
    println!(
        "trace_check: {path} ok — {lines} events, {} txns ({complete} with full hold→commit/abort timelines)",
        txns.len()
    );
    ExitCode::SUCCESS
}
