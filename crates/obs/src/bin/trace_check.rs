//! Validate observability artifacts (CI gate).
//!
//! Usage:
//!   `trace_check <trace.jsonl> [--require-txn-timelines]`
//!   `trace_check --expo <metrics.txt>`
//!
//! Default mode validates a JSONL trace file (see [`obs::check::check_trace`]):
//! exits 0 iff the file is non-empty, every line parses as a JSON object with
//! the mandatory trace keys, and span start/end events balance per thread.
//! With `--require-txn-timelines`, also requires at least one transaction
//! with both a hold event and a terminal (commit/abort/expired) event.
//!
//! `--expo` mode instead runs the strict Prometheus text-exposition validator
//! ([`obs::metrics::validate_exposition`]) over a scraped `/metrics` body.
//!
//! Malformed input — torn last lines, non-UTF-8 bytes, depth-mismatched
//! spans — always produces a clean one-line error and a nonzero exit, never
//! a panic.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let expo = args.iter().any(|a| a == "--expo");
    let require_txn = args.iter().any(|a| a == "--require-txn-timelines");
    let Some(path) = args.iter().find(|a| !a.starts_with("--")) else {
        eprintln!("usage: trace_check <trace.jsonl> [--require-txn-timelines] | trace_check --expo <metrics.txt>");
        return ExitCode::from(2);
    };

    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("trace_check: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let text = match String::from_utf8(bytes) {
        Ok(t) => t,
        Err(e) => {
            eprintln!(
                "trace_check: {path}: not valid UTF-8 (invalid byte at offset {})",
                e.utf8_error().valid_up_to()
            );
            return ExitCode::FAILURE;
        }
    };

    if expo {
        return match obs::metrics::validate_exposition(&text) {
            Ok(families) if families > 0 => {
                println!("trace_check: {path} ok — {families} metric families, exposition format valid");
                ExitCode::SUCCESS
            }
            Ok(_) => {
                eprintln!("trace_check: {path} contains no metric families");
                ExitCode::FAILURE
            }
            Err(e) => {
                eprintln!("trace_check: {path}: {e}");
                ExitCode::FAILURE
            }
        };
    }

    match obs::check::check_trace(&text, require_txn) {
        Ok(r) => {
            println!(
                "trace_check: {path} ok — {} events, {} txns ({} with full hold→commit/abort timelines), {} spans open at EOF",
                r.events, r.txns, r.complete_txns, r.open_spans
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("trace_check: {path}: {e}");
            ExitCode::FAILURE
        }
    }
}
