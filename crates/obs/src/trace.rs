//! Span/event tracing core.
//!
//! A **span** is a named interval of work; spans nest via a thread-local
//! stack, so every event knows its enclosing span and every span knows its
//! parent. A **point event** is an instant observation (a message dropped, a
//! hold granted) with key=value fields. Both are recorded as [`Event`]s:
//! into the global in-memory **ring buffer** (for post-mortem dumps, e.g.
//! reconstructing a per-transaction Hold/Commit/Abort timeline after a chaos
//! invariant fails) and into the installed [`Sink`], if any.
//!
//! Timestamps are nanoseconds on a process-wide monotonic clock (anchored at
//! first use), so events from different threads order consistently.
//!
//! The enabled flag is a relaxed atomic: the *disabled* cost of the
//! [`obs_span!`](crate::obs_span)/[`obs_event!`](crate::obs_event) macros is one load and a
//! branch, and field expressions are not evaluated.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::Instant;

/// Default ring-buffer capacity installed by `COALLOC_OBS=on` and the
/// `--trace-out` binaries (events; the buffer drops the oldest beyond this).
pub const DEFAULT_RING_CAPACITY: usize = 65_536;

static ENABLED: AtomicBool = AtomicBool::new(false);
static DETAIL: AtomicBool = AtomicBool::new(false);
static NEXT_SPAN: AtomicU64 = AtomicU64::new(1);
static NEXT_THREAD: AtomicU64 = AtomicU64::new(1);
static SINK: RwLock<Option<Arc<dyn Sink>>> = RwLock::new(None);
// Lock-free mirror of `RING.cap` so the dispatch hot path can skip the ring
// mutex entirely when no ring is configured (the null-sink benchmark case).
static RING_CAP: AtomicUsize = AtomicUsize::new(0);
static RING: Mutex<Ring> = Mutex::new(Ring {
    cap: 0,
    buf: VecDeque::new(),
});

struct Ring {
    cap: usize,
    buf: VecDeque<Event>,
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process-wide trace epoch (monotonic).
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

thread_local! {
    static THREAD_ID: u64 = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// Small dense id of the calling thread (1-based, assigned on first use).
pub fn thread_id() -> u64 {
    THREAD_ID.with(|t| *t)
}

/// Whether tracing is currently enabled. Check this before building fields
/// (the [`obs_span!`](crate::obs_span)/[`obs_event!`](crate::obs_event) macros do).
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Globally enable or disable tracing.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether *detail-level* tracing is enabled: per-attempt phase spans inside
/// the scheduler's `Delta_t`/`R_max` retry loop and similarly fine-grained
/// instrumentation. These can emit hundreds of events per request under
/// retry churn, so they sit behind a second gate (off by default even when
/// tracing is on) to keep the default-level overhead within the <5% budget.
#[inline]
pub fn detail_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed) && DETAIL.load(Ordering::Relaxed)
}

/// Enable or disable detail-level tracing (effective only while tracing
/// itself is enabled).
pub fn set_detail(on: bool) {
    DETAIL.store(on, Ordering::Relaxed);
}

/// Install (or remove) the event sink. Events always also go to the ring
/// buffer when one is configured.
pub fn set_sink(sink: Option<Arc<dyn Sink>>) {
    *SINK.write().expect("sink lock") = sink;
}

/// Flush the installed sink, if any (JSONL sinks buffer internally).
pub fn flush_sink() {
    if let Some(s) = SINK.read().expect("sink lock").as_ref() {
        s.flush();
    }
}

/// Resize the in-memory ring buffer (0 disables it; the default is 0 so the
/// null-sink hot path does not take the ring lock).
pub fn set_ring_capacity(cap: usize) {
    let mut ring = RING.lock().expect("ring lock");
    ring.cap = cap;
    while ring.buf.len() > cap {
        ring.buf.pop_front();
    }
    RING_CAP.store(cap, Ordering::Relaxed);
}

/// Snapshot the ring buffer, oldest first.
pub fn ring_events() -> Vec<Event> {
    RING.lock().expect("ring lock").buf.iter().cloned().collect()
}

/// Drop everything buffered in the ring.
pub fn clear_ring() {
    RING.lock().expect("ring lock").buf.clear();
}

/// A structured field value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// Text.
    Str(String),
}

impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::U64(v)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Value {
        Value::U64(v as u64)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::U64(v as u64)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::I64(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Value {
        Value::I64(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::F64(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::U64(v) => write!(f, "{v}"),
            Value::I64(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
            Value::Str(v) => write!(f, "{v}"),
        }
    }
}

/// What kind of record an [`Event`] is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A span opened.
    SpanStart,
    /// A span closed (`dur_ns` field carries the duration).
    SpanEnd,
    /// An instant observation.
    Point,
}

impl EventKind {
    /// Stable lowercase name used in JSONL output.
    pub fn as_str(self) -> &'static str {
        match self {
            EventKind::SpanStart => "span_start",
            EventKind::SpanEnd => "span_end",
            EventKind::Point => "point",
        }
    }
}

/// One structured trace record.
#[derive(Clone, Debug)]
pub struct Event {
    /// Nanoseconds since the trace epoch.
    pub ts_ns: u64,
    /// Dense id of the emitting thread.
    pub thread: u64,
    /// The span this record belongs to (the span itself for start/end, the
    /// enclosing span for points; 0 = none).
    pub span: u64,
    /// The enclosing span's id (0 = top level).
    pub parent: u64,
    /// Record kind.
    pub kind: EventKind,
    /// Span or event name (static, dot-separated taxonomy).
    pub name: &'static str,
    /// Structured key=value payload.
    pub fields: Vec<(&'static str, Value)>,
}

impl Event {
    /// Look up a field by key.
    pub fn field(&self, key: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }

    /// Serialize as one JSON object (one JSONL line, without the newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(96);
        out.push_str(&format!(
            "{{\"ts_ns\":{},\"thread\":{},\"kind\":\"{}\",\"name\":\"{}\",\"span\":{},\"parent\":{}",
            self.ts_ns,
            self.thread,
            self.kind.as_str(),
            crate::json::escape(self.name),
            self.span,
            self.parent
        ));
        for (k, v) in &self.fields {
            out.push_str(&format!(",\"{}\":", crate::json::escape(k)));
            match v {
                Value::U64(x) => out.push_str(&x.to_string()),
                Value::I64(x) => out.push_str(&x.to_string()),
                Value::F64(x) => {
                    if x.is_finite() {
                        out.push_str(&x.to_string())
                    } else {
                        out.push_str("null")
                    }
                }
                Value::Bool(x) => out.push_str(if *x { "true" } else { "false" }),
                Value::Str(s) => out.push_str(&format!("\"{}\"", crate::json::escape(s))),
            }
        }
        out.push('}');
        out
    }

    /// One-line human rendering (what [`StderrSink`] prints).
    pub fn pretty(&self) -> String {
        let mut out = format!(
            "[{:>12.3}ms] t{:02} {:<10} {}",
            self.ts_ns as f64 / 1e6,
            self.thread,
            self.kind.as_str(),
            self.name
        );
        for (k, v) in &self.fields {
            out.push_str(&format!(" {k}={v}"));
        }
        out
    }
}

/// Where recorded events go (besides the ring buffer).
pub trait Sink: Send + Sync {
    /// Record one event.
    fn record(&self, event: &Event);
    /// Flush any buffering (default: no-op).
    fn flush(&self) {}
}

/// Discards every event — for measuring instrumentation overhead and as a
/// stand-in where a sink is required.
pub struct NullSink;

impl Sink for NullSink {
    fn record(&self, _event: &Event) {}
}

/// Pretty-prints every event to stderr (debugging aid; slow).
pub struct StderrSink;

impl Sink for StderrSink {
    fn record(&self, event: &Event) {
        eprintln!("{}", event.pretty());
    }
}

/// Appends one JSON object per event to a file — the post-mortem trace
/// format (`--trace-out`). Lines are buffered; call
/// [`flush_sink`] (or drop the sink) before reading the file.
pub struct JsonlSink {
    writer: Mutex<std::io::BufWriter<std::fs::File>>,
}

impl JsonlSink {
    /// Create (truncate) the trace file at `path`.
    pub fn create(path: impl AsRef<std::path::Path>) -> std::io::Result<JsonlSink> {
        let file = std::fs::File::create(path)?;
        Ok(JsonlSink {
            writer: Mutex::new(std::io::BufWriter::new(file)),
        })
    }
}

impl Sink for JsonlSink {
    fn record(&self, event: &Event) {
        let mut w = self.writer.lock().expect("jsonl writer");
        let _ = writeln!(w, "{}", event.to_json());
    }

    fn flush(&self) {
        let _ = self.writer.lock().expect("jsonl writer").flush();
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        self.flush();
    }
}

/// Collects events into a shared vector — test helper sink.
#[derive(Clone, Default)]
pub struct CaptureSink {
    events: Arc<Mutex<Vec<Event>>>,
}

impl CaptureSink {
    /// An empty capture.
    pub fn new() -> CaptureSink {
        CaptureSink::default()
    }

    /// Snapshot everything captured so far.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().expect("capture lock").clone()
    }
}

impl Sink for CaptureSink {
    fn record(&self, event: &Event) {
        self.events.lock().expect("capture lock").push(event.clone());
    }
}

fn dispatch(event: Event) {
    if RING_CAP.load(Ordering::Relaxed) > 0 {
        let mut ring = RING.lock().expect("ring lock");
        if ring.cap > 0 {
            if ring.buf.len() == ring.cap {
                ring.buf.pop_front();
            }
            ring.buf.push_back(event.clone());
        }
    }
    if let Some(sink) = SINK.read().expect("sink lock").as_ref() {
        sink.record(&event);
    }
}

/// Emit a point event (callers normally use
/// [`obs_event!`](crate::obs_event), which checks [`enabled`] first).
pub fn point(name: &'static str, fields: Vec<(&'static str, Value)>) {
    if !enabled() {
        return;
    }
    let (span, parent) = SPAN_STACK.with(|s| {
        let s = s.borrow();
        let n = s.len();
        (
            if n > 0 { s[n - 1] } else { 0 },
            if n > 1 { s[n - 2] } else { 0 },
        )
    });
    dispatch(Event {
        ts_ns: now_ns(),
        thread: thread_id(),
        span,
        parent,
        kind: EventKind::Point,
        name,
        fields,
    });
}

/// Open a span with no initial fields. Equivalent to `obs_span!(name)`.
pub fn span(name: &'static str) -> SpanGuard {
    span_fields(name, Vec::new())
}

/// An inert guard that records nothing — what the span macros return on
/// their disabled path.
pub fn inert_span(name: &'static str) -> SpanGuard {
    SpanGuard {
        id: 0,
        parent: 0,
        start_ns: 0,
        name,
        closing: Vec::new(),
    }
}

/// Open a span with initial fields (recorded on the start event). Returns an
/// inert no-op guard when tracing is disabled.
pub fn span_fields(name: &'static str, fields: Vec<(&'static str, Value)>) -> SpanGuard {
    if !enabled() {
        return SpanGuard {
            id: 0,
            parent: 0,
            start_ns: 0,
            name,
            closing: Vec::new(),
        };
    }
    let id = NEXT_SPAN.fetch_add(1, Ordering::Relaxed);
    let parent = SPAN_STACK.with(|s| {
        let mut s = s.borrow_mut();
        let parent = s.last().copied().unwrap_or(0);
        s.push(id);
        parent
    });
    let start_ns = now_ns();
    dispatch(Event {
        ts_ns: start_ns,
        thread: thread_id(),
        span: id,
        parent,
        kind: EventKind::SpanStart,
        name,
        fields,
    });
    SpanGuard {
        id,
        parent,
        start_ns,
        name,
        closing: Vec::new(),
    }
}

/// RAII guard for an open span: dropping it emits the `span_end` event with
/// a `dur_ns` field plus everything attached via [`SpanGuard::record`].
#[must_use = "dropping the guard immediately closes the span"]
pub struct SpanGuard {
    id: u64,
    parent: u64,
    start_ns: u64,
    name: &'static str,
    closing: Vec<(&'static str, Value)>,
}

impl SpanGuard {
    /// Whether this guard refers to a live span (tracing was enabled when it
    /// was opened).
    pub fn active(&self) -> bool {
        self.id != 0
    }

    /// The span id (0 when inert).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Attach a field to be emitted on the span's end event. No-op on an
    /// inert guard (note the value is still evaluated; keep them cheap or
    /// check [`SpanGuard::active`] first).
    pub fn record(&mut self, key: &'static str, value: impl Into<Value>) {
        if self.id != 0 {
            self.closing.push((key, value.into()));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.id == 0 {
            return;
        }
        SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            debug_assert_eq!(s.last().copied(), Some(self.id), "span drop order");
            s.pop();
        });
        let end_ns = now_ns();
        let mut fields = std::mem::take(&mut self.closing);
        fields.push(("dur_ns", Value::U64(end_ns - self.start_ns)));
        dispatch(Event {
            ts_ns: end_ns,
            thread: thread_id(),
            span: self.id,
            parent: self.parent,
            kind: EventKind::SpanEnd,
            name: self.name,
            fields,
        });
    }
}

/// Emit a point event with key=value fields, evaluating the field
/// expressions only when tracing is enabled:
///
/// ```
/// obs::obs_event!("link.drop", "txn" => 7u64, "kind" => "hold");
/// ```
#[macro_export]
macro_rules! obs_event {
    ($name:expr $(, $k:literal => $v:expr)* $(,)?) => {
        if $crate::trace::enabled() {
            $crate::trace::point($name, vec![$(($k, $crate::trace::Value::from($v))),*]);
        }
    };
}

/// Open a span with optional initial fields; returns a [`SpanGuard`]
/// (inert when tracing is disabled — fields are then not evaluated):
///
/// ```
/// let mut span = obs::obs_span!("sched.submit", "servers" => 4u32);
/// span.record("outcome", "granted");
/// ```
#[macro_export]
macro_rules! obs_span {
    ($name:expr $(, $k:literal => $v:expr)* $(,)?) => {
        if $crate::trace::enabled() {
            $crate::trace::span_fields($name, vec![$(($k, $crate::trace::Value::from($v))),*])
        } else {
            $crate::trace::inert_span($name)
        }
    };
}

/// Like [`obs_event!`](crate::obs_event) but gated on
/// [`detail_enabled`]: for fine-grained events inside
/// retry loops that would blow the default-level overhead budget.
#[macro_export]
macro_rules! obs_event_detail {
    ($name:expr $(, $k:literal => $v:expr)* $(,)?) => {
        if $crate::trace::detail_enabled() {
            $crate::trace::point($name, vec![$(($k, $crate::trace::Value::from($v))),*]);
        }
    };
}

/// Like [`obs_span!`](crate::obs_span) but gated on
/// [`detail_enabled`]: per-attempt phase spans and other
/// per-iteration instrumentation. Returns an inert guard unless both the
/// global enable and the detail level are on.
#[macro_export]
macro_rules! obs_span_detail {
    ($name:expr $(, $k:literal => $v:expr)* $(,)?) => {
        if $crate::trace::detail_enabled() {
            $crate::trace::span_fields($name, vec![$(($k, $crate::trace::Value::from($v))),*])
        } else {
            $crate::trace::inert_span($name)
        }
    };
}

/// Reconstruct per-key timelines from `events`: all events whose `key` field
/// equals one of the observed values, grouped by value, each group in
/// timestamp order. Used to dump per-transaction Hold/Commit/Abort
/// interleavings after a chaos failure.
pub fn timelines_by(events: &[Event], key: &str) -> Vec<(Value, Vec<Event>)> {
    let mut groups: Vec<(Value, Vec<Event>)> = Vec::new();
    for e in events {
        if let Some(v) = e.field(key) {
            match groups.iter_mut().find(|(g, _)| g == v) {
                Some((_, list)) => list.push(e.clone()),
                None => groups.push((v.clone(), vec![e.clone()])),
            }
        }
    }
    for (_, list) in &mut groups {
        list.sort_by_key(|e| e.ts_ns);
    }
    groups
}
