//! The admin plane: a second, std-only TCP listener speaking minimal
//! HTTP/1.1 so stock tooling (`curl`, Prometheus) can observe a live
//! server without touching the command port.
//!
//! Endpoints (all `GET`, all `Connection: close`):
//!
//! | path          | reply |
//! |---------------|-------|
//! | `/metrics`    | Prometheus text exposition of every obs metric |
//! | `/healthz`    | `200 ok` while the process serves at all |
//! | `/readyz`     | `200 ready`, or `503` while draining / queue saturated |
//! | `/status`     | JSON snapshot: uptime, capacity, utilization, queues, WAL, totals |
//! | `/debug/slow` | JSON dump of the tail-captured slow/shed/errored requests |
//!
//! The plane is deliberately **non-normative**: the line protocol on the
//! command port (docs/PROTOCOL.md) is the only interface with
//! byte-identical guarantees; these endpoints exist for operators and may
//! grow fields freely. Readiness is computable the moment the listener
//! exists, because [`crate::Server::bind`] finishes WAL recovery *before*
//! opening either listener — a scraper that can reach `/readyz` never sees
//! a half-recovered scheduler.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::slow;

/// Shared snapshot state between the serving threads and the admin plane.
/// The scheduler thread refreshes the capacity/utilization cells
/// periodically (they require `&mut` scheduler access); everything else is
/// read straight from the obs registry at scrape time.
pub(crate) struct AdminState {
    /// Server start, for uptime.
    pub start: Instant,
    /// Shard count the sessions run with.
    pub shards: u32,
    /// Worker pool size.
    pub workers: usize,
    /// Command queue bound (readiness compares depth against it).
    pub queue_capacity: usize,
    /// Whether a WAL is attached.
    pub wal_enabled: bool,
    /// Slow-capture threshold, for `/debug/slow` headers.
    pub slow_threshold_us: u64,
    /// The server's stop flag: set once a drain began.
    pub draining: Arc<AtomicBool>,
    /// Scheduler capacity (servers), 0 until an `init` ran.
    pub servers: AtomicU64,
    /// Utilization at the scheduler clock, in parts-per-million.
    pub util_ppm: AtomicU64,
    /// The scheduler clock, whole seconds.
    pub now_secs: AtomicU64,
    /// Whether any `init`/restore installed a scheduler yet.
    pub initialized: AtomicBool,
}

impl AdminState {
    pub(crate) fn new(
        shards: u32,
        workers: usize,
        queue_capacity: usize,
        wal_enabled: bool,
        slow_threshold_us: u64,
        draining: Arc<AtomicBool>,
    ) -> AdminState {
        AdminState {
            start: Instant::now(),
            shards,
            workers,
            queue_capacity,
            wal_enabled,
            slow_threshold_us,
            draining,
            servers: AtomicU64::new(0),
            util_ppm: AtomicU64::new(0),
            now_secs: AtomicU64::new(0),
            initialized: AtomicBool::new(false),
        }
    }
}

/// Readiness decision, pure so it is unit-testable: ready unless the
/// server is draining or the command queue has no room left (a scrape-time
/// proxy for "new commands would be shed").
pub(crate) fn ready_reason(
    draining: bool,
    queue_depth: i64,
    queue_capacity: usize,
) -> Result<(), String> {
    if draining {
        return Err("draining".to_string());
    }
    if queue_depth >= queue_capacity as i64 {
        return Err(format!("queue saturated ({queue_depth}/{queue_capacity})"));
    }
    Ok(())
}

/// The running admin listener. Joined on server drain.
pub(crate) struct AdminPlane {
    pub addr: SocketAddr,
    handle: Option<JoinHandle<()>>,
}

impl AdminPlane {
    /// Bind `addr` and spawn the serving thread.
    pub(crate) fn spawn(addr: &str, state: Arc<AdminState>) -> std::io::Result<AdminPlane> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let handle = std::thread::Builder::new()
            .name("coalloc-net-admin".into())
            .spawn(move || admin_loop(listener, state))?;
        Ok(AdminPlane {
            addr: local,
            handle: Some(handle),
        })
    }

    /// Unblock and join the serving thread (the caller set the stop flag
    /// already; a self-connect makes the blocking accept observe it).
    pub(crate) fn join(&mut self) {
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn admin_loop(listener: TcpListener, state: Arc<AdminState>) {
    for stream in listener.incoming() {
        if state.draining.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        // Admin traffic is one scraper every few seconds: serving inline on
        // the listener thread keeps the plane to a single thread and
        // naturally rate-limits hostile clients via the read timeout.
        handle_conn(stream, &state);
    }
}

fn handle_conn(mut stream: TcpStream, state: &AdminState) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
    let Some(request_line) = read_request_line(&mut stream) else {
        return;
    };
    let mut parts = request_line.split_whitespace();
    let (method, path) = match (parts.next(), parts.next()) {
        (Some(m), Some(p)) => (m, p),
        _ => {
            respond(&mut stream, 400, "text/plain; charset=utf-8", "bad request\n");
            return;
        }
    };
    if method != "GET" {
        respond(&mut stream, 405, "text/plain; charset=utf-8", "method not allowed\n");
        return;
    }
    let path = path.split('?').next().unwrap_or(path);
    match path {
        "/metrics" => respond(
            &mut stream,
            200,
            "text/plain; version=0.0.4; charset=utf-8",
            &obs::metrics::exposition(),
        ),
        "/healthz" => respond(&mut stream, 200, "text/plain; charset=utf-8", "ok\n"),
        "/readyz" => {
            let depth = obs::metrics::gauge("net_queue_depth").get();
            match ready_reason(
                state.draining.load(Ordering::SeqCst),
                depth,
                state.queue_capacity,
            ) {
                Ok(()) => respond(&mut stream, 200, "text/plain; charset=utf-8", "ready\n"),
                Err(why) => respond(
                    &mut stream,
                    503,
                    "text/plain; charset=utf-8",
                    &format!("not ready: {why}\n"),
                ),
            }
        }
        "/status" => respond(&mut stream, 200, "application/json", &status_json(state)),
        "/debug/slow" => respond(&mut stream, 200, "application/json", &slow_json()),
        _ => respond(&mut stream, 404, "text/plain; charset=utf-8", "not found\n"),
    }
}

/// Read up to the end of the request head (a blank line), returning the
/// request line. Bounded at 8 KiB: an admin request is one short line plus
/// a handful of headers.
fn read_request_line(stream: &mut TcpStream) -> Option<String> {
    let mut buf = Vec::with_capacity(256);
    let mut chunk = [0u8; 512];
    loop {
        if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.windows(2).any(|w| w == b"\n\n") {
            break;
        }
        if buf.len() > 8192 {
            return None;
        }
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return None,
        }
    }
    let head = String::from_utf8_lossy(&buf);
    head.lines().next().map(|l| l.trim().to_string()).filter(|l| !l.is_empty())
}

fn respond(stream: &mut TcpStream, code: u16, content_type: &str, body: &str) {
    let reason = match code {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        503 => "Service Unavailable",
        _ => "Error",
    };
    let head = format!(
        "HTTP/1.1 {code} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.shutdown(std::net::Shutdown::Write);
}

fn counter(name: &'static str) -> u64 {
    obs::metrics::counter(name).get()
}

fn gauge(name: &'static str) -> i64 {
    obs::metrics::gauge(name).get()
}

/// The `/status` JSON snapshot. Hand-built like the bench reports: the
/// field set is operator-facing and non-normative (DESIGN.md §8).
fn status_json(state: &AdminState) -> String {
    let draining = state.draining.load(Ordering::SeqCst);
    let depth = gauge("net_queue_depth");
    let ready = ready_reason(draining, depth, state.queue_capacity).is_ok();
    let util = state.util_ppm.load(Ordering::Relaxed) as f64 / 1_000_000.0;
    let mut out = String::with_capacity(1024);
    out.push('{');
    out.push_str(&format!("\"uptime_secs\":{:.1},", state.start.elapsed().as_secs_f64()));
    out.push_str(&format!("\"ready\":{ready},\"draining\":{draining},"));
    out.push_str(&format!(
        "\"initialized\":{},",
        state.initialized.load(Ordering::Relaxed)
    ));
    out.push_str(&format!("\"shards\":{},\"workers\":{},", state.shards, state.workers));
    out.push_str(&format!(
        "\"scheduler\":{{\"servers\":{},\"now\":{},\"utilization\":{util:.6}}},",
        state.servers.load(Ordering::Relaxed),
        state.now_secs.load(Ordering::Relaxed),
    ));
    out.push_str(&format!(
        "\"queue\":{{\"depth\":{depth},\"capacity\":{}}},",
        state.queue_capacity
    ));
    out.push_str(&format!(
        "\"conns\":{{\"active\":{},\"total\":{}}},",
        gauge("net_conns_active"),
        counter("net_connections_total"),
    ));
    out.push_str(&format!(
        "\"totals\":{{\"requests\":{},\"grants\":{},\"rejects\":{},\"lines\":{},\"replies\":{},\"shed\":{},\"errors\":{}}},",
        counter("sched_requests_total"),
        counter("sched_grants_total"),
        counter("sched_rejects_total"),
        counter("net_lines_total"),
        counter("net_replies_total"),
        counter("net_shed_total"),
        counter("net_errors_total"),
    ));
    out.push_str(&format!(
        "\"wal\":{{\"enabled\":{},\"segments_live\":{},\"bytes_since_snapshot\":{},\"last_fsync_batch\":{},\"appends\":{},\"fsyncs\":{},\"snapshots\":{}}},",
        state.wal_enabled,
        gauge("wal_segments_live"),
        gauge("wal_bytes_since_snapshot"),
        gauge("wal_last_fsync_batch"),
        counter("wal_append_total"),
        counter("wal_fsync_total"),
        counter("wal_snapshot_total"),
    ));
    out.push_str(&format!(
        "\"slow\":{{\"threshold_us\":{},\"captured\":{}}}",
        state.slow_threshold_us,
        slow::captured_total(),
    ));
    out.push('}');
    out
}

/// The `/debug/slow` JSON body: capture policy plus every retained record,
/// oldest first — the same records the `slow` protocol command prints.
fn slow_json() -> String {
    let records = slow::snapshot();
    let mut out = format!(
        "{{\"threshold_us\":{},\"captured_total\":{},\"records\":[",
        slow::threshold_us(),
        slow::captured_total(),
    );
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&slow::to_json(r));
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn readiness_logic() {
        assert!(ready_reason(false, 0, 64).is_ok());
        assert!(ready_reason(false, 63, 64).is_ok());
        assert_eq!(ready_reason(true, 0, 64).unwrap_err(), "draining");
        let err = ready_reason(false, 64, 64).unwrap_err();
        assert!(err.contains("queue saturated"), "{err}");
    }

    #[test]
    fn status_json_is_valid_json() {
        let state = AdminState::new(2, 8, 64, true, 100_000, Arc::new(AtomicBool::new(false)));
        state.servers.store(16, Ordering::Relaxed);
        state.util_ppm.store(421_337, Ordering::Relaxed);
        state.initialized.store(true, Ordering::Relaxed);
        let json = status_json(&state);
        let v = obs::json::parse(&json).expect("valid JSON");
        assert_eq!(v.get("shards").unwrap().as_num(), Some(2.0));
        assert_eq!(v.get("ready"), Some(&obs::json::Json::Bool(true)));
        let sched = v.get("scheduler").unwrap();
        assert_eq!(sched.get("servers").unwrap().as_num(), Some(16.0));
        let util = sched.get("utilization").unwrap().as_num().unwrap();
        assert!((util - 0.421337).abs() < 1e-9);
        let json = obs::json::parse(&slow_json()).expect("valid slow JSON");
        assert!(json.get("records").is_some());
    }
}
