//! The line-protocol interpreter: one command in, one reply out.
//!
//! [`Session`] is the single implementation of the protocol specified in
//! `docs/PROTOCOL.md`, shared by `coallocd`'s stdin/stdout loop and by the
//! TCP server in [`crate::server`] — which is what makes a TCP session's
//! reply stream byte-identical to the same script on stdin (enforced by
//! `crates/net/tests/e2e.rs`). The accepted command surface is described by
//! the table in [`crate::proto`].

use crate::proto;
use coalloc_core::attrs::AttrSet;
use coalloc_core::prelude::*;
use coalloc_shard::ShardedScheduler;

/// Either back-end behind the command loop; both make identical decisions
/// (DESIGN.md §9), so which one serves `submit` is invisible to clients.
pub enum Sched {
    /// The single tree-based scheduler (serves every command).
    Plain(Box<CoAllocScheduler>),
    /// The sharded parallel front-end (`--shards K`).
    Sharded(Box<ShardedScheduler>),
}

impl Sched {
    fn submit(&mut self, req: &Request) -> Result<Grant, ScheduleError> {
        match self {
            Sched::Plain(s) => s.submit(req),
            Sched::Sharded(s) => s.submit(req),
        }
    }

    /// Batched submission — semantically a sequential fold of `submit`, but
    /// the sharded back-end amortizes coordination across the batch
    /// (one worker wake-up per shard per stage; see `coalloc-shard`).
    fn submit_batch(&mut self, reqs: &[Request]) -> Vec<Result<Grant, ScheduleError>> {
        match self {
            Sched::Plain(s) => s.submit_batch(reqs),
            Sched::Sharded(s) => s.submit_batch(reqs),
        }
    }

    fn submit_with_deadline(
        &mut self,
        req: &Request,
        deadline: Time,
    ) -> Result<Grant, ScheduleError> {
        match self {
            Sched::Plain(s) => s.submit_with_deadline(req, deadline),
            Sched::Sharded(s) => s.submit_with_deadline(req, deadline),
        }
    }

    fn release(&mut self, job: JobId) -> Result<(), ScheduleError> {
        match self {
            Sched::Plain(s) => s.release(job),
            Sched::Sharded(s) => s.release(job),
        }
    }

    fn advance_to(&mut self, now: Time) {
        match self {
            Sched::Plain(s) => s.advance_to(now),
            Sched::Sharded(s) => s.advance_to(now),
        }
    }

    fn check(&mut self) {
        match self {
            Sched::Plain(s) => s.check_consistency(),
            Sched::Sharded(s) => s.check_consistency(),
        }
    }

    /// The single-scheduler back-end, for commands the sharded front-end
    /// does not serve.
    fn plain(&mut self) -> Result<&mut CoAllocScheduler, String> {
        match self {
            Sched::Plain(s) => Ok(s),
            Sched::Sharded(_) => {
                Err("command requires a single-shard scheduler (run without --shards)".into())
            }
        }
    }
}

/// One protocol session: a scheduler (once `init` ran) plus the shard count
/// the next `init` will use.
///
/// ```
/// use coalloc_net::Session;
///
/// let mut s = Session::new(1);
/// assert_eq!(s.exec("init 4 10 200 10").unwrap(), "ok 4 servers");
/// let reply = s.exec("submit 0 0 50 2").unwrap();
/// assert!(reply.starts_with("granted job=0 start=0 end=50"));
/// ```
pub struct Session {
    sched: Option<Sched>,
    shards: u32,
}

fn parse<T: std::str::FromStr>(s: &str, what: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("bad {what}: '{s}'"))
}

impl Session {
    /// A fresh session with no scheduler. `shards > 1` makes `init` build
    /// the sharded back-end.
    pub fn new(shards: u32) -> Session {
        Session {
            sched: None,
            shards: shards.max(1),
        }
    }

    /// Whether `line` is the session terminator. The caller owns the exit
    /// action (stop reading stdin / close the connection), so `exit` never
    /// reaches [`Session::exec`].
    pub fn is_exit(line: &str) -> bool {
        line.trim() == "exit"
    }

    fn sched(&mut self) -> Result<&mut Sched, String> {
        self.sched.as_mut().ok_or_else(|| "no scheduler; run 'init N' first".to_string())
    }

    fn grant_line(g: &Grant) -> String {
        let servers: Vec<String> = g.servers.iter().map(|s| s.0.to_string()).collect();
        format!(
            "granted job={} start={} end={} attempts={} wait={} servers={}",
            g.job.0,
            g.start.secs(),
            g.end.secs(),
            g.attempts,
            g.waiting.secs(),
            servers.join(",")
        )
    }

    /// Execute one command line; returns the reply (possibly multi-line,
    /// empty for blanks/comments) or a protocol error. Scheduling rejections
    /// are *replies* (`rejected ...`), not errors — see `docs/PROTOCOL.md`.
    pub fn exec(&mut self, line: &str) -> Result<String, String> {
        let f: Vec<&str> = line.split_whitespace().collect();
        match f.as_slice() {
            [] | ["#", ..] => Ok(String::new()),
            ["help"] => Ok(proto::help_text()),
            ["version"] => Ok(proto::PROTOCOL_VERSION.to_string()),
            ["init", n, rest @ ..] => {
                let n: u32 = parse(n, "server count")?;
                let mut b = SchedulerConfig::builder();
                if let [tau, horizon, delta_t] = rest {
                    b = b
                        .tau(Dur(parse(tau, "tau")?))
                        .horizon(Dur(parse(horizon, "horizon")?))
                        .delta_t(Dur(parse(delta_t, "delta_t")?));
                } else if !rest.is_empty() {
                    return Err("usage: init N [tau horizon delta_t]".into());
                }
                if self.shards > 1 {
                    self.sched = Some(Sched::Sharded(Box::new(ShardedScheduler::new(
                        n,
                        self.shards,
                        b.build(),
                    ))));
                    Ok(format!("ok {n} servers over {} shards", self.shards))
                } else {
                    self.sched = Some(Sched::Plain(Box::new(CoAllocScheduler::new(n, b.build()))));
                    Ok(format!("ok {n} servers"))
                }
            }
            ["submit", q, s, l, n] => {
                let req = Self::parse_submit_args(q, s, l, n)?;
                match self.sched()?.submit(&req) {
                    Ok(g) => Ok(Self::grant_line(&g)),
                    Err(e) => Ok(format!("rejected {e}")),
                }
            }
            ["deadline", q, s, l, n, d] => {
                let req = Request::advance(
                    Time(parse(q, "q_r")?),
                    Time(parse(s, "s_r")?),
                    Dur(parse(l, "l_r")?),
                    parse(n, "n_r")?,
                );
                let deadline = Time(parse(d, "deadline")?);
                match self.sched()?.submit_with_deadline(&req, deadline) {
                    Ok(g) => Ok(Self::grant_line(&g)),
                    Err(e) => Ok(format!("rejected {e}")),
                }
            }
            ["constrained", q, s, l, n, mask] => {
                let req = Request::advance(
                    Time(parse(q, "q_r")?),
                    Time(parse(s, "s_r")?),
                    Dur(parse(l, "l_r")?),
                    parse(n, "n_r")?,
                );
                let required = AttrSet(parse(mask, "mask")?);
                match self.sched()?.plain()?.submit_constrained(&req, required) {
                    Ok(g) => Ok(Self::grant_line(&g)),
                    Err(e) => Ok(format!("rejected {e}")),
                }
            }
            ["attrs", server, mask] => {
                let srv = ServerId(parse(server, "server")?);
                let mask = AttrSet(parse(mask, "mask")?);
                let sched = self.sched()?.plain()?;
                if srv.0 >= sched.num_servers() {
                    return Err(format!("no such server {}", srv.0));
                }
                sched.set_server_attrs(srv, mask);
                Ok("ok".into())
            }
            ["query", a, b] => {
                let (a, b) = (Time(parse(a, "start")?), Time(parse(b, "end")?));
                let hits = self.sched()?.plain()?.range_search(a, b);
                let mut out = format!("free {}", hits.len());
                for h in hits {
                    out.push_str(&format!(
                        "\n  server={} idle=[{}, {}) slack={}",
                        h.period.server.0,
                        h.period.start.secs(),
                        if h.period.end.is_inf() {
                            "inf".to_string()
                        } else {
                            h.period.end.secs().to_string()
                        },
                        h.tail_slack.secs()
                    ));
                }
                Ok(out)
            }
            ["release", job] => {
                let job = JobId(parse(job, "job id")?);
                match self.sched()?.release(job) {
                    Ok(()) => Ok("ok".into()),
                    Err(e) => Ok(format!("error {e}")),
                }
            }
            ["advance", t] => {
                let t = Time(parse(t, "time")?);
                self.sched()?.advance_to(t);
                Ok(format!("ok now={}", t.secs()))
            }
            ["stats"] => {
                let (now, horizon_end, util, s) = match self.sched()? {
                    Sched::Plain(sched) => {
                        let now = sched.now();
                        (
                            now,
                            sched.horizon_end(),
                            sched.utilization(now.max(Time(1))),
                            *sched.stats(),
                        )
                    }
                    Sched::Sharded(sched) => {
                        let now = sched.now();
                        let horizon_end = sched.horizon_end();
                        let util = sched.utilization(now.max(Time(1)));
                        (now, horizon_end, util, sched.stats())
                    }
                };
                Ok(format!(
                    "now={} horizon_end={} util={:.4} ops={} searches={} attempts={}",
                    now.secs(),
                    horizon_end.secs(),
                    util,
                    s.total_ops(),
                    s.phase1_searches,
                    s.attempts
                ))
            }
            ["metrics"] => Ok(obs::metrics::exposition().trim_end().to_string()),
            ["slow"] => {
                let records = crate::slow::snapshot();
                let mut out = format!("slow {}", records.len());
                for r in &records {
                    out.push('\n');
                    out.push_str(&crate::slow::to_json(r));
                }
                Ok(out)
            }
            ["check"] => {
                self.sched()?.check();
                Ok("ok".into())
            }
            ["snapshot", path] => {
                let text = self.sched()?.plain()?.snapshot();
                std::fs::write(path, text).map_err(|e| format!("write {path}: {e}"))?;
                Ok(format!("ok wrote {path}"))
            }
            ["load", path] => {
                if self.shards > 1 {
                    return Err(
                        "load requires a single-shard scheduler (run without --shards)".into()
                    );
                }
                let text =
                    std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
                self.restore_plain(&text)
            }
            _ => Err(format!("unknown command: '{line}' (try 'help')")),
        }
    }

    fn parse_submit_args(q: &str, s: &str, l: &str, n: &str) -> Result<Request, String> {
        Ok(Request::advance(
            Time(parse(q, "q_r")?),
            Time(parse(s, "s_r")?),
            Dur(parse(l, "l_r")?),
            parse(n, "n_r")?,
        ))
    }

    /// Execute a group of `submit` lines as one scheduler batch. Each entry
    /// of the result is exactly what [`Session::exec`] would have returned
    /// for that line, in order — lines that never reach the scheduler
    /// (parse errors, wrong arity, no `init` yet) keep their individual
    /// error replies, and the remainder are decided by one
    /// `submit_batch` call, which the sharded back-end executes with one
    /// worker wake-up per shard per stage instead of per line.
    ///
    /// Intended for callers that already know the lines are submit-shaped
    /// (the TCP scheduler thread's queue grouping); any other line gets the
    /// same `unknown command` error `exec` would produce, so a mistaken
    /// grouping is still byte-identical, just unbatched.
    pub fn exec_batch(&mut self, lines: &[&str]) -> Vec<Result<String, String>> {
        let mut out: Vec<Option<Result<String, String>>> = Vec::with_capacity(lines.len());
        let mut reqs: Vec<Request> = Vec::with_capacity(lines.len());
        let mut req_pos: Vec<usize> = Vec::with_capacity(lines.len());
        for (i, line) in lines.iter().enumerate() {
            let f: Vec<&str> = line.split_whitespace().collect();
            match f.as_slice() {
                ["submit", q, s, l, n] => match Self::parse_submit_args(q, s, l, n) {
                    Ok(req) if self.sched.is_some() => {
                        reqs.push(req);
                        req_pos.push(i);
                        out.push(None);
                    }
                    Ok(_) => out.push(Some(Err(
                        "no scheduler; run 'init N' first".to_string()
                    ))),
                    Err(e) => out.push(Some(Err(e))),
                },
                _ => out.push(Some(self.exec(line))),
            }
        }
        if !reqs.is_empty() {
            let sched = self.sched.as_mut().expect("checked per line above");
            for (i, res) in req_pos.into_iter().zip(sched.submit_batch(&reqs)) {
                out[i] = Some(Ok(match res {
                    Ok(g) => Self::grant_line(&g),
                    Err(e) => format!("rejected {e}"),
                }));
            }
        }
        out.into_iter().map(|o| o.expect("every line answered")).collect()
    }

    /// Capacity and utilization probe for the admin plane's `/status`:
    /// `(servers, scheduler clock secs, utilization at the clock)`, or
    /// `None` before any `init`/restore installed a scheduler. Needs `&mut`
    /// for the sharded back-end's utilization walk.
    pub fn probe_status(&mut self) -> Option<(u32, i64, f64)> {
        match self.sched.as_mut()? {
            Sched::Plain(s) => {
                let now = s.now();
                Some((s.num_servers(), now.secs(), s.utilization(now.max(Time(1)))))
            }
            Sched::Sharded(s) => {
                let now = s.now();
                let util = s.utilization(now.max(Time(1)));
                Some((s.num_servers(), now.secs(), util))
            }
        }
    }

    /// The canonical persistent form of the current scheduler state, if the
    /// active back-end supports snapshots (an initialised plain scheduler).
    /// The write-ahead log installs this text as its base image when
    /// truncating replayed history (DESIGN.md §13); sharded sessions return
    /// `None` and are recovered by replaying their log from genesis.
    pub fn snapshot_text(&self) -> Option<String> {
        match self.sched.as_ref() {
            Some(Sched::Plain(s)) => Some(s.snapshot()),
            _ => None,
        }
    }

    /// Replace the session's scheduler with one restored from snapshot
    /// text, returning the `load` reply line. Used by the `load` command
    /// and by WAL crash recovery to install the base image.
    pub fn restore_plain(&mut self, text: &str) -> Result<String, String> {
        let sched = CoAllocScheduler::restore(text).map_err(|e| format!("restore: {e}"))?;
        let n = sched.num_servers();
        self.sched = Some(Sched::Plain(Box::new(sched)));
        Ok(format!("ok {n} servers restored"))
    }

    /// Run a whole multi-line script, rendering replies and errors exactly
    /// like the stdin loop does: one line per non-empty reply, errors as
    /// `error: ...`, stopping at `exit`. This is the reference output the
    /// TCP end-to-end tests compare a socket's byte stream against.
    pub fn run_script(&mut self, script: &str) -> String {
        let mut out = String::new();
        for line in script.lines() {
            if Session::is_exit(line) {
                break;
            }
            match self.exec(line) {
                Ok(reply) if reply.is_empty() => {}
                Ok(reply) => {
                    out.push_str(&reply);
                    out.push('\n');
                }
                Err(e) => {
                    out.push_str(&format!("error: {e}\n"));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{Backends, COMMANDS};

    fn run_sharded(cmds: &[&str], shards: u32) -> Vec<String> {
        let mut s = Session::new(shards);
        cmds.iter()
            .map(|c| match s.exec(c) {
                Ok(r) => r,
                Err(e) => format!("error: {e}"),
            })
            .collect()
    }

    fn run(cmds: &[&str]) -> Vec<String> {
        run_sharded(cmds, 1)
    }

    #[test]
    fn happy_path_session() {
        let out = run(&[
            "init 4 10 200 10",
            "submit 0 0 50 2",
            "query 0 50",
            "release 0",
            "stats",
        ]);
        assert_eq!(out[0], "ok 4 servers");
        assert!(out[1].starts_with("granted job=0 start=0 end=50"));
        assert!(out[2].starts_with("free 2"));
        assert_eq!(out[3], "ok");
        assert!(out[4].contains("ops="));
    }

    #[test]
    fn errors_are_reported_not_fatal() {
        let out = run(&["submit 0 0 10 1", "init x", "init 2 10 100 10", "bogus"]);
        assert!(out[0].starts_with("error: no scheduler"));
        assert!(out[1].starts_with("error: bad server count"));
        assert_eq!(out[2], "ok 2 servers");
        assert!(out[3].starts_with("error: unknown command"));
    }

    #[test]
    fn rejection_is_a_reply_not_an_error() {
        let out = run(&["init 1 10 100 10", "submit 0 0 500 1", "submit 0 0 10 5"]);
        assert!(out[1].starts_with("rejected"));
        assert!(out[2].starts_with("rejected"));
    }

    #[test]
    fn constrained_and_attrs() {
        let out = run(&[
            "init 3 10 200 10",
            "attrs 2 5",
            "constrained 0 0 30 1 5",
            "constrained 0 0 30 2 5",
        ]);
        assert_eq!(out[1], "ok");
        assert!(out[2].contains("servers=2"), "{}", out[2]);
        assert!(out[3].starts_with("rejected"));
    }

    #[test]
    fn snapshot_load_roundtrip() {
        let path = std::env::temp_dir().join("coalloc-net-session-snap.txt");
        let p = path.to_str().unwrap();
        let out = run(&[
            "init 2 10 100 10",
            "submit 0 0 40 1",
            &format!("snapshot {p}"),
            "init 9",
            &format!("load {p}"),
            "query 0 40",
        ]);
        assert!(out[2].starts_with("ok wrote"));
        assert_eq!(out[4], "ok 2 servers restored");
        assert!(out[5].starts_with("free 1"), "{}", out[5]);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let out = run(&["", "# a comment", "help"]);
        assert_eq!(out[0], "");
        assert_eq!(out[1], "");
        assert!(out[2].contains("commands:"));
    }

    #[test]
    fn sharded_session_matches_plain_decisions() {
        let cmds = [
            "init 8 10 400 10",
            "submit 0 0 50 4",
            "submit 0 100 60 8",
            "deadline 0 0 20 2 100",
            "submit 0 0 500 1",
            "release 0",
            "submit 0 0 50 6",
        ];
        let plain = run(&cmds);
        for k in [2u32, 4] {
            let sharded = run_sharded(&cmds, k);
            assert_eq!(sharded[0], format!("ok 8 servers over {k} shards"));
            assert_eq!(&plain[1..], &sharded[1..], "k={k}");
        }
    }

    #[test]
    fn sharded_session_rejects_single_shard_commands() {
        let out = run_sharded(
            &["init 4 10 200 10", "query 0 50", "attrs 0 1", "snapshot /tmp/x"],
            2,
        );
        for line in &out[1..] {
            assert!(
                line.starts_with("error: command requires a single-shard"),
                "{line}"
            );
        }
    }

    #[test]
    fn deadline_command() {
        let out = run(&["init 1 10 200 10", "submit 0 0 30 1", "deadline 0 0 20 1 40"]);
        assert!(out[2].starts_with("rejected"), "{}", out[2]);
        let out = run(&["init 1 10 200 10", "deadline 0 0 20 1 40"]);
        assert!(out[1].starts_with("granted"));
    }

    #[test]
    fn check_and_version_commands() {
        let out = run(&["init 4 10 200 10", "submit 0 0 50 2", "check", "version"]);
        assert_eq!(out[2], "ok");
        assert_eq!(out[3], crate::proto::PROTOCOL_VERSION);
        let out = run_sharded(&["init 4 10 200 10", "submit 0 0 50 2", "check"], 2);
        assert_eq!(out[2], "ok");
    }

    #[test]
    fn help_reply_is_generated_from_the_shared_table() {
        let out = run(&["help"]);
        assert_eq!(out[0], crate::proto::help_text());
    }

    /// The shared-table contract, parser half: every command in
    /// [`COMMANDS`] is accepted by `exec` (its canonical example never hits
    /// the `unknown command` arm), and words outside the table are rejected.
    #[test]
    fn every_table_command_is_accepted_by_the_parser() {
        let mut s = Session::new(1);
        for c in COMMANDS {
            if c.name == "exit" {
                assert!(Session::is_exit(c.example));
                continue;
            }
            let reply = match s.exec(c.example) {
                Ok(r) => r,
                Err(e) => e,
            };
            assert!(
                !reply.contains("unknown command"),
                "table example for '{}' not accepted: {reply}",
                c.name
            );
        }
        let _ = std::fs::remove_file("/tmp/coalloc-proto-example.txt");
        assert!(s
            .exec("definitely-not-a-command")
            .unwrap_err()
            .contains("unknown command"));
    }

    /// The plain-only annotations in the table match the parser's behaviour
    /// under a sharded session.
    #[test]
    fn table_backend_annotations_match_parser() {
        for c in COMMANDS {
            if c.name == "exit" || c.name == "init" || c.name == "load" {
                continue; // exit never reaches exec; init builds; load checks shards itself
            }
            let mut s = Session::new(2);
            s.exec("init 4 10 200 10").unwrap();
            let reply = match s.exec(c.example) {
                Ok(r) => r,
                Err(e) => format!("error: {e}"),
            };
            let needs_plain = reply.contains("requires a single-shard");
            match c.backends {
                Backends::PlainOnly => assert!(
                    needs_plain,
                    "'{}' should be plain-only but sharded accepted it: {reply}",
                    c.name
                ),
                Backends::Any => assert!(
                    !needs_plain,
                    "'{}' marked Any but sharded rejected it: {reply}",
                    c.name
                ),
            }
        }
    }

    /// The batched entry point must answer every line exactly as `exec`
    /// would have, in order — grants, rejections, parse errors, wrong
    /// arity, and the no-scheduler error alike — for both back-ends.
    #[test]
    fn exec_batch_matches_per_line_exec() {
        let lines = [
            "submit 0 0 50 4",
            "submit 0 0 50 3",
            "submit 0 0 x 2",
            "submit 0 0 50",
            "submit 0 0 9999 1",
            "submit 0 100 60 8",
        ];
        for shards in [1u32, 2, 4] {
            let mut batched = Session::new(shards);
            let mut sequential = Session::new(shards);
            // Before init, every submit fails with the no-scheduler error.
            let uninit = batched.exec_batch(&lines);
            assert!(uninit
                .iter()
                .zip(&lines)
                .all(|(r, l)| l.contains('x') || l.split_whitespace().count() != 5
                    || r == &Err("no scheduler; run 'init N' first".to_string())));
            batched.exec("init 8 10 400 10").unwrap();
            sequential.exec("init 8 10 400 10").unwrap();
            let a = batched.exec_batch(&lines);
            let b: Vec<Result<String, String>> =
                lines.iter().map(|l| sequential.exec(l)).collect();
            assert_eq!(a, b, "shards={shards}");
        }
    }

    #[test]
    fn run_script_matches_line_by_line_exec() {
        let script = "init 4 10 200 10\nsubmit 0 0 50 2\nbogus\nexit\nsubmit 0 0 50 1\n";
        let mut s = Session::new(1);
        let out = s.run_script(script);
        assert!(out.starts_with("ok 4 servers\ngranted job=0"));
        assert!(out.contains("error: unknown command"));
        assert!(!out.contains("job=1"), "lines after exit must not run");
    }
}
