//! # coalloc-net
//!
//! The network edge of the co-allocation scheduler: a dependency-free
//! (std-only) TCP server speaking the same line protocol as `coallocd`'s
//! stdin/stdout session, specified normatively in `docs/PROTOCOL.md`.
//!
//! * [`proto`] — the shared command table: single source of truth for the
//!   parser surface, the generated `help` reply and the protocol docs;
//! * [`session`] — the command interpreter ([`Session`]), shared verbatim
//!   by the stdin loop and the TCP path;
//! * [`server`] — the event-driven front-end ([`Server`]): accept thread →
//!   a few `poll(2)` event loops (each multiplexing many connections;
//!   `event`, private) → bounded batch queue → one scheduler thread, with
//!   admission control (`busy retry-after` sheds past `max_conns` and on a
//!   full queue), poll-deadline read/idle/write timeouts, a max-line bound
//!   and graceful drain. Whole pipelined bursts cross the queue as one
//!   batch; replies are resequenced per connection, so reply order is
//!   exactly request order even though the WAL releases read-only replies
//!   before fsynced mutating ones. With [`WalOptions`] set, the scheduler
//!   thread write-ahead-logs every mutating command before its reply is
//!   released, and [`Server::bind`] recovers the pre-crash state from that
//!   log (DESIGN.md §13);
//! * [`client`] — a blocking scripting client ([`Client`]) used by the
//!   `netload` load generator and the end-to-end tests;
//! * [`stage`] — end-to-end latency attribution: per-request [`stage::Stamps`]
//!   feeding the `req_stage_*` histograms (queue wait, scheduler compute,
//!   WAL stall, writeback);
//! * [`slow`] — tail-based request capture: a fixed ring of full stage
//!   timelines for slow/shed/errored requests, served by `GET /debug/slow`
//!   on the admin plane and the `slow` protocol command;
//! * `admin` (private) — the admin HTTP plane behind
//!   [`NetConfig::admin_addr`]: `/metrics`, `/healthz`, `/readyz`,
//!   `/status`, `/debug/slow` over minimal HTTP/1.1 on a second listener.
//!
//! Because every session multiplexes onto one scheduler thread, a TCP
//! session's reply stream is byte-identical to the same script on stdin —
//! `crates/net/tests/e2e.rs` enforces this for both the plain and the
//! sharded back-end.
//!
//! ```
//! use coalloc_net::{Client, NetConfig, Server, Session};
//!
//! // In-process server on an ephemeral port.
//! let server = Server::bind(NetConfig::default()).unwrap();
//! let client = Client::connect(server.local_addr()).unwrap();
//! let script = "init 4 10 200 10\nsubmit 0 0 50 2\nexit\n";
//! let over_tcp = client.exchange_script(script).unwrap();
//!
//! // Identical bytes to the same script interpreted locally (= stdin).
//! assert_eq!(over_tcp, Session::new(1).run_script(script));
//! server.shutdown();
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod admin;
mod event;
pub mod client;
pub mod proto;
pub mod server;
pub mod session;
pub mod slow;
pub mod stage;

pub use client::Client;
pub use proto::{help_text, CommandSpec, BUSY_REPLY, COMMANDS, PROTOCOL_VERSION};
pub use server::{NetConfig, Server, WalOptions};
pub use session::{Sched, Session};
