//! Tail-based request capture: keep the full stage timeline only for the
//! requests worth explaining.
//!
//! Always-on JSONL tracing is too expensive for the serving path, and
//! metrics alone cannot explain *one* bad request after the fact. This
//! module keeps a fixed-size ring of [`SlowRecord`]s for exactly the
//! requests an operator will ask about — slower than a configurable
//! threshold, shed by admission control, or answered with an error — and
//! nothing for the fast path beyond one relaxed atomic load per request.
//!
//! The ring is dumpable two ways: `GET /debug/slow` on the admin plane and
//! the `slow` protocol command (docs/PROTOCOL.md §3), both rendering the
//! same JSON. Capture itself allocates (it copies the offending line), but
//! only on the tail: the steady-state fast path stays allocation-free.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::stage::Stamps;

static THRESHOLD_US: AtomicU64 = AtomicU64::new(DEFAULT_THRESHOLD_US);
static CAPACITY: AtomicUsize = AtomicUsize::new(DEFAULT_CAPACITY);
static NEXT_SEQ: AtomicU64 = AtomicU64::new(1);
static CAPTURED: AtomicU64 = AtomicU64::new(0);
static RING: Mutex<VecDeque<SlowRecord>> = Mutex::new(VecDeque::new());

/// Default slowness threshold: 100 ms end-to-end.
pub const DEFAULT_THRESHOLD_US: u64 = 100_000;
/// Default ring capacity (records kept before the oldest is dropped).
pub const DEFAULT_CAPACITY: usize = 256;
/// Captured line/reply text is truncated to this many bytes: the ring
/// explains latency, it is not a payload archive.
const TEXT_CAP: usize = 256;

/// Why a request was captured.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// End-to-end latency exceeded the threshold.
    Slow,
    /// Shed by admission control (command queue full).
    Shed,
    /// The reply was an error line.
    Error,
}

impl Outcome {
    /// Wire name used in the JSON dump.
    pub fn as_str(self) -> &'static str {
        match self {
            Outcome::Slow => "slow",
            Outcome::Shed => "shed",
            Outcome::Error => "error",
        }
    }
}

/// One captured request: identity, outcome, and the stage timeline as
/// microsecond offsets from the accept stamp.
#[derive(Clone, Debug)]
pub struct SlowRecord {
    /// Monotonic capture sequence number (process-wide).
    pub seq: u64,
    /// Connection id the request arrived on.
    pub conn: u64,
    /// The command line (truncated to 256 bytes).
    pub line: String,
    /// The reply line (truncated to 256 bytes).
    pub reply: String,
    /// Why it was captured.
    pub outcome: Outcome,
    /// End-to-end latency, accept → reply written (µs).
    pub total_us: u64,
    /// `(stage name, offset µs from accept)` for each stage the request
    /// reached, in pipeline order, ending with the reply write.
    pub timeline: Vec<(&'static str, u64)>,
}

/// Set the capture policy. Called once at server bind; tests lower the
/// threshold to force captures.
pub fn configure(threshold_us: u64, capacity: usize) {
    THRESHOLD_US.store(threshold_us, Ordering::Relaxed);
    CAPACITY.store(capacity, Ordering::Relaxed);
}

/// The current slowness threshold in µs (one relaxed load: this is the
/// fast path's entire interaction with this module).
#[inline]
pub fn threshold_us() -> u64 {
    THRESHOLD_US.load(Ordering::Relaxed)
}

/// Total requests captured since process start (ring drops do not decrement).
pub fn captured_total() -> u64 {
    CAPTURED.load(Ordering::Relaxed)
}

/// Capture one request into the ring. Only called on the tail (slow, shed
/// or errored requests), never on the fast path.
pub fn capture(conn: u64, line: &str, reply: &str, outcome: Outcome, stamps: &Stamps, total_us: u64) {
    let mut timeline = Vec::with_capacity(6);
    timeline.push(("accept", 0u64));
    for (name, off) in stamps.offsets_us() {
        if let Some(off) = off {
            timeline.push((name, off));
        }
    }
    timeline.push(("reply_write", total_us));
    let record = SlowRecord {
        seq: NEXT_SEQ.fetch_add(1, Ordering::Relaxed),
        conn,
        line: truncate(line),
        reply: truncate(reply),
        outcome,
        total_us,
        timeline,
    };
    CAPTURED.fetch_add(1, Ordering::Relaxed);
    let cap = CAPACITY.load(Ordering::Relaxed).max(1);
    let mut ring = RING.lock().unwrap_or_else(|p| p.into_inner());
    while ring.len() >= cap {
        ring.pop_front();
    }
    ring.push_back(record);
}

fn truncate(s: &str) -> String {
    if s.len() <= TEXT_CAP {
        return s.to_string();
    }
    let mut end = TEXT_CAP;
    while !s.is_char_boundary(end) {
        end -= 1;
    }
    format!("{}…", &s[..end])
}

/// Snapshot of the ring, oldest first.
pub fn snapshot() -> Vec<SlowRecord> {
    RING.lock()
        .unwrap_or_else(|p| p.into_inner())
        .iter()
        .cloned()
        .collect()
}

/// Drop every captured record (test isolation helper).
pub fn clear() {
    RING.lock().unwrap_or_else(|p| p.into_inner()).clear();
}

/// Render one record as a single JSON object line.
pub fn to_json(r: &SlowRecord) -> String {
    let mut out = format!(
        "{{\"seq\":{},\"conn\":{},\"outcome\":\"{}\",\"total_us\":{},\"line\":\"{}\",\"reply\":\"{}\",\"timeline\":[",
        r.seq,
        r.conn,
        r.outcome.as_str(),
        r.total_us,
        obs::json::escape(&r.line),
        obs::json::escape(&r.reply),
    );
    for (i, (name, off)) in r.timeline.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{{\"stage\":\"{name}\",\"at_us\":{off}}}"));
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_caps_and_orders() {
        clear();
        configure(1_000, 4);
        let stamps = Stamps::new();
        for i in 0..10u64 {
            capture(i, &format!("submit {i}"), "granted", Outcome::Slow, &stamps, 5_000);
        }
        let snap = snapshot();
        assert_eq!(snap.len(), 4, "ring caps at the configured capacity");
        assert!(snap.windows(2).all(|w| w[0].seq < w[1].seq), "oldest first");
        assert_eq!(snap.last().unwrap().conn, 9, "newest retained");
        assert!(captured_total() >= 10);
        clear();
        configure(DEFAULT_THRESHOLD_US, DEFAULT_CAPACITY);
    }

    #[test]
    fn json_shape_parses_and_escapes() {
        let mut stamps = Stamps::new();
        stamps.mark_enqueued();
        stamps.mark_dequeued();
        stamps.mark_decided();
        stamps.mark_released();
        let mut r = SlowRecord {
            seq: 7,
            conn: 3,
            line: "submit \"x\"\n".into(),
            reply: "granted".into(),
            outcome: Outcome::Error,
            total_us: 1234,
            timeline: vec![("accept", 0), ("reply_write", 1234)],
        };
        r.line = truncate(&r.line);
        let json = to_json(&r);
        let v = obs::json::parse(&json).expect("valid JSON");
        assert_eq!(v.get("outcome").unwrap().as_str(), Some("error"));
        assert_eq!(v.get("total_us").unwrap().as_num(), Some(1234.0));
        assert_eq!(v.get("line").unwrap().as_str(), Some("submit \"x\"\n"));
    }

    #[test]
    fn truncation_respects_char_boundaries() {
        let long = "é".repeat(300);
        let t = truncate(&long);
        assert!(t.ends_with('…') && t.len() <= TEXT_CAP + '…'.len_utf8());
    }
}
