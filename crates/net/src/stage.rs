//! End-to-end latency attribution: monotonic stage stamps for one command.
//!
//! Every command travelling through the server carries a [`Stamps`] value
//! that is stamped at the pipeline's hand-off points (DESIGN.md §8):
//!
//! ```text
//! accept ─► enqueue ─► dequeue ─► decision ─► fsync release ─► reply write
//!        parse     │ queue_wait │   sched   │   wal_stall    │  writeback
//! ```
//!
//! Each inter-stamp interval is exported as a per-stage histogram
//! (`req_stage_queue_wait`, `req_stage_sched`, `req_stage_wal_stall`,
//! `req_stage_writeback`, all in microseconds), so a p99 regression can be
//! localized to the queue, the scheduler compute, the WAL fsync, or the
//! socket write without any per-request logging. The stage identity
//!
//! ```text
//! queue_wait + sched + wal_stall ≈ net_request_us   (enqueue → release)
//! ```
//!
//! is what `netload` checks when it records the stage breakdown into
//! `BENCH_net.json`.
//!
//! [`Stamps`] is `Copy`, holds only `Instant`s, and every `mark_*` /
//! [`Stamps::finish_writeback`] call is a clock read plus one relaxed-atomic
//! histogram update: the steady-state path performs **zero heap
//! allocations** (enforced by `crates/net/tests/stage_alloc.rs`), keeping
//! attribution inside the obs overhead budget.

use obs::LazyHistogram;
use std::time::Instant;

/// Time a command spent waiting in the bounded command queue between a
/// worker's enqueue and the scheduler thread's dequeue (µs).
pub static STAGE_QUEUE_WAIT: LazyHistogram = LazyHistogram::new("req_stage_queue_wait");
/// Time the scheduler thread spent deciding the command — parse, phase-1 /
/// phase-2 search, retries (µs).
pub static STAGE_SCHED: LazyHistogram = LazyHistogram::new("req_stage_sched");
/// Time a decided reply was withheld for WAL durability — append plus the
/// group-commit fsync it rode on. Volatile servers and non-mutating
/// commands observe 0, so every request contributes to every stage (µs).
pub static STAGE_WAL_STALL: LazyHistogram = LazyHistogram::new("req_stage_wal_stall");
/// Time from reply release to the socket write completing (µs).
pub static STAGE_WRITEBACK: LazyHistogram = LazyHistogram::new("req_stage_writeback");

#[inline]
fn us_between(a: Instant, b: Instant) -> u64 {
    b.saturating_duration_since(a).as_micros() as u64
}

/// Monotonic stage timestamps for one in-flight command. Created by the
/// worker when the line is framed, carried through the scheduler thread and
/// back, finished by the worker after the reply write.
#[derive(Clone, Copy, Debug)]
pub struct Stamps {
    /// Line fully framed from the socket (stage zero).
    pub accepted: Instant,
    /// Enqueued into the bounded command queue.
    pub enqueued: Instant,
    /// Dequeued by the scheduler thread, if it got there.
    pub dequeued: Option<Instant>,
    /// Decision computed (reply text exists), if it got there.
    pub decided: Option<Instant>,
    /// Reply released to the worker (after the WAL fsync covering it, when
    /// durable), if it got there.
    pub released: Option<Instant>,
}

impl Stamps {
    /// Stamp stage zero: the command line just came off the socket.
    #[inline]
    pub fn new() -> Stamps {
        let now = Instant::now();
        Stamps {
            accepted: now,
            enqueued: now,
            dequeued: None,
            decided: None,
            released: None,
        }
    }

    /// Stamp the enqueue into the command queue (immediately before the
    /// `try_send`; a shed command keeps this stamp but never the later ones).
    #[inline]
    pub fn mark_enqueued(&mut self) {
        self.enqueued = Instant::now();
    }

    /// Stamp the scheduler thread's dequeue and record the queue-wait stage.
    #[inline]
    pub fn mark_dequeued(&mut self) {
        let now = Instant::now();
        STAGE_QUEUE_WAIT.observe(us_between(self.enqueued, now));
        self.dequeued = Some(now);
    }

    /// Stamp the computed decision and record the sched stage.
    #[inline]
    pub fn mark_decided(&mut self) {
        let now = Instant::now();
        STAGE_SCHED.observe(us_between(self.dequeued.unwrap_or(now), now));
        self.decided = Some(now);
    }

    /// Stamp the reply release and record the WAL-stall stage (0 when the
    /// reply was never withheld: volatile mode, non-mutating commands).
    #[inline]
    pub fn mark_released(&mut self) {
        let now = Instant::now();
        STAGE_WAL_STALL.observe(us_between(self.decided.unwrap_or(now), now));
        self.released = Some(now);
    }

    /// Record the writeback stage (release → socket write done) and return
    /// the end-to-end total (accept → now) in µs. Commands that never
    /// reached the scheduler (shed at the queue) skip the stage histograms
    /// so stage counts stay aligned with `net_request_us`.
    #[inline]
    pub fn finish_writeback(&self) -> u64 {
        let now = Instant::now();
        if let Some(released) = self.released {
            STAGE_WRITEBACK.observe(us_between(released, now));
        }
        us_between(self.accepted, now)
    }

    /// Microseconds from accept to each later stamp, `None` where the
    /// command never reached that stage. Used by the slow-request capture
    /// to render a timeline without keeping `Instant`s alive.
    pub fn offsets_us(&self) -> [(&'static str, Option<u64>); 4] {
        let rel = |t: Option<Instant>| t.map(|t| us_between(self.accepted, t));
        [
            ("enqueue", Some(us_between(self.accepted, self.enqueued))),
            ("dequeue", rel(self.dequeued)),
            ("decision", rel(self.decided)),
            ("fsync_release", rel(self.released)),
        ]
    }
}

impl Default for Stamps {
    fn default() -> Stamps {
        Stamps::new()
    }
}

/// Force registration of the four stage histograms (so the first request
/// does not pay the registry lock + allocation, and `/metrics` shows the
/// families from the start).
pub fn register() {
    STAGE_QUEUE_WAIT.get();
    STAGE_SCHED.get();
    STAGE_WAL_STALL.get();
    STAGE_WRITEBACK.get();
}
