//! The single source of truth for the line protocol's command surface.
//!
//! Every command the [`Session`](crate::session::Session) parser accepts is
//! described by one [`CommandSpec`] row in [`COMMANDS`]. The `help` reply,
//! the normative spec in `docs/PROTOCOL.md`, and the parser tests are all
//! derived from (or checked against) this table, so the three can never
//! drift apart again: adding a command means adding a row here, and the
//! shared-table tests fail until the parser and `docs/PROTOCOL.md` agree.
//!
//! The wire format itself is specified normatively in `docs/PROTOCOL.md`;
//! this module only carries the machine-readable half.

/// Protocol version, reported by the `version` command. Bump the minor on
/// backwards-compatible additions (new commands, new reply fields after the
/// existing ones), the major on anything that changes an existing reply.
pub const PROTOCOL_VERSION: &str = "coalloc/1.2";

/// Default cap on one command line, in bytes (newline excluded). Longer
/// lines are a framing error: the server replies `error: line too long`
/// and closes the connection, since it cannot tell where the next command
/// starts.
pub const DEFAULT_MAX_LINE: usize = 4096;

/// The reply sent when the server sheds load (command queue or accept
/// backlog full). Clients should wait at least the advertised number of
/// seconds before retrying. See `docs/PROTOCOL.md` § Admission control.
pub const BUSY_REPLY: &str = "busy retry-after 1";

/// Which back-ends can serve a command (`--shards K` restricts a few).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backends {
    /// Served by both the plain and the sharded scheduler.
    Any,
    /// Requires the single-shard scheduler (run without `--shards`).
    PlainOnly,
}

/// One row of the command table: everything the docs, the `help` reply and
/// the tests need to know about a command.
#[derive(Clone, Copy, Debug)]
pub struct CommandSpec {
    /// The command word, as typed on the wire.
    pub name: &'static str,
    /// Usage line: command word plus argument placeholders.
    pub usage: &'static str,
    /// One-line human summary (shows up in generated docs).
    pub summary: &'static str,
    /// A canonical example line that must parse (shared-table test). An
    /// example may rely on a scheduler created by an earlier example; the
    /// table is ordered so `init` comes first.
    pub example: &'static str,
    /// Which back-ends serve it.
    pub backends: Backends,
    /// Whether an `Ok` reply implies scheduler state may have changed.
    /// The write-ahead log appends exactly these commands (with their
    /// replies) before releasing the reply, so recovery can replay them
    /// and verify byte-identical decisions (DESIGN.md §13).
    pub mutates: bool,
}

/// Every command the session parser accepts, in `help` display order.
pub const COMMANDS: &[CommandSpec] = &[
    CommandSpec {
        name: "init",
        usage: "init N [tau horizon delta_t]",
        summary: "create an N-server scheduler (times in seconds)",
        example: "init 4 10 400 10",
        backends: Backends::Any,
        mutates: true,
    },
    CommandSpec {
        name: "submit",
        usage: "submit q s l n",
        summary: "request n servers for [s, s+l) submitted at q",
        example: "submit 0 0 50 2",
        backends: Backends::Any,
        mutates: true,
    },
    CommandSpec {
        name: "deadline",
        usage: "deadline q s l n D",
        summary: "like submit, but the job must complete by D",
        example: "deadline 0 0 20 1 100",
        backends: Backends::Any,
        mutates: true,
    },
    CommandSpec {
        name: "constrained",
        usage: "constrained q s l n MASK",
        summary: "submit restricted to servers whose attrs cover MASK",
        example: "constrained 0 0 30 1 0",
        backends: Backends::PlainOnly,
        mutates: true,
    },
    CommandSpec {
        name: "attrs",
        usage: "attrs SERVER MASK",
        summary: "tag a server with a capability bitmask",
        example: "attrs 0 5",
        backends: Backends::PlainOnly,
        mutates: true,
    },
    CommandSpec {
        name: "query",
        usage: "query a b",
        summary: "count + list resources free for all of [a, b)",
        example: "query 0 50",
        backends: Backends::PlainOnly,
        mutates: false,
    },
    CommandSpec {
        name: "release",
        usage: "release JOB",
        summary: "cancel a granted job",
        example: "release 0",
        backends: Backends::Any,
        mutates: true,
    },
    CommandSpec {
        name: "advance",
        usage: "advance T",
        summary: "move the scheduler clock to T",
        example: "advance 20",
        backends: Backends::Any,
        mutates: true,
    },
    CommandSpec {
        name: "stats",
        usage: "stats",
        summary: "clock, horizon, utilization and op counters",
        example: "stats",
        backends: Backends::Any,
        mutates: false,
    },
    CommandSpec {
        name: "metrics",
        usage: "metrics",
        summary: "Prometheus-style exposition of all obs counters",
        example: "metrics",
        backends: Backends::Any,
        mutates: false,
    },
    CommandSpec {
        name: "check",
        usage: "check",
        summary: "run the scheduler's internal consistency checks",
        example: "check",
        backends: Backends::Any,
        mutates: false,
    },
    CommandSpec {
        name: "slow",
        usage: "slow",
        summary: "dump the tail-captured slow/shed/errored requests",
        example: "slow",
        backends: Backends::Any,
        mutates: false,
    },
    CommandSpec {
        name: "snapshot",
        usage: "snapshot PATH",
        summary: "persist full scheduler state to PATH",
        example: "snapshot /tmp/coalloc-proto-example.txt",
        backends: Backends::PlainOnly,
        mutates: false,
    },
    CommandSpec {
        name: "load",
        usage: "load PATH",
        summary: "restore scheduler state from PATH",
        example: "load /tmp/coalloc-proto-example.txt",
        backends: Backends::PlainOnly,
        mutates: true,
    },
    CommandSpec {
        name: "version",
        usage: "version",
        summary: "report the protocol version",
        example: "version",
        backends: Backends::Any,
        mutates: false,
    },
    CommandSpec {
        name: "help",
        usage: "help",
        summary: "list the available commands",
        example: "help",
        backends: Backends::Any,
        mutates: false,
    },
    CommandSpec {
        name: "exit",
        usage: "exit",
        summary: "end the session (close the connection / stop reading)",
        example: "exit",
        backends: Backends::Any,
        mutates: false,
    },
];

/// Look up a command row by its wire name.
pub fn spec(name: &str) -> Option<&'static CommandSpec> {
    COMMANDS.iter().find(|c| c.name == name)
}

/// Whether a command word can change scheduler state on an `Ok` reply —
/// the write-ahead set. Unknown words are not mutating (they can only
/// produce errors).
pub fn mutating(name: &str) -> bool {
    spec(name).is_some_and(|c| c.mutates)
}

/// The `help` reply, generated from [`COMMANDS`] so it can never drift from
/// the parser (the session's dispatch is tested against the same table).
pub fn help_text() -> String {
    let mut out = String::from("commands:");
    for c in COMMANDS {
        out.push(' ');
        out.push_str(c.name);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_and_sorted_for_help() {
        let mut seen = std::collections::HashSet::new();
        for c in COMMANDS {
            assert!(seen.insert(c.name), "duplicate command {}", c.name);
            assert!(
                c.usage.starts_with(c.name),
                "usage of {} must start with the command word",
                c.name
            );
            assert!(
                c.example.starts_with(c.name),
                "example of {} must start with the command word",
                c.name
            );
        }
    }

    /// The shared-table contract, docs half: the normative spec documents
    /// every command the parser accepts (a `### <name>` section each),
    /// states the protocol version, and spells the busy reply correctly.
    #[test]
    fn protocol_doc_covers_every_command() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../docs/PROTOCOL.md");
        let doc = std::fs::read_to_string(path).expect("read docs/PROTOCOL.md");
        for c in COMMANDS {
            let plain_only = matches!(c.backends, Backends::PlainOnly);
            let heading = if plain_only {
                format!("### {} — plain-only", c.name)
            } else {
                format!("### {}", c.name)
            };
            assert!(
                doc.lines().any(|l| l.trim_end() == heading),
                "docs/PROTOCOL.md is missing the section '{heading}'"
            );
        }
        assert!(doc.contains(PROTOCOL_VERSION), "doc must state the version");
        assert!(doc.contains(BUSY_REPLY), "doc must spell the busy reply");
    }

    #[test]
    fn help_lists_every_command() {
        let help = help_text();
        for c in COMMANDS {
            assert!(help.contains(c.name), "help missing {}", c.name);
        }
    }
}
