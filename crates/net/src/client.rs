//! A small blocking client for the line protocol, used by `netload`, the
//! end-to-end tests and anything else that wants to script a server.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// One TCP session against a `coalloc` server.
///
/// [`Client::roundtrip`] is for the single-line-reply commands (`submit`,
/// `release`, `advance`, `stats`, ...). Multi-line replies (`query`,
/// `metrics`) are framed by their first line — see `docs/PROTOCOL.md` — or
/// can be captured wholesale with [`Client::exchange_script`].
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connect to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let writer = TcpStream::connect(addr)?;
        writer.set_nodelay(true)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client { writer, reader })
    }

    /// Set both the read and write timeout of the underlying socket.
    pub fn set_timeout(&mut self, t: Duration) -> std::io::Result<()> {
        self.writer.set_write_timeout(Some(t))?;
        self.reader.get_ref().set_read_timeout(Some(t))
    }

    /// Send one command line (the newline is appended).
    pub fn send(&mut self, line: &str) -> std::io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")
    }

    /// Read one reply line (without its newline). An empty result means the
    /// server closed the connection.
    pub fn recv_line(&mut self) -> std::io::Result<String> {
        let mut line = String::new();
        self.reader.read_line(&mut line)?;
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(line)
    }

    /// Send a command and read its single-line reply.
    pub fn roundtrip(&mut self, line: &str) -> std::io::Result<String> {
        self.send(line)?;
        self.recv_line()
    }

    /// Write a whole multi-line script (which should end in `exit`), close
    /// the write side, and return the server's entire reply stream. This is
    /// the TCP analogue of piping a script into `coallocd`'s stdin.
    pub fn exchange_script(mut self, script: &str) -> std::io::Result<String> {
        self.writer.write_all(script.as_bytes())?;
        self.writer.shutdown(std::net::Shutdown::Write)?;
        let mut out = String::new();
        self.reader.read_to_string(&mut out)?;
        Ok(out)
    }

    /// The raw stream, for tests that need to misbehave (partial writes,
    /// abrupt drops, slow-loris pacing).
    pub fn stream(&mut self) -> &mut TcpStream {
        &mut self.writer
    }
}
