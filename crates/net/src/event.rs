//! The event-driven connection plane: one readiness loop per I/O thread,
//! each owning many nonblocking connections (DESIGN.md §10).
//!
//! Every I/O thread runs a `poll(2)` loop (via `coalloc-poller`, the
//! workspace's only unsafe code) over its connections plus a self-pipe.
//! The loop:
//!
//! 1. **reads** until `WouldBlock` into a per-connection buffer and slices
//!    *every complete line* out of it — a whole pipelined burst becomes one
//!    [`Batch`] and crosses the bounded scheduler queue **once**, which is
//!    what feeds `Session::exec_batch` real batch sizes;
//! 2. **resequences** completions: replies can come back out of order per
//!    connection (the WAL withholds mutating replies for their group-commit
//!    fsync while read-only replies release immediately), so each line
//!    carries a per-connection sequence number and the loop buffers replies
//!    until every earlier one is written — the reply stream stays
//!    byte-identical to the same script on stdin;
//! 3. **writes** replies from a per-connection buffer, many replies per
//!    syscall; a slow reader leaves bytes buffered, the loop switches that
//!    fd to writable-readiness (`POLLOUT`) and stops reading from it once
//!    the buffer passes a high-water mark — natural pipelining
//!    backpressure, bounded by the write timeout.
//!
//! Wakeups from outside the loop (new connections from the accept thread,
//! completions from the scheduler thread) arrive as one byte on the
//! self-pipe, so the loop never spins and never misses work.
//!
//! Timeouts are poll-deadline driven: a partial line older than the read
//! timeout is cut off (`error: line timeout`, anti-slow-loris), a
//! connection with nothing in flight and nothing buffered for longer than
//! the read timeout is reaped (`error: idle timeout`), and a connection
//! whose reply buffer has not accepted a byte for the write timeout is
//! dropped. Terminal errors are written *after* every outstanding reply —
//! the reply stream stays complete up to the error.

use crate::proto::BUSY_REPLY;
use crate::server::{
    NetConfig, ACTIVE, CONN_PANICS, ERRORS, LINES, QUEUE_DEPTH, READ_BATCH_LINES, REPLIES, SHED,
    SHED_QUEUE,
};
use crate::session::Session;
use crate::slow;
use crate::stage::Stamps;
use coalloc_poller::{poll, PollFd, POLLIN, POLLOUT};
use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::os::fd::AsRawFd;
use std::os::unix::net::UnixStream;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// Most bytes read from one connection per readiness round, so one
/// firehosing client cannot starve its loop siblings. Level-triggered
/// polling re-reports the fd immediately, so nothing is lost.
const READ_ROUND_MAX: usize = 256 * 1024;

/// Reply-buffer high-water mark: past this many unwritten bytes the loop
/// stops *reading* from the connection (backpressure on pipelining) until
/// the client drains its replies.
const WBUF_PAUSE_READS: usize = 256 * 1024;

/// Identifies one registered connection to the scheduler thread. The
/// generation guards against slot reuse: a completion for a connection
/// that died and whose slot was recycled is dropped, never cross-delivered.
#[derive(Clone, Copy, Debug)]
pub(crate) struct ConnToken {
    pub loop_id: usize,
    pub slot: usize,
    pub gen: u64,
}

/// One framed command line inside a [`Batch`], with its per-connection
/// sequence number (reply-ordering identity) and stage stamps.
pub(crate) struct LineJob {
    pub seq: u64,
    pub line: String,
    pub stamps: Stamps,
}

/// A whole pipelined read slice from one connection: the unit that crosses
/// the bounded scheduler queue. One queue crossing per read burst, however
/// many lines it framed.
pub(crate) struct Batch {
    pub token: ConnToken,
    pub lines: Vec<LineJob>,
}

/// A completed line travelling back from the scheduler thread to the
/// connection's I/O loop (or synthesized loop-locally for queue sheds).
/// `text` is final reply text; empty means "no bytes on the wire"
/// (comments, blank lines).
pub(crate) struct Done {
    pub slot: usize,
    pub gen: u64,
    pub seq: u64,
    pub line: String,
    pub text: String,
    pub stamps: Stamps,
    pub shed: bool,
}

/// The scheduler thread's handle to one I/O loop: a completion channel
/// plus the self-pipe writer that wakes the loop after a send.
pub(crate) struct IoSender {
    done_tx: Sender<Done>,
    wake: Arc<UnixStream>,
}

impl IoSender {
    pub(crate) fn send(&self, done: Done) {
        let _ = self.done_tx.send(done);
    }

    /// One byte on the self-pipe; a full pipe means a wakeup is already
    /// pending, so the `WouldBlock` is ignored.
    pub(crate) fn wake(&self) {
        let _ = (&*self.wake).write(&[1u8]);
    }
}

/// The accept thread's / server's handle to one I/O loop: the hand-off
/// queue for fresh connections, the wake pipe, and the join handle.
pub(crate) struct IoLoopHandle {
    pub incoming: Arc<Mutex<VecDeque<TcpStream>>>,
    pub wake: Arc<UnixStream>,
    pub join: std::thread::JoinHandle<()>,
}

impl IoLoopHandle {
    pub(crate) fn wake(&self) {
        let _ = (&*self.wake).write(&[1u8]);
    }
}

/// Spawn one I/O event loop. `active` is the server-wide connection count
/// the accept thread's admission control compares against `max_conns`; the
/// loop decrements it as connections close.
pub(crate) fn spawn_io_loop(
    loop_id: usize,
    cfg: &NetConfig,
    job_tx: SyncSender<Batch>,
    stop: Arc<AtomicBool>,
    active: Arc<AtomicI64>,
) -> std::io::Result<(IoLoopHandle, IoSender)> {
    let (wake_rx, wake_tx) = UnixStream::pair()?;
    wake_rx.set_nonblocking(true)?;
    wake_tx.set_nonblocking(true)?;
    let wake = Arc::new(wake_tx);
    let (done_tx, done_rx) = mpsc::channel::<Done>();
    let incoming: Arc<Mutex<VecDeque<TcpStream>>> = Arc::new(Mutex::new(VecDeque::new()));

    let mut state = IoLoop {
        id: loop_id,
        cfg: cfg.clone(),
        job_tx,
        stop,
        active,
        incoming: Arc::clone(&incoming),
        wake_rx,
        done_rx,
        conns: Vec::new(),
        free: Vec::new(),
        open: 0,
        next_gen: 0,
    };
    let join = std::thread::Builder::new()
        .name(format!("coalloc-net-io-{loop_id}"))
        .spawn(move || {
            // Shed-and-log: a panic here takes this loop's connections down
            // (they have no other thread to live on) but the rest of the
            // server keeps serving; the counter makes it visible.
            if std::panic::catch_unwind(AssertUnwindSafe(|| state.run())).is_err() {
                CONN_PANICS.inc();
                ERRORS.inc();
                eprintln!("coalloc-net: io loop {loop_id} panicked, its connections are lost");
            }
        })?;
    Ok((
        IoLoopHandle {
            incoming,
            wake: Arc::clone(&wake),
            join,
        },
        IoSender { done_tx, wake },
    ))
}

fn next_conn_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// One registered connection's full state.
struct Conn {
    stream: TcpStream,
    gen: u64,
    /// Process-wide connection id (slow-capture identity, trace field).
    id: u64,
    /// Unparsed bytes read so far (at most a partial line after framing).
    rbuf: Vec<u8>,
    /// Reply bytes not yet accepted by the socket, `wpos` already written.
    wbuf: Vec<u8>,
    wpos: usize,
    /// Next sequence number to assign to a framed line.
    next_seq: u64,
    /// Next sequence number whose reply may go on the wire.
    next_write_seq: u64,
    /// Lines handed to the scheduler whose completion has not come back.
    inflight: usize,
    /// Completions that arrived ahead of `next_write_seq` (WAL-withheld
    /// neighbours still pending): released in order as the gap fills.
    heldback: Vec<Done>,
    /// Replies appended to `wbuf` this round, awaiting their post-flush
    /// stage stamp + tail capture.
    applied: Vec<Done>,
    /// A terminal error line (timeout / too-long), written only after
    /// every outstanding reply so the stream stays complete up to it.
    trailer: Option<String>,
    /// When the current partial line started arriving (anti-slow-loris).
    line_start: Option<Instant>,
    /// Last byte received (idle-reap deadline).
    last_activity: Instant,
    /// Since when the socket has refused reply bytes (write-stall cutoff).
    write_stalled_since: Option<Instant>,
    read_closed: bool,
    /// Unrecoverable (I/O error, write timeout): torn down immediately.
    dead: bool,
    /// Keeps the `net_conn` trace span open for the connection's lifetime.
    _span: obs::trace::SpanGuard,
}

impl Conn {
    fn new(stream: TcpStream, gen: u64, id: u64, now: Instant) -> Conn {
        Conn {
            stream,
            gen,
            id,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            wpos: 0,
            next_seq: 0,
            next_write_seq: 0,
            inflight: 0,
            heldback: Vec::new(),
            applied: Vec::new(),
            trailer: None,
            line_start: None,
            last_activity: now,
            write_stalled_since: None,
            read_closed: false,
            dead: false,
            _span: obs::trace::span_fields("net_conn", vec![("id", obs::Value::U64(id))]),
        }
    }

    fn has_unwritten(&self) -> bool {
        self.wpos < self.wbuf.len()
    }

    /// Nothing owed to this client and nothing expected from it.
    fn fully_drained(&self) -> bool {
        self.inflight == 0
            && self.heldback.is_empty()
            && self.trailer.is_none()
            && !self.has_unwritten()
    }

    /// Accept one completion, releasing it and any unblocked successors in
    /// sequence order. Every framed line gets exactly one completion, so
    /// the resequencer can never deadlock on a gap.
    fn accept_done(&mut self, done: Done) {
        if done.seq == self.next_write_seq {
            self.apply(done);
            while let Some(pos) = self
                .heldback
                .iter()
                .position(|h| h.seq == self.next_write_seq)
            {
                let next = self.heldback.swap_remove(pos);
                self.apply(next);
            }
        } else {
            self.heldback.push(done);
        }
    }

    /// Append one in-order reply to the write buffer.
    fn apply(&mut self, done: Done) {
        self.next_write_seq = done.seq + 1;
        if !done.text.is_empty() {
            REPLIES.inc();
            self.wbuf.extend_from_slice(done.text.as_bytes());
            self.wbuf.push(b'\n');
        }
        self.applied.push(done);
    }

    /// Write as much of `wbuf` as the socket accepts right now. Many
    /// buffered replies leave in one syscall; a partial write arms the
    /// write-stall clock and the caller's `POLLOUT` interest.
    fn try_flush(&mut self) {
        while self.wpos < self.wbuf.len() {
            match self.stream.write(&self.wbuf[self.wpos..]) {
                Ok(0) => {
                    self.dead = true;
                    break;
                }
                Ok(n) => {
                    self.wpos += n;
                    self.write_stalled_since = None;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    if self.write_stalled_since.is_none() {
                        self.write_stalled_since = Some(Instant::now());
                    }
                    break;
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => {
                    self.dead = true;
                    break;
                }
            }
        }
        if self.wpos >= self.wbuf.len() {
            self.wbuf.clear();
            self.wpos = 0;
            self.write_stalled_since = None;
        } else if self.wpos > 64 * 1024 {
            // Reclaim the written prefix so a long-lived slow reader does
            // not pin an ever-growing buffer.
            self.wbuf.drain(..self.wpos);
            self.wpos = 0;
        }
    }

    /// The earliest instant at which this connection needs attention even
    /// without socket readiness (line deadline, idle reap, write stall).
    fn deadline(&self, cfg: &NetConfig) -> Option<Instant> {
        let mut d: Option<Instant> = None;
        let mut push = |t: Instant| d = Some(d.map_or(t, |c: Instant| c.min(t)));
        if let Some(since) = self.write_stalled_since {
            push(since + cfg.write_timeout);
        }
        if !self.read_closed {
            if let Some(t0) = self.line_start {
                push(t0 + cfg.read_timeout);
            } else if self.fully_drained() {
                push(self.last_activity + cfg.read_timeout);
            }
        }
        d
    }
}

/// The per-thread event loop. All state is owned; the only shared pieces
/// are the incoming hand-off queue, the wake pipe and the channels.
struct IoLoop {
    id: usize,
    cfg: NetConfig,
    job_tx: SyncSender<Batch>,
    stop: Arc<AtomicBool>,
    active: Arc<AtomicI64>,
    incoming: Arc<Mutex<VecDeque<TcpStream>>>,
    wake_rx: UnixStream,
    done_rx: Receiver<Done>,
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    open: usize,
    next_gen: u64,
}

impl IoLoop {
    fn run(&mut self) {
        let mut pfds: Vec<PollFd> = Vec::new();
        let mut slots: Vec<usize> = Vec::new();
        let mut scratch = vec![0u8; 16 * 1024];
        loop {
            let stopping = self.stop.load(Ordering::SeqCst);
            if stopping {
                self.begin_drain();
                // Sweep right away: a connection with nothing owed closes
                // here and now, it would otherwise never wake the poll.
                self.sweep(Instant::now());
                if self.open == 0 {
                    break;
                }
            }

            // Build the poll set: the self-pipe plus every connection with
            // a current interest. Interest-free connections (e.g. waiting
            // only on scheduler completions) are deliberately not polled —
            // a hung-up fd would spin a level-triggered loop.
            pfds.clear();
            slots.clear();
            pfds.push(PollFd::new(self.wake_rx.as_raw_fd(), POLLIN));
            let now = Instant::now();
            let mut deadline: Option<Instant> = None;
            for (slot, conn) in self.conns.iter().enumerate() {
                let Some(c) = conn else { continue };
                let mut events: i16 = 0;
                if !c.read_closed && c.wbuf.len() - c.wpos < WBUF_PAUSE_READS {
                    events |= POLLIN;
                }
                if c.has_unwritten() {
                    events |= POLLOUT;
                }
                if events != 0 {
                    pfds.push(PollFd::new(c.stream.as_raw_fd(), events));
                    slots.push(slot);
                }
                if let Some(d) = c.deadline(&self.cfg) {
                    deadline = Some(deadline.map_or(d, |c: Instant| c.min(d)));
                }
            }
            let timeout = deadline.map(|d| {
                d.saturating_duration_since(now) + Duration::from_millis(2)
            });
            let _ = poll(&mut pfds, timeout);
            let now = Instant::now();

            // Self-pipe: drain the wakeup bytes (their only content is
            // "look at your queues").
            if pfds[0].readable() {
                let mut sink = [0u8; 64];
                while matches!(self.wake_rx.read(&mut sink), Ok(n) if n > 0) {}
            }

            self.take_incoming(now);

            // Scheduler completions → resequence into reply buffers.
            while let Ok(done) = self.done_rx.try_recv() {
                self.deliver(done);
            }

            // Socket readiness. Writes first: freeing reply-buffer space
            // can re-enable reads that backpressure had paused.
            for (i, pfd) in pfds.iter().enumerate().skip(1) {
                if pfd.revents == 0 {
                    continue;
                }
                let slot = slots[i - 1];
                if pfd.writable() {
                    if let Some(c) = self.conns[slot].as_mut() {
                        c.try_flush();
                    }
                }
                if pfd.readable() {
                    self.read_conn(slot, &mut scratch, now);
                }
            }

            self.sweep(now);
        }
    }

    /// Force every connection into drain mode: stop reading, discard any
    /// partial line, close once the owed replies are flushed.
    fn begin_drain(&mut self) {
        for conn in self.conns.iter_mut().flatten() {
            if !conn.read_closed {
                conn.read_closed = true;
                conn.rbuf.clear();
                conn.line_start = None;
            }
        }
        // Accepted-but-unregistered connections are past saving: the
        // accept thread already counted them, so balance the books.
        let mut q = self.incoming.lock().unwrap_or_else(|e| e.into_inner());
        while q.pop_front().is_some() {
            self.active.fetch_sub(1, Ordering::SeqCst);
        }
    }

    /// Register connections the accept thread handed off.
    fn take_incoming(&mut self, now: Instant) {
        loop {
            let stream = {
                let mut q = self.incoming.lock().unwrap_or_else(|e| e.into_inner());
                q.pop_front()
            };
            let Some(stream) = stream else { break };
            if stream.set_nonblocking(true).is_err() {
                self.active.fetch_sub(1, Ordering::SeqCst);
                continue;
            }
            let _ = stream.set_nodelay(true);
            let slot = self.free.pop().unwrap_or_else(|| {
                self.conns.push(None);
                self.conns.len() - 1
            });
            self.next_gen += 1;
            ACTIVE.add(1);
            self.conns[slot] = Some(Conn::new(stream, self.next_gen, next_conn_id(), now));
            self.open += 1;
        }
    }

    /// Route one scheduler completion to its (still-live) connection.
    fn deliver(&mut self, done: Done) {
        let Some(Some(c)) = self.conns.get_mut(done.slot) else {
            return;
        };
        if c.gen != done.gen {
            return; // the slot was recycled; the original conn is gone
        }
        c.inflight -= 1;
        c.accept_done(done);
    }

    /// Drain the socket, frame complete lines, ship them as one batch.
    fn read_conn(&mut self, slot: usize, scratch: &mut [u8], now: Instant) {
        let Some(c) = self.conns[slot].as_mut() else { return };
        if c.read_closed {
            return;
        }
        let mut total = 0usize;
        loop {
            match c.stream.read(scratch) {
                Ok(0) => {
                    c.read_closed = true;
                    break;
                }
                Ok(n) => {
                    if c.rbuf.is_empty() {
                        c.line_start = Some(now);
                    }
                    c.rbuf.extend_from_slice(&scratch[..n]);
                    c.last_activity = now;
                    total += n;
                    if total >= READ_ROUND_MAX {
                        break; // fairness bound; poll re-reports the rest
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => {
                    c.dead = true;
                    return;
                }
            }
        }
        self.frame_and_submit(slot, now);
    }

    /// Slice every complete line out of the read buffer and cross the
    /// scheduler queue once with all of them.
    fn frame_and_submit(&mut self, slot: usize, now: Instant) {
        let Some(c) = self.conns[slot].as_mut() else { return };
        let token = ConnToken {
            loop_id: self.id,
            slot,
            gen: c.gen,
        };
        let mut lines: Vec<LineJob> = Vec::new();
        let mut pos = 0usize;
        let mut too_long = false;
        loop {
            let Some(rel) = c.rbuf[pos..].iter().position(|&b| b == b'\n') else {
                if c.rbuf.len() - pos > self.cfg.max_line {
                    too_long = true; // oversized while still streaming
                }
                break;
            };
            let end = pos + rel;
            if end - pos > self.cfg.max_line {
                too_long = true;
                break;
            }
            let mut raw = &c.rbuf[pos..end];
            if raw.last() == Some(&b'\r') {
                raw = &raw[..raw.len() - 1];
            }
            let line = match std::str::from_utf8(raw) {
                Ok(s) => s.to_string(),
                Err(_) => "\u{fffd}".to_string(), // hits `unknown command`
            };
            pos = end + 1;
            if Session::is_exit(&line) {
                // `exit` ends the session: everything after it (in this
                // buffer or still on the wire) is discarded, like EOF on
                // stdin after an exit line.
                c.read_closed = true;
                c.rbuf.clear();
                pos = 0;
                break;
            }
            LINES.inc();
            let seq = c.next_seq;
            c.next_seq += 1;
            lines.push(LineJob {
                seq,
                line,
                stamps: Stamps::new(),
            });
        }
        if pos > 0 {
            c.rbuf.drain(..pos);
            c.line_start = if c.rbuf.is_empty() { None } else { Some(now) };
        }
        if c.read_closed {
            // EOF mid-line: the partial line is discarded, never executed.
            c.rbuf.clear();
            c.line_start = None;
        }

        if !lines.is_empty() {
            for l in &mut lines {
                l.stamps.mark_enqueued();
            }
            let n = lines.len();
            READ_BATCH_LINES.observe(n as u64);
            // Depth is bumped *before* the try_send so the scheduler's
            // decrement can never observe a batch it was not charged for.
            QUEUE_DEPTH.add(1);
            match self.job_tx.try_send(Batch { token, lines }) {
                Ok(()) => c.inflight += n,
                Err(TrySendError::Full(batch)) => {
                    // Queue-level shed: every line of the burst is answered
                    // `busy retry-after` in order; the connection lives on.
                    QUEUE_DEPTH.add(-1);
                    SHED.add(n as u64);
                    SHED_QUEUE.add(n as u64);
                    for l in batch.lines {
                        c.accept_done(Done {
                            slot,
                            gen: c.gen,
                            seq: l.seq,
                            line: l.line,
                            text: BUSY_REPLY.to_string(),
                            stamps: l.stamps,
                            shed: true,
                        });
                    }
                }
                Err(TrySendError::Disconnected(_)) => {
                    QUEUE_DEPTH.add(-1);
                    c.dead = true; // server draining under us
                }
            }
        }

        if too_long {
            let msg = format!("error: line too long (max {} bytes)\n", self.cfg.max_line);
            self.terminate(slot, msg, true);
        }
    }

    /// Arm a terminal protocol error: stop reading, discard the buffer,
    /// emit `msg` after every outstanding reply, then close.
    fn terminate(&mut self, slot: usize, msg: String, count_error: bool) {
        let Some(c) = self.conns[slot].as_mut() else { return };
        if count_error {
            ERRORS.inc();
        }
        c.trailer = Some(msg);
        c.read_closed = true;
        c.rbuf.clear();
        c.line_start = None;
    }

    /// Per-round housekeeping over every connection: release trailers,
    /// flush buffers, stamp + tail-capture applied replies, enforce
    /// deadlines, and tear down finished connections.
    fn sweep(&mut self, now: Instant) {
        for slot in 0..self.conns.len() {
            let Some(c) = self.conns[slot].as_mut() else { continue };

            // Deadlines (only meaningful while still reading).
            if !c.dead && !c.read_closed {
                if let Some(t0) = c.line_start {
                    if now.saturating_duration_since(t0) > self.cfg.read_timeout {
                        self.terminate(slot, "error: line timeout\n".to_string(), true);
                    }
                } else if c.fully_drained()
                    && now.saturating_duration_since(c.last_activity) > self.cfg.read_timeout
                {
                    // Old front-end precedent: an idle reap is not an error.
                    self.terminate(slot, "error: idle timeout\n".to_string(), false);
                }
            }
            let Some(c) = self.conns[slot].as_mut() else { continue };

            // A trailer goes on the wire only once every accepted line has
            // been answered: the stream is complete up to the error.
            if c.trailer.is_some() && c.inflight == 0 && c.heldback.is_empty() {
                let msg = c.trailer.take().unwrap();
                c.wbuf.extend_from_slice(msg.as_bytes());
            }

            if c.has_unwritten() {
                c.try_flush();
            }
            // Stamp + capture the replies that reached the buffer this
            // round (the flush attempt above is their writeback).
            for done in c.applied.drain(..) {
                let total_us = done.stamps.finish_writeback();
                if done.text.is_empty() {
                    continue; // nothing went on the wire: nothing to capture
                }
                let outcome = if done.shed {
                    Some(slow::Outcome::Shed)
                } else if done.text.starts_with("error") {
                    Some(slow::Outcome::Error)
                } else if slow::threshold_us() > 0 && total_us > slow::threshold_us() {
                    Some(slow::Outcome::Slow)
                } else {
                    None
                };
                if let Some(outcome) = outcome {
                    slow::capture(c.id, &done.line, &done.text, outcome, &done.stamps, total_us);
                }
            }
            if let Some(since) = c.write_stalled_since {
                if now.saturating_duration_since(since) > self.cfg.write_timeout {
                    c.dead = true;
                }
            }

            let finished = c.read_closed && c.fully_drained();
            if c.dead || finished {
                self.close(slot);
            }
        }
    }

    fn close(&mut self, slot: usize) {
        if self.conns[slot].take().is_some() {
            self.free.push(slot);
            self.open -= 1;
            ACTIVE.add(-1);
            self.active.fetch_sub(1, Ordering::SeqCst);
        }
    }
}
