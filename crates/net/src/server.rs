//! The event-driven TCP front-end.
//!
//! Threading model (DESIGN.md §10): one **accept thread** admits
//! connections (global `max_conns` bound, shed with [`BUSY_REPLY`] beyond
//! it) and hands each to one of a fixed set of **I/O event-loop threads**
//! round-robin. Each loop (the private `event` module) multiplexes *all* of its
//! connections over `poll(2)`: it frames whole pipelined bursts of lines
//! per readiness round and crosses the bounded scheduler queue **once per
//! burst**, not once per line. The single **scheduler thread** owns the
//! [`Session`], flattens incoming batches into one arrival-ordered run
//! queue, and executes command lines strictly in that order — which is
//! what keeps the server's decisions deterministic and every per-session
//! reply stream byte-identical to the same script on stdin (replies are
//! resequenced per connection on the way out; see `event.rs`).
//!
//! Admission control happens at both bounded edges: past `max_conns` the
//! accept thread sheds with [`BUSY_REPLY`]; a full command queue sheds
//! every line of the rejected burst with [`BUSY_REPLY`] instead of
//! queueing unboundedly (`net_shed_total`). Slow or hostile clients are
//! bounded by the per-line read deadline (anti-slow-loris), the idle
//! timeout, the write-stall timeout and the maximum line length — all
//! enforced by poll deadlines, so one hostile client never ties up a
//! thread.

use crate::admin::{AdminPlane, AdminState};
use crate::event::{self, Batch, ConnToken, Done, IoLoopHandle, IoSender};
use crate::proto::{self, BUSY_REPLY};
use crate::session::Session;
use crate::slow;
use crate::stage::Stamps;
use coalloc_wal::{Wal, WalConfig, WalError};
use obs::{LazyCounter, LazyGauge, LazyHistogram};
use std::collections::VecDeque;
use std::io::{ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::UnixStream;
use std::panic::AssertUnwindSafe;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::mpsc::Receiver;
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

static CONNECTIONS: LazyCounter = LazyCounter::new("net_connections_total");
pub(crate) static ACTIVE: LazyGauge = LazyGauge::new("net_conns_active");
pub(crate) static LINES: LazyCounter = LazyCounter::new("net_lines_total");
pub(crate) static REPLIES: LazyCounter = LazyCounter::new("net_replies_total");
pub(crate) static SHED: LazyCounter = LazyCounter::new("net_shed_total");
static SHED_ACCEPT: LazyCounter = LazyCounter::new("net_shed_accept_total");
pub(crate) static SHED_QUEUE: LazyCounter = LazyCounter::new("net_shed_queue_total");
pub(crate) static ERRORS: LazyCounter = LazyCounter::new("net_errors_total");
static REQUEST_US: LazyHistogram = LazyHistogram::new("net_request_us");
static QUEUE_WAIT_US: LazyHistogram = LazyHistogram::new("net_queue_wait_us");
static EXEC_PANICS: LazyCounter = LazyCounter::new("net_exec_panics_total");
pub(crate) static CONN_PANICS: LazyCounter = LazyCounter::new("net_conn_panics_total");
static WAL_REPLAYED: LazyCounter = LazyCounter::new("wal_recovery_replayed_total");
static WAL_FLUSH_FAILURES: LazyCounter = LazyCounter::new("wal_flush_failures_total");
/// Batches currently sitting in the bounded scheduler queue (the queue's
/// unit is one pipelined read burst, not one line). Incremented by the
/// enqueuing I/O loop, decremented by the scheduler's dequeue, so the
/// admin plane's `/readyz` can compare it against the queue bound.
pub(crate) static QUEUE_DEPTH: LazyGauge = LazyGauge::new("net_queue_depth");
/// Lines per scheduler batch: how many queued `submit` commands each
/// scheduler pass grouped into one `submit_batch` call. Mostly 1 at low
/// load; grows with pipelining depth and concurrent connections.
static BATCH_LINES: LazyHistogram = LazyHistogram::new("net_batch_lines");
/// Lines per queue crossing: how many complete lines one I/O readiness
/// round framed and shipped to the scheduler as a single batch. The
/// event-loop analogue of syscall batching — higher is cheaper.
pub(crate) static READ_BATCH_LINES: LazyHistogram = LazyHistogram::new("net_read_batch_lines");

/// Configuration of a [`Server`]. The defaults suit an interactive
/// deployment; load tests shrink the timeouts and raise `max_conns`.
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// Address to bind, e.g. `127.0.0.1:7077` (port 0 picks a free port).
    pub addr: String,
    /// I/O event-loop threads. Each loop multiplexes many connections via
    /// `poll(2)`, so this sizes reply/framing parallelism, **not** the
    /// connection limit (that is [`NetConfig::max_conns`]). A few loops
    /// are plenty: the scheduler thread is the serial resource.
    pub workers: usize,
    /// Bound of the batch queue between the I/O loops and the scheduler
    /// thread, in *batches* (one batch = one pipelined read burst).
    pub queue_depth: usize,
    /// Legacy knob from the thread-per-connection front-end; retained so
    /// existing configs parse, but ignored — admission is governed by
    /// [`NetConfig::max_conns`] now.
    pub accept_backlog: usize,
    /// Maximum concurrently admitted connections across all I/O loops.
    /// Connections beyond it are shed at accept with [`BUSY_REPLY`].
    pub max_conns: usize,
    /// Maximum accepted line length in bytes (newline excluded).
    pub max_line: usize,
    /// Per-connection read deadline, applied twice: a connection idle this
    /// long is closed (`error: idle timeout`), and a line still unfinished
    /// this long after its first byte is closed (`error: line timeout`,
    /// the anti-slow-loris bound).
    pub read_timeout: Duration,
    /// How long a connection's reply buffer may sit unaccepted by the
    /// socket (client not reading) before the connection is dropped.
    pub write_timeout: Duration,
    /// Shard count handed to each session's `init` (1 = plain scheduler).
    pub shards: u32,
    /// Test hook: artificial delay before each command execution, to make
    /// queue buildup reproducible in shed/backpressure tests.
    #[doc(hidden)]
    pub exec_delay: Duration,
    /// Test hook: when set, [`NetConfig::exec_delay`] applies only to lines
    /// containing this substring, so a test can stall one chosen command
    /// and assert it lands in the slow-request capture while its neighbours
    /// do not. `None` (the default) delays every command as before.
    #[doc(hidden)]
    pub stall_substr: Option<String>,
    /// Durability: when set, every mutating command is appended to a
    /// write-ahead log and fsynced *before* its reply is released, and
    /// [`Server::bind`] recovers the previous state from that log
    /// (DESIGN.md §13). `None` (the default) keeps the server volatile.
    pub wal: Option<WalOptions>,
    /// Address for the admin HTTP plane (`/metrics`, `/healthz`, `/readyz`,
    /// `/status`, `/debug/slow`), e.g. `127.0.0.1:9090` (port 0 picks a
    /// free port). `None` (the default) serves no admin plane. The plane is
    /// non-normative and operator-facing (DESIGN.md §8); it binds only
    /// after WAL recovery finished, so a reachable `/readyz` never shows a
    /// half-recovered scheduler.
    pub admin_addr: Option<String>,
    /// End-to-end latency above which a request's full stage timeline is
    /// retained in the slow-request ring (`GET /debug/slow`, the `slow`
    /// command). Shed and errored requests are always captured.
    /// `Duration::ZERO` disables latency-based capture.
    pub slow_threshold: Duration,
    /// Capacity of the slow-request ring; the oldest record is dropped
    /// when a new capture would exceed it.
    pub slow_capacity: usize,
}

/// Write-ahead-log configuration for a durable [`Server`].
#[derive(Clone, Debug)]
pub struct WalOptions {
    /// Directory holding segment and snapshot files (created if missing).
    pub dir: PathBuf,
    /// Group-commit bound: a reply waits at most this long for its fsync
    /// batch. `Duration::ZERO` (the default) flushes adaptively — as soon
    /// as the command queue goes momentarily idle — which batches under
    /// load without adding any fixed latency.
    pub flush_interval: Duration,
    /// Install a snapshot and truncate replayed history every this many
    /// logged records (0 disables snapshotting; plain back-end only).
    pub snapshot_every: u64,
    /// Byte size at which the active segment file rolls over.
    pub segment_bytes: u64,
}

impl WalOptions {
    /// Durability with default batching (adaptive flush, snapshot every
    /// 4096 records, 8 MiB segments).
    pub fn new(dir: impl Into<PathBuf>) -> WalOptions {
        WalOptions {
            dir: dir.into(),
            flush_interval: Duration::ZERO,
            snapshot_every: 4096,
            segment_bytes: 8 * 1024 * 1024,
        }
    }
}

impl Default for NetConfig {
    fn default() -> NetConfig {
        NetConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_depth: 64,
            accept_backlog: 8,
            max_conns: 4096,
            max_line: crate::proto::DEFAULT_MAX_LINE,
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(10),
            shards: 1,
            exec_delay: Duration::ZERO,
            stall_substr: None,
            wal: None,
            admin_addr: None,
            slow_threshold: Duration::from_micros(slow::DEFAULT_THRESHOLD_US),
            slow_capacity: slow::DEFAULT_CAPACITY,
        }
    }
}

/// A running TCP server. Dropping it (or calling [`Server::shutdown`])
/// drains gracefully: stop accepting, finish in-flight commands, flush
/// every owed reply, join all threads.
///
/// ```no_run
/// use coalloc_net::{NetConfig, Server};
///
/// let server = Server::bind(NetConfig::default()).unwrap();
/// println!("listening on {}", server.local_addr());
/// // ... serve until shutdown ...
/// server.shutdown();
/// ```
pub struct Server {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_handle: Option<JoinHandle<()>>,
    io_handles: Vec<IoLoopHandle>,
    sched_handle: Option<JoinHandle<()>>,
    admin: Option<AdminPlane>,
}

impl Server {
    /// Bind `cfg.addr` and spawn the accept thread, the I/O event loops
    /// and the scheduler thread. Returns once the listener is live
    /// (connections race no startup window). With `cfg.wal` set, the
    /// previous state is recovered from the log first; a corrupt or
    /// diverging log fails the bind rather than silently serving from a
    /// wrong state.
    pub fn bind(cfg: NetConfig) -> std::io::Result<Server> {
        // Recover (or start fresh) before the listener exists, so no client
        // can observe a half-recovered scheduler.
        let (session, wal) = match cfg.wal.clone() {
            Some(opts) => {
                let (wal, session) = recover(&opts, cfg.shards)?;
                (session, Some((wal, opts)))
            }
            None => (Session::new(cfg.shards), None),
        };

        let listener = TcpListener::bind(&cfg.addr)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));

        // Latency attribution and tail capture are live from request one.
        crate::stage::register();
        slow::configure(
            cfg.slow_threshold.as_micros() as u64,
            cfg.slow_capacity.max(1),
        );

        // The admin plane binds after recovery (above) so a reachable
        // `/readyz` implies the WAL replay already finished.
        let admin_state = match &cfg.admin_addr {
            Some(addr) => {
                let state = Arc::new(AdminState::new(
                    cfg.shards,
                    cfg.workers.max(1),
                    cfg.queue_depth.max(1),
                    wal.is_some(),
                    cfg.slow_threshold.as_micros() as u64,
                    Arc::clone(&stop),
                ));
                Some((addr.clone(), state))
            }
            None => None,
        };
        let admin = match &admin_state {
            Some((addr, state)) => Some(AdminPlane::spawn(addr, Arc::clone(state))?),
            None => None,
        };

        // The I/O event loops: each owns a share of the connections. A
        // failed spawn stops and wakes the loops spawned so far (they exit
        // with zero connections), then aborts the bind.
        let (job_tx, job_rx) = mpsc::sync_channel::<Batch>(cfg.queue_depth.max(1));
        let active = Arc::new(AtomicI64::new(0));
        let n_loops = cfg.workers.max(1);
        let mut io_handles: Vec<IoLoopHandle> = Vec::with_capacity(n_loops);
        let mut io_senders: Vec<IoSender> = Vec::with_capacity(n_loops);
        for i in 0..n_loops {
            let spawned = event::spawn_io_loop(
                i,
                &cfg,
                job_tx.clone(),
                Arc::clone(&stop),
                Arc::clone(&active),
            );
            match spawned {
                Ok((handle, sender)) => {
                    io_handles.push(handle);
                    io_senders.push(sender);
                }
                Err(e) => {
                    stop.store(true, Ordering::SeqCst);
                    for h in &io_handles {
                        h.wake();
                    }
                    return Err(e);
                }
            }
        }
        drop(job_tx); // scheduler exits once every I/O loop is gone

        // The scheduler thread: sole owner of the session; executes command
        // lines strictly in queue-arrival order.
        let ctx = SchedCtx {
            exec_delay: cfg.exec_delay,
            stall_substr: cfg.stall_substr.clone(),
            admin: admin_state.map(|(_, state)| state),
        };
        let comps = Completions::new(io_senders);
        let sched_handle = match std::thread::Builder::new()
            .name("coalloc-net-sched".into())
            .spawn(move || scheduler_loop(job_rx, session, ctx, wal, comps))
        {
            Ok(h) => h,
            Err(e) => {
                stop.store(true, Ordering::SeqCst);
                for h in &io_handles {
                    h.wake();
                }
                return Err(e);
            }
        };

        let accept_targets: Vec<AcceptTarget> = io_handles
            .iter()
            .map(|h| (Arc::clone(&h.incoming), Arc::clone(&h.wake)))
            .collect();
        let accept_stop = Arc::clone(&stop);
        let accept_active = Arc::clone(&active);
        let max_conns = cfg.max_conns.max(1);
        let accept_handle = match std::thread::Builder::new()
            .name("coalloc-net-accept".into())
            .spawn(move || accept_loop(listener, accept_targets, accept_active, max_conns, accept_stop))
        {
            Ok(h) => h,
            Err(e) => {
                stop.store(true, Ordering::SeqCst);
                for h in &io_handles {
                    h.wake();
                }
                return Err(e);
            }
        };

        Ok(Server {
            local_addr,
            stop,
            accept_handle: Some(accept_handle),
            io_handles,
            sched_handle: Some(sched_handle),
            admin,
        })
    }

    /// The bound address (resolves port 0 to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The bound admin-plane address, if [`NetConfig::admin_addr`] was set
    /// (resolves port 0 to the actual port).
    pub fn admin_addr(&self) -> Option<SocketAddr> {
        self.admin.as_ref().map(|a| a.addr)
    }

    /// Graceful drain: stop accepting, let every connection's in-flight
    /// commands finish and their replies flush, then join every thread.
    /// Safe to call more than once.
    pub fn shutdown(mut self) {
        self.drain();
    }

    fn drain(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop with a no-op connection to ourselves.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        // Wake the I/O loops so they observe `stop` and enter drain mode:
        // stop reading, finish flushing owed replies, close, exit. The
        // scheduler keeps answering their in-flight batches meanwhile.
        for h in &self.io_handles {
            h.wake();
        }
        for h in self.io_handles.drain(..) {
            let _ = h.join.join();
        }
        // The loops held the only batch senders, so the scheduler's next
        // recv disconnects once the queued batches are drained (durable
        // mode takes its shutdown fsync on the way out).
        if let Some(h) = self.sched_handle.take() {
            let _ = h.join();
        }
        // The admin plane goes last: it can report "not ready: draining"
        // right up until the command path is fully drained.
        if let Some(admin) = self.admin.as_mut() {
            admin.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.drain();
    }
}

/// Hand-off point for one I/O loop: its pending-connection queue plus the
/// wake pipe that pulls the loop out of `poll(2)` after a push.
type AcceptTarget = (Arc<Mutex<VecDeque<TcpStream>>>, Arc<UnixStream>);

fn accept_loop(
    listener: TcpListener,
    loops: Vec<AcceptTarget>,
    active: Arc<AtomicI64>,
    max_conns: usize,
    stop: Arc<AtomicBool>,
) {
    let mut next = 0usize;
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(mut stream) = stream else { continue };
        CONNECTIONS.inc();
        // Admission control: claim a connection slot optimistically; past
        // the bound, give it back and shed at the edge.
        if active.fetch_add(1, Ordering::SeqCst) >= max_conns as i64 {
            active.fetch_sub(1, Ordering::SeqCst);
            SHED.inc();
            SHED_ACCEPT.inc();
            let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
            let _ = stream.write_all(format!("{BUSY_REPLY}\n").as_bytes());
            // Half-close so the busy reply travels with a FIN. If the
            // client already pipelined a command the close may still
            // surface as a reset on its side; PROTOCOL.md tells clients
            // to treat that as a shed and reconnect.
            let _ = stream.shutdown(std::net::Shutdown::Write);
            continue;
        }
        // Round-robin across the I/O loops; the wake byte tells the loop
        // to register its new connection.
        let (incoming, wake) = &loops[next % loops.len()];
        next = next.wrapping_add(1);
        incoming
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push_back(stream);
        let _ = (&**wake).write(&[1u8]);
    }
}

/// Map a WAL failure to the bind error surface.
fn wal_io(e: WalError) -> std::io::Error {
    match e {
        WalError::Io(e) => e,
        corrupt => std::io::Error::new(ErrorKind::InvalidData, corrupt.to_string()),
    }
}

fn invalid(msg: String) -> std::io::Error {
    std::io::Error::new(ErrorKind::InvalidData, msg)
}

/// Execute one command, converting a panic into a shed-and-log error reply
/// instead of poisoning the scheduler thread (and with it every connection).
fn exec_guarded(session: &mut Session, line: &str) -> Result<String, String> {
    match std::panic::catch_unwind(AssertUnwindSafe(|| session.exec(line))) {
        Ok(result) => result,
        Err(_) => {
            EXEC_PANICS.inc();
            ERRORS.inc();
            eprintln!("coalloc-net: command panicked, shedding: {line}");
            Err("internal error: command panicked (see server log)".into())
        }
    }
}

/// Largest number of queued `submit` lines grouped into one scheduler batch
/// (bounds reply-latency spread within a group; the queue bound usually
/// bites first).
const GROUP_MAX: usize = 256;

/// Whether a queued line may join a scheduler batch: only `submit` commands
/// are grouped. Anything else — `release`, `advance`, `load`, `snapshot`,
/// `stats`, … — is a batch *barrier*: its reply or effect depends on every
/// earlier command having fully executed. Groups form both across
/// concurrent connections and *within* one pipelining connection — the
/// event loop frames a whole pipelined burst into one queue batch, so a
/// single client streaming submits feeds real batch sizes.
fn batchable(line: &str) -> bool {
    line.split_whitespace().next() == Some("submit")
}

/// Execute a group of submit lines as one scheduler batch, panic-guarded
/// like [`exec_guarded`]. A panic sheds the whole group — the group is a
/// single scheduler call, so per-line blame is unknowable.
fn exec_batch_guarded(session: &mut Session, lines: &[&str]) -> Vec<Result<String, String>> {
    match std::panic::catch_unwind(AssertUnwindSafe(|| session.exec_batch(lines))) {
        Ok(results) => results,
        Err(_) => {
            EXEC_PANICS.inc();
            ERRORS.add(lines.len() as u64);
            eprintln!(
                "coalloc-net: batched command panicked, shedding {} lines",
                lines.len()
            );
            lines
                .iter()
                .map(|_| Err("internal error: command panicked (see server log)".into()))
                .collect()
        }
    }
}

/// Open the WAL and rebuild the session it describes: install the newest
/// snapshot, then re-execute the logged commands in order, verifying that
/// every decision comes out byte-identical to the logged reply. Divergence
/// means the log does not describe this code's behaviour (corruption or a
/// cross-version restart) and refuses the recovery.
fn recover(opts: &WalOptions, shards: u32) -> std::io::Result<(Wal, Session)> {
    let span = obs::trace::span("wal_recovery");
    let mut wcfg = WalConfig::new(&opts.dir);
    wcfg.segment_bytes = opts.segment_bytes.max(1);
    let (wal, recovery) = Wal::open(wcfg).map_err(wal_io)?;
    let mut session = Session::new(shards);
    if let Some(snap) = &recovery.snapshot {
        let text = std::str::from_utf8(snap)
            .map_err(|_| invalid("wal: snapshot is not UTF-8".into()))?;
        session
            .restore_plain(text)
            .map_err(|e| invalid(format!("wal: snapshot rejected: {e}")))?;
    }
    for (i, record) in recovery.records.iter().enumerate() {
        let text = std::str::from_utf8(record)
            .map_err(|_| invalid(format!("wal: record {i} is not UTF-8")))?;
        let (line, logged_reply) = text
            .split_once('\n')
            .ok_or_else(|| invalid(format!("wal: record {i} has no reply separator")))?;
        let replayed = exec_guarded(&mut session, line)
            .map_err(|e| invalid(format!("wal: record {i} ({line:?}) failed on replay: {e}")))?;
        if replayed != logged_reply {
            return Err(invalid(format!(
                "wal: replay divergence at record {i} ({line:?}): \
                 recovered scheduler answered {replayed:?}, log has {logged_reply:?}"
            )));
        }
    }
    WAL_REPLAYED.add(recovery.records.len() as u64);
    drop(span);
    Ok((wal, session))
}

/// The scheduler's fan-out to the I/O loops, waking each touched loop at
/// most once per release point instead of once per reply.
struct Completions {
    io: Vec<IoSender>,
    touched: Vec<bool>,
}

impl Completions {
    fn new(io: Vec<IoSender>) -> Completions {
        let touched = vec![false; io.len()];
        Completions { io, touched }
    }

    fn send(&mut self, loop_id: usize, done: Done) {
        self.io[loop_id].send(done);
        self.touched[loop_id] = true;
    }

    /// Wake every loop that received a completion since the last wake.
    fn wake(&mut self) {
        for (i, touched) in self.touched.iter_mut().enumerate() {
            if *touched {
                self.io[i].wake();
                *touched = false;
            }
        }
    }
}

/// One command line on the scheduler's flattened run queue, with the
/// addressing it needs to route the reply back ([`ConnToken`] + per-conn
/// sequence number).
struct Item {
    token: ConnToken,
    seq: u64,
    line: String,
    stamps: Stamps,
}

/// Flatten one queue batch onto the run queue, taking over its queue
/// accounting (the gauge counts batches; the wait histogram counts lines).
fn ingest(batch: Batch, q: &mut VecDeque<Item>) {
    QUEUE_DEPTH.add(-1);
    let token = batch.token;
    for mut l in batch.lines {
        l.stamps.mark_dequeued();
        QUEUE_WAIT_US.observe(l.stamps.enqueued.elapsed().as_micros() as u64);
        q.push_back(Item {
            token,
            seq: l.seq,
            line: l.line,
            stamps: l.stamps,
        });
    }
}

/// Release one reply to its connection's I/O loop.
fn send_done(comps: &mut Completions, token: ConnToken, seq: u64, line: String, text: String, mut stamps: Stamps) {
    stamps.mark_released();
    REQUEST_US.observe(stamps.enqueued.elapsed().as_micros() as u64);
    comps.send(
        token.loop_id,
        Done {
            slot: token.slot,
            gen: token.gen,
            seq,
            line,
            text,
            stamps,
            shed: false,
        },
    );
}

/// A reply withheld until its WAL record is fsynced (group commit).
struct PendingDone {
    token: ConnToken,
    seq: u64,
    line: String,
    text: String,
    stamps: Stamps,
}

/// Largest fsync batch: bounds how much reply latency one flush can carry.
const MAX_BATCH: usize = 512;

/// Sync the WAL tail and release every withheld reply. On fsync failure the
/// commands stay applied in memory but their replies become errors: a
/// client must never read an `ok`/`granted` that could vanish in a crash.
fn flush(wal: &mut Wal, pending: &mut Vec<PendingDone>, comps: &mut Completions) {
    if pending.is_empty() && wal.unsynced_records() == 0 {
        return;
    }
    let failed = match wal.sync() {
        Ok(()) => None,
        Err(e) => {
            WAL_FLUSH_FAILURES.inc();
            eprintln!("coalloc-net: wal sync failed: {e}");
            Some(e.to_string())
        }
    };
    for mut p in pending.drain(..) {
        // The fsync that just completed is what released these replies:
        // decision → here is the WAL stall each of them paid.
        p.stamps.mark_released();
        REQUEST_US.observe(
            p.stamps.released.unwrap_or_else(Instant::now)
                .saturating_duration_since(p.stamps.enqueued)
                .as_micros() as u64,
        );
        let text = match &failed {
            None => p.text,
            Some(e) => format!("error: wal sync failed: {e}"),
        };
        // A dead connection just drops the reply at its I/O loop; the
        // command's effect stands (documented at-most-once reply delivery).
        comps.send(
            p.token.loop_id,
            Done {
                slot: p.token.slot,
                gen: p.token.gen,
                seq: p.seq,
                line: p.line,
                text,
                stamps: p.stamps,
                shed: false,
            },
        );
    }
    comps.wake();
}

/// Install a fresh snapshot once enough records accumulated since the last
/// one, truncating the replayed prefix of the log. Only the plain back-end
/// has a snapshot form; sharded sessions keep their log from genesis.
fn maybe_snapshot(wal: &mut Wal, session: &Session, opts: &WalOptions) {
    if opts.snapshot_every == 0 || wal.records_since_snapshot() < opts.snapshot_every {
        return;
    }
    let Some(text) = session.snapshot_text() else { return };
    if let Err(e) = wal.install_snapshot(text.as_bytes()) {
        WAL_FLUSH_FAILURES.inc();
        eprintln!("coalloc-net: wal snapshot install failed: {e}");
    }
}

/// Scheduler-thread context beyond the session itself: test stall hooks
/// and the shared admin-plane state it periodically refreshes.
struct SchedCtx {
    exec_delay: Duration,
    stall_substr: Option<String>,
    admin: Option<Arc<AdminState>>,
}

/// How often the scheduler thread refreshes the admin plane's
/// capacity/utilization cells (they need `&mut` session access, so only
/// this thread can compute them).
const STATUS_REFRESH: Duration = Duration::from_millis(100);

impl SchedCtx {
    /// Apply the test stall, if configured for this line.
    fn maybe_stall(&self, line: &str) {
        if self.exec_delay.is_zero() {
            return;
        }
        match &self.stall_substr {
            Some(s) if !line.contains(s.as_str()) => {}
            _ => std::thread::sleep(self.exec_delay),
        }
    }

    /// Push the session's capacity/utilization into the admin snapshot if
    /// one exists and the last refresh is stale.
    fn maybe_refresh(&self, session: &mut Session, last: &mut Instant) {
        let Some(admin) = &self.admin else { return };
        if last.elapsed() < STATUS_REFRESH {
            return;
        }
        *last = Instant::now();
        if let Some((servers, now_secs, util)) = session.probe_status() {
            admin.servers.store(servers as u64, Ordering::Relaxed);
            admin.now_secs.store(now_secs.max(0) as u64, Ordering::Relaxed);
            admin
                .util_ppm
                .store((util.clamp(0.0, 1.0) * 1_000_000.0) as u64, Ordering::Relaxed);
            admin.initialized.store(true, Ordering::Relaxed);
        }
    }
}

/// Pop the longest run of consecutive batchable lines (starting with
/// `first`) off the front of the run queue, bounded by [`GROUP_MAX`].
fn take_group(first: Item, q: &mut VecDeque<Item>) -> Vec<Item> {
    let mut group = vec![first];
    while group.len() < GROUP_MAX {
        match q.front() {
            Some(next) if batchable(&next.line) => {
                group.push(q.pop_front().expect("front exists"));
            }
            _ => break,
        }
    }
    group
}

fn scheduler_loop(
    rx: Receiver<Batch>,
    mut session: Session,
    ctx: SchedCtx,
    wal: Option<(Wal, WalOptions)>,
    mut comps: Completions,
) {
    let mut last_refresh = Instant::now() - STATUS_REFRESH;
    let mut q: VecDeque<Item> = VecDeque::new();
    let mut connected = true;

    let Some((mut wal, opts)) = wal else {
        // Volatile mode: execute and reply immediately. Runs of submit
        // lines on the flattened queue — within one pipelined burst or
        // across connections — become one scheduler batch per pass.
        loop {
            if q.is_empty() {
                if !connected {
                    break;
                }
                match rx.recv() {
                    Ok(b) => ingest(b, &mut q),
                    Err(_) => break,
                }
            }
            // Greedy top-up: everything already queued joins this pass, so
            // bursts arriving while we executed batch up rather than
            // trickling through one by one.
            if connected {
                loop {
                    match rx.try_recv() {
                        Ok(b) => ingest(b, &mut q),
                        Err(mpsc::TryRecvError::Empty) => break,
                        Err(mpsc::TryRecvError::Disconnected) => {
                            connected = false;
                            break;
                        }
                    }
                }
            }
            let Some(item) = q.pop_front() else { continue };
            if batchable(&item.line) {
                let group = take_group(item, &mut q);
                BATCH_LINES.observe(group.len() as u64);
                for it in &group {
                    ctx.maybe_stall(&it.line);
                }
                let lines: Vec<&str> = group.iter().map(|i| i.line.as_str()).collect();
                let texts = exec_batch_guarded(&mut session, &lines);
                ctx.maybe_refresh(&mut session, &mut last_refresh);
                for (mut it, result) in group.into_iter().zip(texts) {
                    it.stamps.mark_decided();
                    let text = match result {
                        Ok(r) => r,
                        Err(e) => format!("error: {e}"),
                    };
                    send_done(&mut comps, it.token, it.seq, it.line, text, it.stamps);
                }
            } else {
                let mut item = item;
                ctx.maybe_stall(&item.line);
                let text = match exec_guarded(&mut session, &item.line) {
                    Ok(r) => r,
                    Err(e) => format!("error: {e}"),
                };
                item.stamps.mark_decided();
                ctx.maybe_refresh(&mut session, &mut last_refresh);
                send_done(&mut comps, item.token, item.seq, item.line, text, item.stamps);
            }
            comps.wake();
        }
        return;
    };

    // Durable mode: group commit. Mutating commands are appended to the WAL
    // and their replies *withheld* until an fsync covers them; a flush
    // happens when the queue goes idle (adaptive), when the oldest withheld
    // reply has waited `flush_interval`, or when the batch is full.
    let mut pending: Vec<PendingDone> = Vec::new();
    let mut oldest = Instant::now();
    loop {
        if q.is_empty() {
            if !connected {
                break;
            }
            let got = if pending.is_empty() {
                match rx.recv() {
                    Ok(b) => Some(b),
                    Err(_) => {
                        connected = false;
                        None
                    }
                }
            } else if opts.flush_interval.is_zero() {
                match rx.try_recv() {
                    Ok(b) => Some(b),
                    Err(mpsc::TryRecvError::Empty) => None,
                    Err(mpsc::TryRecvError::Disconnected) => {
                        connected = false;
                        None
                    }
                }
            } else {
                let elapsed = oldest.elapsed();
                if elapsed >= opts.flush_interval {
                    None
                } else {
                    match rx.recv_timeout(opts.flush_interval - elapsed) {
                        Ok(b) => Some(b),
                        Err(mpsc::RecvTimeoutError::Timeout) => None,
                        Err(mpsc::RecvTimeoutError::Disconnected) => {
                            connected = false;
                            None
                        }
                    }
                }
            };
            match got {
                Some(b) => ingest(b, &mut q),
                None => {
                    flush(&mut wal, &mut pending, &mut comps);
                    maybe_snapshot(&mut wal, &session, &opts);
                    ctx.maybe_refresh(&mut session, &mut last_refresh);
                    continue;
                }
            }
        }
        if connected {
            loop {
                match rx.try_recv() {
                    Ok(b) => ingest(b, &mut q),
                    Err(mpsc::TryRecvError::Empty) => break,
                    Err(mpsc::TryRecvError::Disconnected) => {
                        connected = false;
                        break;
                    }
                }
            }
        }
        let Some(item) = q.pop_front() else { continue };

        if batchable(&item.line) {
            // Batched durable path: decide the whole group in one scheduler
            // call, append one WAL record per line in batch order, and let
            // the adaptive flush cover them all with a single fsync group.
            let group = take_group(item, &mut q);
            BATCH_LINES.observe(group.len() as u64);
            for it in &group {
                ctx.maybe_stall(&it.line);
            }
            let lines: Vec<&str> = group.iter().map(|i| i.line.as_str()).collect();
            let texts = exec_batch_guarded(&mut session, &lines);
            ctx.maybe_refresh(&mut session, &mut last_refresh);
            for (mut it, result) in group.into_iter().zip(texts) {
                it.stamps.mark_decided();
                match result {
                    Ok(reply) => {
                        // submit always mutates: withhold the reply until
                        // an fsync covers its record.
                        let mut payload =
                            Vec::with_capacity(it.line.len() + 1 + reply.len());
                        payload.extend_from_slice(it.line.as_bytes());
                        payload.push(b'\n');
                        payload.extend_from_slice(reply.as_bytes());
                        match wal.append(&payload) {
                            Ok(()) => {
                                if pending.is_empty() {
                                    oldest = Instant::now();
                                }
                                pending.push(PendingDone {
                                    token: it.token,
                                    seq: it.seq,
                                    line: it.line,
                                    text: reply,
                                    stamps: it.stamps,
                                });
                            }
                            Err(e) => {
                                WAL_FLUSH_FAILURES.inc();
                                eprintln!("coalloc-net: wal append failed: {e}");
                                send_done(
                                    &mut comps,
                                    it.token,
                                    it.seq,
                                    it.line,
                                    format!("error: wal append failed: {e}"),
                                    it.stamps,
                                );
                            }
                        }
                    }
                    // Parse errors never touched the scheduler: nothing to
                    // make durable, release immediately.
                    Err(e) => send_done(
                        &mut comps,
                        it.token,
                        it.seq,
                        it.line,
                        format!("error: {e}"),
                        it.stamps,
                    ),
                }
            }
            if pending.len() >= MAX_BATCH {
                flush(&mut wal, &mut pending, &mut comps);
            }
            comps.wake();
            continue;
        }

        let mut item = item;
        ctx.maybe_stall(&item.line);
        let verb = item.line.split_whitespace().next().unwrap_or("");
        let is_load = verb == "load";
        let mutates = proto::mutating(verb);
        let result = exec_guarded(&mut session, &item.line);
        item.stamps.mark_decided();
        ctx.maybe_refresh(&mut session, &mut last_refresh);
        match result {
            Ok(reply) if is_load => {
                // `load` replaces the whole state from an external file the
                // replay could not re-read: persist it as a snapshot (which
                // first syncs every earlier record), never as a log record.
                let status = match session.snapshot_text() {
                    Some(text) => wal.install_snapshot(text.as_bytes()),
                    None => Ok(()), // unreachable: load always installs plain
                };
                match status {
                    Ok(()) => {
                        flush(&mut wal, &mut pending, &mut comps); // records are durable; release
                        send_done(&mut comps, item.token, item.seq, item.line, reply, item.stamps);
                    }
                    Err(e) => {
                        WAL_FLUSH_FAILURES.inc();
                        eprintln!("coalloc-net: wal snapshot install failed: {e}");
                        send_done(
                            &mut comps,
                            item.token,
                            item.seq,
                            item.line,
                            format!("error: wal snapshot install failed: {e}"),
                            item.stamps,
                        );
                    }
                }
            }
            Ok(reply) if mutates => {
                let mut payload =
                    Vec::with_capacity(item.line.len() + 1 + reply.len());
                payload.extend_from_slice(item.line.as_bytes());
                payload.push(b'\n');
                payload.extend_from_slice(reply.as_bytes());
                match wal.append(&payload) {
                    Ok(()) => {
                        if pending.is_empty() {
                            oldest = Instant::now();
                        }
                        pending.push(PendingDone {
                            token: item.token,
                            seq: item.seq,
                            line: item.line,
                            text: reply,
                            stamps: item.stamps,
                        });
                        if pending.len() >= MAX_BATCH {
                            flush(&mut wal, &mut pending, &mut comps);
                        }
                    }
                    Err(e) => {
                        WAL_FLUSH_FAILURES.inc();
                        eprintln!("coalloc-net: wal append failed: {e}");
                        send_done(
                            &mut comps,
                            item.token,
                            item.seq,
                            item.line,
                            format!("error: wal append failed: {e}"),
                            item.stamps,
                        );
                    }
                }
            }
            Ok(reply) => send_done(&mut comps, item.token, item.seq, item.line, reply, item.stamps),
            Err(e) => send_done(
                &mut comps,
                item.token,
                item.seq,
                item.line,
                format!("error: {e}"),
                item.stamps,
            ),
        }
        comps.wake();
    }
    // Graceful drain: the I/O loops are gone, but every acknowledged
    // command must be durable before the thread exits — the shutdown fsync.
    flush(&mut wal, &mut pending, &mut comps);
}
