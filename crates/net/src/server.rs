//! The concurrent TCP front-end.
//!
//! Threading model (DESIGN.md §10): one **accept thread** feeds accepted
//! sockets into a bounded hand-off channel; a fixed pool of **worker
//! threads** each drives one connection at a time (line framing, timeouts,
//! reply writes); every parsed command line crosses a bounded MPSC queue to
//! the single **scheduler thread**, which owns the [`Session`] and executes
//! commands strictly in arrival order. Serializing all sessions through one
//! queue is what makes the server's decisions deterministic and its per-
//! session reply stream byte-identical to the same script on stdin.
//!
//! Admission control happens at both bounded edges: a full accept backlog
//! or a full command queue sheds with the [`BUSY_REPLY`] line instead of
//! queueing unboundedly (`net_shed_total`). Slow or hostile clients are
//! bounded by per-connection read/write timeouts, a per-line read deadline
//! (anti-slow-loris) and a maximum line length.

use crate::admin::{AdminPlane, AdminState};
use crate::proto::{self, BUSY_REPLY};
use crate::session::Session;
use crate::slow;
use crate::stage::Stamps;
use coalloc_wal::{Wal, WalConfig, WalError};
use obs::{LazyCounter, LazyGauge, LazyHistogram};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::AssertUnwindSafe;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender, SyncSender, TrySendError};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

static CONNECTIONS: LazyCounter = LazyCounter::new("net_connections_total");
static ACTIVE: LazyGauge = LazyGauge::new("net_conns_active");
static LINES: LazyCounter = LazyCounter::new("net_lines_total");
static REPLIES: LazyCounter = LazyCounter::new("net_replies_total");
static SHED: LazyCounter = LazyCounter::new("net_shed_total");
static SHED_ACCEPT: LazyCounter = LazyCounter::new("net_shed_accept_total");
static SHED_QUEUE: LazyCounter = LazyCounter::new("net_shed_queue_total");
static ERRORS: LazyCounter = LazyCounter::new("net_errors_total");
static REQUEST_US: LazyHistogram = LazyHistogram::new("net_request_us");
static QUEUE_WAIT_US: LazyHistogram = LazyHistogram::new("net_queue_wait_us");
static EXEC_PANICS: LazyCounter = LazyCounter::new("net_exec_panics_total");
static CONN_PANICS: LazyCounter = LazyCounter::new("net_conn_panics_total");
static WAL_REPLAYED: LazyCounter = LazyCounter::new("wal_recovery_replayed_total");
static WAL_FLUSH_FAILURES: LazyCounter = LazyCounter::new("wal_flush_failures_total");
/// Commands currently sitting in the bounded command queue. Incremented by
/// the enqueuing worker, decremented by the scheduler's dequeue, so the
/// admin plane's `/readyz` can compare it against the queue bound.
static QUEUE_DEPTH: LazyGauge = LazyGauge::new("net_queue_depth");
/// Lines per scheduler batch: how many queued `submit` commands each
/// scheduler-thread wake-up grouped into one `submit_batch` call. Mostly 1
/// at low load; grows with concurrent connections under pressure.
static BATCH_LINES: LazyHistogram = LazyHistogram::new("net_batch_lines");

/// Configuration of a [`Server`]. The defaults suit an interactive
/// deployment; load tests shrink the timeouts and grow the pool.
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// Address to bind, e.g. `127.0.0.1:7077` (port 0 picks a free port).
    pub addr: String,
    /// Worker threads; also the number of concurrently served connections.
    pub workers: usize,
    /// Bound of the command queue between workers and the scheduler thread.
    pub queue_depth: usize,
    /// Bound of the accepted-connection hand-off channel. Connections
    /// beyond `workers + accept_backlog` are shed with [`BUSY_REPLY`].
    pub accept_backlog: usize,
    /// Maximum accepted line length in bytes (newline excluded).
    pub max_line: usize,
    /// Per-connection read deadline, applied twice: a connection idle this
    /// long is closed (`error: idle timeout`), and a line still unfinished
    /// this long after its first byte is closed (`error: line timeout`,
    /// the anti-slow-loris bound).
    pub read_timeout: Duration,
    /// Per-connection write timeout for replies.
    pub write_timeout: Duration,
    /// Shard count handed to each session's `init` (1 = plain scheduler).
    pub shards: u32,
    /// Test hook: artificial delay before each command execution, to make
    /// queue buildup reproducible in shed/backpressure tests.
    #[doc(hidden)]
    pub exec_delay: Duration,
    /// Test hook: when set, [`NetConfig::exec_delay`] applies only to lines
    /// containing this substring, so a test can stall one chosen command
    /// and assert it lands in the slow-request capture while its neighbours
    /// do not. `None` (the default) delays every command as before.
    #[doc(hidden)]
    pub stall_substr: Option<String>,
    /// Durability: when set, every mutating command is appended to a
    /// write-ahead log and fsynced *before* its reply is released, and
    /// [`Server::bind`] recovers the previous state from that log
    /// (DESIGN.md §13). `None` (the default) keeps the server volatile.
    pub wal: Option<WalOptions>,
    /// Address for the admin HTTP plane (`/metrics`, `/healthz`, `/readyz`,
    /// `/status`, `/debug/slow`), e.g. `127.0.0.1:9090` (port 0 picks a
    /// free port). `None` (the default) serves no admin plane. The plane is
    /// non-normative and operator-facing (DESIGN.md §8); it binds only
    /// after WAL recovery finished, so a reachable `/readyz` never shows a
    /// half-recovered scheduler.
    pub admin_addr: Option<String>,
    /// End-to-end latency above which a request's full stage timeline is
    /// retained in the slow-request ring (`GET /debug/slow`, the `slow`
    /// command). Shed and errored requests are always captured.
    /// `Duration::ZERO` disables latency-based capture.
    pub slow_threshold: Duration,
    /// Capacity of the slow-request ring; the oldest record is dropped
    /// when a new capture would exceed it.
    pub slow_capacity: usize,
}

/// Write-ahead-log configuration for a durable [`Server`].
#[derive(Clone, Debug)]
pub struct WalOptions {
    /// Directory holding segment and snapshot files (created if missing).
    pub dir: PathBuf,
    /// Group-commit bound: a reply waits at most this long for its fsync
    /// batch. `Duration::ZERO` (the default) flushes adaptively — as soon
    /// as the command queue goes momentarily idle — which batches under
    /// load without adding any fixed latency.
    pub flush_interval: Duration,
    /// Install a snapshot and truncate replayed history every this many
    /// logged records (0 disables snapshotting; plain back-end only).
    pub snapshot_every: u64,
    /// Byte size at which the active segment file rolls over.
    pub segment_bytes: u64,
}

impl WalOptions {
    /// Durability with default batching (adaptive flush, snapshot every
    /// 4096 records, 8 MiB segments).
    pub fn new(dir: impl Into<PathBuf>) -> WalOptions {
        WalOptions {
            dir: dir.into(),
            flush_interval: Duration::ZERO,
            snapshot_every: 4096,
            segment_bytes: 8 * 1024 * 1024,
        }
    }
}

impl Default for NetConfig {
    fn default() -> NetConfig {
        NetConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 8,
            queue_depth: 64,
            accept_backlog: 8,
            max_line: crate::proto::DEFAULT_MAX_LINE,
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(10),
            shards: 1,
            exec_delay: Duration::ZERO,
            stall_substr: None,
            wal: None,
            admin_addr: None,
            slow_threshold: Duration::from_micros(slow::DEFAULT_THRESHOLD_US),
            slow_capacity: slow::DEFAULT_CAPACITY,
        }
    }
}

/// A command line in flight from a worker to the scheduler thread. The
/// [`Stamps`] ride along and come back in the [`Reply`], so the worker can
/// attribute the full pipeline and capture the tail without re-parsing.
struct Job {
    line: String,
    stamps: Stamps,
    reply: Sender<Reply>,
}

/// The scheduler thread's answer to one [`Job`]: the reply text, the
/// original line (so tail capture needs no clone on the enqueue path), and
/// the stamps as of release.
struct Reply {
    line: String,
    text: String,
    stamps: Stamps,
}

/// A running TCP server. Dropping it (or calling [`Server::shutdown`])
/// drains gracefully: stop accepting, finish in-flight commands, join all
/// threads.
///
/// ```no_run
/// use coalloc_net::{NetConfig, Server};
///
/// let server = Server::bind(NetConfig::default()).unwrap();
/// println!("listening on {}", server.local_addr());
/// // ... serve until shutdown ...
/// server.shutdown();
/// ```
pub struct Server {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_handle: Option<JoinHandle<()>>,
    worker_handles: Vec<JoinHandle<()>>,
    sched_handle: Option<JoinHandle<()>>,
    admin: Option<AdminPlane>,
}

impl Server {
    /// Bind `cfg.addr` and spawn the accept loop, worker pool and scheduler
    /// thread. Returns once the listener is live (connections race no
    /// startup window). With `cfg.wal` set, the previous state is recovered
    /// from the log first; a corrupt or diverging log fails the bind rather
    /// than silently serving from a wrong state.
    pub fn bind(cfg: NetConfig) -> std::io::Result<Server> {
        // Recover (or start fresh) before the listener exists, so no client
        // can observe a half-recovered scheduler.
        let (session, wal) = match cfg.wal.clone() {
            Some(opts) => {
                let (wal, session) = recover(&opts, cfg.shards)?;
                (session, Some((wal, opts)))
            }
            None => (Session::new(cfg.shards), None),
        };

        let listener = TcpListener::bind(&cfg.addr)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));

        // Latency attribution and tail capture are live from request one.
        crate::stage::register();
        slow::configure(
            cfg.slow_threshold.as_micros() as u64,
            cfg.slow_capacity.max(1),
        );

        // The admin plane binds after recovery (above) so a reachable
        // `/readyz` implies the WAL replay already finished.
        let admin_state = match &cfg.admin_addr {
            Some(addr) => {
                let state = Arc::new(AdminState::new(
                    cfg.shards,
                    cfg.workers.max(1),
                    cfg.queue_depth.max(1),
                    wal.is_some(),
                    cfg.slow_threshold.as_micros() as u64,
                    Arc::clone(&stop),
                ));
                Some((addr.clone(), state))
            }
            None => None,
        };
        let admin = match &admin_state {
            Some((addr, state)) => Some(AdminPlane::spawn(addr, Arc::clone(state))?),
            None => None,
        };

        // The scheduler thread: sole owner of the session; executes command
        // lines strictly in queue order.
        let (job_tx, job_rx) = mpsc::sync_channel::<Job>(cfg.queue_depth.max(1));
        let ctx = SchedCtx {
            exec_delay: cfg.exec_delay,
            stall_substr: cfg.stall_substr.clone(),
            admin: admin_state.map(|(_, state)| state),
        };
        let sched_handle = std::thread::Builder::new()
            .name("coalloc-net-sched".into())
            .spawn(move || scheduler_loop(job_rx, session, ctx, wal))?;

        // The worker pool: each worker serves one connection at a time.
        // A failed spawn aborts the bind: the channels drop, every thread
        // spawned so far observes a disconnect and exits.
        let (conn_tx, conn_rx) = mpsc::sync_channel::<TcpStream>(cfg.accept_backlog.max(1));
        let conn_rx = Arc::new(std::sync::Mutex::new(conn_rx));
        let mut worker_handles = Vec::with_capacity(cfg.workers.max(1));
        for i in 0..cfg.workers.max(1) {
            let rx = Arc::clone(&conn_rx);
            let tx = job_tx.clone();
            let cfg = cfg.clone();
            let stop = Arc::clone(&stop);
            worker_handles.push(
                std::thread::Builder::new()
                    .name(format!("coalloc-net-worker-{i}"))
                    .spawn(move || worker_loop(rx, tx, cfg, stop))?,
            );
        }
        drop(job_tx); // scheduler thread exits once all workers are gone

        let accept_stop = Arc::clone(&stop);
        let accept_handle = std::thread::Builder::new()
            .name("coalloc-net-accept".into())
            .spawn(move || accept_loop(listener, conn_tx, accept_stop))?;

        Ok(Server {
            local_addr,
            stop,
            accept_handle: Some(accept_handle),
            worker_handles,
            sched_handle: Some(sched_handle),
            admin,
        })
    }

    /// The bound address (resolves port 0 to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The bound admin-plane address, if [`NetConfig::admin_addr`] was set
    /// (resolves port 0 to the actual port).
    pub fn admin_addr(&self) -> Option<SocketAddr> {
        self.admin.as_ref().map(|a| a.addr)
    }

    /// Graceful drain: stop accepting, let workers finish their in-flight
    /// command and close their connections, then join every thread. Safe to
    /// call more than once.
    pub fn shutdown(mut self) {
        self.drain();
    }

    fn drain(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop with a no-op connection to ourselves.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        // The accept thread owned the only conn sender, so each worker's
        // next recv disconnects once the queued connections are drained;
        // blocked reads wake within one read timeout and observe `stop`.
        for h in self.worker_handles.drain(..) {
            let _ = h.join();
        }
        // All job senders are gone now: the scheduler thread drains the
        // queue and exits.
        if let Some(h) = self.sched_handle.take() {
            let _ = h.join();
        }
        // The admin plane goes last: it can report "not ready: draining"
        // right up until the command path is fully drained.
        if let Some(admin) = self.admin.as_mut() {
            admin.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.drain();
    }
}

/// Map a WAL failure to the bind error surface.
fn wal_io(e: WalError) -> std::io::Error {
    match e {
        WalError::Io(e) => e,
        corrupt => std::io::Error::new(ErrorKind::InvalidData, corrupt.to_string()),
    }
}

fn invalid(msg: String) -> std::io::Error {
    std::io::Error::new(ErrorKind::InvalidData, msg)
}

/// Execute one command, converting a panic into a shed-and-log error reply
/// instead of poisoning the scheduler thread (and with it every connection).
fn exec_guarded(session: &mut Session, line: &str) -> Result<String, String> {
    match std::panic::catch_unwind(AssertUnwindSafe(|| session.exec(line))) {
        Ok(result) => result,
        Err(_) => {
            EXEC_PANICS.inc();
            ERRORS.inc();
            eprintln!("coalloc-net: command panicked, shedding: {line}");
            Err("internal error: command panicked (see server log)".into())
        }
    }
}

/// Largest number of queued `submit` lines grouped into one scheduler batch
/// (bounds reply-latency spread within a group; the queue bound usually
/// bites first).
const GROUP_MAX: usize = 256;

/// Whether a queued line may join a scheduler batch: only `submit` commands
/// are grouped. Anything else — `release`, `advance`, `load`, `snapshot`,
/// `stats`, … — is a batch *barrier*: its reply or effect depends on every
/// earlier command having fully executed. Note a single connection never
/// pipelines (it blocks on each reply), so groups only ever form across
/// concurrent connections.
fn batchable(line: &str) -> bool {
    line.split_whitespace().next() == Some("submit")
}

/// Execute a group of submit lines as one scheduler batch, panic-guarded
/// like [`exec_guarded`]. A panic sheds the whole group — the group is a
/// single scheduler call, so per-line blame is unknowable.
fn exec_batch_guarded(session: &mut Session, lines: &[&str]) -> Vec<Result<String, String>> {
    match std::panic::catch_unwind(AssertUnwindSafe(|| session.exec_batch(lines))) {
        Ok(results) => results,
        Err(_) => {
            EXEC_PANICS.inc();
            ERRORS.add(lines.len() as u64);
            eprintln!(
                "coalloc-net: batched command panicked, shedding {} lines",
                lines.len()
            );
            lines
                .iter()
                .map(|_| Err("internal error: command panicked (see server log)".into()))
                .collect()
        }
    }
}

/// Dequeue one job, preferring the carry-over a previous group drain pulled
/// past its barrier. Fresh jobs get their queue accounting here.
fn next_job(rx: &Receiver<Job>, carry: &mut Option<Job>) -> Option<Job> {
    if let Some(job) = carry.take() {
        return Some(job);
    }
    match rx.recv() {
        Ok(mut job) => {
            QUEUE_DEPTH.add(-1);
            job.stamps.mark_dequeued();
            QUEUE_WAIT_US.observe(job.stamps.enqueued.elapsed().as_micros() as u64);
            Some(job)
        }
        Err(_) => None,
    }
}

/// Extend `group` with the already-queued run of submit lines (the drained
/// prefix of the command queue). The first non-submit line ends the group
/// and is parked in `carry` for the next loop turn.
fn drain_group(rx: &Receiver<Job>, group: &mut Vec<Job>, carry: &mut Option<Job>) {
    while group.len() < GROUP_MAX {
        match rx.try_recv() {
            Ok(mut job) => {
                QUEUE_DEPTH.add(-1);
                job.stamps.mark_dequeued();
                QUEUE_WAIT_US.observe(job.stamps.enqueued.elapsed().as_micros() as u64);
                if batchable(&job.line) {
                    group.push(job);
                } else {
                    *carry = Some(job);
                    break;
                }
            }
            Err(_) => break,
        }
    }
}

/// Open the WAL and rebuild the session it describes: install the newest
/// snapshot, then re-execute the logged commands in order, verifying that
/// every decision comes out byte-identical to the logged reply. Divergence
/// means the log does not describe this code's behaviour (corruption or a
/// cross-version restart) and refuses the recovery.
fn recover(opts: &WalOptions, shards: u32) -> std::io::Result<(Wal, Session)> {
    let span = obs::trace::span("wal_recovery");
    let mut wcfg = WalConfig::new(&opts.dir);
    wcfg.segment_bytes = opts.segment_bytes.max(1);
    let (wal, recovery) = Wal::open(wcfg).map_err(wal_io)?;
    let mut session = Session::new(shards);
    if let Some(snap) = &recovery.snapshot {
        let text = std::str::from_utf8(snap)
            .map_err(|_| invalid("wal: snapshot is not UTF-8".into()))?;
        session
            .restore_plain(text)
            .map_err(|e| invalid(format!("wal: snapshot rejected: {e}")))?;
    }
    for (i, record) in recovery.records.iter().enumerate() {
        let text = std::str::from_utf8(record)
            .map_err(|_| invalid(format!("wal: record {i} is not UTF-8")))?;
        let (line, logged_reply) = text
            .split_once('\n')
            .ok_or_else(|| invalid(format!("wal: record {i} has no reply separator")))?;
        let replayed = exec_guarded(&mut session, line)
            .map_err(|e| invalid(format!("wal: record {i} ({line:?}) failed on replay: {e}")))?;
        if replayed != logged_reply {
            return Err(invalid(format!(
                "wal: replay divergence at record {i} ({line:?}): \
                 recovered scheduler answered {replayed:?}, log has {logged_reply:?}"
            )));
        }
    }
    WAL_REPLAYED.add(recovery.records.len() as u64);
    drop(span);
    Ok((wal, session))
}

/// A reply withheld until its WAL record is fsynced (group commit).
struct PendingReply {
    reply: Sender<Reply>,
    line: String,
    text: String,
    stamps: Stamps,
}

/// Largest fsync batch: bounds how much reply latency one flush can carry.
const MAX_BATCH: usize = 512;

/// Sync the WAL tail and release every withheld reply. On fsync failure the
/// commands stay applied in memory but their replies become errors: a
/// client must never read an `ok`/`granted` that could vanish in a crash.
fn flush(wal: &mut Wal, pending: &mut Vec<PendingReply>) {
    if pending.is_empty() && wal.unsynced_records() == 0 {
        return;
    }
    let failed = match wal.sync() {
        Ok(()) => None,
        Err(e) => {
            WAL_FLUSH_FAILURES.inc();
            eprintln!("coalloc-net: wal sync failed: {e}");
            Some(e.to_string())
        }
    };
    for mut p in pending.drain(..) {
        // The fsync that just completed is what released these replies:
        // decision → here is the WAL stall each of them paid.
        p.stamps.mark_released();
        REQUEST_US.observe(
            p.stamps.released.unwrap_or_else(Instant::now)
                .saturating_duration_since(p.stamps.enqueued)
                .as_micros() as u64,
        );
        let text = match &failed {
            None => p.text,
            Some(e) => format!("error: wal sync failed: {e}"),
        };
        // A dead worker/connection just drops the reply; the command's
        // effect stands (documented at-most-once reply delivery).
        let _ = p.reply.send(Reply {
            line: p.line,
            text,
            stamps: p.stamps,
        });
    }
}

/// Install a fresh snapshot once enough records accumulated since the last
/// one, truncating the replayed prefix of the log. Only the plain back-end
/// has a snapshot form; sharded sessions keep their log from genesis.
fn maybe_snapshot(wal: &mut Wal, session: &Session, opts: &WalOptions) {
    if opts.snapshot_every == 0 || wal.records_since_snapshot() < opts.snapshot_every {
        return;
    }
    let Some(text) = session.snapshot_text() else { return };
    if let Err(e) = wal.install_snapshot(text.as_bytes()) {
        WAL_FLUSH_FAILURES.inc();
        eprintln!("coalloc-net: wal snapshot install failed: {e}");
    }
}

/// Scheduler-thread context beyond the session itself: test stall hooks
/// and the shared admin-plane state it periodically refreshes.
struct SchedCtx {
    exec_delay: Duration,
    stall_substr: Option<String>,
    admin: Option<Arc<AdminState>>,
}

/// How often the scheduler thread refreshes the admin plane's
/// capacity/utilization cells (they need `&mut` session access, so only
/// this thread can compute them).
const STATUS_REFRESH: Duration = Duration::from_millis(100);

impl SchedCtx {
    /// Apply the test stall, if configured for this line.
    fn maybe_stall(&self, line: &str) {
        if self.exec_delay.is_zero() {
            return;
        }
        match &self.stall_substr {
            Some(s) if !line.contains(s.as_str()) => {}
            _ => std::thread::sleep(self.exec_delay),
        }
    }

    /// Push the session's capacity/utilization into the admin snapshot if
    /// one exists and the last refresh is stale.
    fn maybe_refresh(&self, session: &mut Session, last: &mut Instant) {
        let Some(admin) = &self.admin else { return };
        if last.elapsed() < STATUS_REFRESH {
            return;
        }
        *last = Instant::now();
        if let Some((servers, now_secs, util)) = session.probe_status() {
            admin.servers.store(servers as u64, Ordering::Relaxed);
            admin.now_secs.store(now_secs.max(0) as u64, Ordering::Relaxed);
            admin
                .util_ppm
                .store((util.clamp(0.0, 1.0) * 1_000_000.0) as u64, Ordering::Relaxed);
            admin.initialized.store(true, Ordering::Relaxed);
        }
    }
}

fn scheduler_loop(
    rx: Receiver<Job>,
    mut session: Session,
    ctx: SchedCtx,
    wal: Option<(Wal, WalOptions)>,
) {
    let mut last_refresh = Instant::now() - STATUS_REFRESH;
    let Some((mut wal, opts)) = wal else {
        // Volatile mode: execute and reply immediately. Queued runs of
        // submit lines become one scheduler batch per wake-up.
        let mut carry: Option<Job> = None;
        while let Some(mut job) = next_job(&rx, &mut carry) {
            if batchable(&job.line) {
                let mut group = vec![job];
                drain_group(&rx, &mut group, &mut carry);
                BATCH_LINES.observe(group.len() as u64);
                for j in &group {
                    ctx.maybe_stall(&j.line);
                }
                let lines: Vec<&str> = group.iter().map(|j| j.line.as_str()).collect();
                let texts = exec_batch_guarded(&mut session, &lines);
                ctx.maybe_refresh(&mut session, &mut last_refresh);
                for (mut j, result) in group.into_iter().zip(texts) {
                    j.stamps.mark_decided();
                    let text = match result {
                        Ok(r) => r,
                        Err(e) => format!("error: {e}"),
                    };
                    send_now(j, text);
                }
                continue;
            }
            ctx.maybe_stall(&job.line);
            let text = match exec_guarded(&mut session, &job.line) {
                Ok(r) => r,
                Err(e) => format!("error: {e}"),
            };
            job.stamps.mark_decided();
            ctx.maybe_refresh(&mut session, &mut last_refresh);
            send_now(job, text);
        }
        return;
    };

    // Durable mode: group commit. Mutating commands are appended to the WAL
    // and their replies *withheld* until an fsync covers them; a flush
    // happens when the queue goes idle (adaptive), when the oldest withheld
    // reply has waited `flush_interval`, or when the batch is full.
    let mut pending: Vec<PendingReply> = Vec::new();
    let mut oldest = Instant::now();
    let mut carry: Option<Job> = None;
    loop {
        // A carried job was already dequeued and accounted by the group
        // drain that hit it as a barrier; fresh jobs are accounted below.
        let next = if carry.is_some() {
            carry.take()
        } else {
            let fresh = if pending.is_empty() {
                match rx.recv() {
                    Ok(j) => Some(j),
                    Err(_) => break,
                }
            } else if opts.flush_interval.is_zero() {
                match rx.try_recv() {
                    Ok(j) => Some(j),
                    Err(mpsc::TryRecvError::Empty) => None,
                    Err(mpsc::TryRecvError::Disconnected) => break,
                }
            } else {
                let elapsed = oldest.elapsed();
                if elapsed >= opts.flush_interval {
                    None
                } else {
                    match rx.recv_timeout(opts.flush_interval - elapsed) {
                        Ok(j) => Some(j),
                        Err(mpsc::RecvTimeoutError::Timeout) => None,
                        Err(mpsc::RecvTimeoutError::Disconnected) => break,
                    }
                }
            };
            fresh.map(|mut j| {
                QUEUE_DEPTH.add(-1);
                j.stamps.mark_dequeued();
                QUEUE_WAIT_US.observe(j.stamps.enqueued.elapsed().as_micros() as u64);
                j
            })
        };
        let Some(mut job) = next else {
            flush(&mut wal, &mut pending);
            maybe_snapshot(&mut wal, &session, &opts);
            ctx.maybe_refresh(&mut session, &mut last_refresh);
            continue;
        };

        if batchable(&job.line) {
            // Batched durable path: decide the whole group in one scheduler
            // call, append one WAL record per line in batch order, and let
            // the adaptive flush cover them all with a single fsync group.
            let mut group = vec![job];
            drain_group(&rx, &mut group, &mut carry);
            BATCH_LINES.observe(group.len() as u64);
            for j in &group {
                ctx.maybe_stall(&j.line);
            }
            let lines: Vec<&str> = group.iter().map(|j| j.line.as_str()).collect();
            let texts = exec_batch_guarded(&mut session, &lines);
            ctx.maybe_refresh(&mut session, &mut last_refresh);
            for (mut j, result) in group.into_iter().zip(texts) {
                j.stamps.mark_decided();
                match result {
                    Ok(reply) => {
                        // submit always mutates: withhold the reply until
                        // an fsync covers its record.
                        let mut payload =
                            Vec::with_capacity(j.line.len() + 1 + reply.len());
                        payload.extend_from_slice(j.line.as_bytes());
                        payload.push(b'\n');
                        payload.extend_from_slice(reply.as_bytes());
                        match wal.append(&payload) {
                            Ok(()) => {
                                if pending.is_empty() {
                                    oldest = Instant::now();
                                }
                                pending.push(PendingReply {
                                    reply: j.reply,
                                    line: j.line,
                                    text: reply,
                                    stamps: j.stamps,
                                });
                            }
                            Err(e) => {
                                WAL_FLUSH_FAILURES.inc();
                                eprintln!("coalloc-net: wal append failed: {e}");
                                send_now(j, format!("error: wal append failed: {e}"));
                            }
                        }
                    }
                    // Parse errors never touched the scheduler: nothing to
                    // make durable, release immediately.
                    Err(e) => send_now(j, format!("error: {e}")),
                }
            }
            if pending.len() >= MAX_BATCH {
                flush(&mut wal, &mut pending);
            }
            continue;
        }

        ctx.maybe_stall(&job.line);
        let verb = job.line.split_whitespace().next().unwrap_or("");
        let is_load = verb == "load";
        let mutates = proto::mutating(verb);
        let result = exec_guarded(&mut session, &job.line);
        job.stamps.mark_decided();
        ctx.maybe_refresh(&mut session, &mut last_refresh);
        match result {
            Ok(reply) if is_load => {
                // `load` replaces the whole state from an external file the
                // replay could not re-read: persist it as a snapshot (which
                // first syncs every earlier record), never as a log record.
                let status = match session.snapshot_text() {
                    Some(text) => wal.install_snapshot(text.as_bytes()),
                    None => Ok(()), // unreachable: load always installs plain
                };
                match status {
                    Ok(()) => {
                        flush(&mut wal, &mut pending); // records are durable; release
                        send_now(job, reply);
                    }
                    Err(e) => {
                        WAL_FLUSH_FAILURES.inc();
                        eprintln!("coalloc-net: wal snapshot install failed: {e}");
                        send_now(job, format!("error: wal snapshot install failed: {e}"));
                    }
                }
            }
            Ok(reply) if mutates => {
                let mut payload =
                    Vec::with_capacity(job.line.len() + 1 + reply.len());
                payload.extend_from_slice(job.line.as_bytes());
                payload.push(b'\n');
                payload.extend_from_slice(reply.as_bytes());
                match wal.append(&payload) {
                    Ok(()) => {
                        if pending.is_empty() {
                            oldest = Instant::now();
                        }
                        pending.push(PendingReply {
                            reply: job.reply,
                            line: job.line,
                            text: reply,
                            stamps: job.stamps,
                        });
                        if pending.len() >= MAX_BATCH {
                            flush(&mut wal, &mut pending);
                        }
                    }
                    Err(e) => {
                        WAL_FLUSH_FAILURES.inc();
                        eprintln!("coalloc-net: wal append failed: {e}");
                        send_now(job, format!("error: wal append failed: {e}"));
                    }
                }
            }
            Ok(reply) => send_now(job, reply),
            Err(e) => send_now(job, format!("error: {e}")),
        }
    }
    // Graceful drain: the workers are gone, but every acknowledged command
    // must be durable before the thread exits — the shutdown fsync.
    flush(&mut wal, &mut pending);
}

/// Release a reply immediately (non-mutating commands, errors: nothing to
/// make durable first). The WAL-stall stage records as ~0 here.
fn send_now(mut job: Job, text: String) {
    job.stamps.mark_released();
    REQUEST_US.observe(job.stamps.enqueued.elapsed().as_micros() as u64);
    let _ = job.reply.send(Reply {
        line: job.line,
        text,
        stamps: job.stamps,
    });
}

fn accept_loop(
    listener: TcpListener,
    conn_tx: SyncSender<TcpStream>,
    stop: Arc<AtomicBool>,
) {
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        CONNECTIONS.inc();
        match conn_tx.try_send(stream) {
            Ok(()) => {}
            Err(TrySendError::Full(mut stream)) | Err(TrySendError::Disconnected(mut stream)) => {
                // Shed at the edge: tell the client to come back, drop it.
                SHED.inc();
                SHED_ACCEPT.inc();
                let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
                let _ = stream.write_all(format!("{BUSY_REPLY}\n").as_bytes());
                // Half-close so the busy reply travels with a FIN. If the
                // client already pipelined a command the close may still
                // surface as a reset on its side; PROTOCOL.md tells clients
                // to treat that as a shed and reconnect.
                let _ = stream.shutdown(std::net::Shutdown::Write);
            }
        }
    }
}

fn worker_loop(
    conn_rx: Arc<std::sync::Mutex<Receiver<TcpStream>>>,
    job_tx: SyncSender<Job>,
    cfg: NetConfig,
    stop: Arc<AtomicBool>,
) {
    loop {
        // Workers share the receiver behind a mutex (std mpsc has no
        // multi-consumer receiver); the lock is held only while dequeuing.
        // A poisoned lock (a sibling panicked while dequeuing) is recovered,
        // not propagated: the receiver itself cannot be left inconsistent.
        let stream = {
            let rx = conn_rx.lock().unwrap_or_else(|e| e.into_inner());
            rx.recv()
        };
        let Ok(stream) = stream else { break };
        ACTIVE.add(1);
        let conn_id = next_conn_id();
        let conn_span = obs::trace::span_fields(
            "net_conn",
            vec![("id", obs::Value::U64(conn_id))],
        );
        // Shed-and-log: a panic while serving one connection drops that
        // connection only, never the worker (which would silently shrink
        // the pool until no connection is ever served again).
        let served = std::panic::catch_unwind(AssertUnwindSafe(|| {
            serve_connection(stream, &job_tx, &cfg, &stop, conn_id)
        }));
        if served.is_err() {
            CONN_PANICS.inc();
            ERRORS.inc();
            eprintln!("coalloc-net: connection handler panicked, dropping connection");
        }
        drop(conn_span);
        ACTIVE.add(-1);
    }
}

fn next_conn_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// Outcome of pulling one line out of the connection buffer.
enum Framed {
    Line(String),
    Eof,
    TooLong,
    LineTimeout,
    IdleTimeout,
    IoError,
}

/// Read until `buf` holds a full `\n`-terminated line (or a terminal
/// condition). `line_start` is the instant the current line began arriving:
/// the anti-slow-loris deadline is measured from there.
fn next_line(
    stream: &mut TcpStream,
    buf: &mut Vec<u8>,
    cfg: &NetConfig,
    stop: &AtomicBool,
) -> Framed {
    let mut line_start: Option<Instant> = if buf.is_empty() { None } else { Some(Instant::now()) };
    loop {
        if let Some(pos) = buf.iter().position(|&b| b == b'\n') {
            if pos > cfg.max_line {
                return Framed::TooLong;
            }
            let rest = buf.split_off(pos + 1);
            let mut line = std::mem::replace(buf, rest);
            line.pop(); // the newline
            if line.last() == Some(&b'\r') {
                line.pop();
            }
            return match String::from_utf8(line) {
                Ok(s) => Framed::Line(s),
                Err(_) => Framed::Line("\u{fffd}".into()), // hits `unknown command`
            };
        }
        if buf.len() > cfg.max_line {
            return Framed::TooLong;
        }
        if let Some(t0) = line_start {
            if t0.elapsed() > cfg.read_timeout {
                return Framed::LineTimeout;
            }
        }
        let mut chunk = [0u8; 1024];
        match stream.read(&mut chunk) {
            Ok(0) => return Framed::Eof,
            Ok(n) => {
                if buf.is_empty() {
                    line_start = Some(Instant::now());
                }
                buf.extend_from_slice(&chunk[..n]);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                // Idle tick: drain on shutdown, time out half-written lines.
                if stop.load(Ordering::SeqCst) {
                    return Framed::Eof;
                }
                if line_start.is_some() {
                    return Framed::LineTimeout;
                }
                return Framed::IdleTimeout;
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return Framed::IoError,
        }
    }
}

fn serve_connection(
    mut stream: TcpStream,
    job_tx: &SyncSender<Job>,
    cfg: &NetConfig,
    stop: &AtomicBool,
    conn_id: u64,
) {
    let _ = stream.set_read_timeout(Some(cfg.read_timeout));
    let _ = stream.set_write_timeout(Some(cfg.write_timeout));
    let _ = stream.set_nodelay(true);
    let mut buf: Vec<u8> = Vec::with_capacity(256);
    loop {
        let line = match next_line(&mut stream, &mut buf, cfg, stop) {
            Framed::Line(l) => l,
            Framed::Eof | Framed::IoError => break,
            Framed::TooLong => {
                ERRORS.inc();
                let _ = stream.write_all(
                    format!("error: line too long (max {} bytes)\n", cfg.max_line).as_bytes(),
                );
                break; // cannot resync framing: close
            }
            Framed::LineTimeout => {
                ERRORS.inc();
                let _ = stream.write_all(b"error: line timeout\n");
                break;
            }
            Framed::IdleTimeout => {
                let _ = stream.write_all(b"error: idle timeout\n");
                break;
            }
        };
        if Session::is_exit(&line) {
            break;
        }
        LINES.inc();
        let mut stamps = Stamps::new(); // stage zero: line framed
        let (reply_tx, reply_rx) = mpsc::channel();
        stamps.mark_enqueued();
        // Depth is bumped *before* the try_send so the scheduler's decrement
        // can never observe a job it was not charged for.
        QUEUE_DEPTH.add(1);
        let job = Job {
            line,
            stamps,
            reply: reply_tx,
        };
        let mut shed = false;
        let reply = match job_tx.try_send(job) {
            Ok(()) => match reply_rx.recv() {
                Ok(r) => r,
                Err(_) => break, // server draining mid-command
            },
            Err(TrySendError::Full(job)) => {
                QUEUE_DEPTH.add(-1);
                SHED.inc();
                SHED_QUEUE.inc();
                shed = true;
                Reply {
                    line: job.line,
                    text: BUSY_REPLY.to_string(),
                    stamps: job.stamps,
                }
            }
            Err(TrySendError::Disconnected(_)) => {
                QUEUE_DEPTH.add(-1);
                break;
            }
        };
        let Reply { line, text, stamps } = reply;
        let mut write_ok = true;
        if !text.is_empty() {
            REPLIES.inc();
            // One write syscall for reply + newline without cloning the
            // text: push the newline, write, pop it back off for capture.
            let mut out = text.into_bytes();
            out.push(b'\n');
            write_ok = stream.write_all(&out).is_ok();
            out.pop();
            // SAFETY-free round trip: `out` minus the newline is the same
            // UTF-8 string `text` was.
            let text = String::from_utf8(out).expect("reply was UTF-8");
            let total_us = stamps.finish_writeback();
            let outcome = if shed {
                Some(slow::Outcome::Shed)
            } else if text.starts_with("error") {
                Some(slow::Outcome::Error)
            } else if slow::threshold_us() > 0 && total_us > slow::threshold_us() {
                Some(slow::Outcome::Slow)
            } else {
                None
            };
            if let Some(outcome) = outcome {
                slow::capture(conn_id, &line, &text, outcome, &stamps, total_us);
            }
        } else {
            stamps.finish_writeback();
        }
        if !write_ok {
            break;
        }
        if stop.load(Ordering::SeqCst) {
            break; // drained: in-flight command finished and answered
        }
    }
}
