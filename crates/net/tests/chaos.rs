//! Network chaos: hostile and unlucky clients against a live server.
//!
//! Mid-command disconnects, slow-loris writes, oversized lines and
//! pipelined floods — after each storm the scheduler must still pass its
//! internal consistency checks and answer normally.

use coalloc_net::{Client, NetConfig, Server, BUSY_REPLY, PROTOCOL_VERSION};
use std::io::Write;
use std::time::Duration;

fn chaos_cfg() -> NetConfig {
    NetConfig {
        read_timeout: Duration::from_millis(250),
        write_timeout: Duration::from_millis(250),
        ..NetConfig::default()
    }
}

#[test]
fn oversized_line_is_rejected_and_connection_closed() {
    let cfg = NetConfig {
        max_line: 64,
        ..chaos_cfg()
    };
    let server = Server::bind(cfg).unwrap();

    // Oversized with a newline: parsed length exceeds the cap.
    let mut c = Client::connect(server.local_addr()).unwrap();
    let long = format!("submit {} 0 50 1", "9".repeat(100));
    assert_eq!(
        c.roundtrip(&long).unwrap(),
        "error: line too long (max 64 bytes)"
    );
    assert_eq!(c.recv_line().unwrap(), "", "connection must be closed");

    // Oversized without any newline: caught while still streaming.
    let mut c = Client::connect(server.local_addr()).unwrap();
    c.stream().write_all(&[b'a'; 200]).unwrap();
    assert_eq!(
        c.recv_line().unwrap(),
        "error: line too long (max 64 bytes)"
    );
    assert_eq!(c.recv_line().unwrap(), "");

    // The server is unharmed.
    let mut ok = Client::connect(server.local_addr()).unwrap();
    assert_eq!(ok.roundtrip("version").unwrap(), PROTOCOL_VERSION);
    drop(ok);
    server.shutdown();
}

#[test]
fn slow_loris_write_is_cut_off() {
    let server = Server::bind(chaos_cfg()).unwrap();
    let mut loris = Client::connect(server.local_addr()).unwrap();
    loris.set_timeout(Duration::from_secs(5)).unwrap();
    // Drip a command one byte at a time, slower than the line deadline
    // allows in total.
    let cmd = b"submit 0 0 50 1";
    let mut cut = false;
    for b in cmd {
        if loris.stream().write_all(&[*b]).is_err() {
            cut = true; // server already closed on us
            break;
        }
        std::thread::sleep(Duration::from_millis(60));
    }
    if !cut {
        // The server must answer with the timeout error and close, never
        // execute the half-line.
        let reply = loris.recv_line().unwrap_or_default();
        assert!(
            reply == "error: line timeout" || reply.is_empty(),
            "unexpected reply to a slow-loris: {reply}"
        );
    }
    // A healthy client is still served promptly.
    let mut ok = Client::connect(server.local_addr()).unwrap();
    assert_eq!(ok.roundtrip("init 2 10 100 10").unwrap(), "ok 2 servers");
    assert_eq!(ok.roundtrip("check").unwrap(), "ok");
    drop(ok);
    drop(loris);
    server.shutdown();
}

#[test]
fn idle_connection_is_reaped() {
    let server = Server::bind(chaos_cfg()).unwrap();
    let mut idle = Client::connect(server.local_addr()).unwrap();
    idle.set_timeout(Duration::from_secs(5)).unwrap();
    let reply = idle.recv_line().unwrap_or_default();
    assert!(
        reply == "error: idle timeout" || reply.is_empty(),
        "unexpected reply on idle connection: {reply}"
    );
    assert_eq!(idle.recv_line().unwrap_or_default(), "");
    drop(idle);
    server.shutdown();
}

#[test]
fn mid_command_disconnect_storm_keeps_state_consistent() {
    let server = Server::bind(chaos_cfg()).unwrap();
    let mut setup = Client::connect(server.local_addr()).unwrap();
    assert_eq!(setup.roundtrip("init 8 10 2000 10").unwrap(), "ok 8 servers");

    let addr = server.local_addr();
    let storms: Vec<_> = (0..16)
        .map(|i| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                match i % 4 {
                    // Full command, vanish before the reply.
                    0 => {
                        let _ = c.send(&format!("submit 0 {} 40 1", (i % 3) * 30));
                    }
                    // Partial command, vanish mid-line.
                    1 => {
                        let _ = c.stream().write_all(b"submit 0 0 4");
                    }
                    // Garbage, vanish.
                    2 => {
                        let _ = c.stream().write_all(b"\x00\xffnot-utf8\x01 junk\n");
                    }
                    // Normal citizen: submit and read the reply.
                    _ => {
                        let r = c.roundtrip(&format!("submit 0 {} 40 1", (i % 3) * 30));
                        let r = r.unwrap_or_default();
                        assert!(
                            r.starts_with("granted")
                                || r.starts_with("rejected")
                                || r == BUSY_REPLY,
                            "unexpected reply: {r}"
                        );
                    }
                }
                // Dropping `c` closes the socket, however far we got.
            })
        })
        .collect();
    for h in storms {
        h.join().unwrap();
    }
    std::thread::sleep(Duration::from_millis(100));

    // Whatever subset of the storm's commands executed, the scheduler's
    // internal indexes must be consistent and the session responsive.
    assert_eq!(setup.roundtrip("check").unwrap(), "ok");
    let stats = setup.roundtrip("stats").unwrap();
    assert!(stats.starts_with("now=0"), "{stats}");
    drop(setup);
    server.shutdown();
}

#[test]
fn pipelined_flood_gets_one_reply_per_line() {
    let cfg = NetConfig {
        queue_depth: 2,
        exec_delay: Duration::from_millis(2),
        ..chaos_cfg()
    };
    let server = Server::bind(cfg).unwrap();
    let addr = server.local_addr();
    let clients = 6;
    let lines = 20;
    let handles: Vec<_> = (0..clients)
        .map(|_| {
            std::thread::spawn(move || {
                let c = Client::connect(addr).unwrap();
                let mut script = String::new();
                for _ in 0..lines {
                    script.push_str("version\n");
                }
                script.push_str("exit\n");
                let out = c.exchange_script(&script).unwrap();
                let replies: Vec<&str> = out.lines().collect();
                assert_eq!(replies.len(), lines, "one reply per line:\n{out}");
                let busy = replies.iter().filter(|r| **r == BUSY_REPLY).count();
                for r in &replies {
                    assert!(
                        *r == BUSY_REPLY || *r == PROTOCOL_VERSION,
                        "unexpected reply: {r}"
                    );
                }
                busy
            })
        })
        .collect();
    let shed: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
    // Shedding is allowed (the queue is tiny) but must never eat a reply;
    // the per-line assertion above is the real invariant.
    println!("pipelined flood: {shed} busy replies across {clients} clients");
    server.shutdown();
}
