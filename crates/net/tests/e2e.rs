//! End-to-end tests: server + clients in-process over localhost.
//!
//! The central claim (ISSUE 4 acceptance): a TCP session's reply stream is
//! **byte-identical** to the same script interpreted on stdin, for both the
//! plain and the sharded back-end — plus snapshot/load round-trips through
//! a socket and scheduler-state invariants surviving client death.

use coalloc_net::{Client, NetConfig, Server, Session, BUSY_REPLY, PROTOCOL_VERSION};
use std::io::Write;
use std::time::Duration;

fn test_cfg(shards: u32) -> NetConfig {
    NetConfig {
        shards,
        read_timeout: Duration::from_millis(500),
        write_timeout: Duration::from_millis(500),
        ..NetConfig::default()
    }
}

/// The reference output: the same interpreter the stdin loop runs.
fn stdin_reference(script: &str, shards: u32) -> String {
    Session::new(shards).run_script(script)
}

#[test]
fn tcp_reply_stream_is_byte_identical_to_stdin_plain() {
    let script = "init 8 10 400 10\n\
                  submit 0 0 50 4\n\
                  submit 0 100 60 8\n\
                  deadline 0 0 20 2 100\n\
                  submit 0 0 500 1\n\
                  query 0 50\n\
                  attrs 2 5\n\
                  constrained 0 150 30 1 5\n\
                  release 0\n\
                  # a comment\n\
                  \n\
                  bogus command here\n\
                  advance 20\n\
                  stats\n\
                  check\n\
                  version\n\
                  help\n\
                  exit\n";
    let server = Server::bind(test_cfg(1)).unwrap();
    let client = Client::connect(server.local_addr()).unwrap();
    let over_tcp = client.exchange_script(script).unwrap();
    assert_eq!(over_tcp, stdin_reference(script, 1));
    server.shutdown();
}

#[test]
fn tcp_reply_stream_is_byte_identical_to_stdin_sharded() {
    let script = "init 8 10 400 10\n\
                  submit 0 0 50 4\n\
                  submit 0 100 60 8\n\
                  deadline 0 0 20 2 100\n\
                  submit 0 0 500 1\n\
                  query 0 50\n\
                  release 0\n\
                  submit 0 0 50 6\n\
                  advance 20\n\
                  stats\n\
                  check\n\
                  exit\n";
    let server = Server::bind(test_cfg(4)).unwrap();
    let client = Client::connect(server.local_addr()).unwrap();
    let over_tcp = client.exchange_script(script).unwrap();
    let reference = stdin_reference(script, 4);
    assert_eq!(over_tcp, reference);
    // And the sharded decisions match a plain session line for line
    // (the `query` reply differs only in the plain-only error).
    assert!(reference.starts_with("ok 8 servers over 4 shards"));
    server.shutdown();
}

#[test]
fn snapshot_load_roundtrips_through_a_tcp_session() {
    let path = std::env::temp_dir().join("coalloc-net-e2e-snap.txt");
    let p = path.to_str().unwrap();
    let server = Server::bind(test_cfg(1)).unwrap();

    let mut c1 = Client::connect(server.local_addr()).unwrap();
    assert_eq!(c1.roundtrip("init 4 10 200 10").unwrap(), "ok 4 servers");
    assert!(c1.roundtrip("submit 0 0 50 2").unwrap().starts_with("granted job=0"));
    assert_eq!(c1.roundtrip(&format!("snapshot {p}")).unwrap(), format!("ok wrote {p}"));
    drop(c1);

    // A *different* connection wipes and restores the shared scheduler.
    let mut c2 = Client::connect(server.local_addr()).unwrap();
    assert_eq!(c2.roundtrip("init 9").unwrap(), "ok 9 servers");
    assert_eq!(
        c2.roundtrip(&format!("load {p}")).unwrap(),
        "ok 4 servers restored"
    );
    // The restored state still has job 0's reservation: two servers busy.
    let free = c2.roundtrip("query 0 50").unwrap();
    assert_eq!(free, "free 2", "first line of the query reply");
    for _ in 0..2 {
        assert!(c2.recv_line().unwrap().trim_start().starts_with("server="));
    }
    assert_eq!(c2.roundtrip("release 0").unwrap(), "ok");
    assert_eq!(c2.roundtrip("check").unwrap(), "ok");
    drop(c2);
    server.shutdown();
    let _ = std::fs::remove_file(path);
}

#[test]
fn killed_client_mid_submit_leaves_invariants_intact() {
    let server = Server::bind(test_cfg(1)).unwrap();
    let mut setup = Client::connect(server.local_addr()).unwrap();
    assert_eq!(setup.roundtrip("init 4 10 400 10").unwrap(), "ok 4 servers");
    assert!(setup.roundtrip("submit 0 0 50 1").unwrap().starts_with("granted job=0"));

    // Case 1: the client dies with half a command on the wire. The partial
    // line must be discarded, not executed.
    let mut half = Client::connect(server.local_addr()).unwrap();
    half.stream().write_all(b"submit 0 0 50").unwrap(); // no newline
    drop(half); // RST/TCP FIN mid-command

    // Case 2: the client dies after the full command but before reading
    // the reply. The command executes; only the reply is lost.
    let mut gone = Client::connect(server.local_addr()).unwrap();
    gone.send("submit 0 0 50 2").unwrap();
    drop(gone);

    // Give the workers a beat to observe both disconnects.
    std::thread::sleep(Duration::from_millis(100));

    // The scheduler saw exactly two full submissions (jobs 0 and 1): the
    // partial line vanished, the orphaned grant holds resources, and the
    // internal indexes are consistent.
    let mut probe = Client::connect(server.local_addr()).unwrap();
    assert_eq!(probe.roundtrip("check").unwrap(), "ok");
    let free = probe.roundtrip("query 0 50").unwrap();
    assert_eq!(free, "free 1", "4 servers minus job 0 (1) minus orphan job 1 (2)");
    assert!(probe.recv_line().unwrap().trim_start().starts_with("server="));
    // The orphan is a real job: releasing it restores conservation.
    assert_eq!(probe.roundtrip("release 1").unwrap(), "ok");
    let free = probe.roundtrip("query 0 50").unwrap();
    assert_eq!(free, "free 3");
    for _ in 0..3 {
        probe.recv_line().unwrap();
    }
    assert_eq!(probe.roundtrip("check").unwrap(), "ok");
    drop(probe);
    server.shutdown();
}

#[test]
fn concurrent_clients_serialize_onto_one_scheduler() {
    let server = Server::bind(test_cfg(1)).unwrap();
    let mut setup = Client::connect(server.local_addr()).unwrap();
    assert_eq!(setup.roundtrip("init 16 10 4000 10").unwrap(), "ok 16 servers");

    let addr = server.local_addr();
    let clients = 8;
    let per_client = 25;
    let handles: Vec<_> = (0..clients)
        .map(|_| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                let (mut granted, mut rejected) = (0u32, 0u32);
                for i in 0..per_client {
                    let line = format!("submit 0 {} 40 2", (i % 5) * 50);
                    match c.roundtrip(&line).unwrap() {
                        r if r.starts_with("granted") => granted += 1,
                        r if r.starts_with("rejected") => rejected += 1,
                        other => panic!("unexpected reply: {other}"),
                    }
                }
                (granted, rejected)
            })
        })
        .collect();
    let mut total_granted = 0u32;
    let mut total_rejected = 0u32;
    for h in handles {
        let (g, r) = h.join().unwrap();
        total_granted += g;
        total_rejected += r;
    }
    assert_eq!(total_granted + total_rejected, clients * per_client);
    assert!(total_granted > 0, "some submissions must fit");

    // Every decision is visible and consistent on the shared scheduler.
    assert_eq!(setup.roundtrip("check").unwrap(), "ok");
    let stats = setup.roundtrip("stats").unwrap();
    assert!(stats.contains("ops="), "{stats}");
    drop(setup);
    server.shutdown();
}

#[test]
fn max_conns_overflow_sheds_with_busy() {
    // Admission bound of two: two held connections fill it, the third is
    // shed at accept with the busy reply and a close; once a held one
    // leaves, its slot is admitted again.
    let cfg = NetConfig {
        workers: 1,
        max_conns: 2,
        ..test_cfg(1)
    };
    let server = Server::bind(cfg).unwrap();
    let mut held1 = Client::connect(server.local_addr()).unwrap();
    assert_eq!(held1.roundtrip("version").unwrap(), PROTOCOL_VERSION);
    let mut held2 = Client::connect(server.local_addr()).unwrap();
    assert_eq!(held2.roundtrip("version").unwrap(), PROTOCOL_VERSION);
    let mut shed = Client::connect(server.local_addr()).unwrap();
    assert_eq!(shed.recv_line().unwrap(), BUSY_REPLY);
    assert_eq!(shed.recv_line().unwrap(), "", "shed connection is closed");
    // Releasing one admitted connection frees its slot (the close is
    // asynchronous: retry until the event loop reaps it).
    drop(held1);
    let mut admitted = None;
    for _ in 0..50 {
        let mut c = Client::connect(server.local_addr()).unwrap();
        match c.roundtrip("version") {
            Ok(r) if r == PROTOCOL_VERSION => {
                admitted = Some(c);
                break;
            }
            _ => std::thread::sleep(Duration::from_millis(20)),
        }
    }
    assert!(admitted.is_some(), "freed slot must admit a new connection");
    drop(held2);
    server.shutdown();
}

#[test]
fn command_queue_overflow_sheds_with_busy() {
    // Tiny command queue plus an artificial execution delay: while the
    // scheduler thread sleeps on connection 1's command and connection 2's
    // waits in the queue, connection 3's must be shed inline.
    let cfg = NetConfig {
        workers: 4,
        queue_depth: 1,
        exec_delay: Duration::from_millis(300),
        // Generous idle reaping: c3 sits quiet past the joins below.
        read_timeout: Duration::from_secs(5),
        ..test_cfg(1)
    };
    let server = Server::bind(cfg).unwrap();
    let addr = server.local_addr();
    let t1 = std::thread::spawn(move || {
        let mut c = Client::connect(addr).unwrap();
        c.roundtrip("version").unwrap()
    });
    std::thread::sleep(Duration::from_millis(80)); // job 1 now executing
    let t2 = std::thread::spawn(move || {
        let mut c = Client::connect(addr).unwrap();
        c.roundtrip("version").unwrap()
    });
    std::thread::sleep(Duration::from_millis(80)); // job 2 now queued
    let mut c3 = Client::connect(addr).unwrap();
    assert_eq!(c3.roundtrip("version").unwrap(), BUSY_REPLY);
    assert_eq!(t1.join().unwrap(), PROTOCOL_VERSION);
    assert_eq!(t2.join().unwrap(), PROTOCOL_VERSION);
    // The shed connection stays usable: retrying later succeeds.
    std::thread::sleep(Duration::from_millis(400));
    assert_eq!(c3.roundtrip("version").unwrap(), PROTOCOL_VERSION);
    drop(c3);
    server.shutdown();
}

#[test]
fn graceful_drain_answers_inflight_then_stops_accepting() {
    let cfg = NetConfig {
        exec_delay: Duration::from_millis(100),
        ..test_cfg(1)
    };
    let server = Server::bind(cfg).unwrap();
    let addr = server.local_addr();
    let inflight = std::thread::spawn(move || {
        let mut c = Client::connect(addr).unwrap();
        c.roundtrip("version").unwrap()
    });
    std::thread::sleep(Duration::from_millis(30)); // command is in flight
    server.shutdown(); // must not drop the in-flight reply
    assert_eq!(inflight.join().unwrap(), PROTOCOL_VERSION);
    // New connections are refused or dead after drain.
    match Client::connect(addr) {
        Err(_) => {}
        Ok(mut c) => {
            let reply = c.roundtrip("version").unwrap_or_default();
            assert_eq!(reply, "", "post-drain connection must yield nothing");
        }
    }
}
