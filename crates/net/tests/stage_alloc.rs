//! Allocation guard for the latency-attribution fast path.
//!
//! The ISSUE-7 budget: stamping a request through every stage —
//! `Stamps::new` → `mark_enqueued` → `mark_dequeued` → `mark_decided` →
//! `mark_released` → `finish_writeback`, plus the slow-ring threshold
//! check — must perform **zero heap allocations** in steady state, so
//! attribution can stay on for every request without eating into the <5%
//! obs overhead guard. Capturing into the slow ring may allocate; that
//! path only runs on the tail (slow/shed/errored requests).
//!
//! Same technique as `crates/core/tests/alloc_guard.rs`: a counting
//! `#[global_allocator]` (the lib crates forbid `unsafe`, so this must be
//! an integration test), a warm-up pass to register the histograms, then a
//! measured steady-state loop.

use coalloc_net::{slow, stage::Stamps};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::SeqCst)
}

/// Drive one request's worth of stamping, exactly as the server does it
/// (minus the channels and the socket).
fn full_pipeline() -> u64 {
    let mut stamps = Stamps::new();
    stamps.mark_enqueued();
    stamps.mark_dequeued();
    stamps.mark_decided();
    stamps.mark_released();
    let total_us = stamps.finish_writeback();
    // The fast path's entire interaction with the slow ring: one load.
    if slow::threshold_us() > 0 && total_us > slow::threshold_us() {
        return total_us;
    }
    total_us
}

#[test]
fn steady_state_stage_stamping_does_not_allocate() {
    // Warm-up: the first observation of each histogram registers it
    // (registry lock, BTreeMap insert — allocations are fine here).
    coalloc_net::stage::register();
    for _ in 0..100 {
        full_pipeline();
    }

    let before = allocs();
    let mut acc = 0u64;
    for _ in 0..10_000 {
        acc = acc.wrapping_add(full_pipeline());
    }
    let grew = allocs() - before;
    assert_eq!(
        grew, 0,
        "steady-state stage stamping allocated {grew} times over 10k requests \
         (accumulated {acc} µs)"
    );
}
