//! Pathological-client determinism: the event-driven front-end must keep
//! every reply stream byte-identical to the same script on stdin no matter
//! how adversarially the bytes arrive — interleaved partial-line writers,
//! a one-byte-per-tick trickler, and a 2048-connection open/close storm
//! (ISSUE 9 acceptance).

use coalloc_net::{Client, NetConfig, Server, Session, PROTOCOL_VERSION};
use std::io::{Read, Write};
use std::time::Duration;

fn cfg(shards: u32) -> NetConfig {
    NetConfig {
        shards,
        // Generous enough that deliberately slow writers are never reaped
        // mid-line, short enough that a hung test still fails fast.
        read_timeout: Duration::from_secs(5),
        write_timeout: Duration::from_secs(5),
        ..NetConfig::default()
    }
}

/// The reference output: the same interpreter the stdin loop runs.
fn stdin_reference(script: &str, shards: u32) -> String {
    Session::new(shards).run_script(script)
}

/// Read a connection's whole reply stream until the server closes it.
fn read_to_eof(c: &mut Client) -> String {
    let mut out = String::new();
    c.stream().read_to_string(&mut out).expect("read replies");
    out
}

/// Eight connections write their scripts three bytes at a time, strictly
/// interleaved, so the server's per-connection read buffers hold partial
/// lines from every client at once. One connection owns the scheduler
/// (init/submit/query/release); the others stay read-only so each stream
/// has exactly one byte-correct answer.
#[test]
fn interleaved_partial_line_writers_stay_byte_identical() {
    let owner_script = "init 8 10 400 10\n\
                        submit 0 0 50 4\n\
                        submit 0 100 60 8\n\
                        query 0 50\n\
                        release 0\n\
                        # comment\n\
                        \n\
                        bogus command here\n\
                        check\n\
                        version\n\
                        exit\n";
    let chatter_script = "version\n\
                          help\n\
                          an unknown command\n\
                          # noise\n\
                          \n\
                          version\n\
                          exit\n";
    let server = Server::bind(cfg(1)).unwrap();
    let mut conns: Vec<(Client, &str)> = Vec::new();
    conns.push((Client::connect(server.local_addr()).unwrap(), owner_script));
    for _ in 0..7 {
        conns.push((Client::connect(server.local_addr()).unwrap(), chatter_script));
    }
    // Round-robin the scripts out in 3-byte slivers: every connection's
    // buffer on the server side spends most of the test mid-line.
    let mut offsets = vec![0usize; conns.len()];
    loop {
        let mut wrote_any = false;
        for (i, (c, script)) in conns.iter_mut().enumerate() {
            let bytes = script.as_bytes();
            if offsets[i] >= bytes.len() {
                continue;
            }
            let end = (offsets[i] + 3).min(bytes.len());
            c.stream().write_all(&bytes[offsets[i]..end]).unwrap();
            offsets[i] = end;
            wrote_any = true;
        }
        if !wrote_any {
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    for (mut c, script) in conns {
        let expect = stdin_reference(script, 1);
        assert_eq!(read_to_eof(&mut c), expect, "script: {script:?}");
    }
    server.shutdown();
}

/// The slowest legal writer: one byte per tick. Every line spends its
/// whole life as a partial read; the reply stream must still come out
/// byte-identical, for the plain and the sharded back-end.
#[test]
fn one_byte_per_tick_client_stays_byte_identical() {
    let script = "init 4 10 200 10\n\
                  submit 0 0 50 2\n\
                  query 0 50\n\
                  advance 20\n\
                  release 0\n\
                  check\n\
                  exit\n";
    for shards in [1u32, 4] {
        let server = Server::bind(cfg(shards)).unwrap();
        let mut c = Client::connect(server.local_addr()).unwrap();
        for b in script.as_bytes() {
            c.stream().write_all(std::slice::from_ref(b)).unwrap();
            std::thread::sleep(Duration::from_millis(1));
        }
        let expect = stdin_reference(script, shards);
        assert_eq!(read_to_eof(&mut c), expect, "shards={shards}");
        server.shutdown();
    }
}

/// 2048 connections churned through the server from 32 threads — some
/// dropped cold, some dropped mid-line, some exiting cleanly — with a
/// plateau of 256 concurrently-held sockets in the middle. The server
/// must survive with its scheduler consistent and still answer a final
/// scripted session byte-identically.
#[test]
fn open_close_storm_leaves_server_consistent() {
    let server = Server::bind(cfg(1)).unwrap();
    let addr = server.local_addr();

    let mut setup = Client::connect(addr).unwrap();
    assert_eq!(setup.roundtrip("init 8 10 400 10").unwrap(), "ok 8 servers");

    let threads = 32;
    let per_thread = 64; // 32 × 64 = 2048 churned connections
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            std::thread::spawn(move || {
                let mut held: Vec<Client> = Vec::new();
                for i in 0..per_thread {
                    let mut c = Client::connect(addr).expect("storm connect");
                    match i % 4 {
                        // Cold drop: no bytes at all.
                        0 => drop(c),
                        // Mid-line drop: a partial command, never finished.
                        1 => {
                            let _ = c.stream().write_all(b"submit 0 0 5");
                            drop(c);
                        }
                        // Clean exit after a full roundtrip.
                        2 => {
                            assert_eq!(c.roundtrip("version").unwrap(), PROTOCOL_VERSION);
                            let _ = c.send("exit");
                            let _ = c.recv_line();
                        }
                        // Held through the storm's plateau, then dropped:
                        // 32 threads × 8 = 256 concurrently open sockets.
                        _ => {
                            if held.len() < 8 {
                                assert_eq!(c.roundtrip("version").unwrap(), PROTOCOL_VERSION);
                                held.push(c);
                            }
                        }
                    }
                }
                assert_eq!(held.len(), 8, "thread {t} plateau");
                drop(held);
            })
        })
        .collect();
    for h in handles {
        h.join().expect("storm thread");
    }

    // The storm left no partial line executed and no index corrupted.
    assert_eq!(setup.roundtrip("check").unwrap(), "ok");
    let free = setup.roundtrip("query 0 50").unwrap();
    assert_eq!(free, "free 8", "no storm connection committed a command");
    for _ in 0..8 {
        setup.recv_line().unwrap();
    }
    drop(setup);

    // And a fresh scripted session still gets byte-identical service.
    // (`init` wipes the shared scheduler, so the reference matches.)
    let script = "init 4 10 200 10\nsubmit 0 0 50 2\nrelease 0\ncheck\nexit\n";
    let client = Client::connect(addr).unwrap();
    let over_tcp = client.exchange_script(script).unwrap();
    assert_eq!(over_tcp, stdin_reference(script, 1));
    server.shutdown();
}
