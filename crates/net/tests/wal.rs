//! Durability tests for the WAL-backed server: graceful drain fsyncs the
//! tail and a restart over the same log directory is lossless; a torn log
//! tail is repaired; sharded sessions replay from genesis; and a recovered
//! server's future decisions are byte-identical to an uncrashed twin's.
//! (The `kill -9` half of the story lives in `tests/crash_recovery.rs`,
//! which crashes the real `coallocd` binary.)

use coalloc_net::{Client, NetConfig, Server, Session, WalOptions};
use std::path::PathBuf;
use std::time::Duration;

fn wal_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("coalloc-net-wal-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn wal_cfg(dir: &PathBuf, shards: u32) -> NetConfig {
    NetConfig {
        shards,
        read_timeout: Duration::from_millis(500),
        write_timeout: Duration::from_millis(500),
        wal: Some(WalOptions::new(dir)),
        ..NetConfig::default()
    }
}

/// Run `script` against a fresh WAL-backed server, return its reply bytes.
fn serve_script(dir: &PathBuf, shards: u32, script: &str) -> String {
    let server = Server::bind(wal_cfg(dir, shards)).unwrap();
    let client = Client::connect(server.local_addr()).unwrap();
    let replies = client.exchange_script(script).unwrap();
    server.shutdown();
    replies
}

#[test]
fn drain_then_restart_is_lossless() {
    let dir = wal_dir("drain");
    let script = "init 4 10 400 10\n\
                  submit 0 0 50 2\n\
                  submit 0 0 80 1\n\
                  attrs 1 3\n\
                  advance 20\n\
                  exit\n";
    let first = serve_script(&dir, 1, script);
    assert!(first.contains("granted job=0"), "{first}");

    // The restarted server recovered every acknowledged command: the state
    // probes answer exactly as the uncrashed session would, and new job ids
    // continue the sequence instead of colliding.
    let probe = "stats\nquery 0 50\nsubmit 0 20 30 1\nexit\n";
    let restarted = serve_script(&dir, 1, probe);
    let mut twin = Session::new(1);
    twin.run_script(script);
    assert_eq!(restarted, twin.run_script(probe));
    assert!(restarted.contains("granted job=2"), "{restarted}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn replies_match_the_volatile_server_byte_for_byte() {
    let dir = wal_dir("identical");
    let script = "init 8 10 400 10\n\
                  submit 0 0 50 4\n\
                  deadline 0 0 20 2 100\n\
                  submit 0 0 500 1\n\
                  query 0 50\n\
                  release 0\n\
                  bogus\n\
                  advance 20\n\
                  check\n\
                  exit\n";
    let with_wal = serve_script(&dir, 1, script);
    assert_eq!(with_wal, Session::new(1).run_script(script));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_tail_is_repaired_on_restart() {
    let dir = wal_dir("torn");
    let script = "init 2 10 200 10\nsubmit 0 0 40 1\nexit\n";
    serve_script(&dir, 1, script);

    // Simulate a crash mid-write: garbage after the last synced record.
    let seg = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .find(|p| p.file_name().unwrap().to_str().unwrap().starts_with("seg-"))
        .expect("segment file");
    let mut bytes = std::fs::read(&seg).unwrap();
    bytes.extend_from_slice(&[0x17, 0xAB, 0xFF]);
    std::fs::write(&seg, &bytes).unwrap();

    let restarted = serve_script(&dir, 1, "stats\nsubmit 0 0 40 1\nexit\n");
    let mut twin = Session::new(1);
    twin.run_script(script);
    assert_eq!(restarted, twin.run_script("stats\nsubmit 0 0 40 1\nexit\n"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sharded_sessions_replay_from_genesis() {
    let dir = wal_dir("sharded");
    let script = "init 8 10 400 10\n\
                  submit 0 0 50 4\n\
                  submit 0 100 60 8\n\
                  release 0\n\
                  exit\n";
    serve_script(&dir, 2, script);
    // No snapshot is ever installed for the sharded back-end; recovery
    // replays the whole history (including `init`) and lands on the same
    // state.
    assert!(
        !std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .any(|e| e.file_name().to_str().unwrap().starts_with("snap-")),
        "sharded back-end must not write snapshots"
    );
    let probe = "stats\nsubmit 0 0 50 6\nexit\n";
    let restarted = serve_script(&dir, 2, probe);
    let mut twin = Session::new(2);
    twin.run_script(script);
    assert_eq!(restarted, twin.run_script(probe));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn snapshot_installs_truncate_replay_history() {
    let dir = wal_dir("snapshot");
    let mut opts = WalOptions::new(&dir);
    opts.snapshot_every = 8; // force frequent snapshot installs
    let cfg = NetConfig {
        wal: Some(opts),
        read_timeout: Duration::from_millis(500),
        write_timeout: Duration::from_millis(500),
        ..NetConfig::default()
    };
    let mut script = String::from("init 4 10 4000 10\n");
    for i in 0..40 {
        script.push_str(&format!("submit 0 {} 20 1\n", i * 20));
    }
    script.push_str("exit\n");
    let server = Server::bind(cfg.clone()).unwrap();
    let client = Client::connect(server.local_addr()).unwrap();
    client.exchange_script(&script).unwrap();
    server.shutdown();
    assert!(
        std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .any(|e| e.file_name().to_str().unwrap().starts_with("snap-")),
        "snapshot_every=8 over 41 records must have installed a snapshot"
    );
    // Restart recovers from snapshot + tail and continues identically.
    // (`stats` is not probed: op *counters* are observability, not
    // commitments, and snapshots deliberately do not persist them.)
    let probe = "check\nquery 700 760\nsubmit 0 0 20 4\nexit\n";
    let restarted = serve_script(&dir, 1, probe);
    let mut twin = Session::new(1);
    twin.run_script(&script);
    assert_eq!(restarted, twin.run_script(probe));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn load_through_wal_restarts_from_the_loaded_state() {
    let dir = wal_dir("load");
    let snap_path = std::env::temp_dir().join(format!(
        "coalloc-net-wal-load-snap-{}.txt",
        std::process::id()
    ));
    let p = snap_path.to_str().unwrap();
    // Build some state, snapshot it to a file, wipe, then load it back —
    // all over a WAL-backed server.
    let script = format!(
        "init 4 10 400 10\nsubmit 0 0 50 2\nsnapshot {p}\ninit 2 10 100 10\nload {p}\nsubmit 0 60 30 1\nexit\n"
    );
    let replies = serve_script(&dir, 1, &script);
    assert!(replies.contains("ok 4 servers restored"), "{replies}");

    // Delete the external file: recovery must NOT need it (`load` is
    // persisted as a WAL snapshot, not as a replayable command).
    std::fs::remove_file(&snap_path).unwrap();
    let probe = "check\nquery 0 50\nsubmit 0 100 30 1\nexit\n";
    let restarted = serve_script(&dir, 1, probe);
    // The twin cannot re-run snapshot/load (file is gone); compare against
    // a session that went through the same logical state: init 4, submit,
    // (snapshot + init 2 + load = back to post-submit state), submit.
    let mut logical = Session::new(1);
    logical.run_script("init 4 10 400 10\nsubmit 0 0 50 2\nsubmit 0 60 30 1\nexit\n");
    assert_eq!(restarted, logical.run_script(probe));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn interval_flush_mode_also_roundtrips() {
    let dir = wal_dir("interval");
    let mut opts = WalOptions::new(&dir);
    opts.flush_interval = Duration::from_millis(5); // bounded group commit
    let cfg = NetConfig {
        wal: Some(opts),
        read_timeout: Duration::from_millis(500),
        write_timeout: Duration::from_millis(500),
        ..NetConfig::default()
    };
    let script = "init 4 10 400 10\nsubmit 0 0 50 2\nrelease 0\nexit\n";
    let server = Server::bind(cfg).unwrap();
    let client = Client::connect(server.local_addr()).unwrap();
    let replies = client.exchange_script(script).unwrap();
    server.shutdown();
    assert_eq!(replies, Session::new(1).run_script(script));
    let restarted = serve_script(&dir, 1, "stats\nexit\n");
    let mut twin = Session::new(1);
    twin.run_script(script);
    assert_eq!(restarted, twin.run_script("stats\nexit\n"));
    let _ = std::fs::remove_dir_all(&dir);
}
