//! End-to-end tests for the admin HTTP plane and the latency-attribution
//! pipeline (ISSUE 7): every endpoint answers a real HTTP GET, `/metrics`
//! passes the strict exposition validator, the `req_stage_*` histograms
//! fill, and a deliberately stalled request lands in `/debug/slow` (and
//! the `slow` command) while its fast neighbours do not.
//!
//! The slow ring and the metrics registry are process-global, so every
//! assertion filters by content (specific command lines) instead of
//! asserting on totals that a sibling test could bump.

use coalloc_net::{Client, NetConfig, Server};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Minimal HTTP/1.1 GET: returns `(status, head, body)`.
fn http_get(addr: SocketAddr, path: &str) -> (u16, String, String) {
    http_request(addr, &format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"))
}

fn http_request(addr: SocketAddr, raw: &str) -> (u16, String, String) {
    let mut s = TcpStream::connect(addr).expect("connect admin");
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    s.write_all(raw.as_bytes()).expect("write request");
    let mut buf = Vec::new();
    s.read_to_end(&mut buf).expect("read response");
    let text = String::from_utf8(buf).expect("response is UTF-8");
    let (head, body) = text
        .split_once("\r\n\r\n")
        .unwrap_or_else(|| panic!("no header terminator in: {text:?}"));
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|c| c.parse().ok())
        .unwrap_or_else(|| panic!("bad status line: {head:?}"));
    (status, head.to_string(), body.to_string())
}

fn admin_server(cfg_mut: impl FnOnce(&mut NetConfig)) -> Server {
    let mut cfg = NetConfig {
        admin_addr: Some("127.0.0.1:0".to_string()),
        workers: 4,
        // Short idle timeout so a drain with a client still attached
        // completes promptly instead of waiting out the default 30 s.
        read_timeout: Duration::from_secs(2),
        ..NetConfig::default()
    };
    cfg_mut(&mut cfg);
    Server::bind(cfg).expect("bind server with admin plane")
}

#[test]
fn all_admin_endpoints_answer_and_metrics_validate() {
    let server = admin_server(|_| {});
    let admin = server.admin_addr().expect("admin plane is up");

    // Drive real traffic first so /status and /metrics have content.
    let mut c = Client::connect(server.local_addr()).expect("connect");
    assert!(c.roundtrip("init 6 10 400 10").unwrap().starts_with("ok 6 servers"));
    assert!(c.roundtrip("submit 0 0 50 2").unwrap().starts_with("granted"));
    assert!(c.roundtrip("stats").unwrap().starts_with("now="));

    // /healthz and /readyz: live and ready (recovery ran before bind).
    let (code, _, body) = http_get(admin, "/healthz");
    assert_eq!((code, body.as_str()), (200, "ok\n"));
    let (code, _, body) = http_get(admin, "/readyz");
    assert_eq!((code, body.as_str()), (200, "ready\n"));

    // /metrics: correct content type, strict-validator clean, and the
    // stage histograms are present as complete families.
    let (code, head, body) = http_get(admin, "/metrics");
    assert_eq!(code, 200);
    assert!(
        head.contains("text/plain; version=0.0.4"),
        "prometheus content type, got head: {head}"
    );
    let families = obs::metrics::validate_exposition(&body)
        .unwrap_or_else(|e| panic!("/metrics fails the exposition validator: {e}"));
    assert!(families > 10, "expected a populated registry, got {families} families");
    for stage in [
        "req_stage_queue_wait",
        "req_stage_sched",
        "req_stage_wal_stall",
        "req_stage_writeback",
    ] {
        assert!(
            body.lines().any(|l| l.starts_with(&format!("{stage}_count "))),
            "{stage} family missing from /metrics"
        );
        let count: u64 = body
            .lines()
            .find_map(|l| l.strip_prefix(&format!("{stage}_count ")))
            .and_then(|v| v.trim().parse().ok())
            .unwrap();
        assert!(count > 0, "{stage} never observed despite served commands");
    }

    // /status: valid JSON whose scheduler cell reflects the init above
    // (the scheduler thread refreshed it while executing the commands).
    let (code, head, body) = http_get(admin, "/status");
    assert_eq!(code, 200);
    assert!(head.contains("application/json"), "{head}");
    let v = obs::json::parse(&body).expect("/status is valid JSON");
    assert_eq!(v.get("ready"), Some(&obs::json::Json::Bool(true)));
    assert_eq!(v.get("initialized"), Some(&obs::json::Json::Bool(true)));
    let sched = v.get("scheduler").expect("scheduler object");
    assert_eq!(sched.get("servers").and_then(|s| s.as_num()), Some(6.0));
    let util = sched.get("utilization").and_then(|u| u.as_num()).expect("utilization");
    assert!((0.0..=1.0).contains(&util), "utilization {util} out of range");
    assert!(v.get("queue").and_then(|q| q.get("capacity")).is_some());
    assert!(v.get("wal").and_then(|w| w.get("enabled")).is_some());

    // /debug/slow: valid JSON with the policy header.
    let (code, _, body) = http_get(admin, "/debug/slow");
    assert_eq!(code, 200);
    let v = obs::json::parse(&body).expect("/debug/slow is valid JSON");
    assert!(v.get("threshold_us").and_then(|t| t.as_num()).is_some());
    assert!(v.get("records").is_some());

    // Unknown path and non-GET are rejected, not crashed into.
    let (code, _, _) = http_get(admin, "/nope");
    assert_eq!(code, 404);
    let (code, _, _) =
        http_request(admin, "POST /metrics HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n");
    assert_eq!(code, 405);

    // Query strings are tolerated (scrapers append them).
    let (code, _, _) = http_get(admin, "/healthz?probe=1");
    assert_eq!(code, 200);

    drop(c);
    server.shutdown();
}

#[test]
fn stalled_request_is_captured_fast_ones_are_not() {
    // Only lines containing the marker substring stall for 40 ms; the
    // capture threshold is 10 ms, so exactly the stalled line qualifies.
    let marker = "submit 0 777 50 2";
    let server = admin_server(|cfg| {
        cfg.exec_delay = Duration::from_millis(40);
        cfg.stall_substr = Some("777".to_string());
        cfg.slow_threshold = Duration::from_millis(10);
    });
    let admin = server.admin_addr().unwrap();

    let mut c = Client::connect(server.local_addr()).expect("connect");
    let fast_line = "submit 0 500 50 1";
    assert!(c.roundtrip("init 8 10 2000 10").unwrap().starts_with("ok"));
    assert!(c.roundtrip(fast_line).unwrap().starts_with("granted"));
    let stalled = c.roundtrip(marker).expect("stalled submit");
    assert!(stalled.starts_with("granted"), "stalled submit still succeeds: {stalled}");

    // The admin dump holds the stalled line with a full timeline...
    let (code, _, body) = http_get(admin, "/debug/slow");
    assert_eq!(code, 200);
    let v = obs::json::parse(&body).expect("valid JSON");
    let records = match v.get("records") {
        Some(obs::json::Json::Arr(a)) => a.clone(),
        other => panic!("records not an array: {other:?}"),
    };
    let captured: Vec<_> = records
        .iter()
        .filter(|r| r.get("line").and_then(|l| l.as_str()) == Some(marker))
        .collect();
    assert!(!captured.is_empty(), "stalled request missing from /debug/slow: {body}");
    let rec = captured.last().unwrap();
    assert_eq!(rec.get("outcome").and_then(|o| o.as_str()), Some("slow"));
    let total = rec.get("total_us").and_then(|t| t.as_num()).unwrap();
    assert!(total >= 40_000.0, "captured total {total} µs below the injected stall");
    let timeline = match rec.get("timeline") {
        Some(obs::json::Json::Arr(a)) => a.clone(),
        other => panic!("timeline not an array: {other:?}"),
    };
    let stages: Vec<&str> = timeline
        .iter()
        .filter_map(|e| e.get("stage").and_then(|s| s.as_str()))
        .collect();
    for want in ["accept", "enqueue", "dequeue", "decision", "fsync_release", "reply_write"] {
        assert!(stages.contains(&want), "timeline missing stage {want}: {stages:?}");
    }
    // ... and offsets are monotone from accept.
    let offsets: Vec<f64> = timeline
        .iter()
        .filter_map(|e| e.get("at_us").and_then(|o| o.as_num()))
        .collect();
    assert!(offsets.windows(2).all(|w| w[0] <= w[1]), "non-monotone timeline: {offsets:?}");

    // The fast request was NOT captured.
    assert!(
        !records
            .iter()
            .any(|r| r.get("line").and_then(|l| l.as_str()) == Some(fast_line)),
        "fast request wrongly captured"
    );

    // The `slow` protocol command reports the same capture. Its reply is
    // multi-line and self-delimiting: `slow K`, then K JSON lines.
    let head = c.roundtrip("slow").expect("slow command");
    let k: usize = head
        .strip_prefix("slow ")
        .and_then(|n| n.parse().ok())
        .unwrap_or_else(|| panic!("bad slow head line: {head}"));
    assert!(k >= 1, "slow command reports an empty ring despite the capture");
    let mut dump = String::new();
    for _ in 0..k {
        dump.push_str(&c.recv_line().expect("slow record line"));
        dump.push('\n');
    }
    assert!(dump.contains(marker), "slow command misses the stalled line: {dump}");

    drop(c);
    server.shutdown();
}

#[test]
fn errored_request_is_captured_regardless_of_latency() {
    let server = admin_server(|cfg| {
        // Latency capture effectively off: only shed/error outcomes remain.
        cfg.slow_threshold = Duration::from_secs(3600);
    });
    let mut c = Client::connect(server.local_addr()).expect("connect");
    let bad_line = "definitely-not-a-command 424242";
    let reply = c.roundtrip(bad_line).expect("error roundtrip");
    assert!(reply.starts_with("error"), "unexpected reply: {reply}");

    let (_, _, body) = http_get(server.admin_addr().unwrap(), "/debug/slow");
    let v = obs::json::parse(&body).expect("valid JSON");
    let records = match v.get("records") {
        Some(obs::json::Json::Arr(a)) => a.clone(),
        other => panic!("records not an array: {other:?}"),
    };
    let rec = records
        .iter()
        .rev()
        .find(|r| r.get("line").and_then(|l| l.as_str()) == Some(bad_line))
        .unwrap_or_else(|| panic!("errored request not captured: {body}"));
    assert_eq!(rec.get("outcome").and_then(|o| o.as_str()), Some("error"));

    drop(c);
    server.shutdown();
}

#[test]
fn admin_plane_drains_with_the_server() {
    let server = admin_server(|_| {});
    let admin = server.admin_addr().unwrap();
    let (code, _, _) = http_get(admin, "/healthz");
    assert_eq!(code, 200);
    server.shutdown();
    // After drain the listener is gone: connect must fail (or be refused
    // with an immediate EOF if the OS races the port teardown).
    match TcpStream::connect(admin) {
        Err(_) => {}
        Ok(mut s) => {
            s.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
            let _ = s.write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n");
            let mut buf = Vec::new();
            let n = s.read_to_end(&mut buf).unwrap_or(0);
            assert_eq!(n, 0, "admin plane still serving after shutdown: {buf:?}");
        }
    }
}
