//! Property tests for the metric substrate.

use coalloc_sim::metrics::{jain_index, GroupedStats, Histogram, StreamingStats};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn histogram_conserves_mass(xs in prop::collection::vec(-5.0f64..100.0, 0..300)) {
        let mut h = Histogram::new(2.5, 20);
        for &x in &xs {
            h.push(x);
        }
        prop_assert_eq!(h.total() as usize, xs.len());
        let binned: u64 = (0..20).map(|i| h.bin_count(i)).sum();
        prop_assert_eq!(binned + h.overflow(), h.total());
        // Frequencies sum to <= 1 (equality iff no overflow).
        let freq_sum: f64 = h.frequencies().iter().map(|(_, f)| f).sum();
        prop_assert!(freq_sum <= 1.0 + 1e-9);
        if h.overflow() == 0 && h.total() > 0 {
            prop_assert!((freq_sum - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn cdf_is_monotone_and_bounded(xs in prop::collection::vec(0.0f64..50.0, 1..200)) {
        let mut h = Histogram::new(1.0, 25);
        for &x in &xs {
            h.push(x);
        }
        let cdf = h.cdf();
        for w in cdf.windows(2) {
            prop_assert!(w[0].1 <= w[1].1 + 1e-12);
        }
        prop_assert!(cdf.last().unwrap().1 <= 1.0 + 1e-12);
    }

    #[test]
    fn streaming_stats_match_direct_computation(
        xs in prop::collection::vec(-1e3f64..1e3, 1..200),
    ) {
        let mut s = StreamingStats::new();
        for &x in &xs {
            s.push(x);
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        prop_assert!((s.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
        prop_assert!((s.variance() - var).abs() < 1e-5 * (1.0 + var.abs()));
        prop_assert_eq!(s.min(), Some(xs.iter().cloned().fold(f64::INFINITY, f64::min)));
        prop_assert_eq!(s.max(), Some(xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max)));
    }

    #[test]
    fn merge_is_associative_enough(
        a in prop::collection::vec(-100.0f64..100.0, 1..50),
        b in prop::collection::vec(-100.0f64..100.0, 1..50),
        c in prop::collection::vec(-100.0f64..100.0, 1..50),
    ) {
        let fold = |xs: &[f64]| {
            let mut s = StreamingStats::new();
            for &x in xs {
                s.push(x);
            }
            s
        };
        // (a + b) + c  ==  a + (b + c), up to float noise.
        let mut left = fold(&a);
        left.merge(&fold(&b));
        left.merge(&fold(&c));
        let mut bc = fold(&b);
        bc.merge(&fold(&c));
        let mut right = fold(&a);
        right.merge(&bc);
        prop_assert_eq!(left.count(), right.count());
        prop_assert!((left.mean() - right.mean()).abs() < 1e-9);
        prop_assert!((left.variance() - right.variance()).abs() < 1e-7);
    }

    #[test]
    fn jain_bounds_hold(xs in prop::collection::vec(0.0f64..100.0, 1..64)) {
        let j = jain_index(&xs);
        let n = xs.len() as f64;
        prop_assert!(j <= 1.0 + 1e-12, "jain {j} above 1");
        prop_assert!(j >= 1.0 / n - 1e-12, "jain {j} below 1/n");
    }

    #[test]
    fn grouped_stats_partition_observations(
        obs in prop::collection::vec((0i64..8, -50.0f64..50.0), 0..200),
    ) {
        let mut g = GroupedStats::new();
        for &(k, v) in &obs {
            g.push(k, v);
        }
        let total: u64 = g.iter().map(|(_, s)| s.count()).sum();
        prop_assert_eq!(total as usize, obs.len());
        // Group means match per-key recomputation.
        for (k, s) in g.iter() {
            let vals: Vec<f64> = obs.iter().filter(|&&(kk, _)| kk == k).map(|&(_, v)| v).collect();
            let mean = vals.iter().sum::<f64>() / vals.len() as f64;
            prop_assert!((s.mean() - mean).abs() < 1e-9);
        }
    }
}
