//! Streaming statistics, histograms and grouped aggregations for the
//! performance metrics of Section 5:
//!
//! * **waiting time** `W_r` — time between the earliest possible start and
//!   the actual start;
//! * **temporal penalty** `P^l_r = W_r / l_r` — waiting time normalized to
//!   job duration;
//! * **spatial penalty** `P^n_r` — average `W_r` as a function of the
//!   spatial size `n_r`.

use std::collections::BTreeMap;

/// Numerically stable streaming mean/variance/min/max (Welford).
#[derive(Clone, Copy, Debug, Default)]
pub struct StreamingStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl StreamingStats {
    /// An empty accumulator.
    pub fn new() -> StreamingStats {
        StreamingStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Fold in one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let d = x - self.mean;
        self.mean += d / self.count as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 when fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation, or `None` when empty (previously returned
    /// `+inf`, which leaked into JSON/text renders as `inf`).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation, or `None` when empty (previously `-inf`).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merge another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &StreamingStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let d = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += d * n2 / n;
        self.m2 += other.m2 + d * d * n1 * n2 / n;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Fixed-bin-width histogram over non-negative values; the paper's
/// waiting-time and temporal-size distributions (Figures 4 and 6) are
/// frequency plots of exactly this shape.
#[derive(Clone, Debug)]
pub struct Histogram {
    bin_width: f64,
    counts: Vec<u64>,
    total: u64,
    overflow: u64,
}

impl Histogram {
    /// Histogram with `bins` bins of width `bin_width`; values at or beyond
    /// `bins * bin_width` land in an overflow bucket.
    pub fn new(bin_width: f64, bins: usize) -> Histogram {
        assert!(bin_width > 0.0 && bins > 0);
        Histogram {
            bin_width,
            counts: vec![0; bins],
            total: 0,
            overflow: 0,
        }
    }

    /// Fold in one observation (negative values clamp to the first bin).
    pub fn push(&mut self, x: f64) {
        self.total += 1;
        let idx = (x.max(0.0) / self.bin_width) as usize;
        if idx < self.counts.len() {
            self.counts[idx] += 1;
        } else {
            self.overflow += 1;
        }
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Observations beyond the last bin.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Relative frequency per bin: `(bin_lower_edge, fraction)`.
    pub fn frequencies(&self) -> Vec<(f64, f64)> {
        let t = self.total.max(1) as f64;
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (i as f64 * self.bin_width, c as f64 / t))
            .collect()
    }

    /// Cumulative distribution per bin upper edge: `(edge, F(edge))`.
    pub fn cdf(&self) -> Vec<(f64, f64)> {
        let t = self.total.max(1) as f64;
        let mut acc = 0u64;
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                acc += c;
                ((i as f64 + 1.0) * self.bin_width, acc as f64 / t)
            })
            .collect()
    }

    /// Count in one bin.
    pub fn bin_count(&self, idx: usize) -> u64 {
        self.counts[idx]
    }
}

/// Statistics grouped by an integer bin key (e.g. mean waiting time per
/// 50-processor spatial-size group, as in Table 2 and Figure 5).
#[derive(Clone, Debug, Default)]
pub struct GroupedStats {
    groups: BTreeMap<i64, StreamingStats>,
}

impl GroupedStats {
    /// An empty grouping.
    pub fn new() -> GroupedStats {
        GroupedStats::default()
    }

    /// Fold `value` into the group keyed `key`.
    pub fn push(&mut self, key: i64, value: f64) {
        self.groups.entry(key).or_default().push(value);
    }

    /// Iterate groups in key order.
    pub fn iter(&self) -> impl Iterator<Item = (i64, &StreamingStats)> {
        self.groups.iter().map(|(&k, v)| (k, v))
    }

    /// The stats of one group.
    pub fn group(&self, key: i64) -> Option<&StreamingStats> {
        self.groups.get(&key)
    }

    /// `(key, mean)` pairs in key order.
    pub fn means(&self) -> Vec<(i64, f64)> {
        self.groups.iter().map(|(&k, v)| (k, v.mean())).collect()
    }

    /// Number of distinct groups.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// Whether no observations were recorded.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }
}

/// Bin a spatial size into the paper's Table-2 convention: groups of 50
/// servers, keyed by the *upper* edge (`(0:50] -> 50`, `(50:100] -> 100`...).
pub fn spatial_bin_50(n: u32) -> i64 {
    if n == 0 {
        return 0;
    }
    (((n as i64) + 49) / 50) * 50
}

/// Jain's fairness index over per-group values:
/// `(sum x)^2 / (n * sum x^2)`. Equals 1.0 when every group sees the same
/// value, and `1/n` in the maximally unfair case. The standard quantitative
/// reading of the paper's "allocate resources fairly among users" goal.
pub fn jain_index(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 1.0;
    }
    let sum: f64 = values.iter().sum();
    let sq: f64 = values.iter().map(|x| x * x).sum();
    if sq == 0.0 {
        return 1.0;
    }
    sum * sum / (values.len() as f64 * sq)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streaming_stats_basics() {
        let mut s = StreamingStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.stddev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn empty_stats_have_no_min_max() {
        let s = StreamingStats::new();
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        let mut s = StreamingStats::new();
        s.push(1.5);
        assert_eq!(s.min(), Some(1.5));
        assert_eq!(s.max(), Some(1.5));
    }

    #[test]
    fn streaming_stats_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = StreamingStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = StreamingStats::new();
        let mut b = StreamingStats::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = StreamingStats::new();
        a.push(3.0);
        let before = a.mean();
        a.merge(&StreamingStats::new());
        assert_eq!(a.mean(), before);
        let mut e = StreamingStats::new();
        e.merge(&a);
        assert_eq!(e.count(), 1);
    }

    #[test]
    fn histogram_bins_and_overflow() {
        let mut h = Histogram::new(1.0, 4);
        for x in [0.0, 0.5, 1.0, 2.9, 10.0, -1.0] {
            h.push(x);
        }
        assert_eq!(h.total(), 6);
        assert_eq!(h.bin_count(0), 3); // 0.0, 0.5, -1.0 (clamped)
        assert_eq!(h.bin_count(1), 1);
        assert_eq!(h.bin_count(2), 1);
        assert_eq!(h.overflow(), 1);
        let freq = h.frequencies();
        assert_eq!(freq.len(), 4);
        assert!((freq[0].1 - 0.5).abs() < 1e-12);
        let cdf = h.cdf();
        assert!((cdf[3].1 - (5.0 / 6.0)).abs() < 1e-12);
    }

    #[test]
    fn grouped_stats_by_key_order() {
        let mut g = GroupedStats::new();
        g.push(100, 2.0);
        g.push(50, 1.0);
        g.push(100, 4.0);
        let means = g.means();
        assert_eq!(means, vec![(50, 1.0), (100, 3.0)]);
        assert_eq!(g.group(100).unwrap().count(), 2);
        assert_eq!(g.len(), 2);
    }

    #[test]
    fn jain_index_bounds() {
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[0.0, 0.0]), 1.0);
        assert!((jain_index(&[3.0, 3.0, 3.0]) - 1.0).abs() < 1e-12);
        // One user gets everything: index = 1/n.
        assert!((jain_index(&[10.0, 0.0, 0.0, 0.0]) - 0.25).abs() < 1e-12);
        // Mild skew sits in between.
        let j = jain_index(&[1.0, 2.0, 3.0]);
        assert!(j > 0.33 && j < 1.0);
    }

    #[test]
    fn spatial_bins_match_table2_convention() {
        assert_eq!(spatial_bin_50(1), 50);
        assert_eq!(spatial_bin_50(50), 50);
        assert_eq!(spatial_bin_50(51), 100);
        assert_eq!(spatial_bin_50(100), 100);
        assert_eq!(spatial_bin_50(351), 400);
    }
}
