//! A minimal discrete-event queue.
//!
//! Events are `(Time, sequence, payload)` triples ordered by time with FIFO
//! tie-breaking, which keeps simulations deterministic when many events share
//! a timestamp (common with trace replays).

use coalloc_core::prelude::Time;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Deterministic discrete-event queue.
#[derive(Clone, Debug)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Reverse<(Time, u64, OrdWrap<T>)>>,
    seq: u64,
}

/// Wrapper that gives every payload a vacuous, equal ordering so that the
/// heap orders purely on `(Time, seq)`.
#[derive(Clone, Debug)]
struct OrdWrap<T>(T);

impl<T> PartialEq for OrdWrap<T> {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}
impl<T> Eq for OrdWrap<T> {}
impl<T> PartialOrd for OrdWrap<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for OrdWrap<T> {
    fn cmp(&self, _: &Self) -> std::cmp::Ordering {
        std::cmp::Ordering::Equal
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<T> EventQueue<T> {
    /// An empty queue.
    pub fn new() -> EventQueue<T> {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedule `payload` at `t`.
    pub fn push(&mut self, t: Time, payload: T) {
        self.heap.push(Reverse((t, self.seq, OrdWrap(payload))));
        self.seq += 1;
    }

    /// Pop the earliest event.
    pub fn pop(&mut self) -> Option<(Time, T)> {
        self.heap.pop().map(|Reverse((t, _, w))| (t, w.0))
    }

    /// Timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|Reverse((t, _, _))| *t)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is drained.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Time(30), "c");
        q.push(Time(10), "a");
        q.push(Time(20), "b");
        assert_eq!(q.peek_time(), Some(Time(10)));
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        q.push(Time(5), 1);
        q.push(Time(5), 2);
        q.push(Time(5), 3);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn len_and_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(Time(1), ());
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }
}
