//! # coalloc-sim
//!
//! Discrete-event replay engine and performance metrics for evaluating
//! co-allocation schedulers, mirroring the methodology of Section 5 of the
//! paper: workloads are replayed request-by-request, and per-request
//! [`runner::Outcome`]s are aggregated into the paper's metrics (waiting
//! time `W_r`, temporal penalty `P^l_r`, spatial penalty, utilization,
//! scheduling attempts, operation counts).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod events;
pub mod metrics;
pub mod runner;

pub use metrics::{GroupedStats, Histogram, StreamingStats};
pub use runner::{run_naive, run_online, run_with, OnlineScheduler, Outcome, RunResult};
