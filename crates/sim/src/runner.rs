//! Trace replay through the online co-allocation scheduler, and the common
//! [`Outcome`]/[`RunResult`] record shared by every scheduler under
//! evaluation (online tree-based, naive, and the batch baselines).

use crate::metrics::{spatial_bin_50, GroupedStats, Histogram, StreamingStats};
use coalloc_core::naive::NaiveScheduler;
use coalloc_core::prelude::*;

/// What happened to one request under some scheduler.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Outcome {
    /// Submission time `q_r`.
    pub submit: Time,
    /// Earliest start `s_r` (equals `submit` unless this was an advance
    /// reservation).
    pub earliest: Time,
    /// Temporal size `l_r`.
    pub duration: Dur,
    /// Spatial size `n_r`.
    pub servers: u32,
    /// Actual start time; `None` when the scheduler rejected the request.
    pub start: Option<Time>,
    /// Scheduling attempts spent (1 = accepted immediately).
    pub attempts: u32,
    /// Data-structure operations spent on this request.
    pub ops: u64,
}

impl Outcome {
    /// Whether the request was accepted.
    pub fn accepted(&self) -> bool {
        self.start.is_some()
    }

    /// Waiting time `W_r = start - s_r` (None when rejected).
    pub fn waiting(&self) -> Option<Dur> {
        self.start.map(|s| s.saturating_since(self.earliest))
    }

    /// Temporal penalty `P^l_r = W_r / l_r` (None when rejected).
    pub fn temporal_penalty(&self) -> Option<f64> {
        self.waiting()
            .map(|w| w.secs() as f64 / self.duration.secs().max(1) as f64)
    }

    /// Waiting time measured from *submission* (`start - q_r`). For advance
    /// reservations this includes the requested advance offset — the basis
    /// the paper uses in its reservation-mix experiments (the Figure-6 peak
    /// "around 3 hours" is exactly the 0–3 h advance window showing up in
    /// the waiting time).
    pub fn waiting_from_submit(&self) -> Option<Dur> {
        self.start.map(|s| s.saturating_since(self.submit))
    }
}

/// The aggregate result of replaying one workload through one scheduler.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Human-readable scheduler label ("online", "easy-backfill", ...).
    pub label: String,
    /// Per-request outcomes, in submission order.
    pub outcomes: Vec<Outcome>,
    /// System utilization over `[first submit, makespan)`.
    pub utilization: f64,
    /// Completion time of the last reservation.
    pub makespan: Time,
    /// Total data-structure operations across the run.
    pub total_ops: u64,
}

impl RunResult {
    /// Fraction of requests accepted.
    pub fn acceptance_rate(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 1.0;
        }
        self.outcomes.iter().filter(|o| o.accepted()).count() as f64 / self.outcomes.len() as f64
    }

    /// Streaming stats over waiting time, in hours (accepted jobs only).
    pub fn waiting_stats_hours(&self) -> StreamingStats {
        let mut s = StreamingStats::new();
        for o in &self.outcomes {
            if let Some(w) = o.waiting() {
                s.push(w.hours());
            }
        }
        s
    }

    /// Waiting-time distribution in hours (Figure 4a / 6).
    pub fn waiting_histogram_hours(&self, bin_hours: f64, bins: usize) -> Histogram {
        let mut h = Histogram::new(bin_hours, bins);
        for o in &self.outcomes {
            if let Some(w) = o.waiting() {
                h.push(w.hours());
            }
        }
        h
    }

    /// Streaming stats over submission-based waiting (`start - q_r`), in
    /// hours — the basis of Figures 6 and 7(a).
    pub fn waiting_from_submit_stats_hours(&self) -> StreamingStats {
        let mut s = StreamingStats::new();
        for o in &self.outcomes {
            if let Some(w) = o.waiting_from_submit() {
                s.push(w.hours());
            }
        }
        s
    }

    /// Submission-based waiting-time distribution in hours (Figure 6).
    pub fn waiting_from_submit_histogram_hours(&self, bin_hours: f64, bins: usize) -> Histogram {
        let mut h = Histogram::new(bin_hours, bins);
        for o in &self.outcomes {
            if let Some(w) = o.waiting_from_submit() {
                h.push(w.hours());
            }
        }
        h
    }

    /// Temporal-size distribution in hours (Figure 4b).
    pub fn duration_histogram_hours(&self, bin_hours: f64, bins: usize) -> Histogram {
        let mut h = Histogram::new(bin_hours, bins);
        for o in &self.outcomes {
            h.push(o.duration.hours());
        }
        h
    }

    /// Mean temporal penalty grouped by job duration in whole hours
    /// (Figure 3): key = ceil(l_r in hours).
    pub fn penalty_by_duration_hours(&self) -> GroupedStats {
        let mut g = GroupedStats::new();
        for o in &self.outcomes {
            if let Some(p) = o.temporal_penalty() {
                let key = (o.duration.secs() + 3599) / 3600;
                g.push(key.max(1), p);
            }
        }
        g
    }

    /// Mean waiting time (hours) grouped by spatial size in 50-server bins
    /// (Figure 5).
    pub fn waiting_by_spatial(&self) -> GroupedStats {
        let mut g = GroupedStats::new();
        for o in &self.outcomes {
            if let Some(w) = o.waiting() {
                g.push(spatial_bin_50(o.servers), w.hours());
            }
        }
        g
    }

    /// Mean scheduling attempts grouped by spatial size in 50-server bins
    /// (Table 2).
    pub fn attempts_by_spatial(&self) -> GroupedStats {
        let mut g = GroupedStats::new();
        for o in &self.outcomes {
            g.push(spatial_bin_50(o.servers), o.attempts as f64);
        }
        g
    }

    /// Mean data-structure operations per request (Figure 7b).
    pub fn mean_ops_per_request(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.total_ops as f64 / self.outcomes.len() as f64
    }

    /// Largest waiting time in hours (the "tail length" the paper compares).
    /// 0 when no job was accepted.
    pub fn max_waiting_hours(&self) -> f64 {
        self.waiting_stats_hours().max().unwrap_or(0.0)
    }

    /// Utilization profile: committed busy fraction per time bin of width
    /// `bin` over `[0, makespan)`, reconstructed from the accepted outcomes.
    /// Useful for visualizing how tightly each scheduler packs the machine
    /// over time.
    pub fn utilization_profile(&self, capacity: u32, bin: Dur) -> Vec<(Time, f64)> {
        assert!(bin.secs() > 0);
        if self.makespan <= Time::ZERO {
            return Vec::new();
        }
        let bins = ((self.makespan.secs() + bin.secs() - 1) / bin.secs()) as usize;
        let mut busy = vec![0f64; bins];
        for o in &self.outcomes {
            let Some(start) = o.start else { continue };
            let end = start + o.duration;
            let mut b = (start.secs() / bin.secs()).max(0) as usize;
            while b < bins {
                let lo = Time((b as i64) * bin.secs());
                let hi = Time((b as i64 + 1) * bin.secs());
                if lo >= end {
                    break;
                }
                let overlap = (end.min(hi) - start.max(lo)).secs().max(0);
                busy[b] += overlap as f64 * o.servers as f64;
                b += 1;
            }
        }
        let cap = capacity as f64 * bin.secs() as f64;
        busy.iter()
            .enumerate()
            .map(|(i, &w)| (Time(i as i64 * bin.secs()), w / cap))
            .collect()
    }
}

/// Anything that can play the online-scheduler role in a replay: handle
/// requests immediately on arrival with a monotone clock. Implemented by
/// [`CoAllocScheduler`] here and by the sharded scheduler in
/// `coalloc-shard`, so one generic driver ([`run_with`]) replays the same
/// trace through either.
pub trait OnlineScheduler {
    /// Advance the scheduler clock (never backwards).
    fn advance_to(&mut self, now: Time);
    /// Handle one request, committing on success.
    fn submit(&mut self, req: &Request) -> Result<Grant, ScheduleError>;
    /// Cumulative data-structure operations so far. Takes `&mut self` so
    /// distributed implementations may sync their counters.
    fn total_ops(&mut self) -> u64;
    /// System utilization over `[origin, until)`.
    fn utilization(&mut self, until: Time) -> f64;
    /// The scheduler's current clock.
    fn now(&self) -> Time;
}

impl OnlineScheduler for CoAllocScheduler {
    fn advance_to(&mut self, now: Time) {
        CoAllocScheduler::advance_to(self, now);
    }
    fn submit(&mut self, req: &Request) -> Result<Grant, ScheduleError> {
        CoAllocScheduler::submit(self, req)
    }
    fn total_ops(&mut self) -> u64 {
        self.stats().total_ops()
    }
    fn utilization(&mut self, until: Time) -> f64 {
        CoAllocScheduler::utilization(self, until)
    }
    fn now(&self) -> Time {
        CoAllocScheduler::now(self)
    }
}

/// Replay `requests` (sorted by submission time) through any
/// [`OnlineScheduler`]. The per-request protocol is identical to
/// [`run_online`]: advance the clock to the submission time, submit, record
/// the outcome.
pub fn run_with<S: OnlineScheduler>(sched: &mut S, requests: &[Request], label: &str) -> RunResult {
    let mut outcomes = Vec::with_capacity(requests.len());
    let mut makespan = sched.now();
    let mut prev_submit = Time(i64::MIN);
    for req in requests {
        debug_assert!(req.submit >= prev_submit, "requests must be sorted by q_r");
        prev_submit = req.submit;
        sched.advance_to(req.submit);
        let before = sched.total_ops();
        let (start, attempts) = match sched.submit(req) {
            Ok(grant) => {
                makespan = makespan.max(grant.end);
                (Some(grant.start), grant.attempts)
            }
            Err(ScheduleError::Exhausted { attempts, .. }) => (None, attempts),
            Err(_) => (None, 0),
        };
        let total = sched.total_ops();
        outcomes.push(Outcome {
            submit: req.submit,
            earliest: req.earliest_start.max(req.submit),
            duration: req.duration,
            servers: req.servers,
            start,
            attempts,
            ops: total - before,
        });
    }
    let utilization = sched.utilization(makespan);
    let total_ops = sched.total_ops();
    RunResult {
        label: label.to_string(),
        outcomes,
        utilization,
        makespan,
        total_ops,
    }
}

/// Replay `requests` (sorted by submission time) through the tree-based
/// online scheduler. Each request is handled immediately on arrival, as in
/// Section 5.1.
pub fn run_online(sched: &mut CoAllocScheduler, requests: &[Request], label: &str) -> RunResult {
    let mut span = obs::obs_span!("sim.run", "requests" => requests.len());
    if span.active() {
        span.record("scheduler", "online");
    }
    let run_start = *sched.stats();
    let mut outcomes = Vec::with_capacity(requests.len());
    let mut makespan = sched.now();
    let mut prev_submit = Time(i64::MIN);
    for req in requests {
        debug_assert!(req.submit >= prev_submit, "requests must be sorted by q_r");
        prev_submit = req.submit;
        sched.advance_to(req.submit);
        let before = *sched.stats();
        let (start, attempts) = match sched.submit(req) {
            Ok(grant) => {
                makespan = makespan.max(grant.end);
                (Some(grant.start), grant.attempts)
            }
            Err(ScheduleError::Exhausted { attempts, .. }) => (None, attempts),
            Err(_) => (None, 0),
        };
        let ops = sched.stats().since(&before).total_ops();
        outcomes.push(Outcome {
            submit: req.submit,
            earliest: req.earliest_start.max(req.submit),
            duration: req.duration,
            servers: req.servers,
            start,
            attempts,
            ops,
        });
    }
    let utilization = sched.utilization(makespan);
    if span.active() {
        // Per-run phase breakdown: where the data-structure work went.
        let d = sched.stats().since(&run_start);
        span.record("accepted", outcomes.iter().filter(|o| o.accepted()).count());
        span.record("phase1_searches", d.phase1_searches);
        span.record("phase2_searches", d.phase2_searches);
        span.record("primary_visits", d.primary_visits);
        span.record("secondary_visits", d.secondary_visits);
        span.record("update_visits", d.update_visits);
        span.record("rebuilds", d.rebuilds);
        span.record("attempts", d.attempts);
    }
    RunResult {
        label: label.to_string(),
        outcomes,
        utilization,
        makespan,
        total_ops: sched.stats().total_ops(),
    }
}

/// Replay `requests` through the naive linear-scan co-allocator (the
/// sequential baseline of Section 1).
pub fn run_naive(sched: &mut NaiveScheduler, requests: &[Request], label: &str) -> RunResult {
    let mut span = obs::obs_span!("sim.run", "requests" => requests.len());
    if span.active() {
        span.record("scheduler", "naive");
    }
    let mut outcomes = Vec::with_capacity(requests.len());
    let mut makespan = sched.now();
    for req in requests {
        sched.advance_to(req.submit);
        let before = *sched.stats();
        let (start, attempts) = match sched.submit(req) {
            Ok(grant) => {
                makespan = makespan.max(grant.end);
                (Some(grant.start), grant.attempts)
            }
            Err(ScheduleError::Exhausted { attempts, .. }) => (None, attempts),
            Err(_) => (None, 0),
        };
        let ops = sched.stats().since(&before).total_ops();
        outcomes.push(Outcome {
            submit: req.submit,
            earliest: req.earliest_start.max(req.submit),
            duration: req.duration,
            servers: req.servers,
            start,
            attempts,
            ops,
        });
    }
    let utilization = sched.utilization(makespan);
    if span.active() {
        span.record("accepted", outcomes.iter().filter(|o| o.accepted()).count());
        span.record("total_ops", sched.stats().total_ops());
    }
    RunResult {
        label: label.to_string(),
        outcomes,
        utilization,
        makespan,
        total_ops: sched.stats().total_ops(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SchedulerConfig {
        SchedulerConfig::builder()
            .tau(Dur(100))
            .horizon(Dur(10_000))
            .delta_t(Dur(100))
            .build()
    }

    fn reqs() -> Vec<Request> {
        vec![
            Request::on_demand(Time(0), Dur(500), 2),
            Request::on_demand(Time(0), Dur(300), 1),
            Request::on_demand(Time(100), Dur(400), 2),
            Request::advance(Time(100), Time(1000), Dur(200), 1),
        ]
    }

    #[test]
    fn online_replay_produces_outcomes() {
        let mut s = CoAllocScheduler::new(2, cfg());
        let r = run_online(&mut s, &reqs(), "online");
        assert_eq!(r.outcomes.len(), 4);
        assert_eq!(r.label, "online");
        // Job 0 takes both servers at t=0; job 1 needs 1 server → waits.
        assert!(r.outcomes[0].accepted());
        assert_eq!(r.outcomes[0].waiting(), Some(Dur::ZERO));
        assert!(r.outcomes[1].waiting().unwrap().secs() > 0);
        assert!(r.utilization > 0.0);
        assert!(r.total_ops > 0);
        assert_eq!(r.acceptance_rate(), 1.0);
    }

    #[test]
    fn outcome_metrics() {
        let o = Outcome {
            submit: Time(0),
            earliest: Time(0),
            duration: Dur(3600),
            servers: 4,
            start: Some(Time(1800)),
            attempts: 3,
            ops: 17,
        };
        assert!(o.accepted());
        assert_eq!(o.waiting(), Some(Dur(1800)));
        assert!((o.temporal_penalty().unwrap() - 0.5).abs() < 1e-12);
        let rejected = Outcome { start: None, ..o };
        assert!(!rejected.accepted());
        assert_eq!(rejected.temporal_penalty(), None);
    }

    #[test]
    fn aggregations_cover_all_figures() {
        let mut s = CoAllocScheduler::new(2, cfg());
        let r = run_online(&mut s, &reqs(), "online");
        assert!(r.waiting_stats_hours().count() == 4);
        let h = r.waiting_histogram_hours(0.25, 8);
        assert_eq!(h.total(), 4);
        assert!(r.duration_histogram_hours(0.5, 4).total() == 4);
        assert!(!r.penalty_by_duration_hours().is_empty());
        assert!(!r.waiting_by_spatial().is_empty());
        assert!(!r.attempts_by_spatial().is_empty());
        assert!(r.mean_ops_per_request() > 0.0);
    }

    #[test]
    fn utilization_profile_reconstructs_busy_fractions() {
        let mut s = CoAllocScheduler::new(2, cfg());
        // One job: both servers for [0, 500).
        let r = vec![Request::on_demand(Time(0), Dur(500), 2)];
        let run = run_online(&mut s, &r, "online");
        let prof = run.utilization_profile(2, Dur(250));
        assert_eq!(prof.len(), 2);
        assert!((prof[0].1 - 1.0).abs() < 1e-9);
        assert!((prof[1].1 - 1.0).abs() < 1e-9);
        // Partial bin overlap.
        let mut s = CoAllocScheduler::new(2, cfg());
        let r = vec![Request::on_demand(Time(100), Dur(150), 1)];
        let run = run_online(&mut s, &r, "online");
        let prof = run.utilization_profile(2, Dur(250));
        // [100, 250) on 1 of 2 servers in the only bin: 150/(2*250) = 0.3.
        assert!((prof[0].1 - 0.3).abs() < 1e-9, "{prof:?}");
        // The mean of the profile equals the aggregate utilization.
        let mean: f64 =
            prof.iter().map(|(_, u)| u).sum::<f64>() / prof.len() as f64;
        assert!((mean - run.utilization).abs() < 0.2);
    }

    #[test]
    fn naive_replay_matches_online_shape() {
        let mut tree = CoAllocScheduler::new(
            2,
            SchedulerConfig::builder()
                .tau(Dur(100))
                .horizon(Dur(10_000))
                .delta_t(Dur(100))
                .policy(SelectionPolicy::ByServerId)
                .build(),
        );
        let mut naive = NaiveScheduler::new(
            2,
            SchedulerConfig::builder()
                .tau(Dur(100))
                .horizon(Dur(10_000))
                .delta_t(Dur(100))
                .policy(SelectionPolicy::ByServerId)
                .build(),
        );
        let a = run_online(&mut tree, &reqs(), "online");
        let b = run_naive(&mut naive, &reqs(), "naive");
        let starts_a: Vec<_> = a.outcomes.iter().map(|o| o.start).collect();
        let starts_b: Vec<_> = b.outcomes.iter().map(|o| o.start).collect();
        assert_eq!(starts_a, starts_b);
    }
}
