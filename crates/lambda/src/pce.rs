//! The path computation element (PCE): lambda scheduling for grid
//! applications (Section 3.2).
//!
//! "Given a request consisting of a source-destination node pair, a range of
//! wavelengths, a time window, and the estimated length of the connection,
//! find a path and associated wavelength (or wavelengths, if wavelength
//! conversion is available) from the source to the destination nodes to
//! satisfy the request. Since the wavelength(s) on all links of the path
//! must be allocated and de-allocated simultaneously, this problem falls in
//! the class of resource co-allocation problems."
//!
//! The PCE maps each *(link, wavelength)* pair to one server of a
//! [`CoAllocScheduler`] and drives the paper's **range search →
//! post-process → commit** flow: a single range search returns every free
//! (link, λ) for the window; the PCE's application-specific post-processing
//! is wavelength-continuity intersection along candidate paths; the chosen
//! periods are then committed atomically via `commit_selection`.

use crate::graph::{Network, NodeId, Wavelength};
use crate::paths::{k_shortest_paths, Path};
use coalloc_core::prelude::*;
use std::collections::HashMap;

/// A connection request.
#[derive(Clone, Debug)]
pub struct ConnectionRequest {
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Earliest acceptable start of the connection.
    pub earliest_start: Time,
    /// Estimated length of the connection.
    pub duration: Dur,
    /// Acceptable wavelength range `[lo, hi]` (inclusive).
    pub wavelengths: (Wavelength, Wavelength),
}

/// An established lightpath.
#[derive(Clone, Debug)]
pub struct Lightpath {
    /// Scheduler job backing the lightpath (pass to [`Pce::tear_down`]).
    pub job: JobId,
    /// The routed path.
    pub path: Path,
    /// Wavelength per link (all equal without conversion).
    pub wavelengths: Vec<Wavelength>,
    /// Actual start (may be later than requested).
    pub start: Time,
    /// End of the reservation.
    pub end: Time,
    /// Window attempts used.
    pub attempts: u32,
}

impl Lightpath {
    /// Whether the lightpath uses a single wavelength end-to-end.
    pub fn is_continuous(&self) -> bool {
        self.wavelengths.windows(2).all(|w| w[0] == w[1])
    }
}

/// Why a connection could not be established.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PceError {
    /// Source and destination are not connected.
    NoRoute,
    /// No path/wavelength/window combination worked within `R_max` attempts.
    Exhausted {
        /// Attempts made.
        attempts: u32,
    },
    /// The wavelength range is empty or out of bounds.
    BadWavelengthRange,
}

impl std::fmt::Display for PceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PceError::NoRoute => write!(f, "no route between the endpoints"),
            PceError::Exhausted { attempts } => {
                write!(f, "no feasible lightpath within {attempts} attempts")
            }
            PceError::BadWavelengthRange => write!(f, "invalid wavelength range"),
        }
    }
}

impl std::error::Error for PceError {}

/// PCE configuration.
#[derive(Clone, Copy, Debug)]
pub struct PceConfig {
    /// Candidate paths per request (Yen's k).
    pub k_paths: usize,
    /// Whether wavelength conversion is available (per-link independent λ).
    pub wavelength_conversion: bool,
    /// Start-time increment between attempts.
    pub delta_t: Dur,
    /// Maximum window attempts.
    pub r_max: u32,
}

impl Default for PceConfig {
    fn default() -> Self {
        PceConfig {
            k_paths: 3,
            wavelength_conversion: false,
            delta_t: Dur::from_mins(15),
            r_max: 16,
        }
    }
}

/// The path computation element.
pub struct Pce {
    net: Network,
    sched: CoAllocScheduler,
    cfg: PceConfig,
    /// Route cache: (src, dst) → k shortest paths.
    routes: HashMap<(NodeId, NodeId), Vec<Path>>,
}

impl Pce {
    /// Build a PCE over `net` with the given scheduling configuration.
    pub fn new(net: Network, sched_cfg: SchedulerConfig, cfg: PceConfig) -> Pce {
        let sched = CoAllocScheduler::new(net.num_resources(), sched_cfg);
        Pce {
            net,
            sched,
            cfg,
            routes: HashMap::new(),
        }
    }

    /// The underlying network.
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// The underlying scheduler (diagnostics).
    pub fn scheduler(&self) -> &CoAllocScheduler {
        &self.sched
    }

    /// Advance the PCE clock.
    pub fn advance_to(&mut self, now: Time) {
        self.sched.advance_to(now);
    }

    fn routes_for(&mut self, src: NodeId, dst: NodeId) -> Vec<Path> {
        let k = self.cfg.k_paths;
        let net = &self.net;
        self.routes
            .entry((src, dst))
            .or_insert_with(|| k_shortest_paths(net, src, dst, k))
            .clone()
    }

    /// Establish a lightpath for `req`, retrying the window up to `R_max`
    /// times shifted by `Delta_t` (the paper's loop, applied to the
    /// PCE application).
    pub fn connect(&mut self, req: &ConnectionRequest) -> Result<Lightpath, PceError> {
        let (lo, hi) = req.wavelengths;
        if lo > hi || hi.0 >= self.net.wavelengths() {
            return Err(PceError::BadWavelengthRange);
        }
        let paths = self.routes_for(req.src, req.dst);
        if paths.is_empty() {
            return Err(PceError::NoRoute);
        }
        let mut attempts = 0u32;
        let mut start = req.earliest_start.max(self.sched.now());
        while attempts < self.cfg.r_max {
            attempts += 1;
            let end = start + req.duration;
            if end > self.sched.horizon_end() {
                break;
            }
            // One range search returns every free (link, λ) for the window —
            // "the range search returns all the resources available within
            // the specified time window".
            let hits = self.sched.range_search(start, end);
            let free: HashMap<ServerId, PeriodId> = hits
                .iter()
                .map(|h| (h.period.server, h.period.id))
                .collect();
            if let Some((path, lambdas)) = self.post_process(&paths, &free, lo, hi) {
                let selection: Vec<PeriodId> = path
                    .links
                    .iter()
                    .zip(&lambdas)
                    .map(|(&l, &w)| free[&self.net.resource(l, w)])
                    .collect();
                match self.sched.commit_selection(&selection, start, end) {
                    Ok(grant) => {
                        return Ok(Lightpath {
                            job: grant.job,
                            path,
                            wavelengths: lambdas,
                            start,
                            end,
                            attempts,
                        });
                    }
                    Err(ScheduleError::SelectionConflict) => {
                        // Single-threaded PCE cannot race itself, but keep
                        // the two-phase contract honest.
                        continue;
                    }
                    Err(_) => break,
                }
            }
            start += self.cfg.delta_t;
        }
        Err(PceError::Exhausted { attempts })
    }

    /// The application-specific post-processing step: pick a path and
    /// per-link wavelengths from the free set.
    fn post_process(
        &self,
        paths: &[Path],
        free: &HashMap<ServerId, PeriodId>,
        lo: Wavelength,
        hi: Wavelength,
    ) -> Option<(Path, Vec<Wavelength>)> {
        for path in paths {
            if self.cfg.wavelength_conversion {
                // Any free λ per link.
                let mut lambdas = Vec::with_capacity(path.links.len());
                let ok = path.links.iter().all(|&l| {
                    for w in lo.0..=hi.0 {
                        if free.contains_key(&self.net.resource(l, Wavelength(w))) {
                            lambdas.push(Wavelength(w));
                            return true;
                        }
                    }
                    false
                });
                if ok {
                    return Some((path.clone(), lambdas));
                }
            } else {
                // Wavelength continuity: one λ free on every link.
                for w in lo.0..=hi.0 {
                    let lambda = Wavelength(w);
                    if path
                        .links
                        .iter()
                        .all(|&l| free.contains_key(&self.net.resource(l, lambda)))
                    {
                        return Some((path.clone(), vec![lambda; path.links.len()]));
                    }
                }
            }
        }
        None
    }

    /// Tear a lightpath down, freeing its (link, λ) windows.
    pub fn tear_down(&mut self, lp: &Lightpath) -> Result<(), ScheduleError> {
        self.sched.release(lp.job)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched_cfg() -> SchedulerConfig {
        SchedulerConfig::builder()
            .tau(Dur(300))
            .horizon(Dur(36_000))
            .delta_t(Dur(300))
            .build()
    }

    fn pce(net: Network, conversion: bool) -> Pce {
        Pce::new(
            net,
            sched_cfg(),
            PceConfig {
                k_paths: 3,
                wavelength_conversion: conversion,
                delta_t: Dur(300),
                r_max: 8,
            },
        )
    }

    fn req(src: u32, dst: u32, start: i64, dur: i64, lo: u32, hi: u32) -> ConnectionRequest {
        ConnectionRequest {
            src: NodeId(src),
            dst: NodeId(dst),
            earliest_start: Time(start),
            duration: Dur(dur),
            wavelengths: (Wavelength(lo), Wavelength(hi)),
        }
    }

    #[test]
    fn establishes_continuous_lightpath() {
        let mut p = pce(Network::line(4, 2), false);
        let lp = p.connect(&req(0, 3, 0, 600, 0, 1)).unwrap();
        assert_eq!(lp.path.hops(), 3);
        assert!(lp.is_continuous());
        assert_eq!(lp.start, Time(0));
    }

    #[test]
    fn continuity_forces_common_wavelength() {
        // Occupy λ0 on the middle link only → a 0→3 path must use λ1
        // end-to-end.
        let mut p = pce(Network::line(4, 2), false);
        let lp1 = p.connect(&req(1, 2, 0, 600, 0, 0)).unwrap();
        assert_eq!(lp1.wavelengths, vec![Wavelength(0)]);
        let lp2 = p.connect(&req(0, 3, 0, 600, 0, 1)).unwrap();
        assert!(lp2.is_continuous());
        assert_eq!(lp2.wavelengths[0], Wavelength(1));
    }

    #[test]
    fn no_continuity_no_conversion_shifts_window() {
        // Block λ0 on link (1,2) and λ1 on link (2,3): no single λ works on
        // the only 0→3 path; PCE must shift the window.
        let mut p = pce(Network::line(4, 2), false);
        p.connect(&req(1, 2, 0, 600, 0, 0)).unwrap();
        p.connect(&req(2, 3, 0, 600, 1, 1)).unwrap();
        let lp = p.connect(&req(0, 3, 0, 300, 0, 1)).unwrap();
        assert!(lp.start >= Time(600), "had to wait out the blockers");
        assert!(lp.attempts > 1);
    }

    #[test]
    fn conversion_rescues_the_same_scenario() {
        let mut p = pce(Network::line(4, 2), true);
        p.connect(&req(1, 2, 0, 600, 0, 0)).unwrap();
        p.connect(&req(2, 3, 0, 600, 1, 1)).unwrap();
        let lp = p.connect(&req(0, 3, 0, 300, 0, 1)).unwrap();
        assert_eq!(lp.start, Time(0), "conversion uses mixed wavelengths");
        assert!(!lp.is_continuous());
    }

    #[test]
    fn alternate_path_used_when_primary_is_full() {
        // Ring: blocking the direct arc forces the other direction at the
        // same start time.
        let mut p = pce(Network::ring(6, 1), false);
        let direct = p.connect(&req(0, 3, 0, 600, 0, 0)).unwrap();
        assert_eq!(direct.path.hops(), 3);
        let other = p.connect(&req(0, 3, 0, 600, 0, 0)).unwrap();
        assert_eq!(other.path.hops(), 3);
        assert_eq!(other.start, Time(0));
        let links_a: std::collections::HashSet<_> = direct.path.links.iter().collect();
        assert!(other.path.links.iter().all(|l| !links_a.contains(l)));
    }

    #[test]
    fn tear_down_frees_wavelengths() {
        let mut p = pce(Network::line(3, 1), false);
        let lp = p.connect(&req(0, 2, 0, 600, 0, 0)).unwrap();
        // The single wavelength is taken.
        let e = p.connect(&req(0, 2, 0, 300, 0, 0)).unwrap();
        assert!(e.start >= Time(600));
        p.tear_down(&lp).unwrap();
        let again = p.connect(&req(0, 2, 0, 300, 0, 0)).unwrap();
        assert_eq!(again.start, Time(0));
    }

    #[test]
    fn errors_reported() {
        // Node 2 is isolated: 0-1 is the only link.
        let mut disconnected = Network::new(3, 2);
        disconnected.add_link(NodeId(0), NodeId(1));
        let mut p = pce(disconnected, false);
        assert_eq!(p.connect(&req(0, 2, 0, 600, 0, 1)).unwrap_err(), PceError::NoRoute);
        let mut p = pce(Network::line(3, 2), false);
        assert_eq!(
            p.connect(&req(0, 2, 0, 600, 1, 0)).unwrap_err(),
            PceError::BadWavelengthRange
        );
        assert_eq!(
            p.connect(&req(0, 2, 0, 600, 0, 5)).unwrap_err(),
            PceError::BadWavelengthRange
        );
    }

    #[test]
    fn nsfnet_carries_many_connections() {
        let mut p = pce(Network::nsfnet(8), false);
        let mut ok = 0;
        for i in 0..40u32 {
            let (s, d) = (i % 14, (i * 5 + 3) % 14);
            if s == d {
                continue;
            }
            if p.connect(&req(s, d, 0, 1800, 0, 7)).is_ok() {
                ok += 1;
            }
        }
        assert!(ok >= 30, "NSFNET with 8 wavelengths should carry most: {ok}");
        p.scheduler().timeline().check_invariants();
    }
}
