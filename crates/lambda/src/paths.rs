//! Path computation: hop-count Dijkstra and Yen's k-shortest loopless paths.

use crate::graph::{LinkId, Network, NodeId};
use std::collections::BinaryHeap;

/// A loopless path: the node sequence and the links connecting them.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Path {
    /// Nodes visited, `src` first, `dst` last.
    pub nodes: Vec<NodeId>,
    /// Links traversed (`nodes.len() - 1` of them).
    pub links: Vec<LinkId>,
}

impl Path {
    /// Number of hops.
    pub fn hops(&self) -> usize {
        self.links.len()
    }
}

/// Shortest path by hop count, avoiding `banned_nodes`/`banned_links`
/// (empty slices for a plain query). Returns `None` when disconnected.
pub fn shortest_path(
    net: &Network,
    src: NodeId,
    dst: NodeId,
    banned_nodes: &[NodeId],
    banned_links: &[LinkId],
) -> Option<Path> {
    let n = net.num_nodes() as usize;
    let mut dist = vec![u32::MAX; n];
    let mut prev: Vec<Option<(NodeId, LinkId)>> = vec![None; n];
    let mut heap: BinaryHeap<std::cmp::Reverse<(u32, u32)>> = BinaryHeap::new();
    let node_banned = |x: NodeId| banned_nodes.contains(&x);
    if node_banned(src) || node_banned(dst) {
        return None;
    }
    dist[src.0 as usize] = 0;
    heap.push(std::cmp::Reverse((0, src.0)));
    while let Some(std::cmp::Reverse((d, u))) = heap.pop() {
        if d > dist[u as usize] {
            continue;
        }
        if u == dst.0 {
            break;
        }
        for &(v, link) in net.neighbors(NodeId(u)) {
            if node_banned(v) || banned_links.contains(&link) {
                continue;
            }
            let nd = d + 1;
            if nd < dist[v.0 as usize] {
                dist[v.0 as usize] = nd;
                prev[v.0 as usize] = Some((NodeId(u), link));
                heap.push(std::cmp::Reverse((nd, v.0)));
            }
        }
    }
    if dist[dst.0 as usize] == u32::MAX {
        return None;
    }
    let mut nodes = vec![dst];
    let mut links = Vec::new();
    let mut cur = dst;
    while cur != src {
        let (p, l) = prev[cur.0 as usize].expect("path chain intact");
        nodes.push(p);
        links.push(l);
        cur = p;
    }
    nodes.reverse();
    links.reverse();
    Some(Path { nodes, links })
}

/// Yen's algorithm: up to `k` loopless paths in non-decreasing hop count.
pub fn k_shortest_paths(net: &Network, src: NodeId, dst: NodeId, k: usize) -> Vec<Path> {
    let mut found: Vec<Path> = Vec::new();
    let Some(first) = shortest_path(net, src, dst, &[], &[]) else {
        return found;
    };
    found.push(first);
    let mut candidates: Vec<Path> = Vec::new();
    while found.len() < k {
        let last = found.last().unwrap().clone();
        // For each spur node in the last found path...
        for i in 0..last.nodes.len() - 1 {
            let spur = last.nodes[i];
            let root_nodes = &last.nodes[..=i];
            let root_links = &last.links[..i];
            // Ban links used by previous paths sharing this root.
            let mut banned_links: Vec<LinkId> = Vec::new();
            for p in found.iter().chain(candidates.iter()) {
                if p.nodes.len() > i && p.nodes[..=i] == *root_nodes {
                    if let Some(&l) = p.links.get(i) {
                        banned_links.push(l);
                    }
                }
            }
            // Ban root nodes except the spur itself (looplessness).
            let banned_nodes: Vec<NodeId> = root_nodes[..i].to_vec();
            if let Some(spur_path) = shortest_path(net, spur, dst, &banned_nodes, &banned_links) {
                let mut nodes = root_nodes.to_vec();
                nodes.extend_from_slice(&spur_path.nodes[1..]);
                let mut links = root_links.to_vec();
                links.extend_from_slice(&spur_path.links);
                let candidate = Path { nodes, links };
                if !found.contains(&candidate) && !candidates.contains(&candidate) {
                    candidates.push(candidate);
                }
            }
        }
        if candidates.is_empty() {
            break;
        }
        // Take the shortest candidate.
        let best = candidates
            .iter()
            .enumerate()
            .min_by_key(|(_, p)| p.hops())
            .map(|(i, _)| i)
            .unwrap();
        found.push(candidates.swap_remove(best));
    }
    found
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shortest_on_line() {
        let net = Network::line(5, 2);
        let p = shortest_path(&net, NodeId(0), NodeId(4), &[], &[]).unwrap();
        assert_eq!(p.hops(), 4);
        assert_eq!(p.nodes.first(), Some(&NodeId(0)));
        assert_eq!(p.nodes.last(), Some(&NodeId(4)));
    }

    #[test]
    fn disconnected_returns_none() {
        let net = Network::new(3, 2); // no links
        assert!(shortest_path(&net, NodeId(0), NodeId(2), &[], &[]).is_none());
    }

    #[test]
    fn banned_link_forces_detour_on_ring() {
        let net = Network::ring(6, 2);
        let direct = shortest_path(&net, NodeId(0), NodeId(1), &[], &[]).unwrap();
        assert_eq!(direct.hops(), 1);
        let detour =
            shortest_path(&net, NodeId(0), NodeId(1), &[], &[direct.links[0]]).unwrap();
        assert_eq!(detour.hops(), 5);
    }

    #[test]
    fn yen_finds_both_ring_directions() {
        let net = Network::ring(6, 2);
        let paths = k_shortest_paths(&net, NodeId(0), NodeId(3), 4);
        // A 6-ring has exactly two loopless 0→3 paths, both of 3 hops.
        assert_eq!(paths.len(), 2);
        assert_eq!(paths[0].hops(), 3);
        assert_eq!(paths[1].hops(), 3);
        assert_ne!(paths[0], paths[1]);
    }

    #[test]
    fn yen_on_nsfnet_is_sorted_and_loopless() {
        let net = Network::nsfnet(4);
        let paths = k_shortest_paths(&net, NodeId(0), NodeId(13), 5);
        assert!(paths.len() >= 3);
        for w in paths.windows(2) {
            assert!(w[0].hops() <= w[1].hops(), "paths must be sorted");
        }
        for p in &paths {
            let mut seen = std::collections::HashSet::new();
            assert!(p.nodes.iter().all(|n| seen.insert(*n)), "loopless");
            assert_eq!(p.nodes.len(), p.links.len() + 1);
            // Consecutive nodes must actually be joined by the listed link.
            for (i, l) in p.links.iter().enumerate() {
                let (a, b) = net.endpoints(*l);
                let (u, v) = (p.nodes[i], p.nodes[i + 1]);
                assert!((a, b) == (u, v) || (a, b) == (v, u));
            }
        }
    }

    #[test]
    fn yen_k1_equals_dijkstra() {
        let net = Network::nsfnet(4);
        let d = shortest_path(&net, NodeId(2), NodeId(12), &[], &[]).unwrap();
        let y = k_shortest_paths(&net, NodeId(2), NodeId(12), 1);
        assert_eq!(y.len(), 1);
        assert_eq!(y[0].hops(), d.hops());
    }
}
