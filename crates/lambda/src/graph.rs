//! Optical network topology: nodes connected by WDM links, each carrying `W`
//! wavelengths. A *(link, wavelength)* pair is one schedulable resource —
//! the mapping onto the co-allocation scheduler's server space.

/// A network node.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

/// An undirected link.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(pub u32);

/// A wavelength index `0..W`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Wavelength(pub u32);

/// An undirected WDM network.
#[derive(Clone, Debug)]
pub struct Network {
    num_nodes: u32,
    links: Vec<(NodeId, NodeId)>,
    adjacency: Vec<Vec<(NodeId, LinkId)>>,
    wavelengths: u32,
}

impl Network {
    /// An empty network with `num_nodes` nodes and `wavelengths` wavelengths
    /// per link.
    pub fn new(num_nodes: u32, wavelengths: u32) -> Network {
        assert!(wavelengths > 0, "links need at least one wavelength");
        Network {
            num_nodes,
            links: Vec::new(),
            adjacency: vec![Vec::new(); num_nodes as usize],
            wavelengths,
        }
    }

    /// Add an undirected link between `a` and `b`. Returns its id.
    pub fn add_link(&mut self, a: NodeId, b: NodeId) -> LinkId {
        assert!(a.0 < self.num_nodes && b.0 < self.num_nodes, "node range");
        assert_ne!(a, b, "self-loops are not allowed");
        let id = LinkId(self.links.len() as u32);
        self.links.push((a, b));
        self.adjacency[a.0 as usize].push((b, id));
        self.adjacency[b.0 as usize].push((a, id));
        id
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> u32 {
        self.num_nodes
    }

    /// Number of links.
    pub fn num_links(&self) -> u32 {
        self.links.len() as u32
    }

    /// Wavelengths per link (`W`).
    pub fn wavelengths(&self) -> u32 {
        self.wavelengths
    }

    /// Endpoints of a link.
    pub fn endpoints(&self, l: LinkId) -> (NodeId, NodeId) {
        self.links[l.0 as usize]
    }

    /// Neighbors of a node with the connecting link.
    pub fn neighbors(&self, n: NodeId) -> &[(NodeId, LinkId)] {
        &self.adjacency[n.0 as usize]
    }

    /// Total schedulable resources: `links * wavelengths`. This is the `N`
    /// of the underlying co-allocation scheduler.
    pub fn num_resources(&self) -> u32 {
        self.num_links() * self.wavelengths
    }

    /// The scheduler server id of `(link, wavelength)`.
    pub fn resource(&self, link: LinkId, w: Wavelength) -> coalloc_core::ids::ServerId {
        debug_assert!(w.0 < self.wavelengths);
        coalloc_core::ids::ServerId(link.0 * self.wavelengths + w.0)
    }

    /// Inverse of [`Self::resource`].
    pub fn resource_parts(&self, s: coalloc_core::ids::ServerId) -> (LinkId, Wavelength) {
        (
            LinkId(s.0 / self.wavelengths),
            Wavelength(s.0 % self.wavelengths),
        )
    }

    /// A line topology `0 - 1 - ... - (n-1)`.
    pub fn line(n: u32, wavelengths: u32) -> Network {
        let mut net = Network::new(n, wavelengths);
        for i in 0..n.saturating_sub(1) {
            net.add_link(NodeId(i), NodeId(i + 1));
        }
        net
    }

    /// A ring topology.
    pub fn ring(n: u32, wavelengths: u32) -> Network {
        assert!(n >= 3, "a ring needs at least 3 nodes");
        let mut net = Network::new(n, wavelengths);
        for i in 0..n {
            net.add_link(NodeId(i), NodeId((i + 1) % n));
        }
        net
    }

    /// The classic 14-node, 21-link NSFNET topology used throughout optical
    /// networking studies.
    pub fn nsfnet(wavelengths: u32) -> Network {
        let edges: &[(u32, u32)] = &[
            (0, 1),
            (0, 2),
            (0, 7),
            (1, 2),
            (1, 3),
            (2, 5),
            (3, 4),
            (3, 10),
            (4, 5),
            (4, 6),
            (5, 9),
            (5, 13),
            (6, 7),
            (7, 8),
            (8, 9),
            (8, 11),
            (8, 12),
            (10, 11),
            (10, 13),
            (11, 12),
            (12, 13),
        ];
        let mut net = Network::new(14, wavelengths);
        for &(a, b) in edges {
            net.add_link(NodeId(a), NodeId(b));
        }
        net
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_topology_shape() {
        let net = Network::line(4, 8);
        assert_eq!(net.num_nodes(), 4);
        assert_eq!(net.num_links(), 3);
        assert_eq!(net.num_resources(), 24);
        assert_eq!(net.neighbors(NodeId(0)).len(), 1);
        assert_eq!(net.neighbors(NodeId(1)).len(), 2);
    }

    #[test]
    fn ring_topology_shape() {
        let net = Network::ring(5, 4);
        assert_eq!(net.num_links(), 5);
        for n in 0..5 {
            assert_eq!(net.neighbors(NodeId(n)).len(), 2);
        }
    }

    #[test]
    fn nsfnet_is_the_standard_21_link_graph() {
        let net = Network::nsfnet(16);
        assert_eq!(net.num_nodes(), 14);
        assert_eq!(net.num_links(), 21);
        assert_eq!(net.num_resources(), 336);
    }

    #[test]
    fn resource_mapping_roundtrips() {
        let net = Network::line(5, 8);
        for l in 0..net.num_links() {
            for w in 0..8 {
                let s = net.resource(LinkId(l), Wavelength(w));
                assert_eq!(net.resource_parts(s), (LinkId(l), Wavelength(w)));
            }
        }
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_rejected() {
        let mut net = Network::new(3, 2);
        net.add_link(NodeId(1), NodeId(1));
    }
}
