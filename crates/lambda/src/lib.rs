//! # coalloc-lambda
//!
//! Lambda scheduling for grid applications (Section 3.2): a path computation
//! element (PCE) that co-allocates link wavelengths along end-to-end paths
//! using the core scheduler's range-search → post-process → commit flow.
//! Each *(link, wavelength)* pair maps to one scheduler server; wavelength
//! continuity (or per-link wavelengths under conversion) is the PCE's
//! application-specific post-processing over the range-search result.

//! ## Example
//!
//! ```
//! use coalloc_core::prelude::*;
//! use coalloc_lambda::{ConnectionRequest, Network, NodeId, Pce, PceConfig, Wavelength};
//!
//! let mut pce = Pce::new(
//!     Network::nsfnet(4),
//!     SchedulerConfig::default(),
//!     PceConfig::default(),
//! );
//! let lp = pce
//!     .connect(&ConnectionRequest {
//!         src: NodeId(0),
//!         dst: NodeId(13),
//!         earliest_start: Time::ZERO,
//!         duration: Dur::from_hours(2),
//!         wavelengths: (Wavelength(0), Wavelength(3)),
//!     })
//!     .unwrap();
//! assert!(lp.is_continuous()); // same lambda on every hop
//! pce.tear_down(&lp).unwrap();
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod graph;
pub mod paths;
pub mod pce;

pub use graph::{LinkId, Network, NodeId, Wavelength};
pub use paths::{k_shortest_paths, shortest_path, Path};
pub use pce::{ConnectionRequest, Lightpath, Pce, PceConfig, PceError};
