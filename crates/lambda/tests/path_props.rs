//! Property tests for path computation: Dijkstra against BFS, Yen against
//! brute-force loopless-path enumeration on small random graphs.

use coalloc_lambda::{k_shortest_paths, shortest_path, Network, NodeId};
use proptest::prelude::*;
use std::collections::VecDeque;

/// Random connected-ish graph on up to 7 nodes.
fn graph_strategy() -> impl Strategy<Value = Network> {
    (2u32..=7, prop::collection::vec((0u32..7, 0u32..7), 1..15)).prop_map(|(n, edges)| {
        let mut net = Network::new(n, 2);
        let mut seen = std::collections::HashSet::new();
        for (a, b) in edges {
            let (a, b) = (a % n, b % n);
            if a != b && seen.insert((a.min(b), a.max(b))) {
                net.add_link(NodeId(a.min(b)), NodeId(a.max(b)));
            }
        }
        net
    })
}

/// BFS hop distance (oracle for Dijkstra with unit weights).
fn bfs_dist(net: &Network, src: NodeId, dst: NodeId) -> Option<usize> {
    let mut dist = vec![usize::MAX; net.num_nodes() as usize];
    dist[src.0 as usize] = 0;
    let mut q = VecDeque::from([src]);
    while let Some(u) = q.pop_front() {
        if u == dst {
            return Some(dist[u.0 as usize]);
        }
        for &(v, _) in net.neighbors(u) {
            if dist[v.0 as usize] == usize::MAX {
                dist[v.0 as usize] = dist[u.0 as usize] + 1;
                q.push_back(v);
            }
        }
    }
    None
}

/// Brute-force enumeration of all loopless paths (oracle for Yen).
fn all_paths(net: &Network, src: NodeId, dst: NodeId) -> Vec<usize> {
    fn dfs(
        net: &Network,
        cur: NodeId,
        dst: NodeId,
        visited: &mut Vec<bool>,
        hops: usize,
        out: &mut Vec<usize>,
    ) {
        if cur == dst {
            out.push(hops);
            return;
        }
        for &(v, _) in net.neighbors(cur) {
            if !visited[v.0 as usize] {
                visited[v.0 as usize] = true;
                dfs(net, v, dst, visited, hops + 1, out);
                visited[v.0 as usize] = false;
            }
        }
    }
    let mut visited = vec![false; net.num_nodes() as usize];
    visited[src.0 as usize] = true;
    let mut out = Vec::new();
    dfs(net, src, dst, &mut visited, 0, &mut out);
    out.sort_unstable();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn dijkstra_matches_bfs(net in graph_strategy(), s in 0u32..7, d in 0u32..7) {
        let n = net.num_nodes();
        let (src, dst) = (NodeId(s % n), NodeId(d % n));
        let got = shortest_path(&net, src, dst, &[], &[]).map(|p| p.hops());
        let want = bfs_dist(&net, src, dst);
        prop_assert_eq!(got, want);
    }

    #[test]
    fn yen_enumerates_exactly_the_loopless_paths(
        net in graph_strategy(),
        s in 0u32..7,
        d in 0u32..7,
    ) {
        let n = net.num_nodes();
        let (src, dst) = (NodeId(s % n), NodeId(d % n));
        if src == dst {
            return Ok(());
        }
        let oracle = all_paths(&net, src, dst);
        let yen = k_shortest_paths(&net, src, dst, 1000);
        // Same multiset of hop counts (sorted).
        let mut got: Vec<usize> = yen.iter().map(|p| p.hops()).collect();
        got.sort_unstable();
        prop_assert_eq!(&got, &oracle, "k-shortest set mismatch");
        // Sorted by hops, loopless, and structurally valid.
        for w in yen.windows(2) {
            prop_assert!(w[0].hops() <= w[1].hops());
        }
        for p in &yen {
            let mut seen = std::collections::HashSet::new();
            prop_assert!(p.nodes.iter().all(|x| seen.insert(*x)));
            prop_assert_eq!(p.nodes.len(), p.links.len() + 1);
            prop_assert_eq!(*p.nodes.first().unwrap(), src);
            prop_assert_eq!(*p.nodes.last().unwrap(), dst);
            for (i, l) in p.links.iter().enumerate() {
                let (a, b) = net.endpoints(*l);
                let (u, v) = (p.nodes[i], p.nodes[i + 1]);
                prop_assert!((a, b) == (u, v) || (a, b) == (v, u));
            }
        }
        // No duplicates.
        for i in 0..yen.len() {
            for j in i + 1..yen.len() {
                prop_assert_ne!(&yen[i], &yen[j]);
            }
        }
    }

    #[test]
    fn yen_prefix_property(net in graph_strategy(), s in 0u32..7, d in 0u32..7, k in 1usize..5) {
        // The first k paths of a larger k are identical in hop counts.
        let n = net.num_nodes();
        let (src, dst) = (NodeId(s % n), NodeId(d % n));
        let small: Vec<usize> = k_shortest_paths(&net, src, dst, k).iter().map(|p| p.hops()).collect();
        let large: Vec<usize> = k_shortest_paths(&net, src, dst, k + 3).iter().map(|p| p.hops()).collect();
        prop_assert_eq!(&small[..], &large[..small.len().min(large.len())]);
    }
}
