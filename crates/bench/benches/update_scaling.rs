//! Update-path cost (Section 4.3): committing a reservation updates the
//! trees of every slot the allocated periods overlap —
//! `O(n_r * S * (log N)^2)` where `S` is the overlapped-slot span — while
//! moving a trailing period costs `O(log N)` in the trailing index.

use coalloc_core::prelude::*;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn cfg() -> SchedulerConfig {
    SchedulerConfig::builder()
        .tau(Dur(600))
        .horizon(Dur(600 * 64))
        .delta_t(Dur(600))
        .build()
}

/// Commit+release cycles at the schedule tail (trailing-index fast path).
fn bench_commit_release_tail(c: &mut Criterion) {
    let mut group = c.benchmark_group("commit_release_tail");
    for exp in [8u32, 12, 16] {
        let n = 1u32 << exp;
        let mut s = CoAllocScheduler::new(n, cfg());
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let g = s
                    .submit(&Request::on_demand(Time::ZERO, Dur(1200), 4))
                    .expect("fits");
                s.release(black_box(g.job)).unwrap();
            });
        });
    }
    group.finish();
}

/// Commit+release of a mid-schedule hole (finite-period slot-tree path):
/// cost grows with the number of slots the hole spans. Anchors occupy every
/// server so the request cannot be satisfied from the (cheap) trailing
/// index — it must split the wide finite hole.
fn bench_commit_release_hole(c: &mut Criterion) {
    let mut group = c.benchmark_group("commit_release_hole_span");
    for span_slots in [2i64, 8, 32] {
        let n = 8u32;
        let mut s = CoAllocScheduler::new(n, cfg());
        // A far-future anchor on ALL servers creates a finite hole
        // [0, anchor_start) spanning `span_slots + 1` slots on each.
        let anchor = Time(600 * (span_slots + 1));
        s.submit(&Request::advance(Time::ZERO, anchor, Dur(600), n))
            .expect("anchor fits");
        group.bench_with_input(
            BenchmarkId::from_parameter(span_slots),
            &span_slots,
            |b, _| {
                b.iter(|| {
                    // Book inside the hole: splits finite periods that span
                    // `span_slots` slots.
                    let g = s
                        .submit(&Request::advance(Time::ZERO, Time(600), Dur(600), 4))
                        .expect("hole fits");
                    s.release(black_box(g.job)).unwrap();
                });
            },
        );
    }
    group.finish();
}

/// Clock advance: discard + create slot trees (the paper's O(1) claim).
fn bench_clock_advance(c: &mut Criterion) {
    let mut group = c.benchmark_group("clock_advance_per_slot");
    for exp in [8u32, 14] {
        let n = 1u32 << exp;
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let mut s = CoAllocScheduler::new(n, cfg());
            let mut t = 0i64;
            b.iter(|| {
                t += 600;
                s.advance_to(black_box(Time(t)));
            });
        });
    }
    group.finish();
}

/// Grant-path latency with eager vs deferred (background) index updates —
/// the paper's Section 4.2 suggestion, quantified. Only the `submit` call
/// is timed; the release and the (deferred) flush run off the clock, the
/// way a real resource manager would flush during idle time.
fn bench_deferred_updates(c: &mut Criterion) {
    use std::time::{Duration, Instant};
    let mut group = c.benchmark_group("grant_latency_update_mode");
    for (label, deferred) in [("eager", false), ("deferred", true)] {
        let cfg = SchedulerConfig {
            deferred_updates: deferred,
            ..SchedulerConfig::builder()
                .tau(Dur(600))
                .horizon(Dur(600 * 64))
                .delta_t(Dur(600))
                .build()
        };
        let mut s = CoAllocScheduler::new(4096, cfg);
        group.bench_function(label, |b| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    let t0 = Instant::now();
                    let g = s
                        .submit(&Request::on_demand(Time::ZERO, Dur(1200), 8))
                        .expect("fits");
                    total += t0.elapsed();
                    s.release(black_box(g.job)).unwrap();
                    s.flush_updates(); // off the clock ("background")
                }
                total
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_commit_release_tail,
    bench_commit_release_hole,
    bench_clock_advance,
    bench_deferred_updates
);
criterion_main!(benches);
