//! Cross-site protocol latency: co-allocation round-trips as the number of
//! involved sites grows (hold-phase length is linear in the site count).

use coalloc_core::prelude::{Dur, SchedulerConfig, Time};
use coalloc_multisite::{Coordinator, CoordinatorConfig, MultiRequest, SiteHandle, SiteId};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_co_allocate(c: &mut Criterion) {
    let mut group = c.benchmark_group("co_allocate_sites");
    group.sample_size(20);
    for n_sites in [1u32, 2, 4, 8] {
        let sites: Vec<SiteHandle> = (0..n_sites)
            .map(|i| {
                SiteHandle::spawn(
                    SiteId(i),
                    64,
                    SchedulerConfig::builder()
                        .tau(Dur(900))
                        .horizon(Dur(900 * 512))
                        .delta_t(Dur(900))
                        .build(),
                )
            })
            .collect();
        let ccfg = CoordinatorConfig {
            delta_t: Dur(900),
            r_max: 8,
            ..CoordinatorConfig::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(n_sites), &n_sites, |b, _| {
            let mut coord = Coordinator::new(&sites, ccfg);
            let mut k = 0i64;
            b.iter(|| {
                // Disjoint windows so every co-allocation succeeds at the
                // first attempt (pure protocol cost).
                k += 1;
                let req = MultiRequest {
                    parts: (0..n_sites).map(|s| (SiteId(s), 2u32)).collect(),
                    earliest_start: Time((k % 400) * 900),
                    duration: Dur(900),
                };
                let g = coord.co_allocate(black_box(&req)).expect("fits");
                // Immediately undo so capacity never runs out.
                for (site, _, _) in &g.parts {
                    let _ = sites[site.0 as usize].call(
                        coalloc_multisite::SiteRequest::Abort { txn: g.txn, seq: 0 },
                    );
                }
            });
        });
        for s in sites {
            s.shutdown();
        }
    }
    group.finish();
}

criterion_group!(benches, bench_co_allocate);
criterion_main!(benches);
