//! Section 4.3 complexity claims, measured: the two-phase search is
//! `O((log N)^2)` against the slotted trees versus `O(N)` for the naive
//! linear scan, as the server count grows.

use coalloc_core::naive::NaiveScheduler;
use coalloc_core::prelude::*;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn cfg(seed: u64) -> SchedulerConfig {
    SchedulerConfig::builder()
        .tau(Dur(600))
        .horizon(Dur(600 * 64))
        .delta_t(Dur(600))
        .seed(seed)
        .build()
}

/// Build a fragmented system: commit a batch of staggered jobs so that
/// searches traverse a non-trivial tree.
fn fragmented_tree(n: u32) -> CoAllocScheduler {
    let mut s = CoAllocScheduler::new(n, cfg(7));
    for i in 0..128i64 {
        let req = Request::advance(
            Time::ZERO,
            Time((i % 32) * 600),
            Dur(600),
            (n / 128).max(1),
        );
        let _ = s.submit(&req);
    }
    s
}

fn fragmented_naive(n: u32) -> NaiveScheduler {
    let mut s = NaiveScheduler::new(n, cfg(7));
    for i in 0..128i64 {
        let req = Request::advance(
            Time::ZERO,
            Time((i % 32) * 600),
            Dur(600),
            (n / 128).max(1),
        );
        let _ = s.submit(&req);
    }
    s
}

fn bench_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("range_count_vs_n");
    for exp in [8u32, 10, 12, 14, 16] {
        let n = 1u32 << exp;
        group.throughput(Throughput::Elements(1));
        let mut tree = fragmented_tree(n);
        group.bench_with_input(BenchmarkId::new("slotted-tree", n), &n, |b, _| {
            let mut i = 0i64;
            b.iter(|| {
                i = (i + 1) % 30;
                black_box(tree.range_count(Time(i * 600), Time(i * 600 + 500)))
            });
        });
        let mut naive = fragmented_naive(n);
        group.bench_with_input(BenchmarkId::new("naive-scan", n), &n, |b, _| {
            let mut i = 0i64;
            b.iter(|| {
                i = (i + 1) % 30;
                black_box(naive.find_all_feasible(Time(i * 600), Time(i * 600 + 500)).len())
            });
        });
    }
    group.finish();
}

fn bench_full_enumeration(c: &mut Criterion) {
    // Enumerating all feasible resources is Omega(answer); compare the
    // constant factors at a fixed N.
    let mut group = c.benchmark_group("range_search_enumerate");
    let n = 4096u32;
    let mut tree = fragmented_tree(n);
    group.bench_function("slotted-tree", |b| {
        b.iter(|| black_box(tree.range_search(Time(300), Time(900)).len()));
    });
    let mut naive = fragmented_naive(n);
    group.bench_function("naive-scan", |b| {
        b.iter(|| black_box(naive.find_all_feasible(Time(300), Time(900)).len()));
    });
    group.finish();
}

criterion_group!(benches, bench_search, bench_full_enumeration);
criterion_main!(benches);
