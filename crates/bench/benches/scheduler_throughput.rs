//! End-to-end scheduler throughput on workload-twin slices: the online
//! tree-based co-allocator vs the naive sequential baseline vs the batch
//! baselines, on identical request streams.

use coalloc_batch::{run_batch, BatchPolicy};
use coalloc_core::naive::NaiveScheduler;
use coalloc_core::prelude::*;
use coalloc_sim::runner::{run_naive, run_online};
use coalloc_workloads::synthetic::WorkloadSpec;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn paper_cfg() -> SchedulerConfig {
    SchedulerConfig::builder()
        .tau(Dur::from_mins(15))
        .horizon(Dur::from_hours(72))
        .delta_t(Dur::from_mins(15))
        .build()
}

fn bench_replay(c: &mut Criterion) {
    let spec = WorkloadSpec::kth().scaled(0.005);
    let reqs = spec.generate(42);
    let mut group = c.benchmark_group("kth_replay");
    group.sample_size(10);
    group.throughput(Throughput::Elements(reqs.len() as u64));
    group.bench_function("online-tree", |b| {
        b.iter(|| {
            let mut s = CoAllocScheduler::new(spec.servers, paper_cfg());
            black_box(run_online(&mut s, &reqs, "online").acceptance_rate())
        });
    });
    group.bench_function("naive-scan", |b| {
        b.iter(|| {
            let mut s = NaiveScheduler::new(spec.servers, paper_cfg());
            black_box(run_naive(&mut s, &reqs, "naive").acceptance_rate())
        });
    });
    group.bench_function("easy-backfill", |b| {
        b.iter(|| {
            black_box(
                run_batch(spec.servers, BatchPolicy::EasyBackfill, &reqs, "easy")
                    .acceptance_rate(),
            )
        });
    });
    group.bench_function("conservative-backfill", |b| {
        b.iter(|| {
            black_box(
                run_batch(
                    spec.servers,
                    BatchPolicy::ConservativeBackfill,
                    &reqs,
                    "cons",
                )
                .acceptance_rate(),
            )
        });
    });
    group.finish();
}

criterion_group!(benches, bench_replay);
criterion_main!(benches);
