//! Guard for the observability overhead budget (DESIGN.md §8): with tracing
//! *enabled* on the null sink, scheduler throughput must stay within 5% of
//! the tracing-disabled baseline. Uses min-of-trials (the standard
//! noise-robust estimator) and retries the whole comparison a few times
//! before failing, so scheduler regressions are caught without making the
//! test flaky on loaded CI machines.

use coalloc_core::prelude::*;
use std::time::{Duration, Instant};

const SERVERS: u32 = 64;
const REQUESTS: u64 = 1500;
const TRIALS: usize = 5;
const RETRIES: usize = 3;
const BUDGET: f64 = 1.05;

/// Deterministic splitmix64 stream so both configurations schedule the
/// exact same request sequence.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One timed pass: a mixed submit/release stream through the tree scheduler.
fn timed_pass() -> Duration {
    let cfg = SchedulerConfig::builder()
        .tau(Dur(60))
        .horizon(Dur(60 * 400))
        .delta_t(Dur(60))
        .build();
    let mut sched = CoAllocScheduler::new(SERVERS, cfg);
    let mut rng = 0x0B5E_u64;
    let mut live: Vec<JobId> = Vec::new();
    let t0 = Instant::now();
    for _ in 0..REQUESTS {
        let r = mix(&mut rng);
        let advance = (r % 32) as i64 * 60;
        let dur = 60 + (r >> 8) as i64 % (60 * 8);
        let n = 1 + (r >> 16) as u32 % 8;
        let req = Request::advance(Time(0), Time(advance), Dur(dur), n);
        if let Ok(g) = sched.submit(&req) {
            live.push(g.job);
        }
        // Release about half the live jobs over time so the timelines keep a
        // realistic mix of finite gaps and trailing periods.
        if r.is_multiple_of(2) {
            if let Some(j) = live.pop() {
                let _ = sched.release(j);
            }
        }
    }
    t0.elapsed()
}

fn min_of_trials() -> Duration {
    (0..TRIALS).map(|_| timed_pass()).min().unwrap()
}

#[test]
fn null_sink_overhead_is_within_budget() {
    // The only test in this binary: safe to flip the process-global state.
    let mut last = (Duration::ZERO, Duration::ZERO, f64::INFINITY);
    for attempt in 0..RETRIES {
        obs::trace::set_enabled(false);
        obs::trace::set_sink(None);
        obs::trace::set_ring_capacity(0);
        timed_pass(); // warm-up (page in code + allocator)
        let disabled = min_of_trials();

        obs::trace::set_sink(Some(std::sync::Arc::new(obs::trace::NullSink)));
        obs::trace::set_enabled(true);
        timed_pass();
        let enabled = min_of_trials();
        obs::trace::set_enabled(false);
        obs::trace::set_sink(None);

        let ratio = enabled.as_secs_f64() / disabled.as_secs_f64();
        println!(
            "attempt {attempt}: disabled={disabled:?} enabled(null sink)={enabled:?} \
             ratio={ratio:.4}"
        );
        last = (disabled, enabled, ratio);
        if ratio < BUDGET {
            return;
        }
    }
    panic!(
        "null-sink tracing overhead above the {:.0}% budget after {RETRIES} attempts: \
         disabled={:?} enabled={:?} ratio={:.4}",
        (BUDGET - 1.0) * 100.0,
        last.0,
        last.1,
        last.2
    );
}
