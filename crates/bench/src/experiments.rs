//! One runner per table and figure of the paper's evaluation (Section 5),
//! plus the complexity experiments backing Section 4.3 and the ablations
//! called out in DESIGN.md. Every runner prints the paper-shaped rows/series
//! and writes a CSV under the configured output directory.

use crate::harness::{batch_run, online_run, r3, Csv, ExpConfig};
use coalloc_batch::BatchPolicy;
use coalloc_core::naive::NaiveScheduler;
use coalloc_core::prelude::*;
use coalloc_sim::runner::RunResult;
use coalloc_workloads::reservations::with_paper_reservations;
use coalloc_workloads::synthetic::{WorkloadSpec, WorkloadStats};
use std::io;

fn specs(cfg: &ExpConfig) -> Vec<WorkloadSpec> {
    WorkloadSpec::all()
        .into_iter()
        .map(|s| s.scaled(cfg.scale))
        .collect()
}

fn spec_by_name(cfg: &ExpConfig, name: &str) -> WorkloadSpec {
    specs(cfg)
        .into_iter()
        .find(|s| s.name == name)
        .expect("known workload name")
}

/// Table 1: features of the workloads used in the performance evaluation.
pub fn table1(cfg: &ExpConfig) -> io::Result<()> {
    println!("\n== Table 1: workload features ==");
    let mut csv = Csv::new(
        &cfg.out_dir,
        "table1",
        &["workload", "processors", "jobs", "avg_lr_hours", "frac_under_2h"],
    );
    for spec in specs(cfg) {
        let reqs = spec.generate(cfg.seed);
        let st = WorkloadStats::of(&reqs);
        csv.rowf(&[
            &spec.name,
            &spec.servers,
            &st.jobs,
            &r3(st.mean_duration_hours),
            &r3(st.frac_under_2h),
        ]);
    }
    csv.finish()?;
    Ok(())
}

/// Figure 3: temporal penalty `P^l_r` vs job duration for KTH, online vs
/// batch; (a) all jobs, (b) the 2–10 h mid-tail.
pub fn fig3(cfg: &ExpConfig) -> io::Result<()> {
    println!("\n== Figure 3: temporal penalty vs temporal size (KTH) ==");
    let spec = spec_by_name(cfg, "KTH");
    let reqs = spec.generate(cfg.seed);
    let online = online_run(&spec, &reqs, "online", cfg.shards);
    let batch = batch_run(&spec, BatchPolicy::EasyBackfill, &reqs, "batch");
    let po = online.penalty_by_duration_hours();
    let pb = batch.penalty_by_duration_hours();
    let mut csv = Csv::new(
        &cfg.out_dir,
        "fig3",
        &["lr_hours", "penalty_online", "penalty_batch"],
    );
    let keys: std::collections::BTreeSet<i64> =
        po.iter().map(|(k, _)| k).chain(pb.iter().map(|(k, _)| k)).collect();
    for k in keys {
        let o = po.group(k).map(|s| s.mean()).unwrap_or(0.0);
        let b = pb.group(k).map(|s| s.mean()).unwrap_or(0.0);
        csv.rowf(&[&k, &r3(o), &r3(b)]);
    }
    csv.finish()?;
    // Paper headline: small jobs suffer an order of magnitude more under
    // batch; the online algorithm penalizes mid-size (2-10h) jobs more.
    let small_o: f64 = (1..=2).filter_map(|k| po.group(k).map(|s| s.mean())).sum();
    let small_b: f64 = (1..=2).filter_map(|k| pb.group(k).map(|s| s.mean())).sum();
    println!(
        "  small jobs (<=2h): online penalty {:.2}, batch penalty {:.2} ({}x)",
        small_o,
        small_b,
        if small_o > 0.0 { (small_b / small_o).round() } else { f64::INFINITY }
    );
    Ok(())
}

/// Figure 4(a): waiting-time distribution for CTC and KTH, online vs batch.
pub fn fig4a(cfg: &ExpConfig) -> io::Result<()> {
    println!("\n== Figure 4(a): waiting-time distribution (CTC, KTH) ==");
    let mut csv = Csv::new(
        &cfg.out_dir,
        "fig4a",
        &["wait_hours_bin", "ctc_online", "ctc_batch", "kth_online", "kth_batch"],
    );
    let mut series: Vec<Vec<(f64, f64)>> = Vec::new();
    let mut maxima = Vec::new();
    for name in ["CTC", "KTH"] {
        let spec = spec_by_name(cfg, name);
        let reqs = spec.generate(cfg.seed);
        let online = online_run(&spec, &reqs, "online", cfg.shards);
        let batch = batch_run(&spec, BatchPolicy::EasyBackfill, &reqs, "batch");
        maxima.push((
            name,
            online.max_waiting_hours(),
            batch.max_waiting_hours(),
        ));
        series.push(online.waiting_histogram_hours(1.0, 10).frequencies());
        series.push(batch.waiting_histogram_hours(1.0, 10).frequencies());
    }
    for (((a, b), c), d) in series[0]
        .iter()
        .zip(&series[1])
        .zip(&series[2])
        .zip(&series[3])
    {
        csv.rowf(&[&a.0, &r3(a.1), &r3(b.1), &r3(c.1), &r3(d.1)]);
    }
    csv.finish()?;
    for (name, o, b) in maxima {
        println!("  {name}: max wait online {o:.1} h vs batch {b:.1} h (tail-length gap)");
    }
    Ok(())
}

/// Figure 4(b): temporal-size distribution for CTC and KTH.
pub fn fig4b(cfg: &ExpConfig) -> io::Result<()> {
    println!("\n== Figure 4(b): temporal-size distribution (CTC, KTH) ==");
    let mut csv = Csv::new(
        &cfg.out_dir,
        "fig4b",
        &["lr_hours_bin", "ctc_freq", "kth_freq"],
    );
    let ctc = spec_by_name(cfg, "CTC").generate(cfg.seed);
    let kth = spec_by_name(cfg, "KTH").generate(cfg.seed);
    let hc = crate::dist_hours(&ctc);
    let hk = crate::dist_hours(&kth);
    for bin in 0..22 {
        csv.rowf(&[
            &(bin * 2),
            &r3(hc.get(bin).copied().unwrap_or(0.0)),
            &r3(hk.get(bin).copied().unwrap_or(0.0)),
        ]);
    }
    csv.finish()?;
    Ok(())
}

/// Figure 5: average waiting time vs spatial size, online vs batch, for
/// (a) CTC and (b) KTH.
pub fn fig5(cfg: &ExpConfig) -> io::Result<()> {
    println!("\n== Figure 5: average waiting time vs spatial size ==");
    for name in ["CTC", "KTH"] {
        let spec = spec_by_name(cfg, name);
        let reqs = spec.generate(cfg.seed);
        let online = online_run(&spec, &reqs, "online", cfg.shards);
        let batch = batch_run(&spec, BatchPolicy::EasyBackfill, &reqs, "batch");
        let go = online.waiting_by_spatial();
        let gb = batch.waiting_by_spatial();
        let mut csv = Csv::new(
            &cfg.out_dir,
            &format!("fig5_{}", name.to_lowercase()),
            &["nr_bin", "wait_secs_online", "wait_secs_batch"],
        );
        let keys: std::collections::BTreeSet<i64> =
            go.iter().map(|(k, _)| k).chain(gb.iter().map(|(k, _)| k)).collect();
        for k in keys {
            let o = go.group(k).map(|s| s.mean() * 3600.0).unwrap_or(0.0);
            let b = gb.group(k).map(|s| s.mean() * 3600.0).unwrap_or(0.0);
            csv.rowf(&[&k, &r3(o), &r3(b)]);
        }
        csv.finish()?;
    }
    Ok(())
}

/// Table 2: number of scheduling attempts as a function of spatial size
/// (bins of 50 servers), CTC and KTH.
pub fn table2(cfg: &ExpConfig) -> io::Result<()> {
    println!("\n== Table 2: scheduling attempts vs spatial size ==");
    let mut csv = Csv::new(
        &cfg.out_dir,
        "table2",
        &["workload", "nr_bin_upper", "avg_attempts", "jobs_in_bin"],
    );
    for name in ["CTC", "KTH"] {
        let spec = spec_by_name(cfg, name);
        let reqs = spec.generate(cfg.seed);
        let online = online_run(&spec, &reqs, "online", cfg.shards);
        for (k, st) in online.attempts_by_spatial().iter() {
            csv.rowf(&[&name, &k, &r3(st.mean()), &st.count()]);
        }
    }
    csv.finish()?;
    Ok(())
}

/// Figure 6: waiting-time distribution for advance-reservation mixes
/// rho in {0, 0.2, 0.4, 0.6, 0.8} plus the batch baseline, CTC and KTH.
pub fn fig6(cfg: &ExpConfig) -> io::Result<()> {
    println!("\n== Figure 6: waiting-time distribution under reservation mixes ==");
    let rhos = [0.0, 0.2, 0.4, 0.6, 0.8];
    for name in ["CTC", "KTH"] {
        let spec = spec_by_name(cfg, name);
        let base = spec.generate(cfg.seed);
        let mut header: Vec<String> = vec!["wait_hours_bin".into()];
        for r in rhos {
            header.push(format!("rho_{r}"));
        }
        header.push("batch".into());
        let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
        let mut csv = Csv::new(
            &cfg.out_dir,
            &format!("fig6_{}", name.to_lowercase()),
            &header_refs,
        );
        let mut cols: Vec<Vec<(f64, f64)>> = Vec::new();
        for rho in rhos {
            let reqs = with_paper_reservations(&base, rho, cfg.seed);
            let run = online_run(&spec, &reqs, &format!("rho={rho}"), cfg.shards);
            cols.push(run.waiting_from_submit_histogram_hours(1.0, 14).frequencies());
        }
        let batch = batch_run(&spec, BatchPolicy::EasyBackfill, &base, "batch");
        cols.push(batch.waiting_histogram_hours(1.0, 14).frequencies());
        for bin in 0..14 {
            let mut row: Vec<String> = vec![format!("{}", bin)];
            for c in &cols {
                row.push(format!("{}", r3(c[bin].1)));
            }
            csv.row(&row);
        }
        csv.finish()?;
    }
    Ok(())
}

/// Figure 7(a): average waiting time as a function of rho for all three
/// workloads.
pub fn fig7a(cfg: &ExpConfig) -> io::Result<()> {
    println!("\n== Figure 7(a): average waiting time vs rho ==");
    let mut csv = Csv::new(
        &cfg.out_dir,
        "fig7a",
        &["rho", "ctc_wait_secs", "kth_wait_secs", "hpc2n_wait_secs"],
    );
    let rhos = [0.0, 0.2, 0.4, 0.6, 0.8, 1.0];
    // The three workloads are independent: run them on separate threads.
    let table: Vec<Vec<f64>> = std::thread::scope(|scope| {
        let handles: Vec<_> = ["CTC", "KTH", "HPC2N"]
            .map(|name| {
                let spec = spec_by_name(cfg, name);
                scope.spawn(move || {
                    let base = spec.generate(cfg.seed);
                    rhos.map(|rho| {
                        let reqs = with_paper_reservations(&base, rho, cfg.seed);
                        let run = online_run(&spec, &reqs, "online", cfg.shards);
                        run.waiting_from_submit_stats_hours().mean() * 3600.0
                    })
                    .to_vec()
                })
            })
            .into_iter()
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("workload thread"))
            .collect()
    });
    for (i, rho) in rhos.iter().enumerate() {
        csv.rowf(&[&rho, &r3(table[0][i]), &r3(table[1][i]), &r3(table[2][i])]);
    }
    csv.finish()?;
    Ok(())
}

/// Figure 7(b): data-structure operations per request as a function of rho.
pub fn fig7b(cfg: &ExpConfig) -> io::Result<()> {
    println!("\n== Figure 7(b): operations per request vs rho ==");
    let mut csv = Csv::new(
        &cfg.out_dir,
        "fig7b",
        &["rho", "ctc_ops", "kth_ops", "hpc2n_ops"],
    );
    let rhos = [0.0, 0.2, 0.4, 0.6, 0.8, 1.0];
    let table: Vec<Vec<f64>> = std::thread::scope(|scope| {
        let handles: Vec<_> = ["CTC", "KTH", "HPC2N"]
            .map(|name| {
                let spec = spec_by_name(cfg, name);
                scope.spawn(move || {
                    let base = spec.generate(cfg.seed);
                    rhos.map(|rho| {
                        let reqs = with_paper_reservations(&base, rho, cfg.seed);
                        let run = online_run(&spec, &reqs, "online", cfg.shards);
                        run.mean_ops_per_request()
                    })
                    .to_vec()
                })
            })
            .into_iter()
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("workload thread"))
            .collect()
    });
    for (i, rho) in rhos.iter().enumerate() {
        csv.rowf(&[&rho, &r3(table[0][i]), &r3(table[1][i]), &r3(table[2][i])]);
    }
    csv.finish()?;
    Ok(())
}

/// Section 4.3 complexity check: search/update cost of the slotted trees
/// versus the naive linear scan, as N grows.
pub fn complexity(cfg: &ExpConfig) -> io::Result<()> {
    println!("\n== Complexity: search ops vs N (tree vs naive) ==");
    let mut csv = Csv::new(
        &cfg.out_dir,
        "complexity",
        &["n_servers", "tree_search_ops", "naive_search_ops", "tree_update_ops"],
    );
    for exp in [6u32, 8, 10, 12, 14, 16] {
        let n = 1u32 << exp;
        let sched_cfg = SchedulerConfig::builder()
            .tau(Dur(600))
            .horizon(Dur(600 * 32))
            .delta_t(Dur(600))
            .seed(cfg.seed)
            .build();
        let mut tree = CoAllocScheduler::new(n, sched_cfg);
        let mut naive = NaiveScheduler::new(n, sched_cfg);
        // Fragment the schedule with some committed jobs, then measure the
        // marginal cost of search-only range queries.
        for i in 0..64i64 {
            let req = Request::advance(
                Time::ZERO,
                Time((i % 16) * 600),
                Dur(600),
                (n / 64).max(1),
            );
            let _ = tree.submit(&req);
            let _ = naive.submit(&req);
        }
        let update_ops = tree.stats().update_visits;
        let before_t = tree.stats().search_ops();
        let before_n = naive.stats().search_ops();
        let probes = 256i64;
        for i in 0..probes {
            let s = Time((i % 24) * 400);
            let _ = tree.range_count(s, s + Dur(500));
            let _ = naive.find_all_feasible(s, s + Dur(500));
        }
        let tree_ops = (tree.stats().search_ops() - before_t) as f64 / probes as f64;
        let naive_ops = (naive.stats().search_ops() - before_n) as f64 / probes as f64;
        csv.rowf(&[&n, &r3(tree_ops), &r3(naive_ops), &(update_ops / 64)]);
    }
    csv.finish()?;
    println!("  expectation: tree ops grow ~ (log N)^2, naive ops grow ~ N");
    Ok(())
}

/// Ablation: the effect of `Delta_t` on waiting time and attempts (the paper
/// tuned it empirically to 15 min).
pub fn ablate_dt(cfg: &ExpConfig) -> io::Result<()> {
    println!("\n== Ablation: Delta_t sweep (KTH) ==");
    let spec = spec_by_name(cfg, "KTH");
    let reqs = spec.generate(cfg.seed);
    let mut csv = Csv::new(
        &cfg.out_dir,
        "ablate_dt",
        &["delta_t_mins", "mean_wait_hours", "mean_attempts", "acceptance", "ops_per_req"],
    );
    for mins in [5i64, 15, 30, 60, 120] {
        let sched_cfg = SchedulerConfig::builder()
            .tau(Dur::from_mins(15))
            .horizon(Dur::from_hours(72))
            .delta_t(Dur::from_mins(mins))
            .build();
        let mut sched = CoAllocScheduler::new(spec.servers, sched_cfg);
        let run = coalloc_sim::runner::run_online(&mut sched, &reqs, "online");
        let attempts: f64 = run.outcomes.iter().map(|o| o.attempts as f64).sum::<f64>()
            / run.outcomes.len() as f64;
        csv.rowf(&[
            &mins,
            &r3(run.waiting_stats_hours().mean()),
            &r3(attempts),
            &r3(run.acceptance_rate()),
            &r3(run.mean_ops_per_request()),
        ]);
    }
    csv.finish()?;
    Ok(())
}

/// Ablation: selection-policy comparison (the paper's reverse-marking order
/// vs best/worst fit vs lowest-server-id).
pub fn ablate_policy(cfg: &ExpConfig) -> io::Result<()> {
    println!("\n== Ablation: selection policy (CTC, KTH) ==");
    let mut csv = Csv::new(
        &cfg.out_dir,
        "ablate_policy",
        &["workload", "policy", "mean_wait_hours", "utilization", "ops_per_req"],
    );
    let policies = [
        ("paper-order", SelectionPolicy::PaperOrder),
        ("best-fit", SelectionPolicy::BestFit),
        ("worst-fit", SelectionPolicy::WorstFit),
        ("by-server", SelectionPolicy::ByServerId),
    ];
    for name in ["CTC", "KTH"] {
        let spec = spec_by_name(cfg, name);
        let reqs = spec.generate(cfg.seed);
        for (pname, policy) in policies {
            let sched_cfg = SchedulerConfig::builder()
                .tau(Dur::from_mins(15))
                .horizon(Dur::from_hours(72))
                .delta_t(Dur::from_mins(15))
                .policy(policy)
                .build();
            let mut sched = CoAllocScheduler::new(spec.servers, sched_cfg);
            let run = coalloc_sim::runner::run_online(&mut sched, &reqs, pname);
            csv.rowf(&[
                &name,
                &pname,
                &r3(run.waiting_stats_hours().mean()),
                &r3(run.utilization),
                &r3(run.mean_ops_per_request()),
            ]);
        }
    }
    csv.finish()?;
    Ok(())
}

/// Extension experiment: multi-site atomic co-allocation throughput and
/// abort behaviour vs contention (concurrent coordinators).
pub fn multisite(cfg: &ExpConfig) -> io::Result<()> {
    use coalloc_multisite::*;
    println!("\n== Multi-site: grants/aborts vs concurrent coordinators ==");
    let mut csv = Csv::new(
        &cfg.out_dir,
        "multisite",
        &["coordinators", "granted", "failed", "aborts", "mean_attempts"],
    );
    for coordinators in [1usize, 2, 4, 8] {
        let sites: Vec<SiteHandle> = (0..4)
            .map(|i| {
                SiteHandle::spawn(
                    SiteId(i),
                    8,
                    SchedulerConfig::builder()
                        .tau(Dur(900))
                        .horizon(Dur(900 * 96))
                        .delta_t(Dur(900))
                        .build(),
                )
            })
            .collect();
        let ccfg = CoordinatorConfig {
            delta_t: Dur(900),
            r_max: 48,
            ..CoordinatorConfig::default()
        };
        let mut totals = (0u64, 0u64, 0u64, 0u64, 0u64); // granted, failed, aborts, attempts, grants_for_attempts
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for c in 0..coordinators {
                let sites = &sites;
                handles.push(scope.spawn(move || {
                    let mut coord = Coordinator::new(sites, ccfg);
                    let mut attempts = 0u64;
                    for k in 0..12 {
                        let req = MultiRequest {
                            parts: [(SiteId(0), 4), (SiteId(1), 4), (SiteId(2), 4), (SiteId(3), 4)]
                                .into_iter()
                                .collect(),
                            earliest_start: Time(((k + c) % 12) as i64 * 1800),
                            duration: Dur(1800),
                        };
                        if let Ok(g) = coord.co_allocate(&req) {
                            attempts += g.attempts as u64;
                        }
                    }
                    let s = *coord.stats();
                    (s.granted, s.failed, s.aborts, attempts)
                }));
            }
            for h in handles {
                let (g, f, a, at) = h.join().expect("coordinator thread");
                totals.0 += g;
                totals.1 += f;
                totals.2 += a;
                totals.3 += at;
                totals.4 += g;
            }
        });
        let mean_attempts = if totals.4 > 0 {
            totals.3 as f64 / totals.4 as f64
        } else {
            0.0
        };
        csv.rowf(&[
            &coordinators,
            &totals.0,
            &totals.1,
            &totals.2,
            &r3(mean_attempts),
        ]);
        for s in sites {
            s.shutdown();
        }
    }
    csv.finish()?;
    Ok(())
}

/// Extension experiment: PCE blocking probability on NSFNET as wavelengths
/// per link and wavelength conversion vary (the Section 3.2 application).
pub fn pce(cfg: &ExpConfig) -> io::Result<()> {
    use coalloc_lambda::{ConnectionRequest, Network, NodeId, Pce, PceConfig, Wavelength};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    println!("\n== PCE: blocking probability vs wavelengths (NSFNET) ==");
    let mut csv = Csv::new(
        &cfg.out_dir,
        "pce",
        &["wavelengths", "blocked_frac_continuity", "blocked_frac_conversion"],
    );
    let sched_cfg = SchedulerConfig::builder()
        .tau(Dur::from_mins(30))
        .horizon(Dur::from_hours(24))
        .delta_t(Dur::from_mins(30))
        .build();
    let demands: Vec<(u32, u32, i64, i64)> = {
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        (0..300)
            .map(|_| {
                let s = rng.random_range(0..14u32);
                let mut d = rng.random_range(0..14u32);
                if d == s {
                    d = (d + 1) % 14;
                }
                (s, d, rng.random_range(0..12i64), rng.random_range(1..6i64))
            })
            .collect()
    };
    for w in [2u32, 4, 8, 16] {
        let mut blocked = [0usize; 2];
        for (which, conversion) in [(0, false), (1, true)] {
            let mut pce = Pce::new(
                Network::nsfnet(w),
                sched_cfg,
                PceConfig {
                    k_paths: 3,
                    wavelength_conversion: conversion,
                    delta_t: Dur::from_mins(30),
                    r_max: 4,
                },
            );
            for &(s, d, h, dur) in &demands {
                let req = ConnectionRequest {
                    src: NodeId(s),
                    dst: NodeId(d),
                    earliest_start: Time::from_hours(h),
                    duration: Dur::from_hours(dur),
                    wavelengths: (Wavelength(0), Wavelength(w - 1)),
                };
                if pce.connect(&req).is_err() {
                    blocked[which] += 1;
                }
            }
        }
        csv.rowf(&[
            &w,
            &r3(blocked[0] as f64 / demands.len() as f64),
            &r3(blocked[1] as f64 / demands.len() as f64),
        ]);
    }
    csv.finish()?;
    println!("  expectation: blocking falls with W; conversion never blocks more");
    Ok(())
}

/// Extension experiment: workflow pipelines planned with advance
/// reservations vs executed reactively, under increasing background load.
pub fn workflow(cfg: &ExpConfig) -> io::Result<()> {
    use coalloc_workflow::{schedule_reactive, schedule_reserved, Dag, Stage};
    println!("\n== Workflow: reserved vs reactive pipelines under load ==");
    let mut csv = Csv::new(
        &cfg.out_dir,
        "workflow",
        &[
            "bg_jobs",
            "reserved_makespan_h",
            "reactive_makespan_h",
            "reserved_guaranteed",
        ],
    );
    let make_dag = || {
        let mut dag = Dag::new();
        let prep = dag.add_stage(Stage::new("prep", Dur::from_mins(30), 8));
        let merge = dag.add_stage(Stage::new("merge", Dur::from_mins(30), 8));
        for _ in 0..4 {
            let s = dag.add_stage(Stage::new("work", Dur::from_hours(2), 12));
            dag.add_dep(prep, s).unwrap();
            dag.add_dep(s, merge).unwrap();
        }
        dag
    };
    let sched_cfg = SchedulerConfig::builder()
        .tau(Dur::from_mins(15))
        .horizon(Dur::from_hours(72))
        .delta_t(Dur::from_mins(15))
        .build();
    for bg_jobs in [0usize, 8, 16, 32] {
        // Reserved: plan first, then the background burst arrives.
        let mut s = CoAllocScheduler::new(64, sched_cfg);
        let plan = schedule_reserved(&mut s, &make_dag(), Time::ZERO, None)
            .expect("empty system plans");
        for k in 0..bg_jobs {
            let _ = s.submit(&Request::on_demand(
                Time((k as i64 % 4) * 600),
                Dur::from_hours(3),
                16,
            ));
        }
        let guaranteed = plan.grants.iter().all(|g| s.job(g.job).is_some());
        // Reactive: stages submitted at readiness; the same burst interleaves
        // (arrives before stage submissions at equal times — worst case).
        let mut s2 = CoAllocScheduler::new(64, sched_cfg);
        for k in 0..bg_jobs {
            let _ = s2.submit(&Request::on_demand(
                Time((k as i64 % 4) * 600),
                Dur::from_hours(3),
                16,
            ));
        }
        let reactive = schedule_reactive(&mut s2, &make_dag(), Time::ZERO);
        let reactive_h = reactive
            .map(|p| p.makespan_end.secs() as f64 / 3600.0)
            .unwrap_or(f64::NAN);
        csv.rowf(&[
            &bg_jobs,
            &r3(plan.makespan_end.secs() as f64 / 3600.0),
            &r3(reactive_h),
            &guaranteed,
        ]);
    }
    csv.finish()?;
    Ok(())
}

/// Extension experiment: fairness across users (the Section 2 challenge —
/// "allocate resources fairly among users") measured as Jain's index over
/// per-user mean temporal penalty, online vs batch.
pub fn fairness(cfg: &ExpConfig) -> io::Result<()> {
    use coalloc_sim::metrics::jain_index;
    use coalloc_workloads::users::assign_users;
    use std::collections::BTreeMap;
    println!("\n== Fairness: Jain index of per-user mean penalty ==");
    let mut csv = Csv::new(
        &cfg.out_dir,
        "fairness",
        &["workload", "scheduler", "users_active", "jain_index", "worst_user_penalty"],
    );
    for name in ["CTC", "KTH"] {
        let spec = spec_by_name(cfg, name);
        let reqs = spec.generate(cfg.seed);
        let tagged = assign_users(&reqs, 64, 0.5, cfg.seed);
        let runs = [
            online_run(&spec, &reqs, "online", cfg.shards),
            batch_run(&spec, BatchPolicy::EasyBackfill, &reqs, "batch"),
        ];
        for run in runs {
            let mut per_user: BTreeMap<u32, coalloc_sim::StreamingStats> = BTreeMap::new();
            for (t, o) in tagged.iter().zip(&run.outcomes) {
                if let Some(p) = o.temporal_penalty() {
                    per_user.entry(t.user.0).or_default().push(p);
                }
            }
            let means: Vec<f64> = per_user.values().map(|s| s.mean()).collect();
            let worst = means.iter().cloned().fold(0.0f64, f64::max);
            csv.rowf(&[
                &name,
                &run.label,
                &means.len(),
                &r3(jain_index(&means)),
                &r3(worst),
            ]);
        }
    }
    csv.finish()?;
    Ok(())
}

/// Extension experiment: scalability in `N` — the abstract's claim that the
/// algorithm "scales to systems with large numbers of users and resources".
/// Sweeps the server count with proportional offered load and reports
/// scheduling throughput and per-request op counts.
pub fn scalability(cfg: &ExpConfig) -> io::Result<()> {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use std::time::Instant;
    println!("\n== Scalability: throughput vs system size N ==");
    let mut csv = Csv::new(
        &cfg.out_dir,
        "scalability",
        &["n_servers", "requests", "requests_per_sec", "ops_per_request", "acceptance"],
    );
    for exp in [10u32, 12, 14, 16] {
        let n = 1u32 << exp;
        let sched_cfg = SchedulerConfig::builder()
            .tau(Dur(900))
            .horizon(Dur(900 * 96))
            .delta_t(Dur(900))
            .seed(cfg.seed)
            .build();
        let mut sched = CoAllocScheduler::new(n, sched_cfg);
        let mut rng = SmallRng::seed_from_u64(cfg.seed ^ n as u64);
        let requests = 20_000usize;
        // Scale-invariant offered load (~60%): the per-request demand
        // distribution is fixed (1..=64 servers) and the *arrival rate*
        // scales with N, so every system size sees the same utilization
        // and throughput differences isolate pure index scaling.
        // gap = requests*E[work] / (0.6*N*requests) ~ 1.78e10 / (N*20000).
        let gap = (1_780_000_000_000i64 / (n as i64 * requests as i64)).max(1);
        let mut accepted = 0usize;
        let t0 = Instant::now();
        let mut now = 0i64;
        for _ in 0..requests {
            now += gap;
            sched.advance_to(Time(now));
            let servers = rng.random_range(1..=64u32).min(n);
            let dur = Dur(rng.random_range(900..8 * 3600));
            let adv = rng.random_range(0..4 * 3600);
            let req = Request::advance(Time(now), Time(now + adv), dur, servers);
            if sched.submit(&req).is_ok() {
                accepted += 1;
            }
        }
        let secs = t0.elapsed().as_secs_f64();
        csv.rowf(&[
            &n,
            &requests,
            &r3(requests as f64 / secs),
            &r3(sched.stats().total_ops() as f64 / requests as f64),
            &r3(accepted as f64 / requests as f64),
        ]);
    }
    csv.finish()?;
    println!("  expectation: throughput degrades only polylogarithmically in N");
    Ok(())
}

/// Run one experiment by id; `all` runs the full suite.
pub fn run(id: &str, cfg: &ExpConfig) -> io::Result<()> {
    match id {
        "table1" => table1(cfg),
        "fig3" => fig3(cfg),
        "fig4a" => fig4a(cfg),
        "fig4b" => fig4b(cfg),
        "fig5" => fig5(cfg),
        "table2" => table2(cfg),
        "fig6" => fig6(cfg),
        "fig7a" => fig7a(cfg),
        "fig7b" => fig7b(cfg),
        "complexity" => complexity(cfg),
        "ablate-dt" => ablate_dt(cfg),
        "ablate-policy" => ablate_policy(cfg),
        "multisite" => multisite(cfg),
        "pce" => pce(cfg),
        "workflow" => workflow(cfg),
        "fairness" => fairness(cfg),
        "scalability" => scalability(cfg),
        "all" => {
            for id in ALL_EXPERIMENTS {
                run(id, cfg)?;
            }
            Ok(())
        }
        other => Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("unknown experiment '{other}'; try one of {ALL_EXPERIMENTS:?}"),
        )),
    }
}

/// Every experiment id, in suite order.
pub const ALL_EXPERIMENTS: &[&str] = &[
    "table1",
    "fig3",
    "fig4a",
    "fig4b",
    "fig5",
    "table2",
    "fig6",
    "fig7a",
    "fig7b",
    "complexity",
    "ablate-dt",
    "ablate-policy",
    "multisite",
    "pce",
    "workflow",
    "fairness",
    "scalability",
];

/// Paper-vs-measured helper used by EXPERIMENTS.md generation: summary lines
/// of one online/batch pair.
pub fn summarize_pair(online: &RunResult, batch: &RunResult) -> String {
    format!(
        "online: mean wait {:.2} h, max {:.1} h, util {:.2}; batch: mean wait {:.2} h, max {:.1} h, util {:.2}",
        online.waiting_stats_hours().mean(),
        online.max_waiting_hours(),
        online.utilization,
        batch.waiting_stats_hours().mean(),
        batch.max_waiting_hours(),
        batch.utilization,
    )
}
