//! Shared experiment harness: paper-default scheduler construction, workload
//! runs for every scheduler under test, and CSV/console reporting.

use coalloc_batch::{run_batch, BatchPolicy};
use coalloc_core::naive::NaiveScheduler;
use coalloc_core::prelude::*;
use coalloc_shard::ShardedScheduler;
use coalloc_sim::runner::{run_naive, run_online, run_with, RunResult};
use coalloc_workloads::synthetic::WorkloadSpec;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Experiment-wide settings (from the CLI).
#[derive(Clone, Debug)]
pub struct ExpConfig {
    /// Job-count scale factor applied to every workload (1.0 = full paper
    /// size).
    pub scale: f64,
    /// Master seed.
    pub seed: u64,
    /// Output directory for CSV files.
    pub out_dir: PathBuf,
    /// Shard count for the online scheduler (1 = the single
    /// [`CoAllocScheduler`]; more partitions the servers over parallel
    /// shard workers — decisions are identical either way).
    pub shards: u32,
}

impl Default for ExpConfig {
    fn default() -> Self {
        ExpConfig {
            scale: 0.05,
            seed: 42,
            out_dir: PathBuf::from("results"),
            shards: 1,
        }
    }
}

/// The paper's evaluation settings (Section 5): `Delta_t` = 15 min,
/// `R_max = Q/2`, with a 3-day slotted horizon (`tau` = 15 min).
pub fn paper_scheduler_config() -> SchedulerConfig {
    SchedulerConfig::builder()
        .tau(Dur::from_mins(15))
        .horizon(Dur::from_hours(72))
        .delta_t(Dur::from_mins(15))
        .build()
}

/// Run one workload through the online tree-based scheduler — the single
/// [`CoAllocScheduler`] for `shards == 1`, the decision-identical
/// [`ShardedScheduler`] otherwise.
pub fn online_run(
    spec: &WorkloadSpec,
    requests: &[Request],
    label: &str,
    shards: u32,
) -> RunResult {
    let mut span = bench_span("online", spec, requests, label);
    let result = if shards > 1 {
        let mut sched = ShardedScheduler::new(spec.servers, shards, paper_scheduler_config());
        run_with(&mut sched, requests, label)
    } else {
        let mut sched = CoAllocScheduler::new(spec.servers, paper_scheduler_config());
        run_online(&mut sched, requests, label)
    };
    finish_bench_span(&mut span, &result);
    result
}

/// Run one workload through the naive linear-scan co-allocator.
pub fn naive_run(spec: &WorkloadSpec, requests: &[Request], label: &str) -> RunResult {
    let mut span = bench_span("naive", spec, requests, label);
    let mut sched = NaiveScheduler::new(spec.servers, paper_scheduler_config());
    let result = run_naive(&mut sched, requests, label);
    finish_bench_span(&mut span, &result);
    result
}

/// Run one workload through a batch baseline.
pub fn batch_run(
    spec: &WorkloadSpec,
    policy: BatchPolicy,
    requests: &[Request],
    label: &str,
) -> RunResult {
    let mut span = bench_span("batch", spec, requests, label);
    let result = run_batch(spec.servers, policy, requests, label);
    finish_bench_span(&mut span, &result);
    result
}

fn bench_span(
    scheduler: &'static str,
    spec: &WorkloadSpec,
    requests: &[Request],
    label: &str,
) -> obs::SpanGuard {
    let mut span = obs::obs_span!(
        "bench.run",
        "scheduler" => scheduler,
        "servers" => spec.servers,
        "requests" => requests.len()
    );
    if span.active() {
        span.record("label", label.to_string());
    }
    span
}

fn finish_bench_span(span: &mut obs::SpanGuard, result: &RunResult) {
    if span.active() {
        span.record("acceptance_rate", result.acceptance_rate());
        span.record("total_ops", result.total_ops);
    }
}

/// A CSV writer that also keeps the rows for console printing.
pub struct Csv {
    path: PathBuf,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Csv {
    /// Start a CSV with the given column names.
    pub fn new(dir: &Path, name: &str, header: &[&str]) -> Csv {
        Csv {
            path: dir.join(format!("{name}.csv")),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (already formatted).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "column count mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Convenience: format heterogeneous cells.
    pub fn rowf(&mut self, cells: &[&dyn std::fmt::Display]) {
        let cells: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&cells);
    }

    /// Write the file and print an aligned table to stdout.
    pub fn finish(self) -> std::io::Result<PathBuf> {
        if let Some(dir) = self.path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let mut f = std::fs::File::create(&self.path)?;
        writeln!(f, "{}", self.header.join(","))?;
        for r in &self.rows {
            writeln!(f, "{}", r.join(","))?;
        }
        // Console table.
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let line = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        println!("{}", line(&self.header));
        println!("{}", "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        for r in &self.rows {
            println!("{}", line(r));
        }
        println!("-> wrote {}", self.path.display());
        Ok(self.path)
    }
}

/// Round to 3 decimal places for stable CSV output.
pub fn r3(x: f64) -> f64 {
    (x * 1000.0).round() / 1000.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_writes_and_prints() {
        let dir = std::env::temp_dir().join("coalloc-csv-test");
        let mut c = Csv::new(&dir, "t", &["a", "b"]);
        c.rowf(&[&1, &r3(0.123456)]);
        let path = c.finish().unwrap();
        let body = std::fs::read_to_string(path).unwrap();
        assert_eq!(body, "a,b\n1,0.123\n");
    }

    #[test]
    fn paper_config_matches_section5() {
        let cfg = paper_scheduler_config();
        assert_eq!(cfg.delta_t, Dur::from_mins(15));
        let q = cfg.slot_config().num_slots;
        assert_eq!(q, 288); // 72 h of 15-min slots
        assert_eq!(cfg.effective_r_max(), (q / 2) as u32);
    }

    #[test]
    fn harness_runs_all_three_schedulers() {
        let spec = WorkloadSpec::kth().scaled(0.002);
        let reqs = spec.generate(1);
        let a = online_run(&spec, &reqs, "online", 1);
        let b = naive_run(&spec, &reqs, "naive");
        let c = batch_run(&spec, BatchPolicy::EasyBackfill, &reqs, "easy");
        assert_eq!(a.outcomes.len(), reqs.len());
        assert_eq!(b.outcomes.len(), reqs.len());
        assert_eq!(c.outcomes.len(), reqs.len());
    }

    #[test]
    fn sharded_online_run_matches_single() {
        let spec = WorkloadSpec::kth().scaled(0.002);
        let reqs = spec.generate(7);
        let single = online_run(&spec, &reqs, "online", 1);
        let sharded = online_run(&spec, &reqs, "online", 4);
        let starts = |r: &RunResult| -> Vec<Option<Time>> {
            r.outcomes.iter().map(|o| o.start).collect()
        };
        assert_eq!(starts(&single), starts(&sharded));
    }
}
