//! Differential soak test: drive the tree-based scheduler and the naive
//! oracle with an endless randomized operation stream (submit, deadline
//! submit, release, clock advance, range search) and assert equivalence and
//! structural consistency continuously.
//!
//! ```text
//! cargo run -p coalloc-bench --release --bin soak -- \
//!     [seconds] [seed] [--shards K] [--trace-out PATH] [--metrics-dump]
//! ```
//!
//! With `--shards K` (K > 1) every round also drives a [`ShardedScheduler`]
//! over the same stream and asserts its grants, rejections, and releases
//! are identical to the tree scheduler's. The mirror consumes submissions
//! through `submit_batch` with *randomized* batch boundaries (any
//! non-submit operation is a barrier that flushes the pending batch
//! first), so the three-way differential continuously re-proves the
//! batched-execution equivalence contract under randomized load, not just
//! the per-request one.
//!
//! A divergence (any failed equivalence assertion) prints
//! `INVARIANT VIOLATED: ...` on stderr and exits non-zero instead of
//! unwinding with a raw panic backtrace. `--trace-out PATH` streams
//! scheduler spans to `PATH` as JSONL; `--metrics-dump` prints the metrics
//! exposition before exiting; `COALLOC_OBS` works as in the `obs` crate.

use coalloc_core::naive::NaiveScheduler;
use coalloc_core::prelude::*;
use coalloc_shard::ShardedScheduler;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

/// Render a caught panic payload (always a `&str` or `String` from
/// `assert!`/`panic!`) for the invariant report.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn main() {
    println!("{}", obs::init_from_env());
    let mut positional = Vec::new();
    let mut metrics_dump = false;
    let mut shards = 1u32;
    let mut raw = std::env::args().skip(1);
    while let Some(a) = raw.next() {
        match a.as_str() {
            "--shards" => {
                let k = raw.next().expect("--shards needs a count");
                shards = k.parse().expect("--shards takes an integer >= 1");
                assert!(shards >= 1, "--shards takes an integer >= 1");
            }
            "--trace-out" => {
                let path = raw.next().expect("--trace-out needs a path");
                let sink = obs::trace::JsonlSink::create(&path).expect("open trace file");
                obs::trace::set_sink(Some(std::sync::Arc::new(sink)));
                obs::trace::set_enabled(true);
                obs::trace::set_detail(true);
                println!("tracing to {path} (jsonl)");
            }
            "--metrics-dump" => metrics_dump = true,
            _ => positional.push(a),
        }
    }
    let seconds: u64 = positional.first().map(|s| s.parse().expect("seconds")).unwrap_or(10);
    let seed: u64 = positional.get(1).map(|s| s.parse().expect("seed")).unwrap_or(42);
    if shards > 1 {
        println!("soak: {seconds}s with seed {seed} (+ {shards}-shard mirror)");
    } else {
        println!("soak: {seconds}s with seed {seed}");
    }
    let deadline = Instant::now() + std::time::Duration::from_secs(seconds);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut rounds: u64 = 0;
    let mut total_ops: u64 = 0;
    while Instant::now() < deadline {
        rounds += 1;
        let round = catch_unwind(AssertUnwindSafe(|| run_round(&mut rng, shards)));
        match round {
            Ok(ops) => total_ops += ops,
            Err(payload) => {
                eprintln!("INVARIANT VIOLATED: {}", panic_message(&*payload));
                eprintln!("  (round {rounds}, master seed {seed})");
                obs::trace::flush_sink();
                std::process::exit(1);
            }
        }
        if rounds.is_multiple_of(50) {
            println!("  round {rounds}: ok ({total_ops} tree ops so far)");
        }
    }
    obs::trace::flush_sink();
    if metrics_dump {
        println!("--- metrics ---");
        print!("{}", obs::metrics::exposition());
    }
    println!("soak passed: {rounds} randomized rounds, {total_ops} tree ops, no divergence");
}

/// Submissions awaiting the sharded mirror's next `submit_batch` flush,
/// with the tree scheduler's results recorded at submit time for deferred
/// comparison. `fill` remembers which `jobs` slot receives the mirror's
/// job id once the batch lands.
type ExpectedGrant = Result<(Time, Vec<ServerId>, u32), ScheduleError>;

#[derive(Default)]
struct MirrorBatch {
    pending: Vec<Request>,
    expect: Vec<ExpectedGrant>,
    fill: Vec<Option<usize>>,
    next_len: usize,
}

/// Flush the mirror's pending batch through `submit_batch` and compare
/// every member against the tree's recorded (sequential) result, then
/// draw a fresh randomized boundary for the next batch.
fn flush_mirror(
    m: &mut ShardedScheduler,
    b: &mut MirrorBatch,
    jobs: &mut [(JobId, JobId, Option<JobId>)],
    step: i32,
    rng: &mut SmallRng,
) {
    if !b.pending.is_empty() {
        let got = m.submit_batch(&b.pending);
        for (i, (g, e)) in got.iter().zip(&b.expect).enumerate() {
            match (g, e) {
                (Ok(g), Ok((start, servers, attempts))) => {
                    assert_eq!(g.start, *start, "shard batch start div (step {step}, member {i})");
                    assert_eq!(
                        &g.servers, servers,
                        "shard batch servers div (step {step}, member {i})"
                    );
                    assert_eq!(
                        g.attempts, *attempts,
                        "shard batch attempts div (step {step}, member {i})"
                    );
                    if let Some(slot) = b.fill[i] {
                        jobs[slot].2 = Some(g.job);
                    }
                }
                (Err(g), Err(e)) => {
                    assert_eq!(g, e, "shard batch error div (step {step}, member {i})")
                }
                _ => panic!(
                    "shard batch accept/reject div (step {step}, member {i}): {g:?} vs {e:?}"
                ),
            }
        }
        b.pending.clear();
        b.expect.clear();
        b.fill.clear();
    }
    b.next_len = rng.random_range(1..=8);
}

/// One randomized differential round; returns the tree op count. Panics (via
/// the assertions) on any divergence — caught and reported by `main`.
fn run_round(rng: &mut SmallRng, shards: u32) -> u64 {
    let _span = obs::obs_span!("soak.round");
    {
        let n = rng.random_range(1..=12u32);
        let tau = rng.random_range(5..50i64);
        let slots = rng.random_range(4..40usize);
        let cfg = SchedulerConfig::builder()
            .tau(Dur(tau))
            .horizon(Dur(tau * slots as i64))
            .delta_t(Dur(rng.random_range(1..=tau)))
            .policy(SelectionPolicy::ByServerId)
            .seed(rng.random())
            .build();
        let mut tree = CoAllocScheduler::new(n, cfg);
        let mut naive = NaiveScheduler::new(n, cfg);
        let mut mirror = (shards > 1).then(|| ShardedScheduler::new(n, shards, cfg));
        let mut jobs: Vec<(JobId, JobId, Option<JobId>)> = Vec::new();
        let mut batch = MirrorBatch {
            next_len: rng.random_range(1..=8),
            ..MirrorBatch::default()
        };
        let steps = rng.random_range(50..400);
        let mut now = 0i64;
        for step in 0..steps {
            match rng.random_range(0..10) {
                0..=5 => {
                    // Random (possibly advance) request.
                    let adv = rng.random_range(0..tau * slots as i64 / 2);
                    let req = Request::advance(
                        Time(now),
                        Time(now + adv),
                        Dur(rng.random_range(1..tau * 4)),
                        rng.random_range(1..=n),
                    );
                    let a = tree.submit(&req);
                    let b = naive.submit(&req);
                    let fill = match (&a, &b) {
                        (Ok(x), Ok(y)) => {
                            assert_eq!(x.start, y.start, "start divergence at step {step}");
                            assert_eq!(x.servers.len(), y.servers.len());
                            jobs.push((x.job, y.job, None));
                            Some(jobs.len() - 1)
                        }
                        (Err(x), Err(y)) => {
                            assert_eq!(x, y, "error divergence at step {step}");
                            None
                        }
                        _ => panic!("accept/reject divergence at step {step}: {a:?} vs {b:?}"),
                    };
                    // The mirror consumes submissions in batches: queue the
                    // request with the tree's result, flush through
                    // `submit_batch` when the randomized boundary is hit.
                    if let Some(m) = mirror.as_mut() {
                        batch.pending.push(req);
                        batch.expect.push(match &a {
                            Ok(g) => Ok((g.start, g.servers.clone(), g.attempts)),
                            Err(e) => Err(*e),
                        });
                        batch.fill.push(fill);
                        if batch.pending.len() >= batch.next_len {
                            flush_mirror(m, &mut batch, &mut jobs, step, rng);
                        }
                    }
                }
                6 => {
                    // Deadline submission on the tree only (semantic check:
                    // never late).
                    let dl = now + rng.random_range(1..tau * slots as i64);
                    let req = Request::on_demand(
                        Time(now),
                        Dur(rng.random_range(1..tau * 2)),
                        rng.random_range(1..=n),
                    );
                    let a = tree.submit_with_deadline(&req, Time(dl));
                    if let Some(m) = mirror.as_mut() {
                        // Barrier: a deadline submission is not batchable.
                        flush_mirror(m, &mut batch, &mut jobs, step, rng);
                        let c = m.submit_with_deadline(&req, Time(dl));
                        match (&a, &c) {
                            (Ok(x), Ok(z)) => {
                                assert_eq!(x.start, z.start, "shard dl start at step {step}");
                                assert_eq!(x.servers, z.servers);
                                m.release(z.job).unwrap();
                            }
                            (Err(x), Err(z)) => {
                                assert_eq!(x, z, "shard dl error at step {step}")
                            }
                            _ => panic!("shard deadline div at step {step}: {a:?} vs {c:?}"),
                        }
                    }
                    if let Ok(g) = a {
                        assert!(g.end <= Time(dl), "late grant");
                        // The oracle cannot replay a specific-server commit;
                        // release from the tree instead to keep states equal.
                        tree.release(g.job).unwrap();
                    }
                }
                7 => {
                    // Release a random live job from both. Flush the mirror
                    // first: the victim's mirror job id may still be
                    // pending, and swap_remove invalidates the batch's
                    // fill slots.
                    if let Some(m) = mirror.as_mut() {
                        flush_mirror(m, &mut batch, &mut jobs, step, rng);
                    }
                    if !jobs.is_empty() {
                        let (jt, jn, jm) = jobs.swap_remove(rng.random_range(0..jobs.len()));
                        let a = tree.release(jt);
                        let b = naive.release(jn);
                        assert_eq!(a.is_ok(), b.is_ok());
                        if let (Some(m), Some(j)) = (mirror.as_mut(), jm) {
                            assert_eq!(a.is_ok(), m.release(j).is_ok());
                        }
                    }
                }
                8 => {
                    // Advance the clock.
                    now += rng.random_range(0..tau * 3);
                    tree.advance_to(Time(now));
                    naive.advance_to(Time(now));
                    if let Some(m) = mirror.as_mut() {
                        // Barrier: the batch clock is constant, so the
                        // pending submissions must land before time moves.
                        flush_mirror(m, &mut batch, &mut jobs, step, rng);
                        m.advance_to(Time(now));
                    }
                }
                _ => {
                    // Range search vs oracle scan.
                    let a = Time(now + rng.random_range(0..tau * slots as i64));
                    let b = a + Dur(rng.random_range(1..tau * 3));
                    let hits = tree.range_search(a, b);
                    if b <= tree.horizon_end() && a >= tree.now() {
                        let mut got: Vec<u32> =
                            hits.iter().map(|h| h.period.server.0).collect();
                        got.sort_unstable();
                        let mut want: Vec<u32> = (0..n)
                            .filter(|&s| {
                                tree.timeline()
                                    .covering_idle(ServerId(s), a, b)
                                    .is_some()
                            })
                            .collect();
                        want.sort_unstable();
                        assert_eq!(got, want, "range search divergence");
                    }
                }
            }
        }
        tree.check_consistency();
        if let Some(m) = mirror.as_mut() {
            flush_mirror(m, &mut batch, &mut jobs, steps, rng);
            m.check_consistency();
        }
        tree.stats().total_ops()
    }
}
