//! End-to-end scheduler throughput gate: naive vs online vs sharded.
//!
//! Replays a workload-twin request stream through the naive oracle, the
//! single tree-based online scheduler, and the sharded scheduler at
//! `K ∈ {1, 2, 4, 8}`, timing every request. Emits `BENCH_sched.json`
//! with requests/sec and p50/p99 per-request latency for each scheduler.
//!
//! ```text
//! cargo run -p coalloc-bench --release --bin sched_throughput -- \
//!     [--smoke] [--scale F] [--seed N] [--out PATH] [--guard R] \
//!     [--validate PATH]
//! ```
//!
//! * `--smoke` — tiny workload slice for CI (also skips the slow naive
//!   baseline's full stream: the stream is already small).
//! * `--guard R` — exit non-zero if the sharded `K=1` configuration's
//!   throughput falls below `R ×` the single scheduler's (coordination
//!   overhead regression gate; CI uses `0.9`). The guarded pair is
//!   re-measured interleaved and compared on the best of three trials,
//!   so one scheduling hiccup cannot fail the gate.
//! * `--validate PATH` — parse an existing result file and check its shape
//!   instead of running; used by CI after the bench run.

use coalloc_core::naive::NaiveScheduler;
use coalloc_core::prelude::*;
use coalloc_shard::ShardedScheduler;
use coalloc_workloads::synthetic::WorkloadSpec;
use obs::json::{self, Json};
use std::time::Instant;

const SHARD_COUNTS: [u32; 4] = [1, 2, 4, 8];

/// One scheduler's measured replay.
struct Measured {
    label: String,
    shards: Option<u32>,
    granted: usize,
    secs: f64,
    rps: f64,
    p50_us: f64,
    p99_us: f64,
}

/// Nearest-rank percentile over an ascending slice of nanosecond latencies,
/// reported in microseconds.
fn percentile_us(sorted_ns: &[u64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ns.len() as f64 - 1.0) * p).round() as usize;
    sorted_ns[idx] as f64 / 1_000.0
}

/// Replay `reqs` through `step` (advance + submit), timing each request.
fn replay(
    label: &str,
    shards: Option<u32>,
    reqs: &[Request],
    mut step: impl FnMut(&Request) -> bool,
) -> Measured {
    let mut lat_ns = Vec::with_capacity(reqs.len());
    let mut granted = 0usize;
    let t0 = Instant::now();
    for r in reqs {
        let t = Instant::now();
        if step(r) {
            granted += 1;
        }
        lat_ns.push(t.elapsed().as_nanos() as u64);
    }
    let secs = t0.elapsed().as_secs_f64();
    lat_ns.sort_unstable();
    Measured {
        label: label.to_string(),
        shards,
        granted,
        secs,
        rps: reqs.len() as f64 / secs.max(1e-9),
        p50_us: percentile_us(&lat_ns, 0.50),
        p99_us: percentile_us(&lat_ns, 0.99),
    }
}

fn bench_cfg() -> SchedulerConfig {
    SchedulerConfig::builder()
        .tau(Dur::from_mins(15))
        .horizon(Dur::from_hours(72))
        .delta_t(Dur::from_mins(15))
        .build()
}

fn render(results: &[Measured], spec: &WorkloadSpec, scale: f64, seed: u64, n_reqs: usize) -> String {
    let cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"sched_throughput\",\n");
    out.push_str(&format!("  \"workload\": \"{}\",\n", json::escape(&spec.name)));
    out.push_str(&format!("  \"servers\": {},\n", spec.servers));
    out.push_str(&format!("  \"scale\": {scale},\n"));
    out.push_str(&format!("  \"seed\": {seed},\n"));
    out.push_str(&format!("  \"requests\": {n_reqs},\n"));
    out.push_str(&format!("  \"cpus\": {cpus},\n"));
    out.push_str("  \"schedulers\": [\n");
    for (i, m) in results.iter().enumerate() {
        let shards = m
            .shards
            .map(|k| format!("\"shards\": {k}, "))
            .unwrap_or_default();
        out.push_str(&format!(
            "    {{\"label\": \"{}\", {}\"granted\": {}, \"secs\": {:.6}, \"rps\": {:.3}, \"p50_us\": {:.3}, \"p99_us\": {:.3}}}{}\n",
            json::escape(&m.label),
            shards,
            m.granted,
            m.secs,
            m.rps,
            m.p50_us,
            m.p99_us,
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Shape-check a `BENCH_sched.json` document. Returns the parsed schedulers
/// keyed by label on success.
fn validate(text: &str) -> Result<Vec<(String, f64)>, String> {
    let doc = json::parse(text)?;
    if doc.get("bench").and_then(Json::as_str) != Some("sched_throughput") {
        return Err("missing or wrong \"bench\" tag".into());
    }
    for key in ["requests", "cpus", "servers", "scale", "seed"] {
        if doc.get(key).and_then(Json::as_num).is_none() {
            return Err(format!("missing numeric \"{key}\""));
        }
    }
    if doc.get("requests").and_then(Json::as_num).unwrap_or(0.0) <= 0.0 {
        return Err("\"requests\" must be positive".into());
    }
    let Some(Json::Arr(entries)) = doc.get("schedulers") else {
        return Err("missing \"schedulers\" array".into());
    };
    let mut seen = Vec::new();
    for e in entries {
        let label = e
            .get("label")
            .and_then(Json::as_str)
            .ok_or("scheduler entry without string \"label\"")?;
        for key in ["granted", "secs", "rps", "p50_us", "p99_us"] {
            e.get(key)
                .and_then(Json::as_num)
                .ok_or_else(|| format!("entry \"{label}\" missing numeric \"{key}\""))?;
        }
        seen.push((
            label.to_string(),
            e.get("rps").and_then(Json::as_num).unwrap_or(0.0),
        ));
    }
    for want in ["naive", "online", "sharded-k1", "sharded-k2", "sharded-k4", "sharded-k8"] {
        if !seen.iter().any(|(l, _)| l == want) {
            return Err(format!("missing scheduler entry \"{want}\""));
        }
    }
    Ok(seen)
}

fn main() {
    let mut scale = 0.02f64;
    let mut seed = 42u64;
    let mut out_path = String::from("BENCH_sched.json");
    let mut guard: Option<f64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => scale = 0.002,
            "--scale" => scale = args.next().expect("--scale F").parse().expect("float"),
            "--seed" => seed = args.next().expect("--seed N").parse().expect("integer"),
            "--out" => out_path = args.next().expect("--out PATH"),
            "--guard" => {
                guard = Some(args.next().expect("--guard R").parse().expect("float"));
            }
            "--validate" => {
                let path = args.next().expect("--validate PATH");
                let text = std::fs::read_to_string(&path)
                    .unwrap_or_else(|e| panic!("read {path}: {e}"));
                match validate(&text) {
                    Ok(entries) => {
                        println!("{path}: ok ({} schedulers)", entries.len());
                        return;
                    }
                    Err(e) => {
                        eprintln!("{path}: INVALID: {e}");
                        std::process::exit(1);
                    }
                }
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: sched_throughput [--smoke] [--scale F] [--seed N] \
                     [--out PATH] [--guard R] [--validate PATH]"
                );
                return;
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }

    let spec = WorkloadSpec::kth().scaled(scale);
    let reqs = spec.generate(seed);
    println!(
        "sched_throughput: {} requests over {} servers (kth × {scale}, seed {seed})",
        reqs.len(),
        spec.servers
    );

    let mut results = Vec::new();
    {
        let mut s = NaiveScheduler::new(spec.servers, bench_cfg());
        results.push(replay("naive", None, &reqs, |r| {
            s.advance_to(r.submit);
            s.submit(r).is_ok()
        }));
    }
    {
        let mut s = CoAllocScheduler::new(spec.servers, bench_cfg());
        results.push(replay("online", None, &reqs, |r| {
            s.advance_to(r.submit);
            s.submit(r).is_ok()
        }));
    }
    for k in SHARD_COUNTS {
        let mut s = ShardedScheduler::new(spec.servers, k, bench_cfg());
        results.push(replay(&format!("sharded-k{k}"), Some(k), &reqs, |r| {
            s.advance_to(r.submit);
            s.submit(r).is_ok()
        }));
    }

    for m in &results {
        println!(
            "  {:<12} {:>10.0} req/s  p50 {:>8.1} µs  p99 {:>9.1} µs  ({} granted, {:.3} s)",
            m.label, m.rps, m.p50_us, m.p99_us, m.granted, m.secs
        );
    }

    let doc = render(&results, &spec, scale, seed, reqs.len());
    validate(&doc).expect("self-validation of the emitted document");
    std::fs::write(&out_path, &doc).unwrap_or_else(|e| panic!("write {out_path}: {e}"));
    println!("wrote {out_path}");

    if let Some(ratio) = guard {
        let rps_of = |label: &str| {
            results
                .iter()
                .find(|m| m.label == label)
                .map(|m| m.rps)
                .expect("label present")
        };
        // A single replay is too noisy for a pass/fail gate on a busy host:
        // re-measure the guarded pair interleaved and compare each label's
        // best of three trials.
        let mut online = rps_of("online");
        let mut k1 = rps_of("sharded-k1");
        for _ in 0..2 {
            let mut s = CoAllocScheduler::new(spec.servers, bench_cfg());
            online = online.max(
                replay("online", None, &reqs, |r| {
                    s.advance_to(r.submit);
                    s.submit(r).is_ok()
                })
                .rps,
            );
            let mut s = ShardedScheduler::new(spec.servers, 1, bench_cfg());
            k1 = k1.max(
                replay("sharded-k1", Some(1), &reqs, |r| {
                    s.advance_to(r.submit);
                    s.submit(r).is_ok()
                })
                .rps,
            );
        }
        if k1 < ratio * online {
            eprintln!(
                "GUARD FAILED: sharded-k1 at {k1:.0} req/s is below {ratio} × online ({online:.0} req/s)"
            );
            std::process::exit(1);
        }
        println!("guard ok: sharded-k1/online = {:.3} >= {ratio}", k1 / online);
    }
}
