//! End-to-end scheduler throughput gate: naive vs online vs sharded.
//!
//! Replays a workload-twin request stream through the naive oracle, the
//! single tree-based online scheduler, and the sharded scheduler at
//! `K ∈ {1, 2, 4, 8}`, timing every request. Emits `BENCH_sched.json`
//! with requests/sec and p50/p99 per-request latency for each scheduler.
//!
//! ```text
//! cargo run -p coalloc-bench --release --bin sched_throughput -- \
//!     [--smoke] [--scale F] [--seed N] [--out PATH] [--guard R] \
//!     [--batch B] [--pool-min-batch N] \
//!     [--profile kth|write-heavy|reject-heavy|wal] [--validate PATH]
//! ```
//!
//! * `--smoke` — tiny workload slice for CI (also skips the slow naive
//!   baseline's full stream: the stream is already small).
//! * `--batch B` — additionally measure the batched submission path: the
//!   op stream is chunked into groups of up to `B` submissions (releases
//!   encountered while a group fills are deferred to just after it lands,
//!   the way a server drains its queue), and every scheduler replays the
//!   *same* groups — the single scheduler folds each group through
//!   `submit_batch_into`, the sharded ones execute it as one batch. Emits
//!   extra `online-b{B}` / `sharded-k{K}-b{B}` rows. With `--guard R` the
//!   gate moves to the batched rows: every `sharded-k{2,4,8}-b{B}` must
//!   reach `R ×` `online-b{B}`.
//! * `--profile write-heavy` — replace the KTH submit-only stream with a
//!   grant/release churn stream of long-spanning reservations (4–48 h over
//!   15-minute slots), so the run is dominated by idle-period index updates
//!   rather than searches. The emitted document carries the online
//!   scheduler's write-path counters (`write_path` object).
//! * `--profile reject-heavy` — a stream dominated by doomed requests: a
//!   16-wide filler band books every server solid for 48 hours, then every
//!   submission must walk (or jump) its full 145-attempt retry budget to an
//!   `Exhausted` reply. This is the Δt-step compute wall the capacity
//!   profile removes: the extra `online-linear` row replays the identical
//!   stream with `jump_retries` off, and with `--guard R` the gate becomes
//!   `online >= R × online-linear` (CI uses `1.3`).
//! * `--pool-min-batch N` — override the sharded schedulers' pool
//!   threshold (the `COALLOC_POOL_MIN_BATCH` env knob, as a flag): `0`
//!   forces every batch through the worker pool, a huge value pins the
//!   inline path. Applied to every sharded row, guard re-trials included.
//! * `--profile wal` — measure the cost of command durability: one churn
//!   stream of protocol text commands replayed through a [`Session`] three
//!   ways — no WAL, WAL with group commit (the server's write path: append
//!   every mutating command, fsync per batch), and WAL with an fsync after
//!   every mutating command. Emits `BENCH_wal.json`.
//! * `--guard R` — exit non-zero on a throughput regression: for the
//!   scheduler profiles, the sharded `K=1` configuration must reach `R ×`
//!   the single scheduler (CI uses `0.9`); for `--profile wal`, group-commit
//!   durability must reach `R ×` the WAL-off baseline (CI uses `0.5`). The
//!   guarded pair is re-measured interleaved and compared on the best of
//!   three trials, so one scheduling hiccup cannot fail the gate.
//! * `--validate PATH` — parse an existing result file and check its shape
//!   instead of running; used by CI after the bench run.

use coalloc_core::naive::NaiveScheduler;
use coalloc_core::prelude::*;
use coalloc_net::{proto, Session};
use coalloc_shard::ShardedScheduler;
use coalloc_wal::{Wal, WalConfig};
use coalloc_workloads::synthetic::WorkloadSpec;
use obs::json::{self, Json};
use std::time::Instant;

const SHARD_COUNTS: [u32; 4] = [1, 2, 4, 8];

/// One scheduler's measured replay.
struct Measured {
    label: String,
    shards: Option<u32>,
    granted: usize,
    secs: f64,
    rps: f64,
    p50_us: f64,
    p99_us: f64,
}

/// Nearest-rank percentile over an ascending slice of nanosecond latencies,
/// reported in microseconds.
fn percentile_us(sorted_ns: &[u64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ns.len() as f64 - 1.0) * p).round() as usize;
    sorted_ns[idx] as f64 / 1_000.0
}

/// Replay `reqs` through `step` (advance + submit), timing each request.
fn replay(
    label: &str,
    shards: Option<u32>,
    reqs: &[Request],
    mut step: impl FnMut(&Request) -> bool,
) -> Measured {
    let mut lat_ns = Vec::with_capacity(reqs.len());
    let mut granted = 0usize;
    let t0 = Instant::now();
    for r in reqs {
        let t = Instant::now();
        if step(r) {
            granted += 1;
        }
        lat_ns.push(t.elapsed().as_nanos() as u64);
    }
    let secs = t0.elapsed().as_secs_f64();
    lat_ns.sort_unstable();
    Measured {
        label: label.to_string(),
        shards,
        granted,
        secs,
        rps: reqs.len() as f64 / secs.max(1e-9),
        p50_us: percentile_us(&lat_ns, 0.50),
        p99_us: percentile_us(&lat_ns, 0.99),
    }
}

/// One operation of a write-heavy replay stream: a submission, or the
/// release of the grant an earlier submission produced (a no-op for the
/// schedulers that rejected it — all of them, by decision equivalence).
enum Op {
    Submit(Request),
    Release { submit_idx: usize, at: Time },
}

/// Write-heavy stream: long-spanning reservations (16–192 slots of 15
/// minutes) booked with lead times scattered across the whole 72-hour
/// horizon, plus mixed release traffic. The scatter leaves wide idle gaps
/// between reservations on the same server, and every submission past the
/// in-flight window releases the oldest outstanding job — so the deltas the
/// schedulers apply are dominated by finite idle periods spanning dozens of
/// slots (the worst case for per-slot mirroring) rather than by searches.
fn write_heavy_ops(n_submits: usize, seed: u64) -> Vec<Op> {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    const IN_FLIGHT: usize = 24;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut ops = Vec::with_capacity(2 * n_submits);
    let mut outstanding = std::collections::VecDeque::new();
    let mut t = 0i64;
    for idx in 0..n_submits {
        t += rng.random_range(60i64..=600);
        let slots = rng.random_range(16i64..=192);
        // Book anywhere in the horizon that still fits the duration.
        let max_lead = (71 * 3600 - slots * 900) / 900;
        let lead = rng.random_range(0i64..=max_lead) * 900;
        let req = Request::advance(
            Time(t),
            Time(t + lead),
            Dur(slots * 900),
            rng.random_range(1u32..=4),
        );
        ops.push(Op::Submit(req));
        outstanding.push_back(idx);
        while outstanding.len() > IN_FLIGHT {
            let victim = outstanding.pop_front().expect("non-empty");
            t += rng.random_range(30i64..=120);
            ops.push(Op::Release {
                submit_idx: victim,
                at: Time(t),
            });
        }
    }
    ops
}

/// Reject-heavy stream: twelve 16-wide fillers book every server solid
/// over `[0, 48 h)`, then every later submission is doomed — with the band
/// covering the whole 36-hour span its 145-attempt budget can reach (plus
/// the longest request duration), each one must exhaust that budget to an
/// `Exhausted` reply. The linear walk pays a full Phase-1 probe per
/// attempt; the capacity profile proves each window infeasible and jumps
/// the band in a handful of segment-tree queries.
fn reject_heavy_reqs(n_submits: usize, seed: u64) -> Vec<Request> {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    const FILLER_SLOTS: i64 = 16; // 4 h per filler
    const BAND_SLOTS: i64 = 192; // 48 h of solid occupancy
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut reqs = Vec::with_capacity(n_submits);
    for i in 0..(BAND_SLOTS / FILLER_SLOTS) {
        reqs.push(Request::advance(
            Time::ZERO,
            Time(i * FILLER_SLOTS * 900),
            Dur(FILLER_SLOTS * 900),
            16,
        ));
    }
    while reqs.len() < n_submits {
        let slots = rng.random_range(8i64..=32);
        reqs.push(Request::on_demand(
            Time::ZERO,
            Dur(slots * 900),
            rng.random_range(1u32..=16),
        ));
    }
    reqs
}

/// One scheduler call of an [`Op`] replay, resolved against earlier grants.
enum Action<'a> {
    Submit(&'a Request),
    Release(JobId, Time),
}

/// Replay an [`Op`] stream, timing every operation. `act` returns the
/// granted job id on submission so later `Release` ops can refer back to it.
fn replay_ops(
    label: &str,
    shards: Option<u32>,
    ops: &[Op],
    mut act: impl FnMut(Action) -> Option<JobId>,
) -> Measured {
    let mut lat_ns = Vec::with_capacity(ops.len());
    let mut jobs: Vec<Option<JobId>> = Vec::with_capacity(ops.len());
    let mut granted = 0usize;
    let t0 = Instant::now();
    for op in ops {
        let t = Instant::now();
        match op {
            Op::Submit(r) => {
                let g = act(Action::Submit(r));
                granted += g.is_some() as usize;
                jobs.push(g);
            }
            Op::Release { submit_idx, at } => {
                if let Some(job) = jobs[*submit_idx].take() {
                    act(Action::Release(job, *at));
                }
            }
        }
        lat_ns.push(t.elapsed().as_nanos() as u64);
    }
    let secs = t0.elapsed().as_secs_f64();
    lat_ns.sort_unstable();
    Measured {
        label: label.to_string(),
        shards,
        granted,
        secs,
        rps: ops.len() as f64 / secs.max(1e-9),
        p50_us: percentile_us(&lat_ns, 0.50),
        p99_us: percentile_us(&lat_ns, 0.99),
    }
}

/// One replay group of the batched mode: a run of up to `B` submissions
/// executed as one `submit_batch`, or the release of an earlier grant.
enum Group {
    Batch(Vec<Request>),
    Release { submit_idx: usize, at: Time },
}

/// Chunk a stream into batched replay groups. Submissions accumulate into
/// groups of up to `batch`; releases encountered while a group is filling
/// are deferred until the group lands (a release may then even target a
/// grant made earlier in its own group — exactly how the server's queue
/// drain behaves). Every scheduler replays the same groups, so the batched
/// rows are decision-identical to each other, though not to the unbatched
/// rows (the clock only advances at group boundaries).
fn group_stream(reqs: &[Request], ops: &[Op], batch: usize) -> Vec<Group> {
    let mut groups = Vec::new();
    let mut cur: Vec<Request> = Vec::new();
    let mut deferred: Vec<Group> = Vec::new();
    let flush = |cur: &mut Vec<Request>, deferred: &mut Vec<Group>, groups: &mut Vec<Group>| {
        if !cur.is_empty() {
            groups.push(Group::Batch(std::mem::take(cur)));
        }
        groups.append(deferred);
    };
    if ops.is_empty() {
        for r in reqs {
            cur.push(*r);
            if cur.len() == batch {
                flush(&mut cur, &mut deferred, &mut groups);
            }
        }
    } else {
        for op in ops {
            match op {
                Op::Submit(r) => {
                    cur.push(*r);
                    if cur.len() == batch {
                        flush(&mut cur, &mut deferred, &mut groups);
                    }
                }
                Op::Release { submit_idx, at } => deferred.push(Group::Release {
                    submit_idx: *submit_idx,
                    at: *at,
                }),
            }
        }
    }
    flush(&mut cur, &mut deferred, &mut groups);
    groups
}

/// One scheduler call of a [`Group`] replay.
enum GroupAction<'a> {
    Submit(&'a [Request]),
    Release(JobId, Time),
}

/// Replay a [`Group`] stream. Batch latency is charged evenly to its
/// members so the percentiles stay per-request figures; `rps` divides the
/// original op count by the wall time, directly comparable to the
/// unbatched rows.
fn replay_groups(
    label: &str,
    shards: Option<u32>,
    n_ops: usize,
    groups: &[Group],
    mut act: impl FnMut(GroupAction, &mut Vec<Result<Grant, ScheduleError>>),
) -> Measured {
    let mut lat_ns = Vec::with_capacity(n_ops);
    let mut jobs: Vec<Option<JobId>> = Vec::new();
    let mut out: Vec<Result<Grant, ScheduleError>> = Vec::new();
    let mut granted = 0usize;
    let t0 = Instant::now();
    for g in groups {
        match g {
            Group::Batch(reqs) => {
                let t = Instant::now();
                act(GroupAction::Submit(reqs), &mut out);
                let per = t.elapsed().as_nanos() as u64 / reqs.len().max(1) as u64;
                for r in out.drain(..) {
                    match r {
                        Ok(g) => {
                            granted += 1;
                            jobs.push(Some(g.job));
                        }
                        Err(_) => jobs.push(None),
                    }
                    lat_ns.push(per);
                }
            }
            Group::Release { submit_idx, at } => {
                let t = Instant::now();
                if let Some(job) = jobs[*submit_idx].take() {
                    act(GroupAction::Release(job, *at), &mut out);
                }
                lat_ns.push(t.elapsed().as_nanos() as u64);
            }
        }
    }
    let secs = t0.elapsed().as_secs_f64();
    lat_ns.sort_unstable();
    Measured {
        label: label.to_string(),
        shards,
        granted,
        secs,
        rps: n_ops as f64 / secs.max(1e-9),
        p50_us: percentile_us(&lat_ns, 0.50),
        p99_us: percentile_us(&lat_ns, 0.99),
    }
}

/// Protocol-text churn stream for the `wal` profile: the chaos harness's
/// traffic mix (submit-heavy with releases, clock advances and consistency
/// checks) as one replayable script. Release targets are guessed from the
/// submission count, so a fraction hit unknown jobs — error replies are not
/// appended to the log, exactly as on the server.
fn wal_cmds(n: usize, seed: u64) -> Vec<String> {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut cmds = Vec::with_capacity(n + 1);
    cmds.push("init 64 900 259200 900".to_string());
    let mut now = 0i64;
    let mut submitted = 0u64;
    for _ in 0..n {
        cmds.push(match rng.random_range(0u32..10) {
            0..=5 => {
                let s = now + rng.random_range(0i64..96) * 900;
                let l = rng.random_range(1i64..=16) * 900;
                let k = rng.random_range(1u32..=4);
                submitted += 1;
                format!("submit 0 {s} {l} {k}")
            }
            6 | 7 => format!("release {}", rng.random_range(0..submitted.max(1))),
            8 => {
                now += rng.random_range(1i64..=4) * 900;
                format!("advance {now}")
            }
            _ => "check".to_string(),
        });
    }
    cmds
}

/// Replay the command stream through a fresh [`Session`], optionally
/// appending every successful mutating command to a WAL and fsyncing per
/// `batch` records — `batch == 1` is sync-each, larger is group commit. A
/// reply only counts as released once its batch is synced, so the timing
/// charges each fsync to the command that triggered it (the group-commit
/// amortization CI guards on).
fn replay_wal(label: &str, cmds: &[String], mut wal: Option<&mut Wal>, batch: u64) -> Measured {
    let mut session = Session::new(1);
    let mut lat_ns = Vec::with_capacity(cmds.len());
    let mut granted = 0usize;
    let mut payload = Vec::new();
    let t0 = Instant::now();
    for cmd in cmds {
        let t = Instant::now();
        let verb = cmd.split_whitespace().next().unwrap_or("");
        if let Ok(reply) = session.exec(cmd) {
            granted += reply.starts_with("granted") as usize;
            if proto::mutating(verb) {
                if let Some(w) = wal.as_deref_mut() {
                    payload.clear();
                    payload.extend_from_slice(cmd.as_bytes());
                    payload.push(b'\n');
                    payload.extend_from_slice(reply.as_bytes());
                    w.append(&payload).expect("wal append");
                    if w.unsynced_records() >= batch {
                        w.sync().expect("wal sync");
                    }
                }
            }
        }
        lat_ns.push(t.elapsed().as_nanos() as u64);
    }
    if let Some(w) = wal {
        w.sync().expect("wal final sync");
    }
    let secs = t0.elapsed().as_secs_f64();
    lat_ns.sort_unstable();
    Measured {
        label: label.to_string(),
        shards: None,
        granted,
        secs,
        rps: cmds.len() as f64 / secs.max(1e-9),
        p50_us: percentile_us(&lat_ns, 0.50),
        p99_us: percentile_us(&lat_ns, 0.99),
    }
}

/// Group-commit size for the `wal-batched` variant. The server flushes by
/// draining its queue (up to 512) or on a 1 ms timer; 32 is a conservative
/// stand-in for what a moderately loaded server batches per fsync.
const WAL_GROUP_COMMIT: u64 = 32;

/// Run one `wal`-profile variant in a scratch directory (fresh per call so
/// repeated guard trials never replay each other's segments).
fn run_wal_variant(label: &str, cmds: &[String], durable: bool, batch: u64) -> Measured {
    if !durable {
        return replay_wal(label, cmds, None, 0);
    }
    let dir = std::env::temp_dir().join(format!(
        "coalloc-bench-wal-{label}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let (mut wal, _recovery) = Wal::open(WalConfig::new(&dir)).expect("open bench wal");
    let m = replay_wal(label, cmds, Some(&mut wal), batch);
    drop(wal);
    let _ = std::fs::remove_dir_all(&dir);
    m
}

fn bench_cfg() -> SchedulerConfig {
    SchedulerConfig::builder()
        .tau(Dur::from_mins(15))
        .horizon(Dur::from_hours(72))
        .delta_t(Dur::from_mins(15))
        .build()
}

/// [`bench_cfg`] with capacity-profile attempt jumping disabled: the
/// exhaustive Δt-step retry walk, measured as the `online-linear` row.
fn bench_cfg_linear() -> SchedulerConfig {
    SchedulerConfig::builder()
        .tau(Dur::from_mins(15))
        .horizon(Dur::from_hours(72))
        .delta_t(Dur::from_mins(15))
        .jump_retries(false)
        .build()
}

/// Everything `render` needs besides the per-scheduler measurements.
struct RunMeta<'a> {
    profile: &'a str,
    workload: &'a str,
    servers: u32,
    scale: f64,
    seed: u64,
    n_ops: usize,
    /// Batched-mode group size (`--batch`), 0 when batched rows were not run.
    batch: usize,
    /// Pre-rendered `"write_path"` JSON object (write-heavy profile only).
    write_path: Option<String>,
}

fn render(results: &[Measured], meta: &RunMeta) -> String {
    let cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"sched_throughput\",\n");
    out.push_str(&format!("  \"profile\": \"{}\",\n", json::escape(meta.profile)));
    out.push_str(&format!("  \"workload\": \"{}\",\n", json::escape(meta.workload)));
    out.push_str(&format!("  \"servers\": {},\n", meta.servers));
    out.push_str(&format!("  \"scale\": {},\n", meta.scale));
    out.push_str(&format!("  \"seed\": {},\n", meta.seed));
    out.push_str(&format!("  \"requests\": {},\n", meta.n_ops));
    if meta.batch > 0 {
        out.push_str(&format!("  \"batch\": {},\n", meta.batch));
    }
    out.push_str(&format!("  \"cpus\": {cpus},\n"));
    if let Some(wp) = &meta.write_path {
        out.push_str(&format!("  \"write_path\": {wp},\n"));
    }
    out.push_str("  \"schedulers\": [\n");
    for (i, m) in results.iter().enumerate() {
        let shards = m
            .shards
            .map(|k| format!("\"shards\": {k}, "))
            .unwrap_or_default();
        out.push_str(&format!(
            "    {{\"label\": \"{}\", {}\"granted\": {}, \"secs\": {:.6}, \"rps\": {:.3}, \"p50_us\": {:.3}, \"p99_us\": {:.3}}}{}\n",
            json::escape(&m.label),
            shards,
            m.granted,
            m.secs,
            m.rps,
            m.p50_us,
            m.p99_us,
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Shape-check a `BENCH_sched.json` document. Returns the parsed schedulers
/// keyed by label on success.
fn validate(text: &str) -> Result<Vec<(String, f64)>, String> {
    let doc = json::parse(text)?;
    if doc.get("bench").and_then(Json::as_str) != Some("sched_throughput") {
        return Err("missing or wrong \"bench\" tag".into());
    }
    let profile = doc
        .get("profile")
        .and_then(Json::as_str)
        .ok_or("missing string \"profile\"")?;
    if profile == "write-heavy" {
        let wp = doc.get("write_path").ok_or("write-heavy document missing \"write_path\"")?;
        for key in [
            "logical_period_updates",
            "tree_entry_updates",
            "tree_updates_per_period",
            "periods_resident",
            "tree_entries_resident",
            "segment_nodes",
        ] {
            if wp.get(key).and_then(Json::as_num).is_none() {
                return Err(format!("\"write_path\" missing numeric \"{key}\""));
            }
        }
    }
    for key in ["requests", "cpus", "servers", "scale", "seed"] {
        if doc.get(key).and_then(Json::as_num).is_none() {
            return Err(format!("missing numeric \"{key}\""));
        }
    }
    if doc.get("requests").and_then(Json::as_num).unwrap_or(0.0) <= 0.0 {
        return Err("\"requests\" must be positive".into());
    }
    let Some(Json::Arr(entries)) = doc.get("schedulers") else {
        return Err("missing \"schedulers\" array".into());
    };
    let mut seen = Vec::new();
    for e in entries {
        let label = e
            .get("label")
            .and_then(Json::as_str)
            .ok_or("scheduler entry without string \"label\"")?;
        for key in ["granted", "secs", "rps", "p50_us", "p99_us"] {
            e.get(key)
                .and_then(Json::as_num)
                .ok_or_else(|| format!("entry \"{label}\" missing numeric \"{key}\""))?;
        }
        seen.push((
            label.to_string(),
            e.get("rps").and_then(Json::as_num).unwrap_or(0.0),
        ));
    }
    let mut want: Vec<String> = if profile == "wal" {
        ["wal-off", "wal-batched", "wal-sync-each"]
            .map(String::from)
            .into()
    } else {
        [
            "naive",
            "online",
            "online-linear",
            "sharded-k1",
            "sharded-k2",
            "sharded-k4",
            "sharded-k8",
        ]
        .map(String::from)
        .into()
    };
    // A batched run carries a positive "batch" and one batched row per
    // scheduler (the naive oracle has no batched entry point).
    let batch = doc.get("batch").and_then(Json::as_num).unwrap_or(0.0) as u64;
    if batch > 0 {
        if profile == "wal" {
            return Err("\"batch\" is not valid for the wal profile".into());
        }
        want.push(format!("online-b{batch}"));
        for k in [1u64, 2, 4, 8] {
            want.push(format!("sharded-k{k}-b{batch}"));
        }
    }
    for want in &want {
        if !seen.iter().any(|(l, _)| l == want) {
            return Err(format!("missing scheduler entry \"{want}\""));
        }
    }
    Ok(seen)
}

/// The online scheduler's write-path counters, rendered as a JSON object.
fn write_path_json(s: &CoAllocScheduler) -> String {
    let st = *s.stats();
    let tree_updates = st.periods_inserted + st.periods_removed;
    let logical = st.ring_period_inserts + st.ring_period_removes;
    let per_period = if logical == 0 {
        0.0
    } else {
        tree_updates as f64 / logical as f64
    };
    let ring = s.ring();
    format!(
        "{{\"logical_period_updates\": {logical}, \"tree_entry_updates\": {tree_updates}, \
         \"tree_updates_per_period\": {per_period:.3}, \"periods_resident\": {}, \
         \"tree_entries_resident\": {}, \"segment_nodes\": {}}}",
        ring.resident_periods(),
        ring.resident_entries(),
        ring.segment_nodes(),
    )
}

fn main() {
    let mut scale = 0.02f64;
    let mut seed = 42u64;
    let mut out_path: Option<String> = None;
    let mut guard: Option<f64> = None;
    let mut batch = 0usize;
    let mut pool_min_batch: Option<usize> = None;
    let mut profile = String::from("kth");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => scale = 0.002,
            "--scale" => scale = args.next().expect("--scale F").parse().expect("float"),
            "--seed" => seed = args.next().expect("--seed N").parse().expect("integer"),
            "--out" => out_path = Some(args.next().expect("--out PATH")),
            "--profile" => profile = args.next().expect("--profile NAME"),
            "--batch" => {
                batch = args.next().expect("--batch B").parse().expect("integer");
            }
            "--pool-min-batch" => {
                pool_min_batch =
                    Some(args.next().expect("--pool-min-batch N").parse().expect("integer"));
            }
            "--guard" => {
                guard = Some(args.next().expect("--guard R").parse().expect("float"));
            }
            "--validate" => {
                let path = args.next().expect("--validate PATH");
                let text = std::fs::read_to_string(&path)
                    .unwrap_or_else(|e| panic!("read {path}: {e}"));
                match validate(&text) {
                    Ok(entries) => {
                        println!("{path}: ok ({} schedulers)", entries.len());
                        return;
                    }
                    Err(e) => {
                        eprintln!("{path}: INVALID: {e}");
                        std::process::exit(1);
                    }
                }
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: sched_throughput [--smoke] [--scale F] [--seed N] \
                     [--out PATH] [--guard R] [--batch B] [--pool-min-batch N] \
                     [--profile kth|write-heavy|reject-heavy|wal] [--validate PATH]"
                );
                return;
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }

    let out_path = out_path.unwrap_or_else(|| {
        String::from(if profile == "wal" { "BENCH_wal.json" } else { "BENCH_sched.json" })
    });
    let (meta_workload, servers, reqs, ops, cmds);
    match profile.as_str() {
        "kth" => {
            let spec = WorkloadSpec::kth().scaled(scale);
            servers = spec.servers;
            meta_workload = spec.name.clone();
            reqs = spec.generate(seed);
            ops = Vec::new();
            cmds = Vec::new();
            println!(
                "sched_throughput: {} requests over {servers} servers (kth × {scale}, seed {seed})",
                reqs.len(),
            );
        }
        "write-heavy" => {
            servers = 64;
            meta_workload = String::from("write-heavy-churn");
            let n_submits = ((4000.0 * scale / 0.02).round() as usize).max(100);
            reqs = Vec::new();
            ops = write_heavy_ops(n_submits, seed);
            cmds = Vec::new();
            println!(
                "sched_throughput: {} ops ({n_submits} submits) over {servers} servers \
                 (write-heavy × {scale}, seed {seed})",
                ops.len(),
            );
        }
        "reject-heavy" => {
            servers = 16;
            meta_workload = String::from("reject-heavy-wall");
            let n_submits = ((4000.0 * scale / 0.02).round() as usize).max(100);
            reqs = reject_heavy_reqs(n_submits, seed);
            ops = Vec::new();
            cmds = Vec::new();
            println!(
                "sched_throughput: {} requests over {servers} servers \
                 (reject-heavy × {scale}, seed {seed})",
                reqs.len(),
            );
        }
        "wal" => {
            servers = 64;
            meta_workload = String::from("wal-churn");
            let n = ((20_000.0 * scale / 0.02).round() as usize).max(500);
            reqs = Vec::new();
            ops = Vec::new();
            cmds = wal_cmds(n, seed);
            println!(
                "sched_throughput: {} protocol commands over {servers} servers \
                 (wal × {scale}, seed {seed}, group commit {WAL_GROUP_COMMIT})",
                cmds.len(),
            );
        }
        other => {
            eprintln!("unknown profile {other} (want kth, write-heavy, reject-heavy or wal)");
            std::process::exit(2);
        }
    }

    // Build a sharded scheduler for any row, honoring `--pool-min-batch`.
    let mk_sharded = |k: u32| {
        let mut s = ShardedScheduler::new(servers, k, bench_cfg());
        if let Some(n) = pool_min_batch {
            s.set_pool_min_batch(n);
        }
        s
    };

    // Replay one scheduler over whichever stream the profile selected.
    macro_rules! run {
        ($label:expr, $shards:expr, $s:ident) => {
            if ops.is_empty() {
                replay($label, $shards, &reqs, |r| {
                    $s.advance_to(r.submit);
                    $s.submit(r).is_ok()
                })
            } else {
                replay_ops($label, $shards, &ops, |a| match a {
                    Action::Submit(r) => {
                        $s.advance_to(r.submit);
                        $s.submit(r).ok().map(|g| g.job)
                    }
                    Action::Release(job, at) => {
                        $s.advance_to(at);
                        let _ = $s.release(job);
                        None
                    }
                })
            }
        };
    }

    let mut results = Vec::new();
    let mut write_path = None;
    if profile == "wal" {
        results.push(run_wal_variant("wal-off", &cmds, false, 0));
        results.push(run_wal_variant("wal-batched", &cmds, true, WAL_GROUP_COMMIT));
        results.push(run_wal_variant("wal-sync-each", &cmds, true, 1));
    } else {
        {
            let mut s = NaiveScheduler::new(servers, bench_cfg());
            results.push(run!("naive", None, s));
        }
        {
            let mut s = CoAllocScheduler::new(servers, bench_cfg());
            results.push(run!("online", None, s));
            if profile == "write-heavy" {
                write_path = Some(write_path_json(&s));
            }
        }
        {
            let mut s = CoAllocScheduler::new(servers, bench_cfg_linear());
            results.push(run!("online-linear", None, s));
        }
        for k in SHARD_COUNTS {
            let mut s = mk_sharded(k);
            results.push(run!(&format!("sharded-k{k}"), Some(k), s));
        }
    }

    if batch > 0 && profile == "wal" {
        eprintln!("--batch is not valid for the wal profile");
        std::process::exit(2);
    }
    let groups = if batch > 0 {
        group_stream(&reqs, &ops, batch)
    } else {
        Vec::new()
    };
    let n_stream_ops = reqs.len().max(ops.len());

    // Replay the batched groups through one scheduler — the macro body is
    // identical for the single and the sharded scheduler, which is the
    // point: `submit_batch_into` is the shared batched entry point.
    macro_rules! run_batch {
        ($label:expr, $shards:expr, $s:ident) => {
            replay_groups($label, $shards, n_stream_ops, &groups, |a, out| match a {
                GroupAction::Submit(reqs) => {
                    $s.advance_to(reqs[0].submit);
                    $s.submit_batch_into(reqs, out);
                }
                GroupAction::Release(job, at) => {
                    $s.advance_to(at);
                    let _ = $s.release(job);
                }
            })
        };
    }

    if batch > 0 {
        {
            let mut s = CoAllocScheduler::new(servers, bench_cfg());
            results.push(run_batch!(&format!("online-b{batch}"), None, s));
        }
        for k in SHARD_COUNTS {
            let mut s = mk_sharded(k);
            results.push(run_batch!(&format!("sharded-k{k}-b{batch}"), Some(k), s));
        }
    }

    for m in &results {
        println!(
            "  {:<12} {:>10.0} req/s  p50 {:>8.1} µs  p99 {:>9.1} µs  ({} granted, {:.3} s)",
            m.label, m.rps, m.p50_us, m.p99_us, m.granted, m.secs
        );
    }
    if let Some(wp) = &write_path {
        println!("  write_path: {wp}");
    }

    let meta = RunMeta {
        profile: &profile,
        workload: &meta_workload,
        servers,
        scale,
        seed,
        n_ops: reqs.len().max(ops.len()).max(cmds.len()),
        batch,
        write_path,
    };
    let doc = render(&results, &meta);
    validate(&doc).expect("self-validation of the emitted document");
    std::fs::write(&out_path, &doc).unwrap_or_else(|e| panic!("write {out_path}: {e}"));
    println!("wrote {out_path}");

    if let Some(ratio) = guard {
        let rps_of = |label: &str| {
            results
                .iter()
                .find(|m| m.label == label)
                .map(|m| m.rps)
                .expect("label present")
        };
        // A single replay is too noisy for a pass/fail gate on a busy host:
        // re-measure the guarded pair interleaved and compare each label's
        // best of three trials.
        if batch > 0 {
            // Batched gate: every parallel configuration must carry its
            // weight — sharded-k{2,4,8}-b{B} each against online-b{B}.
            let online_label = format!("online-b{batch}");
            let shard_ks = [2u32, 4, 8];
            let mut online = rps_of(&online_label);
            let mut best: Vec<f64> = shard_ks
                .iter()
                .map(|k| rps_of(&format!("sharded-k{k}-b{batch}")))
                .collect();
            for _ in 0..2 {
                let mut s = CoAllocScheduler::new(servers, bench_cfg());
                online = online.max(run_batch!(&online_label, None, s).rps);
                for (i, &k) in shard_ks.iter().enumerate() {
                    let mut s = mk_sharded(k);
                    best[i] =
                        best[i].max(run_batch!(&format!("sharded-k{k}-b{batch}"), Some(k), s).rps);
                }
            }
            let mut failed = false;
            for (i, &k) in shard_ks.iter().enumerate() {
                if best[i] < ratio * online {
                    eprintln!(
                        "GUARD FAILED: sharded-k{k}-b{batch} at {:.0} req/s is below \
                         {ratio} × {online_label} ({online:.0} req/s)",
                        best[i]
                    );
                    failed = true;
                } else {
                    println!(
                        "guard ok: sharded-k{k}-b{batch}/{online_label} = {:.3} >= {ratio}",
                        best[i] / online
                    );
                }
            }
            if failed {
                std::process::exit(1);
            }
            return;
        }
        let (fast_label, slow_label);
        let (mut fast, mut slow);
        if profile == "wal" {
            (fast_label, slow_label) = ("wal-off", "wal-batched");
            fast = rps_of(fast_label);
            slow = rps_of(slow_label);
            for _ in 0..2 {
                fast = fast.max(run_wal_variant(fast_label, &cmds, false, 0).rps);
                slow = slow
                    .max(run_wal_variant(slow_label, &cmds, true, WAL_GROUP_COMMIT).rps);
            }
        } else if profile == "reject-heavy" {
            // Speedup gate, not a regression gate: the jumping scheduler
            // must beat the exhaustive linear walk by the given factor
            // (`slow` here is the row required to reach `R × fast`).
            (fast_label, slow_label) = ("online-linear", "online");
            fast = rps_of(fast_label);
            slow = rps_of(slow_label);
            for _ in 0..2 {
                let mut s = CoAllocScheduler::new(servers, bench_cfg_linear());
                fast = fast.max(run!("online-linear", None, s).rps);
                let mut s = CoAllocScheduler::new(servers, bench_cfg());
                slow = slow.max(run!("online", None, s).rps);
            }
        } else {
            (fast_label, slow_label) = ("online", "sharded-k1");
            fast = rps_of(fast_label);
            slow = rps_of(slow_label);
            for _ in 0..2 {
                let mut s = CoAllocScheduler::new(servers, bench_cfg());
                fast = fast.max(run!("online", None, s).rps);
                let mut s = mk_sharded(1);
                slow = slow.max(run!("sharded-k1", Some(1), s).rps);
            }
        }
        if slow < ratio * fast {
            eprintln!(
                "GUARD FAILED: {slow_label} at {slow:.0} req/s is below {ratio} × \
                 {fast_label} ({fast:.0} req/s)"
            );
            std::process::exit(1);
        }
        println!(
            "guard ok: {slow_label}/{fast_label} = {:.3} >= {ratio}",
            slow / fast
        );
    }
}
