//! CLI for the experiment suite.
//!
//! ```text
//! experiments <exp-id | all> [--scale F] [--seed N] [--out DIR] [--shards K]
//! ```

use coalloc_bench::{ExpConfig, ALL_EXPERIMENTS};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "--help" || args[0] == "-h" {
        eprintln!(
            "usage: experiments <exp-id|all> [--scale F] [--seed N] [--out DIR] [--shards K]"
        );
        eprintln!("experiments: {}", ALL_EXPERIMENTS.join(", "));
        std::process::exit(if args.is_empty() { 2 } else { 0 });
    }
    let id = args[0].clone();
    let mut cfg = ExpConfig::default();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                cfg.scale = args[i + 1].parse().expect("--scale takes a float");
                i += 2;
            }
            "--seed" => {
                cfg.seed = args[i + 1].parse().expect("--seed takes an integer");
                i += 2;
            }
            "--out" => {
                cfg.out_dir = args[i + 1].clone().into();
                i += 2;
            }
            "--shards" => {
                cfg.shards = args[i + 1].parse().expect("--shards takes an integer >= 1");
                assert!(cfg.shards >= 1, "--shards takes an integer >= 1");
                i += 2;
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    println!(
        "running '{id}' at scale {} (seed {}, {} shard{}) -> {}",
        cfg.scale,
        cfg.seed,
        cfg.shards,
        if cfg.shards == 1 { "" } else { "s" },
        cfg.out_dir.display()
    );
    if let Err(e) = coalloc_bench::run(&id, &cfg) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
