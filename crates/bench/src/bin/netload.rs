//! `netload` — closed-loop load generator for the TCP serving path.
//!
//! Spins up an in-process `coalloc-net` server (or targets an external one
//! via `--addr`), drives it with `C` concurrent clients replaying a
//! fixed-seed workload twin from `crates/workloads`, and emits
//! `BENCH_net.json` with requests/sec and p50/p99 per-command latency.
//! After the storm it verifies the conservation invariants end to end:
//! every client-observed grant is releasable exactly once, the scheduler
//! passes its internal `check`, and (plain back-end) the server's
//! `sched_grants_total` metric equals the clients' count and releasing
//! everything returns the system to full idle capacity.
//!
//! ```text
//! cargo run -p coalloc-bench --release --bin netload -- \
//!     [--smoke] [--profile default|churn] [--clients C] [--scale F] \
//!     [--seed N] [--shards K] [--addr HOST:PORT] [--out PATH] \
//!     [--strict] [--validate PATH]
//! ```
//!
//! * `--smoke` — tiny workload slice for CI (8 clients, ~hundreds of
//!   commands) that still runs every invariant check.
//! * `--profile churn` — connection-churn stress instead of the closed-loop
//!   replay: thousands of concurrent connections (2048 unless `--clients`
//!   says otherwise) opening and closing in bursts, writing pipelined
//!   `advance` bursts split mid-line across writes. Every reply is checked
//!   byte-exactly against its request (`advance N` ⇒ `ok now=N`), so any
//!   reply reordering or cross-connection delivery is a violation.
//! * `--addr` — drive an already-running `coallocd serve` instead of an
//!   in-process server (the metric-equality check is skipped: an external
//!   server's counters may include other traffic).
//! * `--validate PATH` — parse an existing result file and check its shape
//!   instead of running; used by CI after the bench run.
//! * `--strict` — make `--validate` additionally reject results whose
//!   `secs` is below one second: a committed baseline must come from a
//!   full-length run, never from a `--smoke` artifact.

use coalloc_net::{Client, NetConfig, Server, BUSY_REPLY};
use coalloc_workloads::synthetic::WorkloadSpec;
use obs::json::{self, Json};
use std::io::Write;
use std::time::{Duration, Instant};

/// One client's tally of a replay slice.
#[derive(Default)]
struct ClientOutcome {
    /// `(job id, end time)` of every grant this client observed.
    granted_jobs: Vec<(u64, i64)>,
    rejected: u64,
    busy_retries: u64,
    lat_ns: Vec<u64>,
    violations: Vec<String>,
}

/// Send one command, retrying on `busy retry-after` sheds. Queue-level
/// sheds leave the connection open; accept-level sheds close it (seen as
/// a busy-then-EOF, a write error, or — if the command raced the close —
/// a connection reset), so retries reconnect as PROTOCOL.md prescribes.
/// Returns the first real reply and the number of retries absorbed.
fn roundtrip_retry(
    c: &mut Client,
    addr: std::net::SocketAddr,
    line: &str,
) -> std::io::Result<(String, u64)> {
    let mut retries = 0u64;
    loop {
        match c.roundtrip(line) {
            Ok(reply) if reply == BUSY_REPLY => {}
            // EOF: the connection died between commands (shed or reaped).
            Ok(reply) if reply.is_empty() => {}
            Ok(reply) => return Ok((reply, retries)),
            Err(e) if retries >= 100 => return Err(e),
            Err(_) => {}
        }
        retries += 1;
        std::thread::sleep(Duration::from_millis(5));
        // The cheap way to be correct about half-dead sockets: start over.
        let mut fresh = Client::connect(addr)?;
        let _ = fresh.set_timeout(Duration::from_secs(30));
        *c = fresh;
    }
}

/// One closed-loop request: pipeline the `advance` + `submit` pair in a
/// single write, then read both replies. One wire roundtrip per request —
/// the event-driven front-end slices the pair into one scheduler-queue
/// crossing. Queue-level sheds answer per line and leave the connection
/// open, so only the shed half is retried; dead sockets reconnect and
/// resend the whole pair. Returns `(advance reply if it was not shed,
/// submit reply, retries absorbed)`.
fn pair_retry(
    c: &mut Client,
    addr: std::net::SocketAddr,
    adv: &str,
    sub: &str,
) -> std::io::Result<(Option<String>, String, u64)> {
    let mut retries = 0u64;
    let wire = format!("{adv}\n{sub}\n");
    loop {
        let replies = c
            .stream()
            .write_all(wire.as_bytes())
            .and_then(|()| Ok((c.recv_line()?, c.recv_line()?)));
        match replies {
            Ok((r1, r2)) if !r1.is_empty() && !r2.is_empty() => {
                let r1 = if r1 == BUSY_REPLY {
                    retries += 1;
                    None // clock unmoved: harmless for a load run
                } else {
                    Some(r1)
                };
                if r2 == BUSY_REPLY {
                    // The submit was shed before execution: safe to resend
                    // alone on the still-open connection.
                    retries += 1;
                    let (r2, more) = roundtrip_retry(c, addr, sub)?;
                    return Ok((r1, r2, retries + more));
                }
                return Ok((r1, r2, retries));
            }
            // EOF on either reply: the connection died (shed or reaped).
            Ok(_) => {}
            Err(e) if retries >= 100 => return Err(e),
            Err(_) => {}
        }
        retries += 1;
        std::thread::sleep(Duration::from_millis(5));
        let mut fresh = Client::connect(addr)?;
        let _ = fresh.set_timeout(Duration::from_secs(30));
        *c = fresh;
    }
}

fn client_worker(
    addr: std::net::SocketAddr,
    reqs: Vec<(i64, i64, i64, u32)>,
) -> ClientOutcome {
    let mut out = ClientOutcome::default();
    let mut c = match Client::connect(addr) {
        Ok(c) => c,
        Err(e) => {
            out.violations.push(format!("connect failed: {e}"));
            return out;
        }
    };
    let _ = c.set_timeout(Duration::from_secs(30));
    for (q, s, l, n) in reqs {
        // Closed loop: move the shared clock to this request's submit
        // instant and ask for the decision, pipelined as one roundtrip.
        let t0 = Instant::now();
        match pair_retry(
            &mut c,
            addr,
            &format!("advance {q}"),
            &format!("submit {q} {s} {l} {n}"),
        ) {
            Ok((ra, r, busy)) => {
                out.busy_retries += busy;
                out.lat_ns.push(t0.elapsed().as_nanos() as u64);
                if let Some(ra) = ra {
                    if !ra.starts_with("ok now=") {
                        out.violations.push(format!("bad advance reply: {ra}"));
                    }
                }
                if let Some(rest) = r.strip_prefix("granted job=") {
                    let id: Option<u64> =
                        rest.split_whitespace().next().and_then(|x| x.parse().ok());
                    let end: Option<i64> = rest
                        .split_whitespace()
                        .find_map(|f| f.strip_prefix("end=").and_then(|v| v.parse().ok()));
                    match (id, end) {
                        (Some(id), Some(end)) => out.granted_jobs.push((id, end)),
                        _ => {
                            out.violations.push(format!("unparsable grant: {r}"));
                            out.granted_jobs.push((u64::MAX, i64::MAX));
                        }
                    }
                } else if r.starts_with("rejected") {
                    out.rejected += 1;
                } else {
                    out.violations.push(format!("unexpected submit reply: {r}"));
                }
            }
            Err(e) => {
                out.violations.push(format!("request pair io error: {e}"));
                return out;
            }
        }
    }
    out
}

fn percentile_us(sorted_ns: &[u64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ns.len() as f64 - 1.0) * p).round() as usize;
    sorted_ns[idx] as f64 / 1_000.0
}

/// Pull one metric value out of a `metrics` exposition.
fn metric_value(exposition: &str, name: &str) -> Option<u64> {
    exposition
        .lines()
        .find(|l| l.split_whitespace().next() == Some(name))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
}

/// Approximate quantile of a histogram family in a `metrics` exposition:
/// walk the cumulative `_bucket{le=...}` series and return the first upper
/// bound covering `q` of `_count`. The buckets are log-linear, so this is
/// an upper bound accurate to one sub-bucket — plenty for a breakdown.
fn expo_quantile(exposition: &str, family: &str, q: f64) -> Option<f64> {
    let count: f64 = metric_value(exposition, &format!("{family}_count"))? as f64;
    if count == 0.0 {
        return Some(0.0);
    }
    let target = (count * q).ceil();
    let prefix = format!("{family}_bucket{{le=\"");
    for line in exposition.lines() {
        let Some(rest) = line.strip_prefix(&prefix) else { continue };
        let (bound, tail) = rest.split_once("\"}")?;
        let cum: f64 = tail.trim().parse().ok()?;
        if cum >= target {
            return bound.parse().ok().or(Some(f64::INFINITY));
        }
    }
    None
}

/// The measured half of a run, ready to serialize.
struct RunSummary {
    n_cmds: usize,
    secs: f64,
    rps: f64,
    p50_us: f64,
    p99_us: f64,
    granted: usize,
    rejected: u64,
    busy_retries: u64,
    violations: usize,
    /// Per-stage p50s from the server's `req_stage_*` histograms (µs):
    /// queue wait, scheduler compute, WAL stall, writeback. Zero when the
    /// server's exposition was unreachable.
    stage_p50_us: [f64; 4],
}

fn render(spec: &WorkloadSpec, args: &Args, s: &RunSummary) -> String {
    let cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    format!(
        "{{\n  \"bench\": \"netload\",\n  \"profile\": \"{}\",\n  \
         \"workload\": \"{}\",\n  \"servers\": {},\n  \
         \"scale\": {},\n  \"seed\": {},\n  \"clients\": {},\n  \"shards\": {},\n  \
         \"commands\": {},\n  \"cpus\": {},\n  \"secs\": {:.6},\n  \"rps\": {:.3},\n  \
         \"p50_us\": {:.3},\n  \"p99_us\": {:.3},\n  \
         \"stage_queue_wait_p50_us\": {:.3},\n  \"stage_sched_p50_us\": {:.3},\n  \
         \"stage_wal_stall_p50_us\": {:.3},\n  \"stage_writeback_p50_us\": {:.3},\n  \
         \"granted\": {},\n  \
         \"rejected\": {},\n  \"busy_retries\": {},\n  \"violations\": {}\n}}\n",
        json::escape(&args.profile),
        json::escape(&spec.name),
        spec.servers,
        args.scale,
        args.seed,
        args.clients,
        args.shards,
        s.n_cmds,
        cpus,
        s.secs,
        s.rps,
        s.p50_us,
        s.p99_us,
        s.stage_p50_us[0],
        s.stage_p50_us[1],
        s.stage_p50_us[2],
        s.stage_p50_us[3],
        s.granted,
        s.rejected,
        s.busy_retries,
        s.violations,
    )
}

/// Shape-check a `BENCH_net.json` document. Strict mode additionally
/// rejects sub-second runs: a committed baseline regenerated from a smoke
/// run would silently gut the regression guard (its rps floor and p99
/// ceiling would come from a statistically meaningless 0.1 s burst).
fn validate(text: &str, strict: bool) -> Result<(), String> {
    let doc = json::parse(text)?;
    if doc.get("bench").and_then(Json::as_str) != Some("netload") {
        return Err("missing or wrong \"bench\" tag".into());
    }
    for key in [
        "servers", "scale", "seed", "clients", "shards", "commands", "cpus", "secs", "rps",
        "p50_us", "p99_us", "stage_queue_wait_p50_us", "stage_sched_p50_us",
        "stage_wal_stall_p50_us", "stage_writeback_p50_us", "granted", "rejected",
        "busy_retries", "violations",
    ] {
        if doc.get(key).and_then(Json::as_num).is_none() {
            return Err(format!("missing numeric \"{key}\""));
        }
    }
    let num = |k: &str| doc.get(k).and_then(Json::as_num).unwrap_or(-1.0);
    if num("commands") <= 0.0 || num("rps") <= 0.0 {
        return Err("\"commands\" and \"rps\" must be positive".into());
    }
    if num("clients") < 1.0 {
        return Err("\"clients\" must be at least 1".into());
    }
    if num("violations") != 0.0 {
        return Err(format!("{} invariant violations recorded", num("violations")));
    }
    if strict && num("secs") < 1.0 {
        return Err(format!(
            "strict: \"secs\" is {:.3} — a baseline must come from a full run \
             (≥ 1 s), not a smoke artifact",
            num("secs")
        ));
    }
    Ok(())
}

struct Args {
    /// `default` (closed-loop kth replay) or `churn` (connection storm).
    profile: String,
    /// `--smoke`: shrink whichever profile runs to CI size.
    smoke: bool,
    clients: usize,
    scale: f64,
    seed: u64,
    shards: u32,
    addr: Option<String>,
    out_path: String,
    /// Regression guard ratio: with `--baseline`, fail unless
    /// `rps >= guard × baseline.rps` AND `p99_us <= baseline.p99_us / guard`.
    guard: Option<f64>,
    /// Baseline `(rps, p99_us)`, read at argument-parse time so `--baseline`
    /// and `--out` may name the same file.
    baseline: Option<(f64, f64)>,
}

fn main() {
    let mut args = Args {
        profile: "default".to_string(),
        smoke: false,
        clients: 8,
        scale: 0.01,
        seed: 42,
        shards: 1,
        addr: None,
        out_path: "BENCH_net.json".to_string(),
        guard: None,
        baseline: None,
    };
    let mut clients_set = false;
    let mut strict = false;
    let mut cli = std::env::args().skip(1);
    while let Some(a) = cli.next() {
        match a.as_str() {
            "--smoke" => {
                args.smoke = true;
                args.scale = 0.002;
            }
            "--profile" => {
                args.profile = cli.next().expect("--profile default|churn");
                assert!(
                    args.profile == "default" || args.profile == "churn",
                    "--profile must be `default` or `churn`"
                );
            }
            "--strict" => strict = true,
            "--clients" => {
                args.clients = cli.next().expect("--clients C").parse().expect("integer");
                clients_set = true;
            }
            "--scale" => args.scale = cli.next().expect("--scale F").parse().expect("float"),
            "--seed" => args.seed = cli.next().expect("--seed N").parse().expect("integer"),
            "--shards" => args.shards = cli.next().expect("--shards K").parse().expect("integer"),
            "--addr" => args.addr = Some(cli.next().expect("--addr HOST:PORT")),
            "--out" => args.out_path = cli.next().expect("--out PATH"),
            "--guard" => {
                let r: f64 = cli.next().expect("--guard RATIO").parse().expect("float");
                assert!(r > 0.0 && r <= 1.0, "--guard must be in (0, 1]");
                args.guard = Some(r);
            }
            "--baseline" => {
                let path = cli.next().expect("--baseline PATH");
                // Read now: the run may overwrite this very file via --out.
                let text = std::fs::read_to_string(&path)
                    .unwrap_or_else(|e| panic!("read baseline {path}: {e}"));
                let doc = json::parse(&text).unwrap_or_else(|e| panic!("parse {path}: {e}"));
                let num = |k: &str| {
                    doc.get(k)
                        .and_then(Json::as_num)
                        .unwrap_or_else(|| panic!("baseline {path} missing numeric \"{k}\""))
                };
                args.baseline = Some((num("rps"), num("p99_us")));
            }
            "--validate" => {
                // `--strict` must precede `--validate` (validation runs
                // immediately so `--out`/`--validate` can share a file).
                let path = cli.next().expect("--validate PATH");
                let text = std::fs::read_to_string(&path)
                    .unwrap_or_else(|e| panic!("read {path}: {e}"));
                match validate(&text, strict) {
                    Ok(()) => {
                        println!("{path}: ok{}", if strict { " (strict)" } else { "" });
                        return;
                    }
                    Err(e) => {
                        eprintln!("{path}: INVALID: {e}");
                        std::process::exit(1);
                    }
                }
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: netload [--smoke] [--profile default|churn] [--clients C] \
                     [--scale F] [--seed N] [--shards K] [--addr HOST:PORT] [--out PATH] \
                     [--strict] [--validate PATH] [--guard RATIO --baseline PATH]"
                );
                return;
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    if args.profile == "churn" && !clients_set {
        // The churn point: thousands of concurrent connections, far past
        // what a thread-per-connection front-end could hold.
        args.clients = if args.smoke { 256 } else { 2048 };
    }
    assert!(args.clients >= 1, "--clients must be at least 1");

    // The workload twin: same generator the throughput gate replays (the
    // churn profile only borrows its name and server count for the row).
    let spec = WorkloadSpec::kth().scaled(args.scale);

    // In-process server unless an external address was given. A handful of
    // event loops multiplex every connection; `max_conns` leaves headroom
    // for the control session and reconnecting shed clients.
    let server = if args.addr.is_none() {
        Some(
            Server::bind(NetConfig {
                workers: 4,
                queue_depth: (args.clients * 2).max(64),
                max_conns: args.clients + 16,
                read_timeout: Duration::from_secs(30),
                shards: args.shards,
                ..NetConfig::default()
            })
            .expect("bind in-process server"),
        )
    } else {
        None
    };
    let addr: std::net::SocketAddr = match (&args.addr, &server) {
        (Some(a), _) => a.parse().expect("parse --addr"),
        (None, Some(s)) => s.local_addr(),
        _ => unreachable!(),
    };

    if args.profile == "churn" {
        run_churn(&args, &spec, server, addr);
        return;
    }

    let reqs = spec.generate(args.seed);
    println!(
        "netload: {} requests over {} servers (kth × {}, seed {}), {} clients, {} shard(s)",
        reqs.len(),
        spec.servers,
        args.scale,
        args.seed,
        args.clients,
        args.shards
    );

    // Control session: initialize the shared scheduler with the paper-bench
    // settings (15-minute slots, 72-hour horizon).
    let mut control = Client::connect(addr).expect("connect control session");
    control.set_timeout(Duration::from_secs(30)).expect("timeouts");
    let init = control
        .roundtrip(&format!("init {} 900 259200 900", spec.servers))
        .expect("init");
    assert!(init.starts_with("ok"), "init failed: {init}");

    // Round-robin the request stream over the clients, preserving each
    // slice's submit-time order (the shared clock only moves forward).
    let mut slices: Vec<Vec<(i64, i64, i64, u32)>> = vec![Vec::new(); args.clients];
    for (i, r) in reqs.iter().enumerate() {
        slices[i % args.clients].push((
            r.submit.secs(),
            r.earliest_start.secs(),
            r.duration.secs(),
            r.servers,
        ));
    }

    let t0 = Instant::now();
    let handles: Vec<_> = slices
        .into_iter()
        .map(|slice| std::thread::spawn(move || client_worker(addr, slice)))
        .collect();
    let outcomes: Vec<ClientOutcome> = handles
        .into_iter()
        .map(|h| h.join().expect("client thread"))
        .collect();
    let secs = t0.elapsed().as_secs_f64();

    let mut lat_ns: Vec<u64> = Vec::new();
    let mut granted_jobs: Vec<(u64, i64)> = Vec::new();
    let mut rejected = 0u64;
    let mut busy_retries = 0u64;
    let mut violations: Vec<String> = Vec::new();
    for o in outcomes {
        lat_ns.extend(o.lat_ns);
        granted_jobs.extend(o.granted_jobs);
        rejected += o.rejected;
        busy_retries += o.busy_retries;
        violations.extend(o.violations);
    }
    lat_ns.sort_unstable();
    // Two commands (advance + submit) per request crossed the wire as one
    // pipelined pair; rps counts both, the latency samples are pair RTTs.
    let n_cmds = lat_ns.len() * 2;

    // ---- Invariant sweep (the acceptance gate's "zero violations") ----
    // 1. The scheduler's internal indexes are consistent after the storm.
    match control.roundtrip("check") {
        Ok(r) if r == "ok" => {}
        Ok(r) => violations.push(format!("check failed: {r}")),
        Err(e) => violations.push(format!("check io error: {e}")),
    }
    // 2. Grant conservation against the server's own counters (only sound
    //    when the server is ours and the back-end increments the metric).
    if server.is_some() && args.shards == 1 {
        let metrics = Client::connect(addr)
            .and_then(|c| c.exchange_script("metrics\nexit\n"))
            .unwrap_or_default();
        match metric_value(&metrics, "sched_grants_total") {
            Some(g) if g as usize == granted_jobs.len() => {}
            Some(g) => violations.push(format!(
                "grant conservation: server counted {g}, clients observed {}",
                granted_jobs.len()
            )),
            None => violations.push("sched_grants_total missing from metrics".into()),
        }
    }
    // 3. Every observed grant is releasable exactly once (no phantom or
    //    double-counted jobs), and releasing all of them returns the
    //    system to full idle capacity.
    granted_jobs.sort_unstable();
    granted_jobs.dedup();
    if granted_jobs.len() != lat_ns.len() - rejected as usize {
        violations.push(format!(
            "duplicate job ids: {} unique grants vs {} granted replies",
            granted_jobs.len(),
            lat_ns.len() - rejected as usize
        ));
    }
    // `release` of a grant whose reservation already ran to completion may
    // answer `error unknown job`: the scheduler prunes finished history on
    // an amortized cadence and forgets pruned jobs (PROTOCOL.md `release`).
    // That is conservation, not leakage — the capacity came back at the
    // reservation's end — so it is only accepted for jobs that had in fact
    // finished by the final clock; for a live job it is a real violation.
    let final_now: i64 = control
        .roundtrip("stats")
        .ok()
        .and_then(|r| {
            r.split_whitespace()
                .find_map(|f| f.strip_prefix("now=").and_then(|v| v.parse().ok()))
        })
        .unwrap_or(i64::MIN);
    let mut released_live: Option<u64> = None;
    for &(job, end) in &granted_jobs {
        match control.roundtrip(&format!("release {job}")) {
            Ok(r) if r == "ok" => released_live = released_live.or(Some(job)),
            Ok(r) if r.starts_with("error unknown job") && end <= final_now => {}
            Ok(r) => violations.push(format!("release {job} (end {end}): {r}")),
            Err(e) => violations.push(format!("release {job} io error: {e}")),
        }
    }
    if let Some(job) = released_live {
        match control.roundtrip(&format!("release {job}")) {
            Ok(r) if r.starts_with("error unknown job") => {}
            Ok(r) => violations.push(format!("double release not rejected: {r}")),
            Err(e) => violations.push(format!("double release io error: {e}")),
        }
    }
    if args.shards == 1 {
        // Plain back-end: after releasing everything, every server is idle
        // over the slot after the final clock (nothing leaked, nothing
        // stuck). The window is read back from `stats` because the load
        // clients advanced the shared clock.
        let now: Option<i64> = control
            .roundtrip("stats")
            .ok()
            .and_then(|r| {
                r.split_whitespace()
                    .find_map(|f| f.strip_prefix("now=").and_then(|v| v.parse().ok()))
            });
        match now {
            Some(now) => match control.roundtrip(&format!("query {} {}", now, now + 900)) {
                Ok(r) if r == format!("free {}", spec.servers) => {
                    for _ in 0..spec.servers {
                        let _ = control.recv_line();
                    }
                }
                Ok(r) => violations.push(format!("capacity not restored: {r}")),
                Err(e) => violations.push(format!("query io error: {e}")),
            },
            None => violations.push("stats reply missing now=".into()),
        }
    }
    match control.roundtrip("check") {
        Ok(r) if r == "ok" => {}
        Ok(r) => violations.push(format!("post-release check failed: {r}")),
        Err(e) => violations.push(format!("post-release check io error: {e}")),
    }

    // ---- Latency attribution: the per-stage breakdown from the server's
    // `req_stage_*` histograms, and the stage identity
    // queue_wait + sched + wal_stall ≈ net_request_us (at p50).
    let expo = Client::connect(addr)
        .and_then(|c| c.exchange_script("metrics\nexit\n"))
        .unwrap_or_default();
    let stage_p50 = |family: &str| expo_quantile(&expo, family, 0.50).unwrap_or(0.0);
    let stage_p50_us = [
        stage_p50("req_stage_queue_wait"),
        stage_p50("req_stage_sched"),
        stage_p50("req_stage_wal_stall"),
        stage_p50("req_stage_writeback"),
    ];
    if server.is_some() {
        // Only sound against our own server: an external one carries
        // traffic (and histogram state) we did not generate.
        let stage_sum = stage_p50_us[0] + stage_p50_us[1] + stage_p50_us[2];
        let e2e_p50 = expo_quantile(&expo, "net_request_us", 0.50).unwrap_or(0.0);
        // Generous envelope: the histograms are log-linear (one sub-bucket
        // of error per stage) and p50s do not add exactly; the check only
        // catches a stage histogram that is wired to the wrong interval.
        let slack = 100.0;
        if stage_sum > 3.0 * e2e_p50 + slack || 3.0 * (stage_sum + slack) < e2e_p50 {
            violations.push(format!(
                "stage attribution inconsistent: queue_wait+sched+wal_stall p50s sum to \
                 {stage_sum:.1} µs but net_request_us p50 is {e2e_p50:.1} µs"
            ));
        }
        println!(
            "  stage p50s: queue_wait {:.1} µs, sched {:.1} µs, wal_stall {:.1} µs, \
             writeback {:.1} µs (e2e p50 {:.1} µs)",
            stage_p50_us[0], stage_p50_us[1], stage_p50_us[2], stage_p50_us[3], e2e_p50
        );
    }

    let rps = n_cmds as f64 / secs.max(1e-9);
    let p50 = percentile_us(&lat_ns, 0.50);
    let p99 = percentile_us(&lat_ns, 0.99);
    println!(
        "  {} commands in {:.3} s = {:.0} cmd/s; submit p50 {:.1} µs p99 {:.1} µs; \
         {} granted, {} rejected, {} busy retries",
        n_cmds,
        secs,
        rps,
        p50,
        p99,
        granted_jobs.len(),
        rejected,
        busy_retries
    );
    for v in &violations {
        eprintln!("INVARIANT VIOLATED: {v}");
    }

    let doc = render(
        &spec,
        &args,
        &RunSummary {
            n_cmds,
            secs,
            rps,
            p50_us: p50,
            p99_us: p99,
            granted: granted_jobs.len(),
            rejected,
            busy_retries,
            violations: violations.len(),
            stage_p50_us,
        },
    );
    std::fs::write(&args.out_path, &doc)
        .unwrap_or_else(|e| panic!("write {}: {e}", args.out_path));
    println!("wrote {}", args.out_path);

    drop(control);
    if let Some(s) = server {
        s.shutdown();
    }
    if !violations.is_empty() {
        std::process::exit(1);
    }
    validate(&doc, false).expect("self-validation of the emitted document");
    enforce_guard(&args, rps, p99);
}

/// Regression guard (CI): both throughput AND tail latency must stay
/// within `guard` of the committed baseline. Exits nonzero on breach.
fn enforce_guard(args: &Args, rps: f64, p99: f64) {
    let Some(ratio) = args.guard else { return };
    let (base_rps, base_p99) = args
        .baseline
        .expect("--guard requires --baseline PATH (read before the run)");
    let rps_floor = base_rps * ratio;
    let p99_ceiling = if base_p99 > 0.0 { base_p99 / ratio } else { f64::INFINITY };
    println!(
        "  guard: rps {rps:.0} vs floor {rps_floor:.0} (baseline {base_rps:.0}); \
         p99 {p99:.1} µs vs ceiling {p99_ceiling:.1} µs (baseline {base_p99:.1})"
    );
    if rps < rps_floor {
        eprintln!("GUARD FAILED: rps {rps:.0} below {rps_floor:.0} ({ratio}× baseline)");
        std::process::exit(1);
    }
    if p99 > p99_ceiling {
        eprintln!("GUARD FAILED: p99 {p99:.1} µs above {p99_ceiling:.1} µs (baseline/{ratio})");
        std::process::exit(1);
    }
}

// ---------------------------------------------------------------------------
// The churn profile: connection-storm stress for the event-driven front-end.
// ---------------------------------------------------------------------------

/// One driver thread's tally of the churn storm.
#[derive(Default)]
struct ChurnOutcome {
    /// Replies read and byte-checked against their request.
    checked: u64,
    /// Queue-level sheds observed in place of a reply (1:1 preserved).
    busy: u64,
    /// Per-command latency estimate: burst round-trip / burst length.
    lat_ns: Vec<u64>,
    violations: Vec<String>,
}

/// One churn connection's pipelined burst: unique `advance` arguments so a
/// reply misrouted across connections — or reordered within one — fails the
/// byte-exact echo check (`advance N` ⇒ `ok now=N`).
fn churn_burst(base: i64, len: usize) -> (String, Vec<String>) {
    let mut buf = String::new();
    let mut expected = Vec::with_capacity(len);
    for i in 0..len {
        let t = base + i as i64;
        buf.push_str(&format!("advance {t}\n"));
        expected.push(format!("ok now={t}"));
    }
    (buf, expected)
}

fn churn_thread(
    addr: std::net::SocketAddr,
    range: std::ops::Range<usize>,
    total_conns: usize,
    waves: usize,
    burst: usize,
    barrier: &std::sync::Barrier,
) -> ChurnOutcome {
    let mut out = ChurnOutcome::default();
    for wave in 0..waves {
        // 1. Open every connection in the slice, probing admission with one
        //    `version` roundtrip. Accept-level sheds close the socket
        //    (busy-then-EOF), so the probe reconnects until admitted.
        let mut clients: Vec<Option<Client>> = Vec::with_capacity(range.len());
        for idx in range.clone() {
            let mut admitted = None;
            for _ in 0..100 {
                if let Ok(mut c) = Client::connect(addr) {
                    let _ = c.set_timeout(Duration::from_secs(30));
                    match c.roundtrip("version") {
                        Ok(r) if r == BUSY_REPLY || r.is_empty() => {}
                        Ok(_) => {
                            admitted = Some(c);
                            break;
                        }
                        Err(_) => {}
                    }
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            if admitted.is_none() {
                out.violations
                    .push(format!("wave {wave} conn {idx}: never admitted"));
            }
            clients.push(admitted);
        }
        // 2. Everyone holds their sockets before any burst: the peak is
        //    exactly `total_conns` concurrently open connections.
        barrier.wait();
        // 3. Pipelined bursts, written split mid-line: the first write ends
        //    a few bytes into the opening `advance`; the rest follows after
        //    a beat on every sixteenth connection. A partial line must sit
        //    in the server's read buffer without stalling anyone else.
        let mut pending: Vec<(usize, Vec<String>, Instant)> = Vec::new();
        for (slot, idx) in range.clone().enumerate() {
            let Some(c) = clients[slot].as_mut() else { continue };
            let base = ((wave * total_conns + idx) * burst) as i64;
            let (buf, expected) = churn_burst(base, burst);
            let bytes = buf.as_bytes();
            let split = 7.min(bytes.len());
            let t = Instant::now();
            let wrote = c.stream().write_all(&bytes[..split]).and_then(|()| {
                if slot % 16 == 0 {
                    std::thread::sleep(Duration::from_millis(1));
                }
                c.stream().write_all(&bytes[split..])
            });
            match wrote {
                Ok(()) => pending.push((slot, expected, t)),
                Err(e) => {
                    out.violations
                        .push(format!("wave {wave} conn {idx}: burst write: {e}"));
                    clients[slot] = None;
                }
            }
        }
        // 4. Collect replies: positionally 1:1 with the requests, each one
        //    byte-exact or the documented queue-shed busy line.
        for (slot, expected, t) in pending {
            let Some(c) = clients[slot].as_mut() else { continue };
            let mut clean = true;
            for want in &expected {
                match c.recv_line() {
                    Ok(r) if r == *want => out.checked += 1,
                    Ok(r) if r == BUSY_REPLY => {
                        out.busy += 1;
                        out.checked += 1;
                    }
                    Ok(r) => {
                        out.violations
                            .push(format!("reply ordering violated: got {r:?}, want {want:?}"));
                        clean = false;
                        break;
                    }
                    Err(e) => {
                        out.violations.push(format!("read reply: {e}"));
                        clean = false;
                        break;
                    }
                }
            }
            if clean {
                out.lat_ns
                    .push(t.elapsed().as_nanos() as u64 / expected.len().max(1) as u64);
            } else {
                clients[slot] = None;
            }
        }
        // 5. Bursty teardown, everyone together: half the connections leave
        //    gracefully (`exit`, drained to EOF), half drop the socket cold.
        barrier.wait();
        for (slot, idx) in range.clone().enumerate() {
            let Some(mut c) = clients[slot].take() else { continue };
            if idx % 2 == 0 {
                let _ = c.send("exit");
                let _ = c.recv_line(); // EOF
            }
        }
    }
    out
}

/// The churn profile's main: waves of `args.clients` concurrent connections
/// (bursty open/close, partial-line pipelined writers) with every reply
/// checked byte-exactly — the acceptance gate's "zero reply-ordering
/// violations" — then the usual JSON row, self-validation, and guard.
fn run_churn(args: &Args, spec: &WorkloadSpec, server: Option<Server>, addr: std::net::SocketAddr) {
    let conns = args.clients;
    // Full runs use enough waves to stay comfortably past the strict
    // baseline floor (>= 1 s) on a fast box; smoke stays tiny for CI.
    let waves = if args.smoke { 2 } else { 6 };
    let burst = if args.smoke { 8 } else { 16 };
    let threads = conns.min(32);
    println!(
        "netload churn: {conns} connections × {waves} waves, {burst}-line pipelined bursts, \
         {threads} driver threads, {} shard(s)",
        args.shards
    );

    // Control session: `advance` needs an initialized scheduler.
    let mut control = Client::connect(addr).expect("connect control session");
    control.set_timeout(Duration::from_secs(30)).expect("timeouts");
    let init = control
        .roundtrip(&format!("init {} 900 259200 900", spec.servers))
        .expect("init");
    assert!(init.starts_with("ok"), "init failed: {init}");

    // Slice the connection indices over the driver threads.
    let per = conns / threads;
    let extra = conns % threads;
    let mut ranges = Vec::with_capacity(threads);
    let mut start = 0usize;
    for t in 0..threads {
        let n = per + usize::from(t < extra);
        ranges.push(start..start + n);
        start += n;
    }

    let barrier = std::sync::Arc::new(std::sync::Barrier::new(threads));
    let t0 = Instant::now();
    let handles: Vec<_> = ranges
        .into_iter()
        .map(|range| {
            let barrier = std::sync::Arc::clone(&barrier);
            std::thread::spawn(move || churn_thread(addr, range, conns, waves, burst, &barrier))
        })
        .collect();
    let outcomes: Vec<ChurnOutcome> = handles
        .into_iter()
        .map(|h| h.join().expect("churn thread"))
        .collect();
    let secs = t0.elapsed().as_secs_f64();

    let mut lat_ns: Vec<u64> = Vec::new();
    let mut checked = 0u64;
    let mut busy = 0u64;
    let mut violations: Vec<String> = Vec::new();
    for o in outcomes {
        lat_ns.extend(o.lat_ns);
        checked += o.checked;
        busy += o.busy;
        violations.extend(o.violations);
    }
    lat_ns.sort_unstable();

    // The storm may not leave the scheduler inconsistent.
    match control.roundtrip("check") {
        Ok(r) if r == "ok" => {}
        Ok(r) => violations.push(format!("check failed: {r}")),
        Err(e) => violations.push(format!("check io error: {e}")),
    }

    let expo = Client::connect(addr)
        .and_then(|c| c.exchange_script("metrics\nexit\n"))
        .unwrap_or_default();
    let stage_p50 = |family: &str| expo_quantile(&expo, family, 0.50).unwrap_or(0.0);
    let stage_p50_us = [
        stage_p50("req_stage_queue_wait"),
        stage_p50("req_stage_sched"),
        stage_p50("req_stage_wal_stall"),
        stage_p50("req_stage_writeback"),
    ];

    let n_cmds = checked as usize;
    let rps = n_cmds as f64 / secs.max(1e-9);
    let p50 = percentile_us(&lat_ns, 0.50);
    let p99 = percentile_us(&lat_ns, 0.99);
    println!(
        "  {} replies byte-checked in {:.3} s = {:.0} cmd/s; per-command p50 {:.1} µs \
         p99 {:.1} µs; {} queue sheds, {} violations",
        n_cmds,
        secs,
        rps,
        p50,
        p99,
        busy,
        violations.len()
    );
    for v in violations.iter().take(20) {
        eprintln!("INVARIANT VIOLATED: {v}");
    }
    if violations.len() > 20 {
        eprintln!("  ... and {} more", violations.len() - 20);
    }

    let doc = render(
        spec,
        args,
        &RunSummary {
            n_cmds,
            secs,
            rps,
            p50_us: p50,
            p99_us: p99,
            granted: 0,
            rejected: 0,
            busy_retries: busy,
            violations: violations.len(),
            stage_p50_us,
        },
    );
    std::fs::write(&args.out_path, &doc)
        .unwrap_or_else(|e| panic!("write {}: {e}", args.out_path));
    println!("wrote {}", args.out_path);

    drop(control);
    if let Some(s) = server {
        s.shutdown();
    }
    if !violations.is_empty() {
        std::process::exit(1);
    }
    validate(&doc, false).expect("self-validation of the emitted document");
    enforce_guard(args, rps, p99);
}
