//! `netload` — closed-loop load generator for the TCP serving path.
//!
//! Spins up an in-process `coalloc-net` server (or targets an external one
//! via `--addr`), drives it with `C` concurrent clients replaying a
//! fixed-seed workload twin from `crates/workloads`, and emits
//! `BENCH_net.json` with requests/sec and p50/p99 per-command latency.
//! After the storm it verifies the conservation invariants end to end:
//! every client-observed grant is releasable exactly once, the scheduler
//! passes its internal `check`, and (plain back-end) the server's
//! `sched_grants_total` metric equals the clients' count and releasing
//! everything returns the system to full idle capacity.
//!
//! ```text
//! cargo run -p coalloc-bench --release --bin netload -- \
//!     [--smoke] [--clients C] [--scale F] [--seed N] [--shards K] \
//!     [--addr HOST:PORT] [--out PATH] [--validate PATH]
//! ```
//!
//! * `--smoke` — tiny workload slice for CI (8 clients, ~hundreds of
//!   commands) that still runs every invariant check.
//! * `--addr` — drive an already-running `coallocd serve` instead of an
//!   in-process server (the metric-equality check is skipped: an external
//!   server's counters may include other traffic).
//! * `--validate PATH` — parse an existing result file and check its shape
//!   instead of running; used by CI after the bench run.

use coalloc_net::{Client, NetConfig, Server, BUSY_REPLY};
use coalloc_workloads::synthetic::WorkloadSpec;
use obs::json::{self, Json};
use std::time::{Duration, Instant};

/// One client's tally of a replay slice.
#[derive(Default)]
struct ClientOutcome {
    /// `(job id, end time)` of every grant this client observed.
    granted_jobs: Vec<(u64, i64)>,
    rejected: u64,
    busy_retries: u64,
    lat_ns: Vec<u64>,
    violations: Vec<String>,
}

/// Send one command, retrying on `busy retry-after` sheds. Queue-level
/// sheds leave the connection open; accept-level sheds close it (seen as
/// a busy-then-EOF, a write error, or — if the command raced the close —
/// a connection reset), so retries reconnect as PROTOCOL.md prescribes.
/// Returns the first real reply and the number of retries absorbed.
fn roundtrip_retry(
    c: &mut Client,
    addr: std::net::SocketAddr,
    line: &str,
) -> std::io::Result<(String, u64)> {
    let mut retries = 0u64;
    loop {
        match c.roundtrip(line) {
            Ok(reply) if reply == BUSY_REPLY => {}
            // EOF: the connection died between commands (shed or reaped).
            Ok(reply) if reply.is_empty() => {}
            Ok(reply) => return Ok((reply, retries)),
            Err(e) if retries >= 100 => return Err(e),
            Err(_) => {}
        }
        retries += 1;
        std::thread::sleep(Duration::from_millis(5));
        // The cheap way to be correct about half-dead sockets: start over.
        let mut fresh = Client::connect(addr)?;
        let _ = fresh.set_timeout(Duration::from_secs(30));
        *c = fresh;
    }
}

fn client_worker(
    addr: std::net::SocketAddr,
    reqs: Vec<(i64, i64, i64, u32)>,
) -> ClientOutcome {
    let mut out = ClientOutcome::default();
    let mut c = match Client::connect(addr) {
        Ok(c) => c,
        Err(e) => {
            out.violations.push(format!("connect failed: {e}"));
            return out;
        }
    };
    let _ = c.set_timeout(Duration::from_secs(30));
    for (q, s, l, n) in reqs {
        // Closed loop: move the shared clock to this request's submit
        // instant, then submit and wait for the decision.
        match roundtrip_retry(&mut c, addr, &format!("advance {q}")) {
            Ok((r, busy)) => {
                out.busy_retries += busy;
                if !r.starts_with("ok now=") {
                    out.violations.push(format!("bad advance reply: {r}"));
                }
            }
            Err(e) => {
                out.violations.push(format!("advance io error: {e}"));
                return out;
            }
        }
        let t0 = Instant::now();
        match roundtrip_retry(&mut c, addr, &format!("submit {q} {s} {l} {n}")) {
            Ok((r, busy)) => {
                out.busy_retries += busy;
                out.lat_ns.push(t0.elapsed().as_nanos() as u64);
                if let Some(rest) = r.strip_prefix("granted job=") {
                    let id: Option<u64> =
                        rest.split_whitespace().next().and_then(|x| x.parse().ok());
                    let end: Option<i64> = rest
                        .split_whitespace()
                        .find_map(|f| f.strip_prefix("end=").and_then(|v| v.parse().ok()));
                    match (id, end) {
                        (Some(id), Some(end)) => out.granted_jobs.push((id, end)),
                        _ => {
                            out.violations.push(format!("unparsable grant: {r}"));
                            out.granted_jobs.push((u64::MAX, i64::MAX));
                        }
                    }
                } else if r.starts_with("rejected") {
                    out.rejected += 1;
                } else {
                    out.violations.push(format!("unexpected submit reply: {r}"));
                }
            }
            Err(e) => {
                out.violations.push(format!("submit io error: {e}"));
                return out;
            }
        }
    }
    out
}

fn percentile_us(sorted_ns: &[u64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ns.len() as f64 - 1.0) * p).round() as usize;
    sorted_ns[idx] as f64 / 1_000.0
}

/// Pull one metric value out of a `metrics` exposition.
fn metric_value(exposition: &str, name: &str) -> Option<u64> {
    exposition
        .lines()
        .find(|l| l.split_whitespace().next() == Some(name))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
}

/// Approximate quantile of a histogram family in a `metrics` exposition:
/// walk the cumulative `_bucket{le=...}` series and return the first upper
/// bound covering `q` of `_count`. The buckets are log-linear, so this is
/// an upper bound accurate to one sub-bucket — plenty for a breakdown.
fn expo_quantile(exposition: &str, family: &str, q: f64) -> Option<f64> {
    let count: f64 = metric_value(exposition, &format!("{family}_count"))? as f64;
    if count == 0.0 {
        return Some(0.0);
    }
    let target = (count * q).ceil();
    let prefix = format!("{family}_bucket{{le=\"");
    for line in exposition.lines() {
        let Some(rest) = line.strip_prefix(&prefix) else { continue };
        let (bound, tail) = rest.split_once("\"}")?;
        let cum: f64 = tail.trim().parse().ok()?;
        if cum >= target {
            return bound.parse().ok().or(Some(f64::INFINITY));
        }
    }
    None
}

/// The measured half of a run, ready to serialize.
struct RunSummary {
    n_cmds: usize,
    secs: f64,
    rps: f64,
    p50_us: f64,
    p99_us: f64,
    granted: usize,
    rejected: u64,
    busy_retries: u64,
    violations: usize,
    /// Per-stage p50s from the server's `req_stage_*` histograms (µs):
    /// queue wait, scheduler compute, WAL stall, writeback. Zero when the
    /// server's exposition was unreachable.
    stage_p50_us: [f64; 4],
}

fn render(spec: &WorkloadSpec, args: &Args, s: &RunSummary) -> String {
    let cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    format!(
        "{{\n  \"bench\": \"netload\",\n  \"workload\": \"{}\",\n  \"servers\": {},\n  \
         \"scale\": {},\n  \"seed\": {},\n  \"clients\": {},\n  \"shards\": {},\n  \
         \"commands\": {},\n  \"cpus\": {},\n  \"secs\": {:.6},\n  \"rps\": {:.3},\n  \
         \"p50_us\": {:.3},\n  \"p99_us\": {:.3},\n  \
         \"stage_queue_wait_p50_us\": {:.3},\n  \"stage_sched_p50_us\": {:.3},\n  \
         \"stage_wal_stall_p50_us\": {:.3},\n  \"stage_writeback_p50_us\": {:.3},\n  \
         \"granted\": {},\n  \
         \"rejected\": {},\n  \"busy_retries\": {},\n  \"violations\": {}\n}}\n",
        json::escape(&spec.name),
        spec.servers,
        args.scale,
        args.seed,
        args.clients,
        args.shards,
        s.n_cmds,
        cpus,
        s.secs,
        s.rps,
        s.p50_us,
        s.p99_us,
        s.stage_p50_us[0],
        s.stage_p50_us[1],
        s.stage_p50_us[2],
        s.stage_p50_us[3],
        s.granted,
        s.rejected,
        s.busy_retries,
        s.violations,
    )
}

/// Shape-check a `BENCH_net.json` document.
fn validate(text: &str) -> Result<(), String> {
    let doc = json::parse(text)?;
    if doc.get("bench").and_then(Json::as_str) != Some("netload") {
        return Err("missing or wrong \"bench\" tag".into());
    }
    for key in [
        "servers", "scale", "seed", "clients", "shards", "commands", "cpus", "secs", "rps",
        "p50_us", "p99_us", "stage_queue_wait_p50_us", "stage_sched_p50_us",
        "stage_wal_stall_p50_us", "stage_writeback_p50_us", "granted", "rejected",
        "busy_retries", "violations",
    ] {
        if doc.get(key).and_then(Json::as_num).is_none() {
            return Err(format!("missing numeric \"{key}\""));
        }
    }
    let num = |k: &str| doc.get(k).and_then(Json::as_num).unwrap_or(-1.0);
    if num("commands") <= 0.0 || num("rps") <= 0.0 {
        return Err("\"commands\" and \"rps\" must be positive".into());
    }
    if num("clients") < 1.0 {
        return Err("\"clients\" must be at least 1".into());
    }
    if num("violations") != 0.0 {
        return Err(format!("{} invariant violations recorded", num("violations")));
    }
    Ok(())
}

struct Args {
    clients: usize,
    scale: f64,
    seed: u64,
    shards: u32,
    addr: Option<String>,
    out_path: String,
    /// Regression guard ratio: with `--baseline`, fail unless
    /// `rps >= guard × baseline.rps` AND `p99_us <= baseline.p99_us / guard`.
    guard: Option<f64>,
    /// Baseline `(rps, p99_us)`, read at argument-parse time so `--baseline`
    /// and `--out` may name the same file.
    baseline: Option<(f64, f64)>,
}

fn main() {
    let mut args = Args {
        clients: 8,
        scale: 0.01,
        seed: 42,
        shards: 1,
        addr: None,
        out_path: "BENCH_net.json".to_string(),
        guard: None,
        baseline: None,
    };
    let mut cli = std::env::args().skip(1);
    while let Some(a) = cli.next() {
        match a.as_str() {
            "--smoke" => args.scale = 0.002,
            "--clients" => {
                args.clients = cli.next().expect("--clients C").parse().expect("integer")
            }
            "--scale" => args.scale = cli.next().expect("--scale F").parse().expect("float"),
            "--seed" => args.seed = cli.next().expect("--seed N").parse().expect("integer"),
            "--shards" => args.shards = cli.next().expect("--shards K").parse().expect("integer"),
            "--addr" => args.addr = Some(cli.next().expect("--addr HOST:PORT")),
            "--out" => args.out_path = cli.next().expect("--out PATH"),
            "--guard" => {
                let r: f64 = cli.next().expect("--guard RATIO").parse().expect("float");
                assert!(r > 0.0 && r <= 1.0, "--guard must be in (0, 1]");
                args.guard = Some(r);
            }
            "--baseline" => {
                let path = cli.next().expect("--baseline PATH");
                // Read now: the run may overwrite this very file via --out.
                let text = std::fs::read_to_string(&path)
                    .unwrap_or_else(|e| panic!("read baseline {path}: {e}"));
                let doc = json::parse(&text).unwrap_or_else(|e| panic!("parse {path}: {e}"));
                let num = |k: &str| {
                    doc.get(k)
                        .and_then(Json::as_num)
                        .unwrap_or_else(|| panic!("baseline {path} missing numeric \"{k}\""))
                };
                args.baseline = Some((num("rps"), num("p99_us")));
            }
            "--validate" => {
                let path = cli.next().expect("--validate PATH");
                let text = std::fs::read_to_string(&path)
                    .unwrap_or_else(|e| panic!("read {path}: {e}"));
                match validate(&text) {
                    Ok(()) => {
                        println!("{path}: ok");
                        return;
                    }
                    Err(e) => {
                        eprintln!("{path}: INVALID: {e}");
                        std::process::exit(1);
                    }
                }
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: netload [--smoke] [--clients C] [--scale F] [--seed N] \
                     [--shards K] [--addr HOST:PORT] [--out PATH] [--validate PATH] \
                     [--guard RATIO --baseline PATH]"
                );
                return;
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    assert!(args.clients >= 1, "--clients must be at least 1");

    // The workload twin: same generator the throughput gate replays.
    let spec = WorkloadSpec::kth().scaled(args.scale);
    let reqs = spec.generate(args.seed);
    println!(
        "netload: {} requests over {} servers (kth × {}, seed {}), {} clients, {} shard(s)",
        reqs.len(),
        spec.servers,
        args.scale,
        args.seed,
        args.clients,
        args.shards
    );

    // In-process server unless an external address was given. The pool is
    // sized so every load client plus the control session has a worker.
    let server = if args.addr.is_none() {
        Some(
            Server::bind(NetConfig {
                workers: args.clients + 2,
                queue_depth: (args.clients * 2).max(8),
                accept_backlog: args.clients.max(8),
                read_timeout: Duration::from_secs(30),
                shards: args.shards,
                ..NetConfig::default()
            })
            .expect("bind in-process server"),
        )
    } else {
        None
    };
    let addr: std::net::SocketAddr = match (&args.addr, &server) {
        (Some(a), _) => a.parse().expect("parse --addr"),
        (None, Some(s)) => s.local_addr(),
        _ => unreachable!(),
    };

    // Control session: initialize the shared scheduler with the paper-bench
    // settings (15-minute slots, 72-hour horizon).
    let mut control = Client::connect(addr).expect("connect control session");
    control.set_timeout(Duration::from_secs(30)).expect("timeouts");
    let init = control
        .roundtrip(&format!("init {} 900 259200 900", spec.servers))
        .expect("init");
    assert!(init.starts_with("ok"), "init failed: {init}");

    // Round-robin the request stream over the clients, preserving each
    // slice's submit-time order (the shared clock only moves forward).
    let mut slices: Vec<Vec<(i64, i64, i64, u32)>> = vec![Vec::new(); args.clients];
    for (i, r) in reqs.iter().enumerate() {
        slices[i % args.clients].push((
            r.submit.secs(),
            r.earliest_start.secs(),
            r.duration.secs(),
            r.servers,
        ));
    }

    let t0 = Instant::now();
    let handles: Vec<_> = slices
        .into_iter()
        .map(|slice| std::thread::spawn(move || client_worker(addr, slice)))
        .collect();
    let outcomes: Vec<ClientOutcome> = handles
        .into_iter()
        .map(|h| h.join().expect("client thread"))
        .collect();
    let secs = t0.elapsed().as_secs_f64();

    let mut lat_ns: Vec<u64> = Vec::new();
    let mut granted_jobs: Vec<(u64, i64)> = Vec::new();
    let mut rejected = 0u64;
    let mut busy_retries = 0u64;
    let mut violations: Vec<String> = Vec::new();
    for o in outcomes {
        lat_ns.extend(o.lat_ns);
        granted_jobs.extend(o.granted_jobs);
        rejected += o.rejected;
        busy_retries += o.busy_retries;
        violations.extend(o.violations);
    }
    lat_ns.sort_unstable();
    // Two commands (advance + submit) per request actually crossed the
    // wire; rps counts them both since each is a served roundtrip.
    let n_cmds = lat_ns.len() * 2;

    // ---- Invariant sweep (the acceptance gate's "zero violations") ----
    // 1. The scheduler's internal indexes are consistent after the storm.
    match control.roundtrip("check") {
        Ok(r) if r == "ok" => {}
        Ok(r) => violations.push(format!("check failed: {r}")),
        Err(e) => violations.push(format!("check io error: {e}")),
    }
    // 2. Grant conservation against the server's own counters (only sound
    //    when the server is ours and the back-end increments the metric).
    if server.is_some() && args.shards == 1 {
        let metrics = Client::connect(addr)
            .and_then(|c| c.exchange_script("metrics\nexit\n"))
            .unwrap_or_default();
        match metric_value(&metrics, "sched_grants_total") {
            Some(g) if g as usize == granted_jobs.len() => {}
            Some(g) => violations.push(format!(
                "grant conservation: server counted {g}, clients observed {}",
                granted_jobs.len()
            )),
            None => violations.push("sched_grants_total missing from metrics".into()),
        }
    }
    // 3. Every observed grant is releasable exactly once (no phantom or
    //    double-counted jobs), and releasing all of them returns the
    //    system to full idle capacity.
    granted_jobs.sort_unstable();
    granted_jobs.dedup();
    if granted_jobs.len() != lat_ns.len() - rejected as usize {
        violations.push(format!(
            "duplicate job ids: {} unique grants vs {} granted replies",
            granted_jobs.len(),
            lat_ns.len() - rejected as usize
        ));
    }
    // `release` of a grant whose reservation already ran to completion may
    // answer `error unknown job`: the scheduler prunes finished history on
    // an amortized cadence and forgets pruned jobs (PROTOCOL.md `release`).
    // That is conservation, not leakage — the capacity came back at the
    // reservation's end — so it is only accepted for jobs that had in fact
    // finished by the final clock; for a live job it is a real violation.
    let final_now: i64 = control
        .roundtrip("stats")
        .ok()
        .and_then(|r| {
            r.split_whitespace()
                .find_map(|f| f.strip_prefix("now=").and_then(|v| v.parse().ok()))
        })
        .unwrap_or(i64::MIN);
    let mut released_live: Option<u64> = None;
    for &(job, end) in &granted_jobs {
        match control.roundtrip(&format!("release {job}")) {
            Ok(r) if r == "ok" => released_live = released_live.or(Some(job)),
            Ok(r) if r.starts_with("error unknown job") && end <= final_now => {}
            Ok(r) => violations.push(format!("release {job} (end {end}): {r}")),
            Err(e) => violations.push(format!("release {job} io error: {e}")),
        }
    }
    if let Some(job) = released_live {
        match control.roundtrip(&format!("release {job}")) {
            Ok(r) if r.starts_with("error unknown job") => {}
            Ok(r) => violations.push(format!("double release not rejected: {r}")),
            Err(e) => violations.push(format!("double release io error: {e}")),
        }
    }
    if args.shards == 1 {
        // Plain back-end: after releasing everything, every server is idle
        // over the slot after the final clock (nothing leaked, nothing
        // stuck). The window is read back from `stats` because the load
        // clients advanced the shared clock.
        let now: Option<i64> = control
            .roundtrip("stats")
            .ok()
            .and_then(|r| {
                r.split_whitespace()
                    .find_map(|f| f.strip_prefix("now=").and_then(|v| v.parse().ok()))
            });
        match now {
            Some(now) => match control.roundtrip(&format!("query {} {}", now, now + 900)) {
                Ok(r) if r == format!("free {}", spec.servers) => {
                    for _ in 0..spec.servers {
                        let _ = control.recv_line();
                    }
                }
                Ok(r) => violations.push(format!("capacity not restored: {r}")),
                Err(e) => violations.push(format!("query io error: {e}")),
            },
            None => violations.push("stats reply missing now=".into()),
        }
    }
    match control.roundtrip("check") {
        Ok(r) if r == "ok" => {}
        Ok(r) => violations.push(format!("post-release check failed: {r}")),
        Err(e) => violations.push(format!("post-release check io error: {e}")),
    }

    // ---- Latency attribution: the per-stage breakdown from the server's
    // `req_stage_*` histograms, and the stage identity
    // queue_wait + sched + wal_stall ≈ net_request_us (at p50).
    let expo = Client::connect(addr)
        .and_then(|c| c.exchange_script("metrics\nexit\n"))
        .unwrap_or_default();
    let stage_p50 = |family: &str| expo_quantile(&expo, family, 0.50).unwrap_or(0.0);
    let stage_p50_us = [
        stage_p50("req_stage_queue_wait"),
        stage_p50("req_stage_sched"),
        stage_p50("req_stage_wal_stall"),
        stage_p50("req_stage_writeback"),
    ];
    if server.is_some() {
        // Only sound against our own server: an external one carries
        // traffic (and histogram state) we did not generate.
        let stage_sum = stage_p50_us[0] + stage_p50_us[1] + stage_p50_us[2];
        let e2e_p50 = expo_quantile(&expo, "net_request_us", 0.50).unwrap_or(0.0);
        // Generous envelope: the histograms are log-linear (one sub-bucket
        // of error per stage) and p50s do not add exactly; the check only
        // catches a stage histogram that is wired to the wrong interval.
        let slack = 100.0;
        if stage_sum > 3.0 * e2e_p50 + slack || 3.0 * (stage_sum + slack) < e2e_p50 {
            violations.push(format!(
                "stage attribution inconsistent: queue_wait+sched+wal_stall p50s sum to \
                 {stage_sum:.1} µs but net_request_us p50 is {e2e_p50:.1} µs"
            ));
        }
        println!(
            "  stage p50s: queue_wait {:.1} µs, sched {:.1} µs, wal_stall {:.1} µs, \
             writeback {:.1} µs (e2e p50 {:.1} µs)",
            stage_p50_us[0], stage_p50_us[1], stage_p50_us[2], stage_p50_us[3], e2e_p50
        );
    }

    let rps = n_cmds as f64 / secs.max(1e-9);
    let p50 = percentile_us(&lat_ns, 0.50);
    let p99 = percentile_us(&lat_ns, 0.99);
    println!(
        "  {} commands in {:.3} s = {:.0} cmd/s; submit p50 {:.1} µs p99 {:.1} µs; \
         {} granted, {} rejected, {} busy retries",
        n_cmds,
        secs,
        rps,
        p50,
        p99,
        granted_jobs.len(),
        rejected,
        busy_retries
    );
    for v in &violations {
        eprintln!("INVARIANT VIOLATED: {v}");
    }

    let doc = render(
        &spec,
        &args,
        &RunSummary {
            n_cmds,
            secs,
            rps,
            p50_us: p50,
            p99_us: p99,
            granted: granted_jobs.len(),
            rejected,
            busy_retries,
            violations: violations.len(),
            stage_p50_us,
        },
    );
    std::fs::write(&args.out_path, &doc)
        .unwrap_or_else(|e| panic!("write {}: {e}", args.out_path));
    println!("wrote {}", args.out_path);

    drop(control);
    if let Some(s) = server {
        s.shutdown();
    }
    if !violations.is_empty() {
        std::process::exit(1);
    }
    validate(&doc).expect("self-validation of the emitted document");

    // ---- Regression guard (CI): both throughput AND tail latency must
    // stay within `guard` of the committed baseline.
    if let Some(ratio) = args.guard {
        let (base_rps, base_p99) = args
            .baseline
            .expect("--guard requires --baseline PATH (read before the run)");
        let rps_floor = base_rps * ratio;
        let p99_ceiling = if base_p99 > 0.0 { base_p99 / ratio } else { f64::INFINITY };
        println!(
            "  guard: rps {rps:.0} vs floor {rps_floor:.0} (baseline {base_rps:.0}); \
             p99 {p99:.1} µs vs ceiling {p99_ceiling:.1} µs (baseline {base_p99:.1})"
        );
        if rps < rps_floor {
            eprintln!("GUARD FAILED: rps {rps:.0} below {rps_floor:.0} ({ratio}× baseline)");
            std::process::exit(1);
        }
        if p99 > p99_ceiling {
            eprintln!(
                "GUARD FAILED: p99 {p99:.1} µs above {p99_ceiling:.1} µs (baseline/{ratio})"
            );
            std::process::exit(1);
        }
    }
}
